//! The association-analysis substrate by itself: the paper's §III-A
//! diapers-and-beer walkthrough on a synthetic purchase log, mined with
//! all three frequent-itemset algorithms and scored with the classical
//! measures.
//!
//! ```text
//! cargo run --release -p arq --example market_basket
//! ```

use arq::assoc::apriori::apriori;
use arq::assoc::eclat::eclat;
use arq::assoc::fpgrowth::fpgrowth;
use arq::assoc::rules::generate_rules;
use arq::assoc::TransactionDb;
use arq::simkern::Rng64;

const ITEMS: &[&str] = &[
    "bread", "milk", "diapers", "beer", "eggs", "cola", "caviar", "sugar", "coffee", "butter",
];

fn main() {
    // Synthesize 2,000 grocery baskets with planted correlations: beer
    // follows diapers, sugar follows caviar (but caviar is rare), and
    // everything else is background noise.
    let mut rng = Rng64::seed_from(2006);
    let mut db = TransactionDb::new();
    for _ in 0..2_000 {
        let mut basket: Vec<&str> = Vec::new();
        for &item in ITEMS {
            let p = match item {
                "bread" | "milk" => 0.45,
                "diapers" => 0.30,
                "caviar" => 0.02,
                _ => 0.15,
            };
            if rng.chance(p) {
                basket.push(item);
            }
        }
        // Planted associations (the paper's §III-A examples).
        if basket.contains(&"diapers") && rng.chance(0.75) && !basket.contains(&"beer") {
            basket.push("beer");
        }
        if basket.contains(&"caviar") && rng.chance(0.9) && !basket.contains(&"sugar") {
            basket.push("sugar");
        }
        if basket.is_empty() {
            basket.push("bread");
        }
        db.add_named(&basket);
    }
    println!("{} transactions over {} items\n", db.len(), db.item_count());

    // All three miners must agree — and do, by construction and test.
    let min_count = 40;
    let frequent = apriori(&db, min_count);
    assert_eq!(frequent, fpgrowth(&db, min_count));
    assert_eq!(frequent, eclat(&db, min_count));
    println!(
        "{} frequent itemsets at support >= {min_count} (apriori = fp-growth = eclat)\n",
        frequent.len()
    );

    let rules = generate_rules(&frequent, db.len() as u64, 0.5);
    println!(
        "{:<28} {:>8} {:>8} {:>7} {:>10}",
        "rule", "support", "conf", "lift", "conviction"
    );
    let fmt_items = |items: &[arq::assoc::ItemId]| -> String {
        let names: Vec<&str> = items.iter().map(|&i| db.name(i)).collect();
        format!("{{{}}}", names.join(", "))
    };
    for r in rules.iter().take(12) {
        println!(
            "{:<28} {:>8.3} {:>8.3} {:>7.2} {:>10}",
            format!(
                "{} -> {}",
                fmt_items(&r.antecedent),
                fmt_items(&r.consequent)
            ),
            r.support,
            r.confidence,
            r.lift,
            if r.conviction.is_infinite() {
                "inf".to_string()
            } else {
                format!("{:.2}", r.conviction)
            },
        );
    }

    // The paper's two teaching points, verified on the mined output.
    let diapers_beer = rules.iter().find(|r| {
        r.antecedent.len() == 1
            && db.name(r.antecedent[0]) == "diapers"
            && r.consequent.len() == 1
            && db.name(r.consequent[0]) == "beer"
    });
    match diapers_beer {
        Some(r) => println!(
            "\n{{diapers}} -> {{beer}}: lift {:.2} — the planted association surfaces.",
            r.lift
        ),
        None => println!("\n{{diapers}} -> {{beer}} did not reach the confidence cut."),
    }
    let caviar = db.lookup("caviar").expect("caviar interned");
    println!(
        "{{caviar}} -> {{sugar}}: confident but useless — caviar support is only {:.3},\n\
         which is why rule *sets* need the paper's coverage measure on top of\n\
         per-rule confidence.",
        db.support(&[caviar])
    );
}
