//! Structure vs adaptation: a two-tier superpeer network with content
//! indices (the §II "re-design the network" school) against flat
//! flooding and association-rule routing on the same node population.
//!
//! ```text
//! cargo run --release -p arq --example superpeer
//! ```

use arq::baselines::{FloodPolicy, SuperPeerPolicy};
use arq::content::CatalogConfig;
use arq::core::{AssocPolicy, AssocPolicyConfig};
use arq::gnutella::metrics::RunMetrics;
use arq::gnutella::sim::{Network, SimConfig, Topology};

const NODES: usize = 400;
const QUERIES: usize = 2_000;
const N_SUPER: usize = 20;

fn base_cfg(topology: Topology, ttl: u32) -> SimConfig {
    let mut cfg = SimConfig::default_with(NODES, QUERIES, 42);
    cfg.topology = topology;
    cfg.ttl = ttl;
    cfg.catalog = CatalogConfig {
        topics: 16,
        files_per_topic: 150,
        ..Default::default()
    };
    cfg
}

fn row(m: &RunMetrics, note: &str) {
    let hops = m
        .first_hit_hops
        .as_ref()
        .map_or("  n/a".to_string(), |h| format!("{:5.2}", h.mean));
    println!(
        "{:<12} {:>12.1} {:>9.3} {:>7}  {}",
        m.policy, m.messages_per_query, m.success_rate, hops, note
    );
}

fn main() {
    println!(
        "{:<12} {:>12} {:>9} {:>7}",
        "policy", "msgs/query", "success", "hops"
    );

    // Flat power-law overlay, full flooding.
    let flat = base_cfg(Topology::BarabasiAlbert { m: 3 }, 6);
    row(
        &Network::new(flat.clone(), FloodPolicy).run().metrics,
        "flat overlay",
    );

    // Flat overlay, association-rule routing.
    let (result, policy, _) =
        Network::new(flat, AssocPolicy::new(AssocPolicyConfig::default())).run_full();
    row(
        &result.metrics,
        &format!(
            "flat overlay (rule usage {:.0}%)",
            policy.rule_usage() * 100.0
        ),
    );

    // Two-tier superpeer network with per-superpeer content indices.
    let two_tier = base_cfg(
        Topology::SuperPeer {
            n_super: N_SUPER,
            super_degree: 4,
        },
        8,
    );
    let (result, policy, _) = Network::new(two_tier, SuperPeerPolicy::new(N_SUPER)).run_full();
    row(
        &result.metrics,
        &format!(
            "two-tier ({} index hits, {} core floods)",
            policy.index_hits(),
            policy.core_floods()
        ),
    );

    println!(
        "\nThe superpeer index resolves most queries in O(core) messages — the \n\
         structural benefit §II describes — while rule routing recovers a large \n\
         share of those savings without imposing any structure on the overlay."
    );
}
