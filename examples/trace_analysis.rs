//! Offline trace analysis — the paper's full §IV methodology end to end:
//! raw capture → GUID cleaning → query/reply join → block partitioning →
//! rule mining → all five maintenance strategies compared.
//!
//! ```text
//! cargo run --release -p arq --example trace_analysis
//! ```

use arq::assoc::mine_pairs;
use arq::core::strategy::Strategy;
use arq::core::{
    evaluate, AdaptiveSlidingWindow, IncrementalStream, LazySlidingWindow, SlidingWindow,
    StaticRuleset,
};
use arq::trace::stats::{pair_stats, raw_stats};
use arq::trace::{SynthConfig, SynthTrace, TraceDb};

fn main() {
    // 1. "Capture" a raw trace: answered + unanswered queries, faulty
    //    GUIDs included (scaled-down 7-day collection).
    let mut cfg = SynthConfig::paper_default(200_000, 7);
    cfg.faulty_guid_prob = 0.002;
    let (queries, replies) = SynthTrace::new(cfg).raw();
    let rs = raw_stats(&queries, &replies);
    println!(
        "raw capture: {} queries, {} replies (answer ratio {:.2}), {} hosts, {} distinct GUIDs",
        rs.queries, rs.replies, rs.answer_ratio, rs.distinct_query_hosts, rs.distinct_guids
    );

    // 2. Import into the trace database, clean, join (§IV-A).
    let mut db = TraceDb::new();
    db.extend(queries, replies);
    let (report, pairs) = db.clean_and_join();
    println!(
        "cleaning: dropped {} duplicate-GUID queries and {} orphan replies; join produced {} pairs",
        report.duplicate_queries,
        report.orphan_replies,
        pairs.len()
    );
    let ps = pair_stats(&pairs);
    println!(
        "pair stream: {} sources, {} reply neighbors, {} distinct (src,via) pairs, top pair {:.1}% of traffic\n",
        ps.distinct_src,
        ps.distinct_via,
        ps.distinct_pairs,
        ps.top_pair_share * 100.0
    );

    // 3. Mine one block and show the strongest rules (§III-B.1).
    let rules = mine_pairs(&pairs[..10_000.min(pairs.len())], 10);
    println!(
        "rules mined from block 0 (support ≥ 10): {} rules over {} antecedents",
        rules.rule_count(),
        rules.antecedent_count()
    );
    let mut rows: Vec<_> = rules.iter().collect();
    rows.sort_by_key(|&(_, _, c)| std::cmp::Reverse(c));
    for (src, via, count) in rows.into_iter().take(8) {
        println!("  {{{src}}} -> {{{via}}}   support {count}");
    }

    // 4. Compare all five maintenance strategies on the same trace (§V).
    println!("\nstrategy comparison (block 10,000, support 10):");
    println!(
        "{:<28} {:>9} {:>9} {:>12}",
        "strategy", "coverage", "success", "regens"
    );
    let mut strategies: Vec<Box<dyn Strategy>> = vec![
        Box::new(StaticRuleset::new(10)),
        Box::new(SlidingWindow::new(10)),
        Box::new(LazySlidingWindow::new(10, 10)),
        Box::new(AdaptiveSlidingWindow::new(10, 10, 0.7)),
        Box::new(IncrementalStream::new(10.0, 20_000.0)),
    ];
    for s in strategies.iter_mut() {
        let run = evaluate(s.as_mut(), &pairs, 10_000);
        println!(
            "{:<28} {:>9.3} {:>9.3} {:>12}",
            run.strategy, run.avg_coverage, run.avg_success, run.regenerations
        );
    }
}
