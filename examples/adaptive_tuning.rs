//! Tuning the Adaptive Sliding Window: threshold history length, initial
//! threshold, and the EWMA alternative — the trade-off between rule-set
//! freshness and regeneration cost (§III-B.6).
//!
//! ```text
//! cargo run --release -p arq --example adaptive_tuning
//! ```

use arq::core::{evaluate, AdaptiveSlidingWindow, SlidingWindow, ThresholdCalc};
use arq::trace::{SynthConfig, SynthTrace};

fn main() {
    let pairs = SynthTrace::new(SynthConfig::paper_default(600_000, 11)).pairs();
    let block = 10_000;

    println!(
        "{:<34} {:>9} {:>9} {:>12}",
        "configuration", "coverage", "success", "blocks/regen"
    );

    // Reference point: Sliding Window regenerates every block.
    let run = evaluate(&mut SlidingWindow::new(10), &pairs, block);
    println!(
        "{:<34} {:>9.3} {:>9.3} {:>12.2}",
        "sliding (reference)", run.avg_coverage, run.avg_success, 1.0
    );

    // History-length sweep with the paper's 0.7 starting threshold.
    for n in [5usize, 10, 25, 50, 100] {
        let mut s = AdaptiveSlidingWindow::new(10, n, 0.7);
        let run = evaluate(&mut s, &pairs, block);
        println!(
            "{:<34} {:>9.3} {:>9.3} {:>12.2}",
            format!("adaptive, mean of last {n}"),
            run.avg_coverage,
            run.avg_success,
            run.blocks_per_regen().unwrap_or(f64::INFINITY)
        );
    }

    // Initial-threshold sweep: a greedy 0.9 start regenerates more, a lax
    // 0.5 start tolerates decay longer.
    for init in [0.5, 0.7, 0.9] {
        let mut s = AdaptiveSlidingWindow::new(10, 10, init);
        let run = evaluate(&mut s, &pairs, block);
        println!(
            "{:<34} {:>9.3} {:>9.3} {:>12.2}",
            format!("adaptive, initial threshold {init}"),
            run.avg_coverage,
            run.avg_success,
            run.blocks_per_regen().unwrap_or(f64::INFINITY)
        );
    }

    // EWMA threshold calculators (ablation beyond the paper).
    for alpha in [0.1, 0.3, 0.6] {
        let mut s = AdaptiveSlidingWindow::with_thresholds(
            10,
            ThresholdCalc::ewma(alpha, 0.7),
            ThresholdCalc::ewma(alpha, 0.7),
        );
        let run = evaluate(&mut s, &pairs, block);
        println!(
            "{:<34} {:>9.3} {:>9.3} {:>12.2}",
            format!("adaptive, EWMA alpha {alpha}"),
            run.avg_coverage,
            run.avg_success,
            run.blocks_per_regen().unwrap_or(f64::INFINITY)
        );
    }
}
