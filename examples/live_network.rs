//! Live-network comparison: association-rule routing against flooding,
//! expanding ring, k-random walks, interest shortcuts, and routing
//! indices on the same churning overlay (the paper's motivating claim).
//!
//! ```text
//! cargo run --release -p arq --example live_network
//! ```

use arq::baselines::{expanding_ring, FloodPolicy, InterestShortcuts, KRandomWalk, RoutingIndices};
use arq::content::CatalogConfig;
use arq::core::{AssocPolicy, AssocPolicyConfig, HybridPolicy};
use arq::gnutella::metrics::RunMetrics;
use arq::gnutella::sim::{Network, SimConfig, Topology};
use arq::overlay::ChurnConfig;
use arq::simkern::time::Duration;

fn cfg() -> SimConfig {
    let mut cfg = SimConfig::default_with(400, 2_000, 2006);
    cfg.topology = Topology::BarabasiAlbert { m: 3 };
    cfg.ttl = 6;
    cfg.catalog = CatalogConfig {
        topics: 20,
        files_per_topic: 200,
        ..Default::default()
    };
    cfg.churn = Some(ChurnConfig {
        mean_session: Duration::from_ticks(2_000_000),
        mean_downtime: Duration::from_ticks(600_000),
        pinned: vec![],
    });
    cfg
}

fn row(m: &RunMetrics, note: &str) {
    let hops = m
        .first_hit_hops
        .as_ref()
        .map_or("  n/a".to_string(), |h| format!("{:5.2}", h.mean));
    println!(
        "{:<16} {:>12.1} {:>9.3} {:>7}  {}",
        m.policy, m.messages_per_query, m.success_rate, hops, note
    );
}

fn main() {
    println!(
        "{:<16} {:>12} {:>9} {:>7}",
        "policy", "msgs/query", "success", "hops"
    );
    row(&Network::new(cfg(), FloodPolicy).run().metrics, "");

    let (flood, ring) = expanding_ring(2, 2, 6, Duration::from_ticks(1_500));
    let mut ring_cfg = cfg();
    ring_cfg.ring = Some(ring);
    let mut m = Network::new(ring_cfg, flood).run().metrics;
    m.policy = "expanding-ring".into();
    row(&m, "");

    let mut walk_cfg = cfg();
    walk_cfg.ttl = 48;
    row(
        &Network::new(walk_cfg, KRandomWalk::new(4)).run().metrics,
        "",
    );

    row(
        &Network::new(cfg(), InterestShortcuts::new(5, 2))
            .run()
            .metrics,
        "",
    );
    row(
        &Network::new(cfg(), RoutingIndices::new(3, 0.5, 2))
            .run()
            .metrics,
        "",
    );

    let (result, policy, _) =
        Network::new(cfg(), AssocPolicy::new(AssocPolicyConfig::default())).run_full();
    row(
        &result.metrics,
        &format!("(rule usage {:.0}%)", policy.rule_usage() * 100.0),
    );

    let (result, policy, _) =
        Network::new(cfg(), HybridPolicy::new(5, 2, AssocPolicyConfig::default())).run_full();
    row(
        &result.metrics,
        &format!(
            "(targeted {:.0}%, {} rule rescues)",
            policy.targeted_fraction() * 100.0,
            policy.rule_decisions()
        ),
    );
}
