//! Quickstart: mine association rules from P2P query traffic and watch
//! the Sliding Window strategy route queries without flooding.
//!
//! ```text
//! cargo run --release -p arq --example quickstart
//! ```

use arq::core::{evaluate, SlidingWindow};
use arq::simkern::chart::{render, ChartOptions};
use arq::trace::{SynthConfig, SynthTrace};

fn main() {
    // A week-in-miniature of collector-node traffic: 40 blocks of
    // 10,000 query-reply pairs from the calibrated generator.
    let cfg = SynthConfig::paper_default(400_000, 42);
    println!("generating {} query-reply pairs …", cfg.pairs);
    let pairs = SynthTrace::new(cfg).pairs();

    // The paper's workhorse: re-mine the rule set from the previous
    // block before testing each new block (support threshold 10).
    let mut strategy = SlidingWindow::new(10);
    let run = evaluate(&mut strategy, &pairs, 10_000);

    println!(
        "\n{} over {} trials:\n  average coverage α = {:.3}\n  average success  ρ = {:.3}\n",
        run.strategy, run.trials, run.avg_coverage, run.avg_success
    );
    println!(
        "{}",
        render(
            "Sliding Window: coverage (*) and success (+) per trial",
            &[&run.coverage, &run.success],
            &ChartOptions {
                y_range: Some((0.0, 1.0)),
                x_label: "trial".into(),
                y_label: "measure".into(),
                ..Default::default()
            },
        )
    );
    println!(
        "With coverage ~{:.0}% and success ~{:.0}%, roughly {:.0}% of answered queries\n\
         would have been routed to the right neighbor by a single rule lookup\n\
         instead of being flooded to every neighbor.",
        run.avg_coverage * 100.0,
        run.avg_success * 100.0,
        run.avg_coverage * run.avg_success * 100.0
    );
}
