//! Integration coverage for the §VI / §II extension features on the
//! calibrated trace and live simulator: topic-dimension rules, the two
//! streaming maintainers, the hybrid pipeline, time-windowed evaluation,
//! and the superpeer network.

use arq::baselines::SuperPeerPolicy;
use arq::content::CatalogConfig;
use arq::core::{
    evaluate, evaluate_timed, AssocPolicyConfig, HybridPolicy, IncrementalStream, LossyStream,
    SlidingWindow, TopicSlidingWindow,
};
use arq::gnutella::sim::{Network, SimConfig, Topology};
use arq::gnutella::FloodPolicy;
use arq::simkern::time::Duration;
use arq::trace::{SynthConfig, SynthTrace};

const BLOCK: usize = 10_000;

fn trace(blocks: usize, seed: u64) -> Vec<arq::trace::PairRecord> {
    SynthTrace::new(SynthConfig::paper_default(blocks * BLOCK, seed)).pairs()
}

#[test]
fn topic_rules_trade_coverage_for_specificity() {
    let pairs = trace(25, 5);
    let host = evaluate(&mut SlidingWindow::new(30), &pairs, BLOCK);
    let topic = evaluate(&mut TopicSlidingWindow::new(30), &pairs, BLOCK);
    // At a high threshold, splitting support across topics prunes more
    // antecedents (lower coverage) but the surviving rules are
    // route-exact (higher success).
    assert!(
        topic.avg_coverage < host.avg_coverage - 0.03,
        "topic {} vs host {} coverage",
        topic.avg_coverage,
        host.avg_coverage
    );
    assert!(
        topic.avg_success > host.avg_success + 0.03,
        "topic {} vs host {} success",
        topic.avg_success,
        host.avg_success
    );
}

#[test]
fn both_streaming_maintainers_beat_the_paper_bar() {
    let pairs = trace(25, 6);
    let decay = evaluate(
        &mut IncrementalStream::new(10.0, 2.0 * BLOCK as f64),
        &pairs,
        BLOCK,
    );
    let lossy = evaluate(
        &mut LossyStream::new(10, 1.0 / (2.0 * BLOCK as f64)),
        &pairs,
        BLOCK,
    );
    for run in [&decay, &lossy] {
        assert!(
            run.avg_coverage > 0.90,
            "{}: coverage {}",
            run.strategy,
            run.avg_coverage
        );
        assert!(
            run.avg_success > 0.85,
            "{}: success {}",
            run.strategy,
            run.avg_success
        );
    }
}

#[test]
fn time_windowed_evaluation_tracks_count_blocks_on_this_trace() {
    // The synthetic trace has near-Poisson arrivals, so a window holding
    // ~one block of pairs should score close to the count-based run.
    let cfg = SynthConfig::paper_default(12 * BLOCK, 7);
    let mean_interarrival = cfg.mean_interarrival;
    let pairs = SynthTrace::new(cfg).pairs();
    let by_count = evaluate(&mut SlidingWindow::new(10), &pairs, BLOCK);
    let by_time = evaluate_timed(
        &mut SlidingWindow::new(10),
        &pairs,
        Duration::from_ticks(mean_interarrival * BLOCK as u64),
    );
    assert!(
        (by_count.avg_coverage - by_time.avg_coverage).abs() < 0.1,
        "coverage {} vs {}",
        by_count.avg_coverage,
        by_time.avg_coverage
    );
    assert!(
        (by_count.avg_success - by_time.avg_success).abs() < 0.1,
        "success {} vs {}",
        by_count.avg_success,
        by_time.avg_success
    );
}

#[test]
fn hybrid_beats_flooding_without_collapsing_success() {
    let mut cfg = SimConfig::default_with(250, 2_000, 9);
    cfg.ttl = 6;
    cfg.catalog = CatalogConfig {
        topics: 12,
        files_per_topic: 120,
        ..Default::default()
    };
    let flood = Network::new(cfg.clone(), FloodPolicy).run().metrics;
    let (result, policy, _) =
        Network::new(cfg, HybridPolicy::new(5, 2, AssocPolicyConfig::default())).run_full();
    let hybrid = result.metrics;
    assert!(
        hybrid.messages_per_query < flood.messages_per_query * 0.5,
        "hybrid {} vs flood {}",
        hybrid.messages_per_query,
        flood.messages_per_query
    );
    assert!(hybrid.bytes_per_query < flood.bytes_per_query * 0.5);
    assert!(hybrid.success_rate > flood.success_rate - 0.35);
    assert!(policy.targeted_fraction() > 0.2);
    assert!(policy.shortcut_decisions() > 0);
    assert!(
        policy.rule_decisions() > 0,
        "rules never rescued a shortcut miss"
    );
}

#[test]
fn superpeer_network_finds_content_with_a_fraction_of_the_traffic() {
    let n_super = 12;
    let mut sp_cfg = SimConfig::default_with(240, 1_500, 11);
    sp_cfg.topology = Topology::SuperPeer {
        n_super,
        super_degree: 4,
    };
    sp_cfg.ttl = 8;
    sp_cfg.catalog = CatalogConfig {
        topics: 12,
        files_per_topic: 120,
        ..Default::default()
    };
    let mut flat_cfg = sp_cfg.clone();
    flat_cfg.topology = Topology::BarabasiAlbert { m: 3 };
    flat_cfg.ttl = 6;

    let flat = Network::new(flat_cfg, FloodPolicy).run().metrics;
    let (result, policy, _) = Network::new(sp_cfg, SuperPeerPolicy::new(n_super)).run_full();
    let sp = result.metrics;
    assert!(
        sp.messages_per_query < flat.messages_per_query * 0.2,
        "superpeer {} vs flat {}",
        sp.messages_per_query,
        flat.messages_per_query
    );
    assert!(
        sp.success_rate > flat.success_rate - 0.05,
        "superpeer success {} vs flat {}",
        sp.success_rate,
        flat.success_rate
    );
    assert!(policy.index_hits() > 0);
}
