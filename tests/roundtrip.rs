//! Serialization round-trips: CSV trace files, JSON evaluation runs, and
//! TraceDb cleaning idempotence on generator output.

use arq::core::{evaluate, SlidingWindow};
use arq::simkern::{Json, ToJson};
use arq::trace::csvio;
use arq::trace::{SynthConfig, SynthTrace, TraceDb};

fn small_synth(seed: u64) -> SynthConfig {
    let mut cfg = SynthConfig::paper_default(5_000, seed);
    cfg.faulty_guid_prob = 0.01;
    cfg
}

#[test]
fn pairs_csv_roundtrip_on_generator_output() {
    let pairs = SynthTrace::new(small_synth(1)).pairs();
    let mut buf = Vec::new();
    csvio::write_pairs(&mut buf, &pairs).unwrap();
    let back = csvio::read_pairs(&buf[..]).unwrap();
    assert_eq!(pairs, back);
}

#[test]
fn raw_csv_roundtrip_and_clean_equivalence() {
    let (queries, replies) = SynthTrace::new(small_synth(2)).raw();
    let mut buf = Vec::new();
    csvio::write_raw(&mut buf, &queries, &replies).unwrap();
    let (q2, r2) = csvio::read_raw(&buf[..]).unwrap();
    assert_eq!(queries, q2);
    assert_eq!(replies, r2);

    // Cleaning the original and the round-tripped copy gives identical
    // pair streams.
    let mut db1 = TraceDb::new();
    db1.extend(queries, replies);
    let (_, p1) = db1.clean_and_join();
    let mut db2 = TraceDb::new();
    db2.extend(q2, r2);
    let (_, p2) = db2.clean_and_join();
    assert_eq!(p1, p2);
}

#[test]
fn cleaning_is_idempotent_on_generator_output() {
    let (queries, replies) = SynthTrace::new(small_synth(3)).raw();
    let mut db = TraceDb::new();
    db.extend(queries, replies);
    let first = db.clean();
    assert!(first.duplicate_queries > 0);
    let second = db.clean();
    assert_eq!(second.duplicate_queries, 0);
    assert_eq!(second.orphan_replies, 0);
}

#[test]
fn eval_run_json_roundtrip() {
    let pairs = SynthTrace::new(SynthConfig::paper_default(30_000, 4)).pairs();
    let run = evaluate(&mut SlidingWindow::new(10), &pairs, 10_000);
    let text = run.to_json().to_string();
    let back = arq::simkern::json::parse(&text).unwrap();
    assert_eq!(
        back.get("strategy").and_then(Json::as_str),
        Some(run.strategy.as_str())
    );
    assert_eq!(
        back.get("trials").and_then(Json::as_f64),
        Some(run.trials as f64)
    );
    let success: Vec<f64> = back
        .get("success")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|v| v.as_f64().unwrap())
        .collect();
    assert_eq!(success, run.success.ys());
    assert_eq!(
        back.get("avg_success").and_then(Json::as_f64),
        Some(run.avg_success)
    );
    // Serializing the parsed value reproduces the exact bytes — the
    // determinism guarantee the executor states over artifact JSON.
    assert_eq!(back.to_string(), text);
}
