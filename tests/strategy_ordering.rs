//! Reproduction tolerance bands: on the calibrated synthetic trace the
//! five strategies must land in the paper's quality ordering
//! (static ≪ lazy < adaptive ≤ sliding < incremental) with coverage and
//! success in the right neighborhoods. This is the headline reproduction
//! assertion, run at reduced scale (60 trials instead of 365).

use arq::core::strategy::Strategy;
use arq::core::{
    evaluate, AdaptiveSlidingWindow, EvalRun, IncrementalStream, LazySlidingWindow, SlidingWindow,
    StaticRuleset,
};
use arq::trace::{SynthConfig, SynthTrace};

const BLOCK: usize = 10_000;
const BLOCKS: usize = 61;

fn run(strategy: &mut dyn Strategy, pairs: &[arq::trace::PairRecord]) -> EvalRun {
    evaluate(strategy, pairs, BLOCK)
}

#[test]
fn paper_quality_ordering_holds() {
    let pairs = SynthTrace::new(SynthConfig::paper_default(BLOCKS * BLOCK, 99)).pairs();
    let sliding = run(&mut SlidingWindow::new(10), &pairs);
    let lazy = run(&mut LazySlidingWindow::new(10, 10), &pairs);
    let adaptive = run(&mut AdaptiveSlidingWindow::new(10, 10, 0.7), &pairs);
    let incremental = run(
        &mut IncrementalStream::new(10.0, 2.0 * BLOCK as f64),
        &pairs,
    );

    // Figure 1: sliding window strong on both measures.
    assert!(
        sliding.avg_coverage > 0.80,
        "sliding coverage {}",
        sliding.avg_coverage
    );
    assert!(
        sliding.avg_success > 0.72,
        "sliding success {}",
        sliding.avg_success
    );

    // Figure 3: lazy lands mid-pack (paper: 0.59 both).
    assert!(
        (0.45..0.72).contains(&lazy.avg_coverage),
        "lazy coverage {}",
        lazy.avg_coverage
    );
    assert!(
        (0.45..0.72).contains(&lazy.avg_success),
        "lazy success {}",
        lazy.avg_success
    );

    // Figure 4: adaptive close to sliding at a fraction of the
    // regenerations (paper: every ~1.7 blocks).
    assert!(adaptive.avg_coverage > lazy.avg_coverage);
    assert!(adaptive.avg_success > lazy.avg_success);
    assert!(adaptive.avg_coverage <= sliding.avg_coverage + 0.02);
    let bpr = adaptive
        .blocks_per_regen()
        .expect("adaptive must regenerate");
    assert!(
        (1.3..2.6).contains(&bpr),
        "blocks per regeneration {bpr} (paper 1.7–1.9)"
    );
    assert!(adaptive.regenerations < sliding.regenerations);

    // §VI: the streaming maintainer clears 0.90 on both measures.
    assert!(
        incremental.avg_coverage > 0.90,
        "incremental coverage {}",
        incremental.avg_coverage
    );
    assert!(
        incremental.avg_success > 0.85,
        "incremental success {}",
        incremental.avg_success
    );
    assert!(incremental.avg_success > sliding.avg_success);
}

#[test]
fn static_ruleset_decays_after_upheaval() {
    let pairs = SynthTrace::new(SynthConfig::paper_static(BLOCKS * BLOCK, 99)).pairs();
    let run = run(&mut StaticRuleset::new(10), &pairs);
    // Early trials are strong…
    assert!(
        run.coverage.ys()[0] > 0.75,
        "first trial coverage {}",
        run.coverage.ys()[0]
    );
    assert!(
        run.success.ys()[0] > 0.7,
        "first trial success {}",
        run.success.ys()[0]
    );
    // …then success collapses permanently around the upheaval (paper:
    // "once the success had dropped to almost 0 around the 16th trial, it
    // never rose again").
    let drop = run
        .success
        .final_drop_below(0.05)
        .expect("success never collapsed");
    assert!(
        (10..22).contains(&drop),
        "success collapsed at trial {drop}"
    );
    // Coverage outlives success (paper: "remained around 0.4 for several
    // more trials").
    let tail_cov = run.coverage.tail_mean(20);
    let tail_succ = run.success.tail_mean(20);
    assert!(tail_cov > 0.15, "late coverage {tail_cov}");
    assert!(tail_succ < 0.05, "late success {tail_succ}");
    assert!(run.avg_success < 0.35, "avg success {}", run.avg_success);
}

#[test]
fn block_size_sweep_keeps_coverage_similar() {
    // Figure 2: coverage is nearly unchanged across block sizes.
    let pairs = SynthTrace::new(SynthConfig::paper_default(BLOCKS * BLOCK, 7)).pairs();
    let mut coverages = Vec::new();
    for bs in [5_000usize, 10_000, 20_000] {
        let run = evaluate(&mut SlidingWindow::new(10), &pairs, bs);
        coverages.push(run.avg_coverage);
    }
    let max = coverages.iter().cloned().fold(f64::MIN, f64::max);
    let min = coverages.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max - min < 0.15, "coverage spread too wide: {coverages:?}");
    assert!(min > 0.7, "coverage too low somewhere: {coverages:?}");
}

#[test]
fn support_threshold_sweep_keeps_coverage_similar() {
    let pairs = SynthTrace::new(SynthConfig::paper_default(31 * BLOCK, 13)).pairs();
    let mut coverages = Vec::new();
    for t in [2u64, 10, 30] {
        let run = evaluate(&mut SlidingWindow::new(t), &pairs, BLOCK);
        coverages.push(run.avg_coverage);
    }
    let max = coverages.iter().cloned().fold(f64::MIN, f64::max);
    let min = coverages.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max - min < 0.2, "coverage spread too wide: {coverages:?}");
}
