//! Crash-safety of `arq serve`, exercised at the process level: a run
//! killed with SIGKILL mid-stream and restarted from its checkpoint
//! must reach exactly the ruleset digest of an uninterrupted run.
//!
//! This is the binary-level twin of the in-process restart test in
//! `arq::serve` — it additionally covers process startup, the signal
//! handlers, and the on-disk checkpoint surviving a hard kill.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

fn arq_bin() -> &'static str {
    env!("CARGO_BIN_EXE_arq")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("arq-serve-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(args: &[&str]) -> String {
    let out = Command::new(arq_bin()).args(args).output().unwrap();
    assert!(
        out.status.success(),
        "arq {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn digest_of(summary: &Path) -> String {
    let text = std::fs::read_to_string(summary).unwrap();
    let doc = arq_simkern::json::parse(&text).unwrap();
    doc.get("ruleset_digest")
        .and_then(arq_simkern::Json::as_str)
        .expect("summary has ruleset_digest")
        .to_string()
}

#[test]
fn sigkill_and_restart_reach_the_uninterrupted_digest() {
    let dir = temp_dir("kill");
    let stream = dir.join("events.bin");
    let ckpt = dir.join("serve.ckpt");
    let ref_out = dir.join("reference.json");
    let restart_out = dir.join("restart.json");
    let stream_s = stream.to_str().unwrap();
    let ckpt_s = ckpt.to_str().unwrap();

    run_ok(&[
        "gen-events",
        "--pairs",
        "60000",
        "--seed",
        "11",
        "--route-every",
        "5000",
        "--out",
        stream_s,
    ]);

    let maintainer = "incremental(t=4,hl=8000)";
    // Uninterrupted reference run (no spin, fast).
    run_ok(&[
        "serve",
        "--input",
        stream_s,
        "--maintainer",
        maintainer,
        "--block",
        "5000",
        "--out",
        ref_out.to_str().unwrap(),
    ]);
    let reference = digest_of(&ref_out);

    // Victim run: slowed down so the kill lands mid-stream, with
    // frequent checkpoints.
    let mut victim = Command::new(arq_bin())
        .args([
            "serve",
            "--input",
            stream_s,
            "--maintainer",
            maintainer,
            "--block",
            "5000",
            "--checkpoint",
            ckpt_s,
            "--checkpoint-every",
            "1000",
            "--spin",
            "20000",
        ])
        .stdout(std::process::Stdio::null())
        .spawn()
        .unwrap();
    // Give it time to write at least one checkpoint, then SIGKILL —
    // no drain, no final checkpoint, exactly a crash.
    let deadline = Instant::now() + Duration::from_secs(30);
    while !ckpt.exists() {
        assert!(Instant::now() < deadline, "victim never wrote a checkpoint");
        assert!(
            victim.try_wait().unwrap().is_none(),
            "victim finished before it could be killed; raise --spin"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    std::thread::sleep(Duration::from_millis(200));
    victim.kill().unwrap();
    victim.wait().unwrap();
    assert!(ckpt.exists(), "checkpoint must survive the kill");

    // Restart from the checkpoint over the full stream: the replay
    // cursor skips what was already absorbed, and the final digest is
    // byte-equal to the uninterrupted run's.
    let report = run_ok(&[
        "serve",
        "--input",
        stream_s,
        "--maintainer",
        maintainer,
        "--block",
        "5000",
        "--checkpoint",
        ckpt_s,
        "--checkpoint-every",
        "1000",
        "--out",
        restart_out.to_str().unwrap(),
    ]);
    assert_eq!(digest_of(&restart_out), reference, "report:\n{report}");

    let restarted = std::fs::read_to_string(&restart_out).unwrap();
    let doc = arq_simkern::json::parse(&restarted).unwrap();
    let skipped = doc
        .get("skipped")
        .and_then(arq_simkern::Json::as_f64)
        .unwrap();
    let pairs = doc
        .get("pairs")
        .and_then(arq_simkern::Json::as_f64)
        .unwrap();
    assert!(skipped > 0.0, "restart should resume, not replay from zero");
    assert_eq!(skipped + pairs, 60_000.0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigterm_drains_and_writes_the_summary() {
    let dir = temp_dir("term");
    let stream = dir.join("events.bin");
    let out = dir.join("summary.json");
    run_ok(&[
        "gen-events",
        "--pairs",
        "30000",
        "--seed",
        "3",
        "--out",
        stream.to_str().unwrap(),
    ]);
    let mut victim = Command::new(arq_bin())
        .args([
            "serve",
            "--input",
            stream.to_str().unwrap(),
            "--block",
            "5000",
            "--spin",
            "20000",
            "--out",
            out.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::null())
        .spawn()
        .unwrap();
    std::thread::sleep(Duration::from_millis(300));
    // SIGTERM, not SIGKILL: the service must drain and exit 0.
    let term = Command::new("kill")
        .args(["-TERM", &victim.id().to_string()])
        .status()
        .unwrap();
    assert!(term.success());
    let status = victim.wait().unwrap();
    assert!(status.success(), "SIGTERM must drain cleanly, got {status}");
    let text = std::fs::read_to_string(&out).expect("summary written on SIGTERM");
    let doc = arq_simkern::json::parse(&text).unwrap();
    assert_eq!(
        doc.get("drained").and_then(|j| match j {
            arq_simkern::Json::Bool(b) => Some(*b),
            _ => None,
        }),
        Some(false),
        "a mid-stream SIGTERM is an early (but clean) stop"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
