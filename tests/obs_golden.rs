//! Golden-trace harness for the observability layer.
//!
//! The event stream is part of the determinism contract (DESIGN.md §8):
//! instrumentation reads only simulated coordinates, so the full JSONL
//! trace of a fixed spec set must be byte-identical across thread counts
//! *and* across commits. The snapshot in `tests/golden/obs_trace.jsonl`
//! pins the latter; after an intentional instrumentation change,
//! regenerate it with
//!
//! ```text
//! ARQ_UPDATE_GOLDEN=1 cargo test -p arq --test obs_golden
//! ```

use arq::core::engine::{self, execute_with_threads, run_one, RunSpec, TraceSource};
use arq::core::RunArtifact;
use arq::gnutella::sim::SimConfig;
use arq::obs::Obs;
use arq::simkern::{Json, Rng64, ToJson};
use arq::trace::{SynthConfig, SynthTrace};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/obs_trace.jsonl")
}

/// The fixed spec set the snapshot covers: one trace evaluation that
/// re-mines (block boundaries, rule tallies, re-mine events) and one
/// faulted, retrying live simulation (forwards, fault drops, retries,
/// expiries).
fn golden_specs() -> Vec<RunSpec> {
    let eval = RunSpec::TraceEval {
        trace: TraceSource::PaperDefault {
            pairs: 6_000,
            seed: 42,
        },
        strategy: "adaptive(s=10)".into(),
        block_size: 1_000,
        obs: Some("obs".into()),
    };
    let mut cfg = SimConfig::default_with(50, 25, 11);
    cfg.catalog.topics = 5;
    cfg.catalog.files_per_topic = 40;
    cfg.faults = Some(engine::make_fault_plan("faults(loss=0.1)").expect("valid plan"));
    cfg.retry =
        Some(engine::make_retry_policy("retry(attempts=2,maxttl=24)").expect("valid policy"));
    let live = RunSpec::LiveSim {
        cfg,
        policy: "k-walk(k=2,ttl=24)".into(),
        graph: None,
        obs: Some("obs".into()),
    };
    vec![eval, live]
}

/// Renders artifacts' event logs the way `arq run --trace-events` does:
/// one compact object per event, prefixed with its run index.
fn events_jsonl(artifacts: &[RunArtifact]) -> String {
    let mut out = String::new();
    for a in artifacts {
        let report = a.obs.as_ref().expect("golden specs are instrumented");
        for ev in &report.events {
            let Json::Obj(mut fields) = ev.to_json() else {
                panic!("events serialize as objects");
            };
            fields.insert(0, ("run".to_string(), Json::from(a.index)));
            out.push_str(&Json::Obj(fields).to_string());
            out.push('\n');
        }
    }
    out
}

#[test]
fn golden_trace_matches_snapshot() {
    let artifacts = execute_with_threads(&golden_specs(), 2).expect("specs are valid");
    let jsonl = events_jsonl(&artifacts);
    assert!(jsonl.lines().count() > 50, "suspiciously small trace");
    let path = golden_path();
    if std::env::var("ARQ_UPDATE_GOLDEN").is_ok_and(|v| !v.is_empty() && v != "0") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &jsonl).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing snapshot {}: {e}", path.display()));
    if golden != jsonl {
        let diff = golden
            .lines()
            .zip(jsonl.lines())
            .position(|(g, a)| g != a)
            .map_or_else(
                || {
                    format!(
                        "line counts differ: {} golden vs {} actual",
                        golden.lines().count(),
                        jsonl.lines().count()
                    )
                },
                |i| {
                    format!(
                        "first difference at line {}:\n  golden: {}\n  actual: {}",
                        i + 1,
                        golden.lines().nth(i).unwrap_or(""),
                        jsonl.lines().nth(i).unwrap_or("")
                    )
                },
            );
        panic!(
            "event trace diverged from snapshot ({diff})\n\
             If the change is intentional, regenerate with \
             `ARQ_UPDATE_GOLDEN=1 cargo test -p arq --test obs_golden`"
        );
    }
}

#[test]
fn event_stream_is_thread_count_invariant() {
    let specs = golden_specs();
    let one = execute_with_threads(&specs, 1).unwrap();
    let many = execute_with_threads(&specs, 4).unwrap();
    assert_eq!(events_jsonl(&one), events_jsonl(&many));
    for (a, b) in one.iter().zip(&many) {
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
    }
}

/// The zero-config identity: a spec without an obs layer produces
/// measurements byte-identical to an instrumented one, and its artifact
/// JSON carries no `obs` key at all.
#[test]
fn zero_config_obs_is_byte_identical() {
    // The CI obs job exports ARQ_OBS=1; this test is specifically about
    // the un-instrumented path, so clear the ambient attachment.
    std::env::remove_var("ARQ_OBS");
    let bare = RunSpec::TraceEval {
        trace: TraceSource::PaperDefault {
            pairs: 8_000,
            seed: 7,
        },
        strategy: "sliding(s=10)".into(),
        block_size: 1_000,
        obs: None,
    };
    let mut instrumented = bare.clone();
    if let RunSpec::TraceEval { obs, .. } = &mut instrumented {
        *obs = Some("obs".into());
    }
    let a = run_one(0, &bare).unwrap();
    let b = run_one(0, &instrumented).unwrap();
    // The measurements agree exactly; only provenance (the |obs= tag in
    // the spec description) and the obs attachment differ.
    let run_json = |artifact: &RunArtifact| {
        artifact
            .to_json()
            .get("run")
            .expect("artifact has a run section")
            .to_string()
    };
    assert_eq!(run_json(&a), run_json(&b));
    assert_eq!(a.seed, b.seed);
    assert!(a.obs.is_none());
    assert!(b.obs.is_some());
    assert!(!a.to_json().to_string().contains("\"obs\""));
}

/// Property test: the instrumented per-block α/ρ series agree *exactly*
/// with `core::eval`'s Eq. 1 (coverage) and Eq. 2 (success) measurements
/// on random synthetic blocks — same divisions, same zero-denominator
/// guards, no drift. The two computations are independent by design
/// (`BlockSeries::push` re-derives the ratios from raw tallies).
#[test]
fn series_matches_eval_measures_on_random_traces() {
    let mut rng = Rng64::seed_from(0xb50b5);
    for round in 0..10 {
        let seed = rng.next_u64();
        let block_size = 500 + rng.below(1_500) as usize;
        let blocks = 3 + rng.below(6) as usize;
        let pairs = SynthTrace::new(SynthConfig::paper_default(blocks * block_size, seed)).pairs();
        let mut strategy = engine::make_strategy("sliding(s=5)").unwrap();
        let mut obs = Obs::enabled(engine::make_obs_plan("obs").unwrap());
        let run = arq::core::evaluate_with_obs(strategy.as_mut(), &pairs, block_size, &mut obs);
        let report = obs.report().expect("enabled obs yields a report");
        let series = &report.series;
        assert_eq!(series.len(), run.trials, "round {round}");
        assert_eq!(
            series.alpha(),
            run.coverage.ys(),
            "round {round}: α != Eq. 1"
        );
        assert_eq!(series.rho(), run.success.ys(), "round {round}: ρ != Eq. 2");
        assert!(
            series.traffic().iter().all(|&t| t == block_size as u64),
            "round {round}: complete blocks must carry block_size traffic"
        );
        // Registry tallies stay consistent with the series: hits + misses
        // counts unique responded queries, which cannot exceed the pairs
        // the blocks carried.
        let hits = report.registry.counter_value("rule_hits").unwrap();
        let misses = report.registry.counter_value("rule_misses").unwrap();
        let traffic: u64 = series.traffic().iter().sum();
        assert!(
            hits + misses <= traffic,
            "round {round}: more queries than pairs"
        );
        assert!(
            hits + misses > 0,
            "round {round}: synthetic blocks must respond"
        );
        assert_eq!(
            report.registry.counter_value("blocks"),
            Some(run.trials as u64),
            "round {round}"
        );
    }
}
