//! Whole-system determinism: identical seeds must reproduce identical
//! traces, evaluations, and simulations; different seeds must not.

use arq::core::{evaluate, AdaptiveSlidingWindow, SlidingWindow};
use arq::gnutella::sim::{Network, SimConfig};
use arq::gnutella::FloodPolicy;
use arq::trace::{SynthConfig, SynthTrace};

#[test]
fn synthetic_traces_are_reproducible() {
    let a = SynthTrace::new(SynthConfig::paper_default(50_000, 12345)).pairs();
    let b = SynthTrace::new(SynthConfig::paper_default(50_000, 12345)).pairs();
    assert_eq!(a, b);
    let c = SynthTrace::new(SynthConfig::paper_default(50_000, 54321)).pairs();
    assert_ne!(a, c);
}

#[test]
fn raw_traces_are_reproducible() {
    let (q1, r1) = SynthTrace::new(SynthConfig::paper_default(5_000, 9)).raw();
    let (q2, r2) = SynthTrace::new(SynthConfig::paper_default(5_000, 9)).raw();
    assert_eq!(q1, q2);
    assert_eq!(r1, r2);
}

#[test]
fn evaluations_are_reproducible() {
    let pairs = SynthTrace::new(SynthConfig::paper_default(60_000, 3)).pairs();
    let a = evaluate(&mut SlidingWindow::new(10), &pairs, 10_000);
    let b = evaluate(&mut SlidingWindow::new(10), &pairs, 10_000);
    assert_eq!(a.coverage.ys(), b.coverage.ys());
    assert_eq!(a.success.ys(), b.success.ys());
    let c = evaluate(&mut AdaptiveSlidingWindow::new(10, 10, 0.7), &pairs, 10_000);
    let d = evaluate(&mut AdaptiveSlidingWindow::new(10, 10, 0.7), &pairs, 10_000);
    assert_eq!(c.regenerations, d.regenerations);
    assert_eq!(c.coverage.ys(), d.coverage.ys());
}

#[test]
fn simulations_are_reproducible() {
    let cfg = SimConfig::default_with(80, 500, 77);
    let a = Network::new(cfg.clone(), FloodPolicy).run();
    let b = Network::new(cfg.clone(), FloodPolicy).run();
    assert_eq!(a.metrics.query_messages, b.metrics.query_messages);
    assert_eq!(a.metrics.hit_messages, b.metrics.hit_messages);
    assert_eq!(a.metrics.answered, b.metrics.answered);
    assert_eq!(a.end_time, b.end_time);

    let mut other = cfg;
    other.seed = 78;
    let c = Network::new(other, FloodPolicy).run();
    assert_ne!(a.metrics.query_messages, c.metrics.query_messages);
}

#[test]
fn collector_traces_are_reproducible() {
    let mut cfg = SimConfig::default_with(80, 800, 13);
    cfg.collector = Some(arq::overlay::NodeId(0));
    let mut ta = Network::new(cfg.clone(), FloodPolicy).run().trace.unwrap();
    let mut tb = Network::new(cfg, FloodPolicy).run().trace.unwrap();
    let (ra, pa) = ta.clean_and_join();
    let (rb, pb) = tb.clean_and_join();
    assert_eq!(ra, rb);
    assert_eq!(pa, pb);
}
