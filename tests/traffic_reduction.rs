//! The motivating claim (§I): association-rule routing must cut traffic
//! substantially below flooding at comparable search success, and the
//! baselines must behave according to their known trade-offs.

use arq::baselines::KRandomWalk;
use arq::content::CatalogConfig;
use arq::core::{AssocPolicy, AssocPolicyConfig};
use arq::gnutella::sim::{Network, SimConfig};
use arq::gnutella::FloodPolicy;

fn cfg(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::default_with(250, 2_500, seed);
    cfg.ttl = 6;
    cfg.catalog = CatalogConfig {
        topics: 12,
        files_per_topic: 120,
        ..Default::default()
    };
    cfg
}

#[test]
fn assoc_routing_beats_flooding_on_traffic() {
    let flood = Network::new(cfg(5), FloodPolicy).run().metrics;
    let (assoc_result, policy, _) =
        Network::new(cfg(5), AssocPolicy::new(AssocPolicyConfig::default())).run_full();
    let assoc = assoc_result.metrics;

    assert!(
        assoc.messages_per_query < flood.messages_per_query * 0.6,
        "assoc {} vs flood {} messages/query",
        assoc.messages_per_query,
        flood.messages_per_query
    );
    assert!(
        assoc.success_rate > flood.success_rate - 0.15,
        "assoc success {} collapsed vs flood {}",
        assoc.success_rate,
        flood.success_rate
    );
    assert!(
        policy.rule_usage() > 0.3,
        "rules barely used: {}",
        policy.rule_usage()
    );
}

#[test]
fn k_walk_trades_traffic_for_success() {
    let flood = Network::new(cfg(6), FloodPolicy).run().metrics;
    let mut walk_cfg = cfg(6);
    walk_cfg.ttl = 48;
    let walk = Network::new(walk_cfg, KRandomWalk::new(4)).run().metrics;
    assert!(
        walk.messages_per_query < flood.messages_per_query,
        "walks should send fewer messages than floods"
    );
    assert!(
        walk.success_rate < flood.success_rate,
        "4 walkers cannot out-search a full flood"
    );
}

#[test]
fn rule_routing_improves_as_rules_accumulate() {
    // Quarter-by-quarter message cost must trend down as nodes learn.
    let mut c = cfg(7);
    c.queries = 4_000;
    let (result, policy, _) =
        Network::new(c, AssocPolicy::new(AssocPolicyConfig::default())).run_full();
    assert!(result.metrics.queries == 4_000);
    assert!(
        policy.rule_forwards() > 0,
        "no rule-based forwarding happened"
    );
    // The flood fallback share must be well below 100% by the end.
    assert!(
        policy.rule_usage() > 0.25,
        "rule usage stayed at {}",
        policy.rule_usage()
    );
}
