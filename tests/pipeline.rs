//! End-to-end pipeline: live overlay simulation with a collector node →
//! raw trace → GUID cleaning → query/reply join → rule mining →
//! strategy evaluation. This is the paper's whole methodology in one
//! test.

use arq::assoc::{mine_pairs, ruleset_test};
use arq::content::CatalogConfig;
use arq::core::{evaluate, SlidingWindow};
use arq::gnutella::sim::{Network, SimConfig};
use arq::gnutella::FloodPolicy;
use arq::overlay::NodeId;
use arq::trace::stats::pair_stats;

fn collecting_cfg(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::default_with(120, 4_000, seed);
    cfg.collector = Some(NodeId(0)); // BA seed-clique member: high degree
    cfg.catalog = CatalogConfig {
        topics: 8,
        files_per_topic: 60,
        ..Default::default()
    };
    cfg.workload.files_per_node = 40;
    cfg.faulty_fraction = 0.05;
    cfg
}

#[test]
fn simulate_collect_clean_join_mine_evaluate() {
    let result = Network::new(collecting_cfg(1), FloodPolicy).run();
    assert!(
        result.metrics.success_rate > 0.9,
        "flooding should find content"
    );

    // The collector recorded real traffic.
    let mut db = result.trace.expect("collector attached");
    assert!(
        db.query_count() > 3_000,
        "only {} queries seen",
        db.query_count()
    );
    assert!(
        db.reply_count() > 200,
        "only {} replies seen",
        db.reply_count()
    );

    // Clean + join, as §IV-A requires.
    let (report, pairs) = db.clean_and_join();
    assert!(
        report.duplicate_queries > 0,
        "faulty clients should have produced duplicate GUIDs"
    );
    assert!(
        pairs.len() > 200,
        "join produced only {} pairs",
        pairs.len()
    );

    // Pair stream has the locality the rules need.
    let stats = pair_stats(&pairs);
    assert!(
        stats.distinct_src < 40,
        "sources should be the collector's neighbors"
    );
    // Locality indicator: the busiest (src, via) pair carries far more
    // than the uniform share (1 / distinct_pairs).
    let uniform = 1.0 / stats.distinct_pairs as f64;
    assert!(
        stats.top_pair_share > 4.0 * uniform,
        "no locality: top share {} vs uniform {uniform}",
        stats.top_pair_share
    );

    // Rules mined from the first half must route the second half better
    // than chance.
    let mid = pairs.len() / 2;
    let rules = mine_pairs(&pairs[..mid], 3);
    assert!(!rules.is_empty(), "no rules survived support pruning");
    let m = ruleset_test(&rules, &pairs[mid..]);
    assert!(m.coverage() > 0.5, "coverage {}", m.coverage());
    assert!(m.success() > 0.3, "success {}", m.success());

    // And the full evaluator runs over it.
    let block = (pairs.len() / 6).max(1);
    let run = evaluate(&mut SlidingWindow::new(2), &pairs, block);
    assert!(run.trials >= 4);
    assert!(run.avg_coverage > 0.4, "avg coverage {}", run.avg_coverage);
}

#[test]
fn collector_trace_records_only_neighbor_traffic() {
    let result = Network::new(collecting_cfg(2), FloodPolicy).run();
    let mut db = result.trace.unwrap();
    let (_, pairs) = db.clean_and_join();
    for p in &pairs {
        assert_ne!(p.src.0, 0, "collector cannot be its own query source");
        assert_ne!(p.via.0, 0, "collector cannot be its own reply relay");
    }
}
