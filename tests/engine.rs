//! Engine integration tests: registry round-trips and executor
//! determinism, asserted over the public umbrella-crate surface.
//!
//! The determinism claims here are the ones CI enforces end-to-end by
//! diffing experiment artifacts across `ARQ_THREADS` settings: the
//! executor must produce byte-identical artifact JSON at any worker
//! count, and rerunning a spec with the same seed must reproduce it.

use arq::core::engine::{
    execute_with_threads, make_policy, make_strategy, run_one, POLICY_NAMES, STRATEGY_NAMES,
};
use arq::core::{RunSpec, TraceSource};
use arq::gnutella::sim::SimConfig;
use arq::simkern::ToJson;
use std::sync::Arc;

fn trace() -> TraceSource {
    TraceSource::PaperDefault {
        pairs: 6_000,
        seed: 17,
    }
}

fn mixed_specs() -> Vec<RunSpec> {
    let mut specs: Vec<RunSpec> = ["sliding(s=10)", "lazy(s=5,p=3)", "incremental"]
        .iter()
        .map(|s| RunSpec::TraceEval {
            trace: trace(),
            strategy: s.to_string(),
            block_size: 1_000,
            obs: None,
        })
        .collect();
    let mut cfg = SimConfig::default_with(60, 120, 23);
    cfg.catalog.topics = 5;
    cfg.catalog.files_per_topic = 40;
    for policy in ["flood", "assoc", "k-walk(k=2,ttl=24)"] {
        specs.push(RunSpec::LiveSim {
            cfg: cfg.clone(),
            policy: policy.into(),
            graph: None,
            obs: None,
        });
    }
    specs
}

#[test]
fn executor_is_thread_count_invariant() {
    let specs = mixed_specs();
    let one = execute_with_threads(&specs, 1).unwrap();
    let many = execute_with_threads(&specs, 8).unwrap();
    assert_eq!(one.len(), specs.len());
    for (a, b) in one.iter().zip(&many) {
        assert_eq!(
            a.to_json().to_string(),
            b.to_json().to_string(),
            "artifact {} differs between 1 and 8 workers",
            a.index
        );
    }
}

#[test]
fn same_seed_reruns_are_byte_identical() {
    let specs = mixed_specs();
    let first = execute_with_threads(&specs, 4).unwrap();
    let second = execute_with_threads(&specs, 4).unwrap();
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
    }
}

#[test]
fn every_strategy_round_trips_through_the_registry() {
    for name in STRATEGY_NAMES {
        let built = make_strategy(name).unwrap_or_else(|e| panic!("{name}: {e}"));
        let canonical = built.name();
        assert!(
            canonical.starts_with(name),
            "bare `{name}` built `{canonical}`"
        );
        // The canonical label itself is a valid spec reconstructing the
        // same configuration.
        let again = make_strategy(&canonical).unwrap_or_else(|e| panic!("{canonical}: {e}"));
        assert_eq!(again.name(), canonical);
    }
}

#[test]
fn every_policy_builds_and_keeps_its_label() {
    for name in POLICY_NAMES {
        let built = make_policy(name).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            &built.label, name,
            "bare `{name}` labeled `{}`",
            built.label
        );
    }
}

#[test]
fn unknown_names_report_the_valid_alternatives() {
    let e = match make_strategy("windowed") {
        Err(e) => e.to_string(),
        Ok(s) => panic!("`windowed` unexpectedly built {}", s.name()),
    };
    for name in STRATEGY_NAMES {
        assert!(e.contains(name), "`{e}` does not mention `{name}`");
    }
    let e = match make_policy("gossip") {
        Err(e) => e.to_string(),
        Ok(p) => panic!("`gossip` unexpectedly built {}", p.label),
    };
    for name in POLICY_NAMES {
        assert!(e.contains(name), "`{e}` does not mention `{name}`");
    }
}

#[test]
fn artifacts_carry_provenance() {
    let pairs = Arc::new(
        arq::trace::SynthTrace::new(arq::trace::SynthConfig::paper_default(1_000, 99)).pairs(),
    );
    let spec = RunSpec::TraceEval {
        trace: TraceSource::Shared {
            label: "paper-default".into(),
            seed: 99,
            pairs,
        },
        strategy: "static".into(),
        block_size: 100,
        obs: None,
    };
    let artifact = run_one(3, &spec).unwrap();
    assert_eq!(artifact.index, 3);
    assert_eq!(artifact.seed, 99);
    assert_eq!(artifact.digest, spec.digest());
    assert!(artifact.spec.contains("strategy=static"));
    assert_eq!(artifact.label, "static(s=10)");
}
