//! Crash-safety of `arq sweep`, exercised at the process level: a sweep
//! killed with SIGKILL mid-run and resumed must skip exactly the jobs
//! its journal recorded and converge to `report.json` / `runbook.json`
//! bytes identical to an uninterrupted run.
//!
//! This is the binary-level twin of the in-process resume test in
//! `arq_core::sweep` — it additionally covers process startup, the
//! fsync'd journal surviving a hard kill, and the `arq sweep resume`
//! CLI surface.

#![cfg(unix)]

use std::path::PathBuf;
use std::process::Command;
use std::time::{Duration, Instant};

fn arq_bin() -> &'static str {
    env!("CARGO_BIN_EXE_arq")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("arq-sweep-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(args: &[&str]) -> String {
    let out = Command::new(arq_bin()).args(args).output().unwrap();
    assert!(
        out.status.success(),
        "arq {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// A small trace-eval grid: six jobs, each cheap enough for a debug
/// test but slowed per-job via `--spin` in the victim run.
const PLAN: &str = r#"name = "resume-test"
kind = "trace-eval"
seed = 7

[base]
pairs = 24_000
block = 2000
strategy = "sliding(s=10)"

[[axis]]
key = "strategy.s"
values = [2, 3, 5, 8, 13, 21]
"#;

/// Journal lines so far: one header line plus one line per finished job.
fn journal_lines(path: &std::path::Path) -> usize {
    match std::fs::read_to_string(path) {
        Ok(text) => text.lines().filter(|l| !l.trim().is_empty()).count(),
        Err(_) => 0,
    }
}

#[test]
fn sigkill_and_resume_reach_the_uninterrupted_bytes() {
    let dir = temp_dir("kill");
    let plan_path = dir.join("resume-test.toml");
    std::fs::write(&plan_path, PLAN).unwrap();
    let plan_s = plan_path.to_str().unwrap();
    let ref_dir = dir.join("reference");
    let crash_dir = dir.join("crashed");

    // Uninterrupted reference run (no spin, fast).
    let ref_report = run_ok(&["sweep", "run", plan_s, "--out", ref_dir.to_str().unwrap()]);
    assert!(
        ref_report.contains("(6 run, 0 skipped)"),
        "reference ran everything: {ref_report}"
    );
    let want_report = std::fs::read(ref_dir.join("report.json")).unwrap();
    let want_runbook = std::fs::read(ref_dir.join("runbook.json")).unwrap();

    // Victim run: one worker so jobs journal strictly in sequence, and a
    // per-job spin so the kill lands with work still outstanding.
    let mut victim = Command::new(arq_bin())
        .args([
            "sweep",
            "run",
            plan_s,
            "--out",
            crash_dir.to_str().unwrap(),
            "--spin",
            "2000",
        ])
        .env("ARQ_THREADS", "1")
        .stdout(std::process::Stdio::null())
        .spawn()
        .unwrap();

    // Wait for the journal to record the header and at least two
    // finished jobs, then SIGKILL — no drain, no report, exactly a
    // crash.
    let journal = crash_dir.join("journal.jsonl");
    let deadline = Instant::now() + Duration::from_secs(60);
    while journal_lines(&journal) < 3 {
        assert!(
            Instant::now() < deadline,
            "victim never journaled two finished jobs"
        );
        assert!(
            victim.try_wait().unwrap().is_none(),
            "victim finished before it could be killed; raise --spin"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    victim.kill().unwrap();
    victim.wait().unwrap();

    let completed = journal_lines(&journal).saturating_sub(1);
    assert!(
        (2..6).contains(&completed),
        "kill should land mid-sweep, found {completed} journaled jobs"
    );
    assert!(
        !crash_dir.join("report.json").exists(),
        "a killed sweep must not leave a report behind"
    );

    // Resume: exactly the journaled jobs are skipped, the rest run, and
    // the assembled outputs are byte-identical to the reference's.
    let resumed = run_ok(&[
        "sweep",
        "resume",
        plan_s,
        "--out",
        crash_dir.to_str().unwrap(),
    ]);
    let expect = format!("({} run, {completed} skipped)", 6 - completed);
    assert!(
        resumed.contains(&expect),
        "resume must skip exactly the journaled jobs (expected `{expect}`): {resumed}"
    );
    let got_report = std::fs::read(crash_dir.join("report.json")).unwrap();
    let got_runbook = std::fs::read(crash_dir.join("runbook.json")).unwrap();
    assert_eq!(
        got_report, want_report,
        "resumed report diverged from the uninterrupted run"
    );
    assert_eq!(
        got_runbook, want_runbook,
        "resumed runbook diverged from the uninterrupted run"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// `resume` on an already-complete sweep is a no-op that still
/// reassembles byte-identical outputs, and `run` (without resume) on the
/// same directory starts over from scratch.
#[test]
fn resume_is_idempotent_and_run_restarts() {
    let dir = temp_dir("idem");
    let plan_path = dir.join("resume-test.toml");
    std::fs::write(&plan_path, PLAN).unwrap();
    let plan_s = plan_path.to_str().unwrap();
    let out_dir = dir.join("out");
    let out_s = out_dir.to_str().unwrap();

    run_ok(&["sweep", "run", plan_s, "--out", out_s]);
    let first = std::fs::read(out_dir.join("report.json")).unwrap();

    let again = run_ok(&["sweep", "resume", plan_s, "--out", out_s]);
    assert!(
        again.contains("(0 run, 6 skipped)"),
        "resume of a finished sweep re-runs nothing: {again}"
    );
    assert_eq!(
        std::fs::read(out_dir.join("report.json")).unwrap(),
        first,
        "idempotent resume changed report bytes"
    );

    let fresh = run_ok(&["sweep", "run", plan_s, "--out", out_s]);
    assert!(
        fresh.contains("(6 run, 0 skipped)"),
        "plain run must restart from scratch: {fresh}"
    );
    assert_eq!(
        std::fs::read(out_dir.join("report.json")).unwrap(),
        first,
        "restarted run changed report bytes"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
