//! # arq-baselines — comparison search strategies
//!
//! The related-work schemes the paper positions itself against (§II),
//! each implemented as an `arq-gnutella` [`ForwardingPolicy`] so that
//! experiment E7 can compare them under identical protocol mechanics:
//!
//! * **flooding** — `arq_gnutella::FloodPolicy` (re-exported here);
//! * **expanding ring** (Lv et al.) — [`ring::expanding_ring`] builds the
//!   TTL-escalation schedule the simulator replays with flooding;
//! * **k-random walks** (Gkantsidis et al.) — [`walk::KRandomWalk`];
//! * **interest-based shortcuts** (Sripanidkulchai et al.) —
//!   [`shortcuts::InterestShortcuts`];
//! * **routing indices** (Crespo & Garcia-Molina) —
//!   [`routing_index::RoutingIndices`];
//! * **superpeer networks** (Yang & Garcia-Molina) —
//!   [`superpeer::SuperPeerPolicy`] over
//!   [`arq_overlay::generate::superpeer`] topologies;
//! * **community routing** — [`community::CommunityPolicy`], the
//!   superpeer/association-rule hybrid: the same two-tier structure, but
//!   the core consults learned rules before flooding.
//!
//! [`ForwardingPolicy`]: arq_gnutella::policy::ForwardingPolicy

#![warn(missing_docs)]

pub mod community;
pub mod ring;
pub mod routing_index;
pub mod shortcuts;
pub mod superpeer;
pub mod walk;

pub use arq_gnutella::FloodPolicy;
pub use community::CommunityPolicy;
pub use ring::expanding_ring;
pub use routing_index::RoutingIndices;
pub use shortcuts::InterestShortcuts;
pub use superpeer::SuperPeerPolicy;
pub use walk::KRandomWalk;
