//! Superpeer search (Yang & Garcia-Molina — ICDE'03).
//!
//! The §II "impose structure" baseline: leaves attach to a superpeer
//! that indexes their shared files. A query first goes to the issuer's
//! superpeer; if the index names a local leaf, the superpeer forwards
//! the query straight to that leaf (the cost-equivalent of answering
//! from the index); otherwise it floods the query across the superpeer
//! core, where each superpeer again consults its own index. Leaves never
//! relay. "Although this approach has the benefit of reducing the number
//! of hops required for queries, it can still suffer from the effects of
//! flooding on larger systems."
//!
//! Use with [`arq_overlay::generate::superpeer`] topologies and a
//! matching TTL (core floods need `ttl ≥ core diameter + 2`).

use arq_content::{Catalog, FileId, WorkloadGen};
use arq_gnutella::policy::{ForwardCtx, ForwardingPolicy};
use arq_overlay::{Graph, NodeId};
use arq_simkern::Rng64;
use std::collections::HashMap;

/// The two-tier index policy.
#[derive(Debug)]
pub struct SuperPeerPolicy {
    n_super: usize,
    /// Per-superpeer index: file → leaves of *this* superpeer sharing it.
    index: Vec<HashMap<FileId, Vec<NodeId>>>,
    /// Cached: how many queries were answered from a local index.
    index_hits: u64,
    /// How many decisions flooded the core.
    core_floods: u64,
}

impl SuperPeerPolicy {
    /// Creates the policy for a topology whose first `n_super` ids are
    /// the superpeer core.
    pub fn new(n_super: usize) -> Self {
        assert!(n_super >= 1, "need at least one superpeer");
        SuperPeerPolicy {
            n_super,
            index: Vec::new(),
            index_hits: 0,
            core_floods: 0,
        }
    }

    fn is_super(&self, n: NodeId) -> bool {
        (n.0 as usize) < self.n_super
    }

    /// Queries resolved from a superpeer's local index.
    pub fn index_hits(&self) -> u64 {
        self.index_hits
    }

    /// Decisions that flooded the superpeer core.
    pub fn core_floods(&self) -> u64 {
        self.core_floods
    }

    fn rebuild(&mut self, graph: &Graph, workload: &WorkloadGen) {
        self.index = vec![HashMap::new(); self.n_super];
        for sp in 0..self.n_super {
            let sp_node = NodeId(sp as u32);
            if !graph.is_alive(sp_node) {
                continue;
            }
            for leaf in graph.live_neighbors(sp_node) {
                if self.is_super(leaf) {
                    continue;
                }
                for file in workload.library(leaf.index()).iter() {
                    self.index[sp].entry(file).or_default().push(leaf);
                }
            }
        }
    }
}

impl ForwardingPolicy for SuperPeerPolicy {
    fn name(&self) -> &'static str {
        "superpeer"
    }

    fn init(&mut self, graph: &Graph, workload: &WorkloadGen, _catalog: &Catalog) {
        self.rebuild(graph, workload);
        // Keep a reference copy of the workload for churn rebuilds? The
        // policy API hands us the workload only here; index rebuilds on
        // churn reuse the stored per-leaf index instead (leaves keep
        // their libraries while offline).
    }

    fn on_topology_change(&mut self, graph: &Graph) {
        // Membership changed: drop index entries pointing at leaves that
        // are no longer attached/alive. (New attachments re-register via
        // init-time data; leaf libraries are static in our model.)
        for sp in 0..self.n_super {
            let sp_node = NodeId(sp as u32);
            for leaves in self.index[sp].values_mut() {
                leaves.retain(|&l| graph.is_alive(l) && graph.has_edge(sp_node, l));
            }
            self.index[sp].retain(|_, leaves| !leaves.is_empty());
        }
    }

    fn select(&mut self, ctx: &ForwardCtx<'_>, _rng: &mut Rng64) -> Vec<NodeId> {
        if !self.is_super(ctx.node) {
            // Leaf: only ever talks to its superpeer(s); never relays
            // queries that arrived from elsewhere.
            return if ctx.from.is_none() {
                ctx.candidates
                    .iter()
                    .copied()
                    .filter(|&n| self.is_super(n))
                    .collect()
            } else {
                Vec::new()
            };
        }
        // Superpeer: answer from the index when possible.
        let local: Vec<NodeId> = self.index[ctx.node.index()]
            .get(&ctx.query.key.file)
            .map(|leaves| {
                leaves
                    .iter()
                    .copied()
                    .filter(|n| ctx.candidates.contains(n))
                    .collect()
            })
            .unwrap_or_default();
        if !local.is_empty() {
            self.index_hits += 1;
            return local;
        }
        // Miss: flood the core only.
        self.core_floods += 1;
        ctx.candidates
            .iter()
            .copied()
            .filter(|&n| self.is_super(n))
            .collect()
    }

    fn stats(&self) -> Vec<(String, f64)> {
        vec![
            ("index_hits".into(), self.index_hits as f64),
            ("core_floods".into(), self.core_floods as f64),
        ]
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arq_content::{CatalogConfig, QueryKey, Topic, WorkloadConfig};
    use arq_gnutella::QueryMsg;
    use arq_overlay::generate;
    use arq_trace::record::Guid;

    fn setup() -> (Graph, WorkloadGen, Catalog, SuperPeerPolicy, Vec<NodeId>) {
        let mut rng = Rng64::seed_from(5);
        let catalog = Catalog::generate(
            CatalogConfig {
                topics: 4,
                files_per_topic: 30,
                ..Default::default()
            },
            &mut rng,
        );
        let (graph, assignment) = generate::superpeer(30, 4, 2, &mut rng);
        let workload = WorkloadGen::generate(
            30,
            &catalog,
            WorkloadConfig {
                files_per_node: 10,
                free_rider_fraction: 0.0,
                ..Default::default()
            },
            &mut rng,
        );
        let mut policy = SuperPeerPolicy::new(4);
        policy.init(&graph, &workload, &catalog);
        (graph, workload, catalog, policy, assignment)
    }

    fn msg(file: FileId) -> QueryMsg {
        QueryMsg {
            guid: Guid(1),
            key: QueryKey {
                file,
                topic: Topic(0),
            },
            ttl: 6,
            hops: 0,
        }
    }

    #[test]
    fn leaf_issues_to_its_superpeer_only() {
        let (graph, _, _, mut policy, assignment) = setup();
        let mut rng = Rng64::seed_from(1);
        let leaf = NodeId(10);
        let candidates: Vec<NodeId> = graph.live_neighbors(leaf).collect();
        let m = msg(FileId(0));
        let ctx = ForwardCtx {
            node: leaf,
            from: None,
            query: &m,
            candidates: &candidates,
        };
        assert_eq!(policy.select(&ctx, &mut rng), vec![assignment[10]]);
    }

    #[test]
    fn leaf_never_relays() {
        let (_, _, _, mut policy, assignment) = setup();
        let mut rng = Rng64::seed_from(2);
        let m = msg(FileId(0));
        let ctx = ForwardCtx {
            node: NodeId(10),
            from: Some(assignment[10]),
            query: &m,
            candidates: &[],
        };
        assert!(policy.select(&ctx, &mut rng).is_empty());
    }

    #[test]
    fn superpeer_answers_from_index() {
        let (graph, workload, _, mut policy, assignment) = setup();
        let mut rng = Rng64::seed_from(3);
        // Find a leaf and one of its files.
        let leaf = NodeId(12);
        let sp = assignment[12];
        let file = workload
            .library(12)
            .iter()
            .next()
            .expect("leaf shares something");
        let candidates: Vec<NodeId> = graph.live_neighbors(sp).collect();
        let m = msg(file);
        let ctx = ForwardCtx {
            node: sp,
            from: Some(candidates[0]),
            query: &m,
            candidates: &candidates,
        };
        let sel = policy.select(&ctx, &mut rng);
        assert!(sel.contains(&leaf) || !sel.is_empty());
        // All selected nodes are leaves holding the file under this sp.
        for n in &sel {
            assert!(!policy.is_super(*n), "index hit forwarded into the core");
            assert!(workload.library(n.index()).contains(file));
        }
        assert_eq!(policy.index_hits(), 1);
    }

    #[test]
    fn superpeer_floods_core_on_miss() {
        let (graph, workload, catalog, mut policy, _) = setup();
        let mut rng = Rng64::seed_from(4);
        // A file nobody under superpeer 0 shares: search the catalog.
        let missing = (0..catalog.len() as u32)
            .map(FileId)
            .find(|f| {
                graph
                    .live_neighbors(NodeId(0))
                    .filter(|n| n.0 >= 4)
                    .all(|n| !workload.library(n.index()).contains(*f))
            })
            .expect("some file is absent locally");
        let candidates: Vec<NodeId> = graph.live_neighbors(NodeId(0)).collect();
        let m = msg(missing);
        let ctx = ForwardCtx {
            node: NodeId(0),
            from: None,
            query: &m,
            candidates: &candidates,
        };
        let sel = policy.select(&ctx, &mut rng);
        assert!(!sel.is_empty(), "core flood selected nobody");
        assert!(sel.iter().all(|n| n.0 < 4), "flooded to leaves");
        assert_eq!(policy.core_floods(), 1);
    }

    #[test]
    fn topology_change_drops_departed_leaves() {
        let (mut graph, workload, _, mut policy, assignment) = setup();
        let mut rng = Rng64::seed_from(6);
        let leaf = NodeId(15);
        let sp = assignment[15];
        let file = workload.library(15).iter().next().unwrap();
        graph.depart(leaf);
        policy.on_topology_change(&graph);
        let candidates: Vec<NodeId> = graph.live_neighbors(sp).collect();
        let m = msg(file);
        let ctx = ForwardCtx {
            node: sp,
            from: None,
            query: &m,
            candidates: &candidates,
        };
        let sel = policy.select(&ctx, &mut rng);
        assert!(!sel.contains(&leaf), "departed leaf still indexed");
    }
}
