//! Interest-based shortcuts (Sripanidkulchai, Maggs, Zhang — INFOCOM'03).
//!
//! "Because users have a limited set of interests, a node that has
//! provided hits previously is likely to share the same interests" (§II).
//! Each node remembers, per topic, the neighbors that recently delivered
//! hits for that topic; queries on a remembered topic go to those
//! shortcut neighbors first, falling back to flooding on a cold topic.
//!
//! The original system keeps shortcuts as *extra* links outside the
//! overlay; adapted to a pure forwarding policy, shortcuts are the subset
//! of current neighbors that proved productive for the topic — the same
//! locality signal, confined to the overlay.

use arq_content::{QueryKey, Topic};
use arq_gnutella::policy::{ForwardCtx, ForwardingPolicy};
use arq_overlay::NodeId;
use arq_simkern::Rng64;
use std::collections::HashMap;

/// Per-node, per-topic shortcut lists (most recent first, bounded).
#[derive(Debug, Clone)]
pub struct InterestShortcuts {
    per_topic_cap: usize,
    k: usize,
    table: HashMap<(NodeId, Topic), Vec<NodeId>>,
    shortcut_uses: u64,
    flood_fallbacks: u64,
}

impl InterestShortcuts {
    /// Creates the policy: remember up to `per_topic_cap` shortcuts per
    /// (node, topic) and forward to at most `k` of them.
    pub fn new(per_topic_cap: usize, k: usize) -> Self {
        assert!(per_topic_cap >= 1 && k >= 1, "degenerate shortcut config");
        InterestShortcuts {
            per_topic_cap,
            k,
            table: HashMap::new(),
            shortcut_uses: 0,
            flood_fallbacks: 0,
        }
    }

    /// Decisions routed via shortcuts.
    pub fn shortcut_uses(&self) -> u64 {
        self.shortcut_uses
    }

    /// Decisions that fell back to flooding.
    pub fn flood_fallbacks(&self) -> u64 {
        self.flood_fallbacks
    }

    fn remember(&mut self, node: NodeId, topic: Topic, via: NodeId) {
        let list = self.table.entry((node, topic)).or_default();
        if let Some(pos) = list.iter().position(|&n| n == via) {
            list.remove(pos);
        }
        list.insert(0, via);
        list.truncate(self.per_topic_cap);
    }
}

impl ForwardingPolicy for InterestShortcuts {
    fn name(&self) -> &'static str {
        "shortcuts"
    }

    fn select(&mut self, ctx: &ForwardCtx<'_>, _rng: &mut Rng64) -> Vec<NodeId> {
        let topic = ctx.query.key.topic;
        let known: Vec<NodeId> = self
            .table
            .get(&(ctx.node, topic))
            .map(|list| {
                list.iter()
                    .copied()
                    .filter(|n| ctx.candidates.contains(n))
                    .take(self.k)
                    .collect()
            })
            .unwrap_or_default();
        if known.is_empty() {
            self.flood_fallbacks += 1;
            ctx.candidates.to_vec()
        } else {
            self.shortcut_uses += 1;
            known
        }
    }

    fn on_reply(&mut self, node: NodeId, _upstream: Option<NodeId>, via: NodeId, key: QueryKey) {
        self.remember(node, key.topic, via);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arq_content::FileId;
    use arq_gnutella::QueryMsg;
    use arq_trace::record::Guid;

    fn msg(topic: u16) -> QueryMsg {
        QueryMsg {
            guid: Guid(1),
            key: QueryKey {
                file: FileId(0),
                topic: Topic(topic),
            },
            ttl: 4,
            hops: 0,
        }
    }

    fn key(topic: u16) -> QueryKey {
        QueryKey {
            file: FileId(0),
            topic: Topic(topic),
        }
    }

    #[test]
    fn cold_topic_floods_warm_topic_shortcuts() {
        let mut p = InterestShortcuts::new(4, 2);
        let mut rng = Rng64::seed_from(1);
        let candidates: Vec<NodeId> = (10..16).map(NodeId).collect();
        let m = msg(3);
        let ctx = ForwardCtx {
            node: NodeId(0),
            from: None,
            query: &m,
            candidates: &candidates,
        };
        assert_eq!(p.select(&ctx, &mut rng).len(), 6, "cold topic must flood");
        p.on_reply(NodeId(0), None, NodeId(12), key(3));
        let sel = p.select(&ctx, &mut rng);
        assert_eq!(sel, vec![NodeId(12)]);
        assert_eq!(p.shortcut_uses(), 1);
        assert_eq!(p.flood_fallbacks(), 1);
    }

    #[test]
    fn shortcuts_are_topic_scoped() {
        let mut p = InterestShortcuts::new(4, 2);
        let mut rng = Rng64::seed_from(2);
        let candidates: Vec<NodeId> = (10..14).map(NodeId).collect();
        p.on_reply(NodeId(0), None, NodeId(11), key(1));
        let m = msg(2); // different topic
        let ctx = ForwardCtx {
            node: NodeId(0),
            from: None,
            query: &m,
            candidates: &candidates,
        };
        assert_eq!(p.select(&ctx, &mut rng).len(), 4);
    }

    #[test]
    fn recency_ordering_and_cap() {
        let mut p = InterestShortcuts::new(2, 2);
        let mut rng = Rng64::seed_from(3);
        for via in [10u32, 11, 12] {
            p.on_reply(NodeId(0), None, NodeId(via), key(1));
        }
        // Cap 2: node 10 evicted; most recent (12) first.
        let candidates: Vec<NodeId> = (10..13).map(NodeId).collect();
        let m = msg(1);
        let ctx = ForwardCtx {
            node: NodeId(0),
            from: None,
            query: &m,
            candidates: &candidates,
        };
        assert_eq!(p.select(&ctx, &mut rng), vec![NodeId(12), NodeId(11)]);
    }

    #[test]
    fn departed_shortcuts_ignored() {
        let mut p = InterestShortcuts::new(4, 2);
        let mut rng = Rng64::seed_from(4);
        p.on_reply(NodeId(0), None, NodeId(50), key(1));
        // Node 50 is not among the live candidates anymore.
        let candidates = vec![NodeId(10), NodeId(11)];
        let m = msg(1);
        let ctx = ForwardCtx {
            node: NodeId(0),
            from: None,
            query: &m,
            candidates: &candidates,
        };
        assert_eq!(p.select(&ctx, &mut rng).len(), 2, "must fall back to flood");
    }

    #[test]
    fn re_reply_moves_to_front() {
        let mut p = InterestShortcuts::new(3, 1);
        let mut rng = Rng64::seed_from(5);
        p.on_reply(NodeId(0), None, NodeId(10), key(1));
        p.on_reply(NodeId(0), None, NodeId(11), key(1));
        p.on_reply(NodeId(0), None, NodeId(10), key(1)); // 10 again
        let candidates = vec![NodeId(10), NodeId(11)];
        let m = msg(1);
        let ctx = ForwardCtx {
            node: NodeId(0),
            from: None,
            query: &m,
            candidates: &candidates,
        };
        assert_eq!(p.select(&ctx, &mut rng), vec![NodeId(10)]);
    }
}
