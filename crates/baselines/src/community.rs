//! Community routing: a super-peer core that learns association rules.
//!
//! The hybrid the paper's §VII sketches as future work: keep the
//! two-tier structure of superpeer search (leaves attach to an indexing
//! superpeer; see [`crate::superpeer`]), but replace the core's
//! flood-on-miss with the paper's association-rule router. Each
//! superpeer watches the hits flowing back through it and learns
//! `{upstream superpeer} → {core neighbor}` rules with decayed counts;
//! an index miss first consults those rules and forwards to at most `k`
//! confident consequents, flooding the core only when no rule applies.
//!
//! Use with [`arq_overlay::generate::superpeer`] topologies whose first
//! `n_super` ids are the core, exactly like [`crate::SuperPeerPolicy`].

use arq_assoc::DecayedPairCounts;
use arq_content::{Catalog, FileId, WorkloadGen};
use arq_gnutella::policy::{ForwardCtx, ForwardingPolicy};
use arq_overlay::{Graph, NodeId};
use arq_simkern::Rng64;
use arq_trace::record::HostId;
use std::collections::HashMap;

fn host(n: NodeId) -> HostId {
    HostId(n.0)
}

/// Two-tier index routing with an association-rule core.
#[derive(Debug)]
pub struct CommunityPolicy {
    n_super: usize,
    k: usize,
    min_support: f64,
    min_confidence: f64,
    half_life: f64,
    /// Per-superpeer index: file → leaves of *this* superpeer sharing it.
    index: Vec<HashMap<FileId, Vec<NodeId>>>,
    /// Per-superpeer rule learner over core traffic, created lazily.
    learners: Vec<Option<DecayedPairCounts>>,
    index_hits: u64,
    rule_routes: u64,
    core_floods: u64,
}

impl CommunityPolicy {
    /// Creates the policy for a topology whose first `n_super` ids are
    /// the superpeer core. `k`, `min_support`, `min_confidence`, and
    /// `half_life` parameterize the core's rule router exactly like the
    /// flat `assoc` policy.
    pub fn new(
        n_super: usize,
        k: usize,
        min_support: f64,
        min_confidence: f64,
        half_life: f64,
    ) -> Self {
        assert!(n_super >= 1, "need at least one superpeer");
        assert!(k >= 1, "k must be at least 1");
        assert!(min_support >= 1.0, "min_support below one observation");
        assert!(
            (0.0..=1.0).contains(&min_confidence),
            "min_confidence outside [0, 1]"
        );
        CommunityPolicy {
            n_super,
            k,
            min_support,
            min_confidence,
            half_life,
            index: Vec::new(),
            learners: Vec::new(),
            index_hits: 0,
            rule_routes: 0,
            core_floods: 0,
        }
    }

    fn is_super(&self, n: NodeId) -> bool {
        (n.0 as usize) < self.n_super
    }

    /// Queries resolved from a superpeer's local index.
    pub fn index_hits(&self) -> u64 {
        self.index_hits
    }

    /// Core decisions routed by learned rules.
    pub fn rule_routes(&self) -> u64 {
        self.rule_routes
    }

    /// Core decisions that fell back to flooding the core.
    pub fn core_floods(&self) -> u64 {
        self.core_floods
    }

    fn learner(&mut self, sp: NodeId) -> &mut DecayedPairCounts {
        let idx = sp.index();
        if idx >= self.learners.len() {
            self.learners.resize_with(idx + 1, || None);
        }
        self.learners[idx].get_or_insert_with(|| DecayedPairCounts::new(self.half_life))
    }

    fn rebuild(&mut self, graph: &Graph, workload: &WorkloadGen) {
        self.index = vec![HashMap::new(); self.n_super];
        for sp in 0..self.n_super {
            let sp_node = NodeId(sp as u32);
            if !graph.is_alive(sp_node) {
                continue;
            }
            for leaf in graph.live_neighbors(sp_node) {
                if self.is_super(leaf) {
                    continue;
                }
                for file in workload.library(leaf.index()).iter() {
                    self.index[sp].entry(file).or_default().push(leaf);
                }
            }
        }
    }
}

impl ForwardingPolicy for CommunityPolicy {
    fn name(&self) -> &'static str {
        "community"
    }

    fn init(&mut self, graph: &Graph, workload: &WorkloadGen, _catalog: &Catalog) {
        self.rebuild(graph, workload);
    }

    fn on_topology_change(&mut self, graph: &Graph) {
        for sp in 0..self.n_super {
            let sp_node = NodeId(sp as u32);
            for leaves in self.index[sp].values_mut() {
                leaves.retain(|&l| graph.is_alive(l) && graph.has_edge(sp_node, l));
            }
            self.index[sp].retain(|_, leaves| !leaves.is_empty());
        }
    }

    fn select(&mut self, ctx: &ForwardCtx<'_>, _rng: &mut Rng64) -> Vec<NodeId> {
        if !self.is_super(ctx.node) {
            // Leaf: only ever talks to its superpeer(s); never relays.
            return if ctx.from.is_none() {
                ctx.candidates
                    .iter()
                    .copied()
                    .filter(|&n| self.is_super(n))
                    .collect()
            } else {
                Vec::new()
            };
        }
        // Superpeer: answer from the index when possible.
        let local: Vec<NodeId> = self
            .index
            .get(ctx.node.index())
            .and_then(|idx| idx.get(&ctx.query.key.file))
            .map(|leaves| {
                leaves
                    .iter()
                    .copied()
                    .filter(|n| ctx.candidates.contains(n))
                    .collect()
            })
            .unwrap_or_default();
        if !local.is_empty() {
            self.index_hits += 1;
            return local;
        }
        // Index miss: consult the core's learned rules before flooding.
        // The antecedent is the upstream superpeer (or this superpeer's
        // own identity for leaf-issued queries entering the core here).
        let antecedent = host(match ctx.from {
            Some(from) if self.is_super(from) => from,
            _ => ctx.node,
        });
        let (k, min_support, min_confidence) = (self.k, self.min_support, self.min_confidence);
        let ranked =
            self.learner(ctx.node)
                .top_k_confident(antecedent, k, min_support, min_confidence);
        let routed: Vec<NodeId> = ranked
            .into_iter()
            .map(|h| NodeId(h.0))
            .filter(|n| self.is_super(*n) && ctx.candidates.contains(n))
            .collect();
        if !routed.is_empty() {
            self.rule_routes += 1;
            return routed;
        }
        // No applicable rule: flood the core only.
        self.core_floods += 1;
        ctx.candidates
            .iter()
            .copied()
            .filter(|&n| self.is_super(n))
            .collect()
    }

    fn on_reply(
        &mut self,
        node: NodeId,
        upstream: Option<NodeId>,
        via: NodeId,
        _key: arq_content::QueryKey,
    ) {
        // Only core traffic trains the core's router: the hit must flow
        // back through a superpeer, from a core neighbor.
        if !self.is_super(node) || !self.is_super(via) {
            return;
        }
        let antecedent = host(match upstream {
            Some(up) if self.is_super(up) => up,
            _ => node,
        });
        self.learner(node).observe(antecedent, host(via));
    }

    fn stats(&self) -> Vec<(String, f64)> {
        vec![
            ("index_hits".into(), self.index_hits as f64),
            ("rule_routes".into(), self.rule_routes as f64),
            ("core_floods".into(), self.core_floods as f64),
        ]
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arq_content::{CatalogConfig, QueryKey, Topic, WorkloadConfig};
    use arq_gnutella::QueryMsg;
    use arq_overlay::generate;
    use arq_trace::record::Guid;

    fn setup() -> (Graph, WorkloadGen, CommunityPolicy, Vec<NodeId>) {
        let mut rng = Rng64::seed_from(5);
        let catalog = Catalog::generate(
            CatalogConfig {
                topics: 4,
                files_per_topic: 30,
                ..Default::default()
            },
            &mut rng,
        );
        let (graph, assignment) = generate::superpeer(30, 4, 2, &mut rng);
        let workload = WorkloadGen::generate(
            30,
            &catalog,
            WorkloadConfig {
                files_per_node: 10,
                free_rider_fraction: 0.0,
                ..Default::default()
            },
            &mut rng,
        );
        let mut policy = CommunityPolicy::new(4, 2, 3.0, 0.0, 1e9);
        policy.init(&graph, &workload, &catalog);
        (graph, workload, policy, assignment)
    }

    fn msg(file: FileId) -> QueryMsg {
        QueryMsg {
            guid: Guid(1),
            key: QueryKey {
                file,
                topic: Topic(0),
            },
            ttl: 6,
            hops: 0,
        }
    }

    fn miss_file(graph: &Graph, workload: &WorkloadGen, sp: NodeId) -> FileId {
        (0..10_000u32)
            .map(FileId)
            .find(|f| {
                graph
                    .live_neighbors(sp)
                    .filter(|n| n.0 >= 4)
                    .all(|n| !workload.library(n.index()).contains(*f))
            })
            .expect("some file is absent locally")
    }

    #[test]
    fn leaf_issues_to_its_superpeer_only() {
        let (graph, _, mut policy, assignment) = setup();
        let mut rng = Rng64::seed_from(1);
        let leaf = NodeId(10);
        let candidates: Vec<NodeId> = graph.live_neighbors(leaf).collect();
        let m = msg(FileId(0));
        let ctx = ForwardCtx {
            node: leaf,
            from: None,
            query: &m,
            candidates: &candidates,
        };
        assert_eq!(policy.select(&ctx, &mut rng), vec![assignment[10]]);
        // And never relays.
        let ctx = ForwardCtx {
            node: leaf,
            from: Some(assignment[10]),
            query: &m,
            candidates: &[],
        };
        assert!(policy.select(&ctx, &mut rng).is_empty());
    }

    #[test]
    fn cold_core_floods_on_index_miss() {
        let (graph, workload, mut policy, _) = setup();
        let mut rng = Rng64::seed_from(2);
        let missing = miss_file(&graph, &workload, NodeId(0));
        let candidates: Vec<NodeId> = graph.live_neighbors(NodeId(0)).collect();
        let m = msg(missing);
        let ctx = ForwardCtx {
            node: NodeId(0),
            from: None,
            query: &m,
            candidates: &candidates,
        };
        let sel = policy.select(&ctx, &mut rng);
        assert!(!sel.is_empty(), "core flood selected nobody");
        assert!(sel.iter().all(|n| n.0 < 4), "flooded to leaves");
        assert_eq!(policy.core_floods(), 1);
        assert_eq!(policy.rule_routes(), 0);
    }

    #[test]
    fn learned_rules_narrow_the_core_flood() {
        let (graph, workload, mut policy, _) = setup();
        let mut rng = Rng64::seed_from(3);
        // Hits keep coming back through core neighbor 2 for queries
        // entering superpeer 0 from superpeer 1.
        for _ in 0..5 {
            policy.on_reply(NodeId(0), Some(NodeId(1)), NodeId(2), msg(FileId(0)).key);
        }
        let missing = miss_file(&graph, &workload, NodeId(0));
        let candidates: Vec<NodeId> = graph.live_neighbors(NodeId(0)).collect();
        assert!(candidates.contains(&NodeId(2)), "core is a clique");
        let m = msg(missing);
        let ctx = ForwardCtx {
            node: NodeId(0),
            from: Some(NodeId(1)),
            query: &m,
            candidates: &candidates,
        };
        assert_eq!(policy.select(&ctx, &mut rng), vec![NodeId(2)]);
        assert_eq!(policy.rule_routes(), 1);
        assert_eq!(policy.core_floods(), 0);
    }

    #[test]
    fn leaf_replies_do_not_train_the_core() {
        let (graph, workload, mut policy, _) = setup();
        let mut rng = Rng64::seed_from(4);
        // Hits returning via a leaf must not become core rules.
        for _ in 0..10 {
            policy.on_reply(NodeId(0), Some(NodeId(1)), NodeId(12), msg(FileId(0)).key);
        }
        let missing = miss_file(&graph, &workload, NodeId(0));
        let candidates: Vec<NodeId> = graph.live_neighbors(NodeId(0)).collect();
        let m = msg(missing);
        let ctx = ForwardCtx {
            node: NodeId(0),
            from: Some(NodeId(1)),
            query: &m,
            candidates: &candidates,
        };
        let sel = policy.select(&ctx, &mut rng);
        assert!(sel.iter().all(|n| n.0 < 4));
        assert_eq!(policy.rule_routes(), 0);
        assert_eq!(policy.core_floods(), 1);
    }

    #[test]
    fn confidence_gate_applies_in_the_core() {
        let (graph, workload, mut policy_low, _) = setup();
        let mut strict = CommunityPolicy::new(4, 2, 3.0, 0.9, 1e9);
        let mut rng = Rng64::seed_from(6);
        // Split evidence: 6 hits via 2, 5 via 3 — both supported, neither
        // reaches 0.9 confidence.
        for p in [&mut policy_low, &mut strict] {
            for _ in 0..6 {
                p.on_reply(NodeId(0), Some(NodeId(1)), NodeId(2), msg(FileId(0)).key);
            }
            for _ in 0..5 {
                p.on_reply(NodeId(0), Some(NodeId(1)), NodeId(3), msg(FileId(0)).key);
            }
        }
        let missing = miss_file(&graph, &workload, NodeId(0));
        let candidates: Vec<NodeId> = graph.live_neighbors(NodeId(0)).collect();
        let m = msg(missing);
        let ctx = ForwardCtx {
            node: NodeId(0),
            from: Some(NodeId(1)),
            query: &m,
            candidates: &candidates,
        };
        // minconf=0: rules route to both consequents.
        assert_eq!(
            policy_low.select(&ctx, &mut rng),
            vec![NodeId(2), NodeId(3)]
        );
        // minconf=0.9: everything pruned, core flood.
        let sel = strict.select(&ctx, &mut rng);
        assert!(sel.len() > 2, "strict gate should have flooded the core");
        assert_eq!(strict.core_floods(), 1);
    }
}
