//! k-random walks (Gkantsidis, Mihail, Saberi — INFOCOM'04).
//!
//! The issuer dispatches `k` walkers; every relay forwards a walker to
//! exactly one random neighbor. Walkers carry a large TTL because each
//! step costs only one message; a walker that reaches a content holder
//! produces a hit and (in our model) the remaining TTL still limits total
//! work. "This approach may require more time to locate the content, as
//! the number of nodes being searched at a given time may be much
//! smaller" — E7 shows exactly that trade-off.

use arq_gnutella::policy::{ForwardCtx, ForwardingPolicy};
use arq_overlay::NodeId;
use arq_simkern::Rng64;

/// The k-walker policy.
#[derive(Debug, Clone)]
pub struct KRandomWalk {
    k: usize,
}

impl KRandomWalk {
    /// Creates the policy with `k` walkers at the issuer.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "need at least one walker");
        KRandomWalk { k }
    }

    /// The configured walker count.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl ForwardingPolicy for KRandomWalk {
    fn name(&self) -> &'static str {
        "k-walk"
    }

    fn select(&mut self, ctx: &ForwardCtx<'_>, rng: &mut Rng64) -> Vec<NodeId> {
        if ctx.from.is_none() {
            // Issuer: dispatch k walkers to distinct random neighbors.
            let k = self.k.min(ctx.candidates.len());
            rng.sample_indices(ctx.candidates.len(), k)
                .into_iter()
                .map(|i| ctx.candidates[i])
                .collect()
        } else {
            // Relay: the walker moves to one random neighbor.
            vec![*rng.pick(ctx.candidates)]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arq_content::{FileId, QueryKey, Topic};
    use arq_gnutella::QueryMsg;
    use arq_trace::record::Guid;

    fn msg() -> QueryMsg {
        QueryMsg {
            guid: Guid(1),
            key: QueryKey {
                file: FileId(0),
                topic: Topic(0),
            },
            ttl: 50,
            hops: 0,
        }
    }

    #[test]
    fn issuer_dispatches_k_distinct_walkers() {
        let mut p = KRandomWalk::new(3);
        let mut rng = Rng64::seed_from(1);
        let candidates: Vec<NodeId> = (0..10).map(NodeId).collect();
        let m = msg();
        let ctx = ForwardCtx {
            node: NodeId(99),
            from: None,
            query: &m,
            candidates: &candidates,
        };
        let sel = p.select(&ctx, &mut rng);
        assert_eq!(sel.len(), 3);
        let set: std::collections::HashSet<_> = sel.iter().collect();
        assert_eq!(set.len(), 3, "walkers not distinct");
    }

    #[test]
    fn relay_forwards_exactly_one() {
        let mut p = KRandomWalk::new(4);
        let mut rng = Rng64::seed_from(2);
        let candidates: Vec<NodeId> = (0..10).map(NodeId).collect();
        let m = msg();
        for _ in 0..20 {
            let ctx = ForwardCtx {
                node: NodeId(99),
                from: Some(NodeId(5)),
                query: &m,
                candidates: &candidates,
            };
            let sel = p.select(&ctx, &mut rng);
            assert_eq!(sel.len(), 1);
            assert!(candidates.contains(&sel[0]));
        }
    }

    #[test]
    fn small_neighborhoods_cap_k() {
        let mut p = KRandomWalk::new(16);
        let mut rng = Rng64::seed_from(3);
        let candidates = vec![NodeId(1), NodeId(2)];
        let m = msg();
        let ctx = ForwardCtx {
            node: NodeId(0),
            from: None,
            query: &m,
            candidates: &candidates,
        };
        assert_eq!(p.select(&ctx, &mut rng).len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one walker")]
    fn rejects_zero_walkers() {
        KRandomWalk::new(0);
    }
}
