//! Routing indices (Crespo & Garcia-Molina — ICDCS'02).
//!
//! "By keeping a table of each neighbor node and the number of documents
//! classified within a defined set of topics that are reachable via that
//! neighbor, a node forwards a query on to the neighbor estimated to lead
//! to the most number of documents whose topics match those in the query"
//! (§II) — the closest prior work to the paper's approach, but built from
//! advertised *content counts* rather than observed *query outcomes*.
//!
//! We implement the attenuated variant: the goodness of neighbor `v` for
//! topic `t` at node `u` is `Σ_d att^d · docs_t(nodes at distance d via
//! v)`, computed by a BFS from `v` that avoids `u`, up to `horizon` hops.
//! Queries go to the `k` best-scoring neighbors; ties and zero scores
//! fall back to flooding.

use arq_content::{Catalog, Topic, WorkloadGen};
use arq_gnutella::policy::{ForwardCtx, ForwardingPolicy};
use arq_overlay::{Graph, NodeId};
use arq_simkern::Rng64;
use std::collections::{HashMap, VecDeque};

/// The routing-indices policy.
#[derive(Debug)]
pub struct RoutingIndices {
    horizon: u32,
    attenuation: f64,
    k: usize,
    /// docs per (node, topic), from the workload ground truth.
    docs: Vec<Vec<u32>>,
    /// (node, neighbor) -> per-topic goodness.
    index: HashMap<(NodeId, NodeId), Vec<f64>>,
    topics: usize,
    /// Rebuilds are throttled: only every `rebuild_every` topology
    /// changes (index maintenance is the scheme's known weak point under
    /// churn).
    rebuild_every: u32,
    changes_since_rebuild: u32,
}

impl RoutingIndices {
    /// Creates the policy. `horizon` is the aggregation depth,
    /// `attenuation` the per-hop discount, `k` the fan-out.
    pub fn new(horizon: u32, attenuation: f64, k: usize) -> Self {
        assert!(horizon >= 1, "horizon must reach past the neighbor");
        assert!(
            (0.0..=1.0).contains(&attenuation),
            "attenuation out of range"
        );
        assert!(k >= 1, "fan-out must be at least 1");
        RoutingIndices {
            horizon,
            attenuation,
            k,
            docs: Vec::new(),
            index: HashMap::new(),
            topics: 0,
            rebuild_every: 8,
            changes_since_rebuild: 0,
        }
    }

    /// The per-topic goodness vector for (`node`, `neighbor`), if indexed.
    pub fn goodness(&self, node: NodeId, neighbor: NodeId) -> Option<&[f64]> {
        self.index.get(&(node, neighbor)).map(Vec::as_slice)
    }

    fn rebuild(&mut self, graph: &Graph) {
        self.index.clear();
        for u in graph.live_nodes() {
            for v in graph.live_neighbors(u) {
                let scores = self.aggregate_via(graph, u, v);
                self.index.insert((u, v), scores);
            }
        }
    }

    /// BFS from `v` avoiding `u`, accumulating attenuated per-topic doc
    /// counts.
    fn aggregate_via(&self, graph: &Graph, u: NodeId, v: NodeId) -> Vec<f64> {
        let mut scores = vec![0.0f64; self.topics];
        let mut dist: HashMap<NodeId, u32> = HashMap::new();
        let mut q = VecDeque::new();
        dist.insert(v, 0);
        q.push_back(v);
        while let Some(w) = q.pop_front() {
            let d = dist[&w];
            let att = self.attenuation.powi(d as i32);
            for (t, &count) in self.docs[w.index()].iter().enumerate() {
                scores[t] += att * f64::from(count);
            }
            if d + 1 < self.horizon {
                for x in graph.live_neighbors(w) {
                    if x != u && !dist.contains_key(&x) {
                        dist.insert(x, d + 1);
                        q.push_back(x);
                    }
                }
            }
        }
        scores
    }
}

impl ForwardingPolicy for RoutingIndices {
    fn name(&self) -> &'static str {
        "routing-index"
    }

    fn init(&mut self, graph: &Graph, workload: &WorkloadGen, catalog: &Catalog) {
        self.topics = catalog.topic_count();
        self.docs = (0..workload.len())
            .map(|i| {
                let mut counts = vec![0u32; self.topics];
                for f in workload.library(i).iter() {
                    counts[catalog.meta(f).topic.0 as usize] += 1;
                }
                counts
            })
            .collect();
        self.rebuild(graph);
    }

    fn on_topology_change(&mut self, graph: &Graph) {
        self.changes_since_rebuild += 1;
        if self.changes_since_rebuild >= self.rebuild_every {
            self.rebuild(graph);
            self.changes_since_rebuild = 0;
        }
    }

    fn select(&mut self, ctx: &ForwardCtx<'_>, _rng: &mut Rng64) -> Vec<NodeId> {
        let topic: Topic = ctx.query.key.topic;
        let mut scored: Vec<(NodeId, f64)> = ctx
            .candidates
            .iter()
            .map(|&v| {
                let score = self
                    .index
                    .get(&(ctx.node, v))
                    .map(|s| s[topic.0 as usize])
                    .unwrap_or(0.0);
                (v, score)
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        let positive: Vec<NodeId> = scored
            .iter()
            .take_while(|&&(_, s)| s > 0.0)
            .take(self.k)
            .map(|&(v, _)| v)
            .collect();
        if positive.is_empty() {
            // No index information: flood.
            ctx.candidates.to_vec()
        } else {
            positive
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arq_content::{CatalogConfig, FileId, QueryKey, WorkloadConfig};
    use arq_gnutella::QueryMsg;
    use arq_trace::record::Guid;

    fn msg(topic: u16) -> QueryMsg {
        QueryMsg {
            guid: Guid(1),
            key: QueryKey {
                file: FileId(0),
                topic: Topic(topic),
            },
            ttl: 5,
            hops: 0,
        }
    }

    /// A path 0 - 1 - 2 - 3 where node 3 holds all topic-0 documents.
    fn setup() -> (Graph, WorkloadGen, Catalog, RoutingIndices) {
        let mut rng = Rng64::seed_from(1);
        let catalog = Catalog::generate(
            CatalogConfig {
                topics: 2,
                files_per_topic: 20,
                ..Default::default()
            },
            &mut rng,
        );
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        let mut workload = WorkloadGen::generate(
            4,
            &catalog,
            WorkloadConfig {
                files_per_node: 1,
                free_rider_fraction: 1.0, // start everyone empty
                ..Default::default()
            },
            &mut rng,
        );
        // Node 3: 10 docs of topic 0. Node 1: 1 doc of topic 1.
        for r in 0..10 {
            workload.library_mut(3).insert(catalog.file_at(Topic(0), r));
        }
        workload.library_mut(1).insert(catalog.file_at(Topic(1), 0));
        let mut p = RoutingIndices::new(3, 0.5, 1);
        p.init(&g, &workload, &catalog);
        (g, workload, catalog, p)
    }

    #[test]
    fn goodness_attenuates_with_distance() {
        let (_, _, _, p) = setup();
        // From node 1, neighbor 2 leads to node 3 (distance 1 from v=2):
        // topic-0 goodness = 10 * 0.5.
        let g12 = p.goodness(NodeId(1), NodeId(2)).unwrap();
        assert!((g12[0] - 5.0).abs() < 1e-9);
        // From node 2, neighbor 3 holds them directly: 10 * 1.0.
        let g23 = p.goodness(NodeId(2), NodeId(3)).unwrap();
        assert!((g23[0] - 10.0).abs() < 1e-9);
        // From node 1, neighbor 0 leads to nothing for topic 0.
        let g10 = p.goodness(NodeId(1), NodeId(0)).unwrap();
        assert_eq!(g10[0], 0.0);
    }

    #[test]
    fn forwards_toward_the_content() {
        let (_, _, _, mut p) = setup();
        let mut rng = Rng64::seed_from(2);
        let candidates = vec![NodeId(0), NodeId(2)];
        let m = msg(0);
        let ctx = ForwardCtx {
            node: NodeId(1),
            from: None,
            query: &m,
            candidates: &candidates,
        };
        assert_eq!(p.select(&ctx, &mut rng), vec![NodeId(2)]);
    }

    #[test]
    fn zero_information_floods() {
        let (_, _, _, mut p) = setup();
        let mut rng = Rng64::seed_from(3);
        // From node 3, the only neighbor is 2; topic 1's single doc sits
        // at node 1, distance 2 from v=2 — within horizon 3, so the score
        // is positive and routing picks neighbor 2.
        let m = msg(1);
        let candidates = vec![NodeId(2)];
        let ctx = ForwardCtx {
            node: NodeId(3),
            from: None,
            query: &m,
            candidates: &candidates,
        };
        assert_eq!(p.select(&ctx, &mut rng), vec![NodeId(2)]);
        // From node 2 looking away from the content (toward node 3),
        // topic-1 goodness via 3 is zero -> flooding fallback returns all
        // candidates.
        let candidates = vec![NodeId(3)];
        let ctx = ForwardCtx {
            node: NodeId(2),
            from: Some(NodeId(1)),
            query: &m,
            candidates: &candidates,
        };
        assert_eq!(p.select(&ctx, &mut rng), vec![NodeId(3)]);
    }

    #[test]
    fn rebuild_tracks_topology_after_throttle() {
        let (mut g, _, _, mut p) = setup();
        // Disconnect node 3; index is stale until enough change events.
        g.depart(NodeId(3));
        for _ in 0..8 {
            p.on_topology_change(&g);
        }
        let g12 = p.goodness(NodeId(1), NodeId(2)).unwrap();
        assert_eq!(g12[0], 0.0, "index did not rebuild");
    }

    #[test]
    #[should_panic(expected = "attenuation")]
    fn rejects_bad_attenuation() {
        RoutingIndices::new(2, 1.5, 1);
    }
}
