//! Expanding-ring search (Lv, Cao, Cohen, Li, Shenker — ICS'02).
//!
//! Not a forwarding policy — the forwarding is plain flooding — but an
//! *issuer-side* escalation schedule: start with a small TTL and reissue
//! with a larger one each time the deadline passes without a hit.
//! "Because expanding ring searches increase TTL until a hit is found,
//! nearby nodes may receive the query several times, which is an increase
//! in traffic" (§II) — E7 quantifies both the savings and that re-receipt
//! overhead.

use arq_gnutella::sim::RingSchedule;
use arq_gnutella::FloodPolicy;
use arq_simkern::time::Duration;

/// Builds the classic schedule: TTLs escalate from `start` by `step`
/// until `max`, waiting `wait` ticks between attempts. Returns the
/// flooding policy plus the schedule to install in
/// [`arq_gnutella::SimConfig::ring`].
pub fn expanding_ring(
    start: u32,
    step: u32,
    max: u32,
    wait: Duration,
) -> (FloodPolicy, RingSchedule) {
    assert!(
        start >= 1 && step >= 1 && max >= start,
        "degenerate schedule"
    );
    let mut ttls = Vec::new();
    let mut t = start;
    loop {
        ttls.push(t);
        if t >= max {
            break;
        }
        t = (t + step).min(max);
    }
    (FloodPolicy, RingSchedule { ttls, wait })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_escalates_to_max() {
        let (_, ring) = expanding_ring(2, 2, 7, Duration::from_ticks(500));
        assert_eq!(ring.ttls, vec![2, 4, 6, 7]);
        assert_eq!(ring.wait, Duration::from_ticks(500));
    }

    #[test]
    fn single_step_schedule() {
        let (_, ring) = expanding_ring(5, 1, 5, Duration::from_ticks(100));
        assert_eq!(ring.ttls, vec![5]);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn rejects_max_below_start() {
        expanding_ring(5, 1, 3, Duration::from_ticks(1));
    }
}
