//! # arq — Adaptively Routing P2P Queries Using Association Analysis
//!
//! A full reimplementation of Connelly, Bowron, Xiao, Tan & Wang
//! (ICPP 2006) and every substrate its evaluation depends on. The
//! umbrella crate re-exports the workspace under stable module names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`simkern`] | `arq-simkern` | event queue, RNG streams, statistics, charts |
//! | [`overlay`] | `arq-overlay` | topologies, churn, graph algorithms |
//! | [`content`] | `arq-content` | catalogs, interests, workloads |
//! | [`gnutella`] | `arq-gnutella` | protocol simulator + forwarding policies |
//! | [`trace`] | `arq-trace` | trace schema, trace DB, synthetic traces |
//! | [`assoc`] | `arq-assoc` | Apriori/FP-Growth, rule measures, pair rules |
//! | [`core`] | `arq-core` | the paper's strategies, evaluator, online policy |
//! | [`baselines`] | `arq-baselines` | flooding, k-walks, ring, shortcuts, RI |
//! | [`obs`] | `arq-obs` | structured event tracing, metrics registry, series |
//!
//! ## Quickstart
//!
//! Mine routing rules from a synthetic trace and evaluate the paper's
//! Sliding Window strategy:
//!
//! ```
//! use arq::core::{evaluate, SlidingWindow};
//! use arq::trace::{SynthConfig, SynthTrace};
//!
//! // Twelve 10,000-pair blocks from the calibrated trace generator.
//! let cfg = SynthConfig::paper_default(120_000, 42);
//! let pairs = SynthTrace::new(cfg).pairs();
//!
//! // Support threshold 10, as in the paper's experiments.
//! let mut strategy = SlidingWindow::new(10);
//! let run = evaluate(&mut strategy, &pairs, 10_000);
//! assert!(run.avg_coverage > 0.7);
//! assert!(run.avg_success > 0.7);
//! ```
//!
//! See `examples/` for end-to-end scenarios (offline trace analysis,
//! live-network policy comparison, adaptive-threshold tuning) and
//! `EXPERIMENTS.md` for the reproduction of every figure and table in
//! the paper.

#![warn(missing_docs)]

pub mod cli;
pub mod serve;

pub use arq_assoc as assoc;
pub use arq_baselines as baselines;
pub use arq_content as content;
pub use arq_core as core;
pub use arq_gnutella as gnutella;
pub use arq_obs as obs;
pub use arq_overlay as overlay;
pub use arq_simkern as simkern;
pub use arq_trace as trace;
