//! `arq serve` — a crash-safe streaming router service.
//!
//! The paper evaluates rule maintenance offline, over a recorded trace.
//! This module is the same machinery stood up as a long-running service:
//! an unbounded stream of query–reply events keeps a streaming maintainer
//! ([`DecayedPairCounts`] or [`LossyPairCounts`]) fresh, and `route`
//! lookups are answered from an epoch-versioned [`RuleHandle`] that the
//! miner swaps atomically on a tumbling-block schedule — lookups never
//! block on mining.
//!
//! ## Wire format
//!
//! Events arrive as length-prefixed JSON frames over stdin, a file, or a
//! Unix domain socket: an ASCII decimal byte length, `\n`, the JSON
//! payload, `\n`. Three event kinds reuse the trace-record schema:
//!
//! * `{"ev":"pair","src":N,"via":N,...}` — one joined query–reply pair
//!   (the extra [`PairRecord`](arq_trace::record::PairRecord) fields
//!   `time`/`guid`/`responder`/`query` are accepted and ignored);
//! * `{"ev":"route","id":N,"src":N,"k":K?}` — answer a lookup; the reply
//!   frame is `{"ev":"routed","id":N,"outcome":"rules"|"flood"|"shed",
//!   "via":[...],"epoch":E}`;
//! * `{"ev":"stats","id":N}` — snapshot the service counters.
//!
//! ## Backpressure and shedding
//!
//! Pairs flow to the mining thread through a bounded queue. By default
//! the ingest loop *blocks* when the queue is full — lossless
//! backpressure, the right mode for replaying a recorded stream where
//! the final ruleset digest must be exact. With [`ServeConfig::shed`]
//! the service instead degrades explicitly under overload, never
//! silently: at queue depth ≥ ¾ capacity it stops refreshing the
//! published ruleset (mining refreshes are the cheapest thing to shed);
//! when the queue actually fills, pairs are dropped (counted) and
//! lookups answer with a distinct `shed` outcome meaning "flood, we are
//! overloaded". The ladder steps back down as the queue drains.
//!
//! ## Crash safety
//!
//! A checkpoint is the maintainer's exact state (floats as bit patterns)
//! plus the count of pairs consumed, written with
//! [`arq_simkern::write_atomic`] (temp + fsync + rename) on a configurable
//! cadence and at drain. Restarting with the same checkpoint path
//! restores the state and skips exactly `consumed` pair events from the
//! re-streamed input, so a kill -9 mid-stream followed by a restart
//! reaches the same final ruleset digest as an uninterrupted run.
//!
//! SIGTERM (or EOF) drains: the queue empties, a final checkpoint and a
//! summary artifact are written, and the process exits cleanly.

use arq_assoc::{DecayedPairCounts, DecayedSnapshot, LossyPairCounts, LossySnapshot, RuleSet};
use arq_core::engine::registry::parse_spec;
use arq_core::{RouteDecision, RuleHandle};
use arq_obs::{to_prometheus, Registry};
use arq_simkern::{json, write_atomic, Histogram, Json};
use arq_trace::record::HostId;
use std::fmt;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// An error from the service: configuration, wire protocol, checkpoint
/// decoding, or I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// What went wrong, with enough context to locate it.
    pub message: String,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ServeError {}

fn err(message: impl Into<String>) -> ServeError {
    ServeError {
        message: message.into(),
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Writes one length-prefixed frame: `<len>\n<payload>\n`.
pub fn write_frame(w: &mut dyn Write, payload: &str) -> std::io::Result<()> {
    w.write_all(payload.len().to_string().as_bytes())?;
    w.write_all(b"\n")?;
    w.write_all(payload.as_bytes())?;
    w.write_all(b"\n")
}

/// Incremental frame parser over a growable byte buffer.
///
/// Bytes are [`feed`](FrameReader::feed) in as they arrive (from any
/// transport) and complete frames are pulled out with
/// [`next_frame`](FrameReader::next_frame); partial frames simply wait
/// for more bytes. This keeps the ingest loop free to poll a shutdown
/// flag between reads instead of blocking inside one.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    start: usize,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Appends raw transport bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact lazily so long sessions don't grow the buffer forever.
        if self.start > 0 && self.start >= self.buf.len() / 2 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// True when no partial frame is pending.
    pub fn is_drained(&self) -> bool {
        self.buf.len() == self.start
    }

    /// Extracts the next complete frame, `Ok(None)` if more bytes are
    /// needed, or an error for a malformed length header or frame body.
    pub fn next_frame(&mut self) -> Result<Option<String>, ServeError> {
        let pending = &self.buf[self.start..];
        let Some(nl) = pending.iter().position(|&b| b == b'\n') else {
            if pending.len() > 32 {
                return Err(err("frame length header exceeds 32 bytes with no newline"));
            }
            return Ok(None);
        };
        let header = std::str::from_utf8(&pending[..nl])
            .ok()
            .map(str::trim)
            .filter(|s| !s.is_empty());
        let len: usize = header
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err("bad frame length header (expected ASCII decimal byte count)"))?;
        // Header + payload + trailing newline must all be buffered.
        if pending.len() < nl + 1 + len + 1 {
            return Ok(None);
        }
        let body = &pending[nl + 1..nl + 1 + len];
        if pending[nl + 1 + len] != b'\n' {
            return Err(err(format!(
                "frame payload not followed by newline (declared length {len})"
            )));
        }
        let payload = std::str::from_utf8(body)
            .map_err(|_| err("frame payload is not UTF-8"))?
            .to_string();
        self.start += nl + 1 + len + 1;
        Ok(Some(payload))
    }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// One parsed input event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A query–reply pair observation (`src → via` candidate rule).
    Pair {
        /// Rule antecedent: the neighbor the query came from.
        src: HostId,
        /// Rule consequent: the neighbor the reply came back through.
        via: HostId,
    },
    /// A route lookup to answer.
    Route {
        /// Client-chosen correlation id, echoed in the reply.
        id: u64,
        /// The antecedent to look up.
        src: HostId,
        /// Consequent fan-out override (0 = service default).
        k: usize,
    },
    /// A counters snapshot request.
    Stats {
        /// Client-chosen correlation id, echoed in the reply.
        id: u64,
    },
}

/// Parses one frame payload into an [`Event`].
pub fn parse_event(payload: &str) -> Result<Event, ServeError> {
    let doc = json::parse(payload).map_err(|e| err(format!("bad event JSON: {e}")))?;
    let ev = doc
        .get("ev")
        .and_then(Json::as_str)
        .ok_or_else(|| err("event missing string field `ev`"))?;
    let field_u64 = |name: &str| -> Result<u64, ServeError> {
        doc.get(name)
            .and_then(Json::as_f64)
            .map(|x| x as u64)
            .ok_or_else(|| err(format!("`{ev}` event missing numeric field `{name}`")))
    };
    match ev {
        "pair" => Ok(Event::Pair {
            src: HostId(field_u64("src")? as u32),
            via: HostId(field_u64("via")? as u32),
        }),
        "route" => Ok(Event::Route {
            id: doc.get("id").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            src: HostId(field_u64("src")? as u32),
            k: doc.get("k").and_then(Json::as_f64).unwrap_or(0.0) as usize,
        }),
        "stats" => Ok(Event::Stats {
            id: doc.get("id").and_then(Json::as_f64).unwrap_or(0.0) as u64,
        }),
        other => Err(err(format!(
            "unknown event kind `{other}` (expected `pair`, `route`, or `stats`)"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Maintainer: the streaming rule state behind the service
// ---------------------------------------------------------------------------

/// The streaming maintainer the service keeps fresh: either decayed
/// counts (the §VI incremental maintainer) or lossy counting.
#[derive(Debug, Clone)]
pub enum Maintainer {
    /// Exponentially decayed pair counts; rules are pairs whose decayed
    /// weight clears `threshold`.
    Incremental {
        /// The decayed counts.
        counts: DecayedPairCounts,
        /// Rule support threshold (≥ 1).
        threshold: f64,
    },
    /// Manku–Motwani lossy counting; rules are pairs whose count clears
    /// `support`.
    Lossy {
        /// The lossy counts.
        counts: LossyPairCounts,
        /// Rule support threshold.
        support: u64,
    },
}

impl Maintainer {
    /// Builds a maintainer from a spec string: `incremental(t=10,hl=20000)`
    /// (support threshold, half-life in pairs) or `lossy(t=10,eps=0.0001)`.
    /// Bare names take the defaults shown.
    pub fn from_spec(spec: &str) -> Result<Maintainer, ServeError> {
        let parsed = parse_spec(spec).map_err(|e| err(format!("maintainer spec: {e}")))?;
        match parsed.name.as_str() {
            "incremental" => {
                let mut t = 10.0;
                let mut hl = 20_000.0;
                for (key, value) in &parsed.params {
                    match key.as_str() {
                        "t" => t = *value,
                        "hl" => hl = *value,
                        other => {
                            return Err(err(format!(
                                "maintainer `incremental` has no parameter `{other}` (has t, hl)"
                            )))
                        }
                    }
                }
                if t < 1.0 {
                    return Err(err("maintainer threshold t must be >= 1"));
                }
                Ok(Maintainer::Incremental {
                    counts: DecayedPairCounts::new(hl),
                    threshold: t,
                })
            }
            "lossy" => {
                let mut t = 10.0;
                let mut eps = 1e-4;
                for (key, value) in &parsed.params {
                    match key.as_str() {
                        "t" => t = *value,
                        "eps" => eps = *value,
                        other => {
                            return Err(err(format!(
                                "maintainer `lossy` has no parameter `{other}` (has t, eps)"
                            )))
                        }
                    }
                }
                Ok(Maintainer::Lossy {
                    counts: LossyPairCounts::new(eps),
                    support: t as u64,
                })
            }
            other => Err(err(format!(
                "unknown maintainer `{other}` (expected `incremental` or `lossy`)"
            ))),
        }
    }

    /// The canonical spec string this maintainer round-trips through
    /// (checkpoints store it and restarts must match it).
    pub fn spec(&self) -> String {
        match self {
            Maintainer::Incremental { counts, threshold } => {
                format!("incremental(t={},hl={})", threshold, counts.half_life())
            }
            Maintainer::Lossy { counts, support } => {
                format!("lossy(t={},eps={})", support, counts.epsilon())
            }
        }
    }

    /// Observes one pair.
    pub fn observe(&mut self, src: HostId, via: HostId) {
        match self {
            Maintainer::Incremental { counts, .. } => counts.observe(src, via),
            Maintainer::Lossy { counts, .. } => counts.observe(src, via),
        }
    }

    /// Total pairs observed over the maintainer's lifetime (survives
    /// checkpoint/restore — this is the replay cursor).
    pub fn consumed(&self) -> u64 {
        match self {
            Maintainer::Incremental { counts, .. } => counts.observations(),
            Maintainer::Lossy { counts, .. } => counts.observations(),
        }
    }

    /// Materializes the current rule set.
    pub fn ruleset(&self) -> RuleSet {
        match self {
            Maintainer::Incremental { counts, threshold } => counts.ruleset(*threshold),
            Maintainer::Lossy { counts, support } => counts.ruleset(*support),
        }
    }
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

/// First token of a checkpoint file's header line.
pub const CHECKPOINT_MAGIC: &str = "arq-checkpoint";
/// The checkpoint format version this build reads and writes.
pub const CHECKPOINT_VERSION: u64 = 1;

/// Encodes a float as its exact bit pattern (hex), so decay arithmetic
/// is bit-identical after a restore.
fn f64_bits(x: f64) -> Json {
    Json::Str(format!("{:016x}", x.to_bits()))
}

fn f64_from_bits(j: Option<&Json>, what: &str) -> Result<f64, ServeError> {
    let s = j
        .and_then(Json::as_str)
        .ok_or_else(|| err(format!("checkpoint: missing field `{what}`")))?;
    u64::from_str_radix(s, 16).map(f64::from_bits).map_err(|_| {
        err(format!(
            "checkpoint: field `{what}` is not a hex bit pattern"
        ))
    })
}

fn field_u64(doc: &Json, what: &str) -> Result<u64, ServeError> {
    doc.get(what)
        .and_then(Json::as_f64)
        .map(|x| x as u64)
        .ok_or_else(|| err(format!("checkpoint: missing numeric field `{what}`")))
}

/// Serializes the maintainer (exact state + replay cursor) as versioned
/// checkpoint text.
pub fn encode_checkpoint(m: &Maintainer) -> String {
    let state = match m {
        Maintainer::Incremental { counts, .. } => {
            let snap: DecayedSnapshot = counts.snapshot();
            Json::obj([
                ("half_life", f64_bits(snap.half_life)),
                ("clock", Json::from(snap.clock)),
                ("since_sweep", Json::from(snap.since_sweep)),
                (
                    "entries",
                    Json::Arr(
                        snap.entries
                            .iter()
                            .map(|&(s, v, value, at)| {
                                Json::Arr(vec![
                                    Json::from(s.0),
                                    Json::from(v.0),
                                    f64_bits(value),
                                    Json::from(at),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        }
        Maintainer::Lossy { counts, .. } => {
            let snap: LossySnapshot = counts.snapshot();
            Json::obj([
                ("epsilon", f64_bits(snap.epsilon)),
                ("current_bucket", Json::from(snap.current_bucket)),
                ("seen", Json::from(snap.seen)),
                (
                    "entries",
                    Json::Arr(
                        snap.entries
                            .iter()
                            .map(|&(s, v, count, delta)| {
                                Json::Arr(vec![
                                    Json::from(s.0),
                                    Json::from(v.0),
                                    Json::from(count),
                                    Json::from(delta),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        }
    };
    let doc = Json::obj([
        ("spec", Json::from(m.spec())),
        ("consumed", Json::from(m.consumed())),
        ("state", state),
    ]);
    format!("{CHECKPOINT_MAGIC} v{CHECKPOINT_VERSION}\n{doc}\n")
}

/// Decodes checkpoint text back into a maintainer. `expected_spec` is
/// the canonical spec of the service's configured maintainer; a mismatch
/// is an error (a checkpoint only resumes the run that wrote it).
pub fn decode_checkpoint(text: &str, expected_spec: &str) -> Result<Maintainer, ServeError> {
    let (header, body) = text
        .split_once('\n')
        .ok_or_else(|| err("checkpoint: missing header line"))?;
    let mut tokens = header.split_whitespace();
    if tokens.next() != Some(CHECKPOINT_MAGIC) {
        return Err(err(format!(
            "checkpoint: bad magic (expected `{CHECKPOINT_MAGIC}`)"
        )));
    }
    let version = tokens.next().unwrap_or("");
    if version != format!("v{CHECKPOINT_VERSION}") {
        return Err(err(format!(
            "checkpoint: unsupported version `{version}` (this build reads v{CHECKPOINT_VERSION})"
        )));
    }
    let doc = json::parse(body).map_err(|e| err(format!("checkpoint: bad JSON body: {e}")))?;
    let spec = doc
        .get("spec")
        .and_then(Json::as_str)
        .ok_or_else(|| err("checkpoint: missing field `spec`"))?;
    if spec != expected_spec {
        return Err(err(format!(
            "checkpoint was written by maintainer `{spec}` but the service is configured \
             as `{expected_spec}`"
        )));
    }
    let consumed = field_u64(&doc, "consumed")?;
    let state = doc
        .get("state")
        .ok_or_else(|| err("checkpoint: missing field `state`"))?;
    let entries = state
        .get("entries")
        .and_then(Json::as_array)
        .ok_or_else(|| err("checkpoint: missing array field `state.entries`"))?;
    let template = Maintainer::from_spec(expected_spec)?;
    let restored = match template {
        Maintainer::Incremental { threshold, .. } => {
            let mut snap = DecayedSnapshot {
                half_life: f64_from_bits(state.get("half_life"), "state.half_life")?,
                clock: field_u64(state, "clock")?,
                since_sweep: field_u64(state, "since_sweep")?,
                entries: Vec::with_capacity(entries.len()),
            };
            for row in entries {
                let cell = |i: usize| row.at(i).and_then(Json::as_f64);
                let (Some(s), Some(v), Some(at)) = (cell(0), cell(1), cell(3)) else {
                    return Err(err(
                        "checkpoint: malformed entry row (want [src,via,bits,at])",
                    ));
                };
                let value = f64_from_bits(row.at(2), "state.entries[].value")?;
                snap.entries
                    .push((HostId(s as u32), HostId(v as u32), value, at as u64));
            }
            Maintainer::Incremental {
                counts: DecayedPairCounts::restore(&snap),
                threshold,
            }
        }
        Maintainer::Lossy { support, .. } => {
            let mut snap = LossySnapshot {
                epsilon: f64_from_bits(state.get("epsilon"), "state.epsilon")?,
                current_bucket: field_u64(state, "current_bucket")?,
                seen: field_u64(state, "seen")?,
                entries: Vec::with_capacity(entries.len()),
            };
            for row in entries {
                let cell = |i: usize| row.at(i).and_then(Json::as_f64);
                let (Some(s), Some(v), Some(c), Some(d)) = (cell(0), cell(1), cell(2), cell(3))
                else {
                    return Err(err(
                        "checkpoint: malformed entry row (want [src,via,count,delta])",
                    ));
                };
                snap.entries
                    .push((HostId(s as u32), HostId(v as u32), c as u64, d as u64));
            }
            Maintainer::Lossy {
                counts: LossyPairCounts::restore(&snap),
                support,
            }
        }
    };
    if restored.consumed() != consumed {
        return Err(err(format!(
            "checkpoint: `consumed` says {consumed} but the state replays {}",
            restored.consumed()
        )));
    }
    Ok(restored)
}

/// Reads and decodes a checkpoint file. `Ok(None)` when the file does
/// not exist (fresh start); decode errors are not swallowed.
pub fn read_checkpoint(path: &str, expected_spec: &str) -> Result<Option<Maintainer>, ServeError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(err(format!("reading checkpoint {path}: {e}"))),
    };
    decode_checkpoint(&text, expected_spec).map(Some)
}

// ---------------------------------------------------------------------------
// Configuration and shared state
// ---------------------------------------------------------------------------

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maintainer spec (`incremental(...)` or `lossy(...)`).
    pub spec: String,
    /// Tumbling-block refresh schedule: republish rules every this many
    /// consumed pairs.
    pub block: u64,
    /// Default consequent fan-out for route answers.
    pub k: usize,
    /// Ingest queue capacity (pairs in flight to the miner).
    pub queue: usize,
    /// Enable the load-shedding ladder; off means lossless blocking
    /// backpressure.
    pub shed: bool,
    /// Checkpoint file to restore from and write to.
    pub checkpoint: Option<String>,
    /// Checkpoint every this many consumed pairs (0 = only at drain).
    pub checkpoint_every: u64,
    /// TCP address to serve plaintext metrics on (e.g. `127.0.0.1:0`).
    pub metrics: Option<String>,
    /// Cooperative stop flag (set by the SIGTERM handler or a test).
    pub stop: Arc<AtomicBool>,
    /// Synthetic extra work per observed pair (spin iterations); a
    /// test/bench aid for shaping mining cost. 0 in production.
    pub spin: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            spec: "incremental".to_string(),
            block: 10_000,
            k: 2,
            queue: 1024,
            shed: false,
            checkpoint: None,
            checkpoint_every: 0,
            metrics: None,
            stop: Arc::new(AtomicBool::new(false)),
            spin: 0,
        }
    }
}

/// Queue depth at which the shed ladder steps up (refreshes stop).
fn shed_hi(cap: usize) -> usize {
    (cap.saturating_mul(3) / 4).max(1)
}

/// Queue depth at which the ladder steps down one level.
fn shed_lo(cap: usize) -> usize {
    cap / 4
}

#[derive(Debug, Default)]
struct Counters {
    events: AtomicU64,
    pairs: AtomicU64,
    skipped: AtomicU64,
    routes: AtomicU64,
    route_rules: AtomicU64,
    route_flood: AtomicU64,
    route_shed: AtomicU64,
    shed_pairs: AtomicU64,
    shed_refreshes: AtomicU64,
    refreshes: AtomicU64,
    checkpoints: AtomicU64,
}

/// State shared between the ingest loop, the miner, and the metrics
/// endpoint.
#[derive(Debug)]
struct Shared {
    handle: RuleHandle,
    depth: AtomicUsize,
    cap: usize,
    shed_enabled: bool,
    level: AtomicU8,
    c: Counters,
    route_latency_us: Mutex<Histogram>,
}

impl Shared {
    fn new(cap: usize, shed_enabled: bool) -> Shared {
        Shared {
            handle: RuleHandle::new(),
            depth: AtomicUsize::new(0),
            cap,
            shed_enabled,
            level: AtomicU8::new(0),
            c: Counters::default(),
            // 0–10ms in 50µs buckets; overload pushes into the overflow
            // tail, which the p99 readout clamps to `hi`.
            route_latency_us: Mutex::new(Histogram::new(0.0, 10_000.0, 200)),
        }
    }

    #[inline]
    fn bump(c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Steps the shed ladder from the current queue depth: up to level 1
    /// at the high watermark, down one level at the low watermark.
    /// Level 2 is entered only by an actual queue-full drop.
    fn update_ladder(&self) {
        if !self.shed_enabled {
            return;
        }
        let depth = self.depth.load(Ordering::Relaxed);
        let level = self.level.load(Ordering::Relaxed);
        if depth >= shed_hi(self.cap) && level == 0 {
            self.level.store(1, Ordering::Relaxed);
        } else if depth <= shed_lo(self.cap) && level > 0 {
            self.level.store(level - 1, Ordering::Relaxed);
        }
    }

    fn on_queue_full(&self) {
        self.level.store(2, Ordering::Relaxed);
        Shared::bump(&self.c.shed_pairs);
    }

    /// Snapshots every instrument into a metrics registry (the scrape
    /// and summary view).
    fn registry(&self) -> Registry {
        let mut r = Registry::new();
        let rows: [(&str, &AtomicU64); 11] = [
            ("events_total", &self.c.events),
            ("pairs_total", &self.c.pairs),
            ("pairs_skipped_total", &self.c.skipped),
            ("routes_total", &self.c.routes),
            ("route_rules_total", &self.c.route_rules),
            ("route_flood_total", &self.c.route_flood),
            ("route_shed_total", &self.c.route_shed),
            ("shed_pairs_total", &self.c.shed_pairs),
            ("shed_refreshes_total", &self.c.shed_refreshes),
            ("refreshes_total", &self.c.refreshes),
            ("checkpoints_total", &self.c.checkpoints),
        ];
        for (name, cell) in rows {
            let id = r.counter(name);
            r.inc(id, cell.load(Ordering::Relaxed));
        }
        let epoch = r.gauge("epoch");
        r.set(epoch, self.handle.epoch() as f64);
        let depth = r.gauge("queue_depth");
        r.set(depth, self.depth.load(Ordering::Relaxed) as f64);
        let level = r.gauge("shed_level");
        r.set(level, self.level.load(Ordering::Relaxed) as f64);
        let lat = self.route_latency_us.lock().expect("latency lock");
        r.adopt_histogram("route_latency_us", lat.clone());
        r
    }
}

// ---------------------------------------------------------------------------
// SIGTERM
// ---------------------------------------------------------------------------

static TERM: AtomicBool = AtomicBool::new(false);

/// True once SIGTERM/SIGINT has been delivered (after
/// [`install_signal_handlers`]).
pub fn termination_requested() -> bool {
    TERM.load(Ordering::Relaxed)
}

/// Installs SIGTERM/SIGINT handlers that request a clean drain. No-op
/// off Unix.
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" fn on_term(_sig: i32) {
        TERM.store(true, Ordering::Relaxed);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_term as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

/// Installs SIGTERM/SIGINT handlers that request a clean drain. No-op
/// off Unix.
#[cfg(not(unix))]
pub fn install_signal_handlers() {}

// ---------------------------------------------------------------------------
// The miner thread
// ---------------------------------------------------------------------------

struct MinerConfig {
    block: u64,
    checkpoint: Option<String>,
    checkpoint_every: u64,
    spin: u64,
}

fn miner_loop(
    mut m: Maintainer,
    rx: Receiver<(HostId, HostId)>,
    shared: Arc<Shared>,
    cfg: MinerConfig,
) -> Result<Maintainer, String> {
    while let Ok((src, via)) = rx.recv() {
        shared.depth.fetch_sub(1, Ordering::Relaxed);
        m.observe(src, via);
        if cfg.spin > 0 {
            let mut acc = 0u64;
            for i in 0..cfg.spin {
                acc = std::hint::black_box(acc.wrapping_add(i));
            }
        }
        let consumed = m.consumed();
        if cfg.block > 0 && consumed.is_multiple_of(cfg.block) {
            if shared.shed_enabled && shared.level.load(Ordering::Relaxed) >= 1 {
                // Overloaded: skip the refresh, keep absorbing pairs.
                Shared::bump(&shared.c.shed_refreshes);
            } else {
                shared.handle.publish(m.ruleset());
                Shared::bump(&shared.c.refreshes);
            }
        }
        if cfg.checkpoint_every > 0 && consumed.is_multiple_of(cfg.checkpoint_every) {
            if let Some(path) = &cfg.checkpoint {
                write_atomic(path, encode_checkpoint(&m).as_bytes())
                    .map_err(|e| format!("writing checkpoint {path}: {e}"))?;
                Shared::bump(&shared.c.checkpoints);
            }
        }
    }
    Ok(m)
}

// ---------------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------------

/// Final summary of one service run (also serialized to `--out`).
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Canonical maintainer spec.
    pub maintainer: String,
    /// Frames processed.
    pub events: u64,
    /// Pairs handed to the miner.
    pub pairs: u64,
    /// Pairs skipped on restart (already covered by the checkpoint).
    pub skipped: u64,
    /// Route lookups answered.
    pub routes: u64,
    /// Lookups answered from rules / by flood fallback / shed.
    pub outcomes: (u64, u64, u64),
    /// Ruleset refreshes published.
    pub refreshes: u64,
    /// Refreshes skipped under overload.
    pub shed_refreshes: u64,
    /// Pairs dropped under overload.
    pub shed_pairs: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Final publish epoch.
    pub epoch: u64,
    /// Rules in the final set.
    pub rules: usize,
    /// FNV-1a digest of the final rule set.
    pub ruleset_digest: u64,
    /// Route-lookup service latency p50/p99 in microseconds (None when
    /// no lookups were answered). Quantiles come from the fixed-range
    /// histogram, so values clamp at its 10ms ceiling.
    pub route_latency_us: Option<(f64, f64)>,
    /// Bound metrics address, when the endpoint was enabled.
    pub metrics_addr: Option<String>,
    /// False when a stop request cut ingest before EOF.
    pub drained: bool,
}

impl ServeSummary {
    /// The summary as a JSON artifact.
    pub fn to_json(&self) -> Json {
        let (rules, flood, shed) = self.outcomes;
        Json::obj([
            ("serve", Json::from(format!("v{CHECKPOINT_VERSION}"))),
            ("maintainer", Json::from(&self.maintainer)),
            ("events", Json::from(self.events)),
            ("pairs", Json::from(self.pairs)),
            ("skipped", Json::from(self.skipped)),
            ("routes", Json::from(self.routes)),
            (
                "outcomes",
                Json::obj([
                    ("rules", Json::from(rules)),
                    ("flood", Json::from(flood)),
                    ("shed", Json::from(shed)),
                ]),
            ),
            ("refreshes", Json::from(self.refreshes)),
            ("shed_refreshes", Json::from(self.shed_refreshes)),
            ("shed_pairs", Json::from(self.shed_pairs)),
            ("checkpoints", Json::from(self.checkpoints)),
            ("epoch", Json::from(self.epoch)),
            ("rules", Json::from(self.rules)),
            (
                "ruleset_digest",
                Json::from(format!("{:016x}", self.ruleset_digest)),
            ),
            (
                "route_p50_us",
                self.route_latency_us
                    .map_or(Json::Null, |(p50, _)| Json::Float(p50)),
            ),
            (
                "route_p99_us",
                self.route_latency_us
                    .map_or(Json::Null, |(_, p99)| Json::Float(p99)),
            ),
            ("drained", Json::from(self.drained)),
        ])
    }

    /// A human-readable run report.
    pub fn report(&self) -> String {
        let (rules, flood, shed) = self.outcomes;
        let mut s = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(s, "serve: maintainer {}", self.maintainer);
        if let Some(addr) = &self.metrics_addr {
            let _ = writeln!(s, "  metrics:         http://{addr}/metrics");
        }
        let _ = writeln!(
            s,
            "  events:          {} ({} pairs, {} skipped by checkpoint)",
            self.events, self.pairs, self.skipped
        );
        let _ = writeln!(
            s,
            "  routes:          {} ({} rules, {} flood, {} shed)",
            self.routes, rules, flood, shed
        );
        if let Some((p50, p99)) = self.route_latency_us {
            let _ = writeln!(s, "  route latency:   p50 {p50:.0}us  p99 {p99:.0}us");
        }
        let _ = writeln!(
            s,
            "  refreshes:       {} published, {} shed; {} pairs dropped",
            self.refreshes, self.shed_refreshes, self.shed_pairs
        );
        let _ = writeln!(
            s,
            "  checkpoints:     {} written{}",
            self.checkpoints,
            if self.drained { "" } else { " (stopped early)" }
        );
        let _ = writeln!(
            s,
            "  final rules:     {} at epoch {} digest {:016x}",
            self.rules, self.epoch, self.ruleset_digest
        );
        s
    }
}

/// A running service: miner thread, shared state, optional metrics
/// endpoint, and the ingest-side replay cursor.
struct Server {
    cfg: ServeConfig,
    spec: String,
    shared: Arc<Shared>,
    tx: Option<SyncSender<(HostId, HostId)>>,
    miner: Option<JoinHandle<Result<Maintainer, String>>>,
    skip: u64,
    skipped_total: u64,
    metrics_stop: Arc<AtomicBool>,
    metrics_join: Option<JoinHandle<()>>,
    metrics_addr: Option<String>,
}

impl Server {
    fn start(cfg: ServeConfig) -> Result<Server, ServeError> {
        let fresh = Maintainer::from_spec(&cfg.spec)?;
        let spec = fresh.spec();
        let mut skip = 0;
        let maintainer = match &cfg.checkpoint {
            Some(path) => match read_checkpoint(path, &spec)? {
                Some(restored) => {
                    skip = restored.consumed();
                    restored
                }
                None => fresh,
            },
            None => fresh,
        };
        let shared = Arc::new(Shared::new(cfg.queue.max(1), cfg.shed));
        if skip > 0 {
            // Serve restored rules immediately; don't wait for the first
            // block boundary after a restart.
            shared.handle.publish(maintainer.ruleset());
        }
        let (tx, rx) = mpsc::sync_channel(cfg.queue.max(1));
        let miner_cfg = MinerConfig {
            block: cfg.block,
            checkpoint: cfg.checkpoint.clone(),
            checkpoint_every: cfg.checkpoint_every,
            spin: cfg.spin,
        };
        let miner_shared = Arc::clone(&shared);
        let miner = std::thread::Builder::new()
            .name("arq-serve-miner".to_string())
            .spawn(move || miner_loop(maintainer, rx, miner_shared, miner_cfg))
            .map_err(|e| err(format!("spawning miner thread: {e}")))?;
        let metrics_stop = Arc::new(AtomicBool::new(false));
        let (metrics_join, metrics_addr) = match &cfg.metrics {
            Some(addr) => {
                let (join, bound) =
                    spawn_metrics(addr, Arc::clone(&shared), Arc::clone(&metrics_stop))?;
                (Some(join), Some(bound))
            }
            None => (None, None),
        };
        Ok(Server {
            cfg,
            spec,
            shared,
            tx: Some(tx),
            miner: Some(miner),
            skip,
            skipped_total: 0,
            metrics_stop,
            metrics_join,
            metrics_addr,
        })
    }

    fn stopping(&self) -> bool {
        self.cfg.stop.load(Ordering::Relaxed) || termination_requested()
    }

    /// Handles one frame payload, writing any reply frame to `out`.
    fn handle_payload(&mut self, payload: &str, out: &mut dyn Write) -> Result<(), ServeError> {
        Shared::bump(&self.shared.c.events);
        let event = match parse_event(payload) {
            Ok(event) => event,
            Err(e) => {
                // A malformed event is the client's bug, not grounds to
                // kill everyone else's stream: report it in-band.
                let reply = Json::obj([
                    ("ev", Json::from("error")),
                    ("error", Json::from(e.message)),
                ]);
                write_frame(out, &reply.to_string())
                    .and_then(|()| out.flush())
                    .map_err(|e| err(format!("writing error reply: {e}")))?;
                return Ok(());
            }
        };
        match event {
            Event::Pair { src, via } => {
                self.shared.update_ladder();
                if self.skip > 0 {
                    self.skip -= 1;
                    self.skipped_total += 1;
                    Shared::bump(&self.shared.c.skipped);
                    return Ok(());
                }
                let tx = self.tx.as_ref().expect("ingest after finish");
                if self.cfg.shed {
                    match tx.try_send((src, via)) {
                        Ok(()) => {
                            self.shared.depth.fetch_add(1, Ordering::Relaxed);
                            Shared::bump(&self.shared.c.pairs);
                        }
                        Err(TrySendError::Full(_)) => self.shared.on_queue_full(),
                        Err(TrySendError::Disconnected(_)) => {
                            return Err(err("mining thread exited"));
                        }
                    }
                } else {
                    // Lossless mode: block until the miner makes room.
                    // The depth bump precedes send so a blocked producer
                    // reads as a full queue to observers.
                    self.shared.depth.fetch_add(1, Ordering::Relaxed);
                    if tx.send((src, via)).is_err() {
                        return Err(err("mining thread exited"));
                    }
                    Shared::bump(&self.shared.c.pairs);
                }
            }
            Event::Route { id, src, k } => {
                let t0 = Instant::now();
                let k = if k == 0 { self.cfg.k } else { k };
                let overloaded = self.cfg.shed && self.shared.level.load(Ordering::Relaxed) >= 2;
                let (outcome, vias) = if overloaded {
                    Shared::bump(&self.shared.c.route_shed);
                    ("shed", Vec::new())
                } else {
                    match self.shared.handle.route(src, k) {
                        RouteDecision::Rules(vias) => {
                            Shared::bump(&self.shared.c.route_rules);
                            ("rules", vias)
                        }
                        RouteDecision::Flood => {
                            Shared::bump(&self.shared.c.route_flood);
                            ("flood", Vec::new())
                        }
                    }
                };
                Shared::bump(&self.shared.c.routes);
                let reply = Json::obj([
                    ("ev", Json::from("routed")),
                    ("id", Json::from(id)),
                    ("outcome", Json::from(outcome)),
                    (
                        "via",
                        Json::Arr(vias.iter().map(|h| Json::from(h.0)).collect()),
                    ),
                    ("epoch", Json::from(self.shared.handle.epoch())),
                ]);
                write_frame(out, &reply.to_string())
                    .and_then(|()| out.flush())
                    .map_err(|e| err(format!("writing route reply: {e}")))?;
                let us = t0.elapsed().as_secs_f64() * 1e6;
                self.shared
                    .route_latency_us
                    .lock()
                    .expect("latency lock")
                    .record(us);
            }
            Event::Stats { id } => {
                let c = &self.shared.c;
                let reply = Json::obj([
                    ("ev", Json::from("stats")),
                    ("id", Json::from(id)),
                    ("events", Json::from(c.events.load(Ordering::Relaxed))),
                    ("pairs", Json::from(c.pairs.load(Ordering::Relaxed))),
                    ("routes", Json::from(c.routes.load(Ordering::Relaxed))),
                    ("epoch", Json::from(self.shared.handle.epoch())),
                    (
                        "queue_depth",
                        Json::from(self.shared.depth.load(Ordering::Relaxed) as u64),
                    ),
                    (
                        "shed_level",
                        Json::from(u64::from(self.shared.level.load(Ordering::Relaxed))),
                    ),
                ]);
                write_frame(out, &reply.to_string())
                    .and_then(|()| out.flush())
                    .map_err(|e| err(format!("writing stats reply: {e}")))?;
            }
        }
        Ok(())
    }

    /// Drains the queue, writes the final checkpoint, and builds the
    /// summary.
    fn finish(mut self, drained: bool) -> Result<ServeSummary, ServeError> {
        drop(self.tx.take());
        let maintainer = self
            .miner
            .take()
            .expect("finish called twice")
            .join()
            .map_err(|_| err("mining thread panicked"))?
            .map_err(err)?;
        // Publish the final state so the summary epoch/rules reflect
        // everything consumed, even mid-block or under shed.
        let final_rules = maintainer.ruleset();
        let epoch = self.shared.handle.publish(final_rules.clone());
        Shared::bump(&self.shared.c.refreshes);
        if let Some(path) = &self.cfg.checkpoint {
            write_atomic(path, encode_checkpoint(&maintainer).as_bytes())
                .map_err(|e| err(format!("writing checkpoint {path}: {e}")))?;
            Shared::bump(&self.shared.c.checkpoints);
        }
        self.metrics_stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.metrics_join.take() {
            let _ = join.join();
        }
        let route_latency_us = {
            let lat = self.shared.route_latency_us.lock().expect("latency lock");
            match (lat.quantile(0.50), lat.quantile(0.99)) {
                (Some(p50), Some(p99)) => Some((p50, p99)),
                _ => None,
            }
        };
        let c = &self.shared.c;
        let load = |cell: &AtomicU64| cell.load(Ordering::Relaxed);
        Ok(ServeSummary {
            maintainer: self.spec.clone(),
            events: load(&c.events),
            pairs: load(&c.pairs),
            skipped: self.skipped_total,
            routes: load(&c.routes),
            outcomes: (
                load(&c.route_rules),
                load(&c.route_flood),
                load(&c.route_shed),
            ),
            refreshes: load(&c.refreshes),
            shed_refreshes: load(&c.shed_refreshes),
            shed_pairs: load(&c.shed_pairs),
            checkpoints: load(&c.checkpoints),
            epoch,
            rules: final_rules.rule_count(),
            ruleset_digest: final_rules.digest(),
            route_latency_us,
            metrics_addr: self.metrics_addr.clone(),
            drained,
        })
    }
}

/// What the byte pump delivered.
enum Feed {
    Data(Vec<u8>),
    Eof,
}

/// Reads `r` on a dedicated thread and forwards chunks, so the ingest
/// loop can poll the stop flag instead of blocking in `read` (a blocked
/// `read` on stdin would otherwise swallow a SIGTERM until the next
/// frame). The thread ends at EOF or when the receiver is dropped and
/// the next read completes.
fn pump(mut r: impl Read + Send + 'static) -> Receiver<Feed> {
    let (tx, rx) = mpsc::sync_channel(8);
    std::thread::Builder::new()
        .name("arq-serve-input".to_string())
        .spawn(move || {
            let mut chunk = vec![0u8; 64 * 1024];
            loop {
                match r.read(&mut chunk) {
                    Ok(0) => {
                        let _ = tx.send(Feed::Eof);
                        return;
                    }
                    Ok(n) => {
                        if tx.send(Feed::Data(chunk[..n].to_vec())).is_err() {
                            return;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => {
                        let _ = tx.send(Feed::Eof);
                        return;
                    }
                }
            }
        })
        .expect("spawning input pump");
    rx
}

/// Runs the ingest loop over one byte stream until EOF or a stop
/// request, writing reply frames to `replies`. Returns `(drained,
/// truncated)` — `drained` false when stopped early, `truncated` true
/// when EOF cut a frame in half.
fn ingest_stream(
    server: &mut Server,
    input: impl Read + Send + 'static,
    replies: &mut dyn Write,
) -> Result<bool, ServeError> {
    let feed_rx = pump(input);
    let mut frames = FrameReader::new();
    let mut eof = false;
    loop {
        while let Some(payload) = frames.next_frame()? {
            server.handle_payload(&payload, replies)?;
        }
        if eof {
            if !frames.is_drained() {
                return Err(err("input ended mid-frame (truncated stream)"));
            }
            return Ok(true);
        }
        if server.stopping() {
            return Ok(false);
        }
        match feed_rx.recv_timeout(Duration::from_millis(100)) {
            Ok(Feed::Data(bytes)) => frames.feed(&bytes),
            Ok(Feed::Eof) | Err(mpsc::RecvTimeoutError::Disconnected) => eof = true,
            Err(mpsc::RecvTimeoutError::Timeout) => {}
        }
    }
}

/// Runs the service over one event stream (stdin or a file). Reply
/// frames go to `replies`.
pub fn run_events(
    cfg: ServeConfig,
    input: impl Read + Send + 'static,
    replies: &mut dyn Write,
) -> Result<ServeSummary, ServeError> {
    let mut server = Server::start(cfg)?;
    let drained = ingest_stream(&mut server, input, replies)?;
    server.finish(drained)
}

/// Runs the service on a Unix domain socket, accepting one connection
/// at a time until a stop request. Mining state and the replay cursor
/// persist across connections.
#[cfg(unix)]
pub fn run_socket(cfg: ServeConfig, path: &str) -> Result<ServeSummary, ServeError> {
    use std::os::unix::net::UnixListener;
    match std::fs::remove_file(path) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(err(format!("removing stale socket {path}: {e}"))),
    }
    let listener =
        UnixListener::bind(path).map_err(|e| err(format!("binding socket {path}: {e}")))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| err(format!("socket {path}: {e}")))?;
    let mut server = Server::start(cfg)?;
    let mut drained = true;
    while !server.stopping() {
        match listener.accept() {
            Ok((stream, _)) => {
                stream
                    .set_nonblocking(false)
                    .map_err(|e| err(format!("socket stream: {e}")))?;
                let reader = stream
                    .try_clone()
                    .map_err(|e| err(format!("socket stream: {e}")))?;
                let mut writer = stream;
                // EOF here is just the client hanging up; keep serving.
                drained = ingest_stream(&mut server, reader, &mut writer)?;
                if !drained {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(err(format!("accepting on {path}: {e}"))),
        }
    }
    let summary = server.finish(drained);
    let _ = std::fs::remove_file(path);
    summary
}

// ---------------------------------------------------------------------------
// Metrics endpoint
// ---------------------------------------------------------------------------

/// Serves the registry snapshot as Prometheus plaintext over HTTP on
/// `addr` (a `host:port`; port 0 picks one). Returns the accept-loop
/// handle and the bound address.
fn spawn_metrics(
    addr: &str,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
) -> Result<(JoinHandle<()>, String), ServeError> {
    let listener = std::net::TcpListener::bind(addr)
        .map_err(|e| err(format!("binding metrics endpoint {addr}: {e}")))?;
    let bound = listener
        .local_addr()
        .map_err(|e| err(format!("metrics endpoint {addr}: {e}")))?
        .to_string();
    listener
        .set_nonblocking(true)
        .map_err(|e| err(format!("metrics endpoint {addr}: {e}")))?;
    let join = std::thread::Builder::new()
        .name("arq-serve-metrics".to_string())
        .spawn(move || loop {
            match listener.accept() {
                Ok((mut stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
                    // Drain (part of) the request; any request gets the
                    // same scrape.
                    let mut request = [0u8; 1024];
                    let _ = stream.read(&mut request);
                    let body = to_prometheus(&shared.registry(), "arq_serve");
                    let _ = write!(
                        stream,
                        "HTTP/1.0 200 OK\r\ncontent-type: text/plain; version=0.0.4\r\n\
                         content-length: {}\r\nconnection: close\r\n\r\n{body}",
                        body.len()
                    );
                }
                Err(_) => {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        })
        .map_err(|e| err(format!("spawning metrics thread: {e}")))?;
    Ok((join, bound))
}

// ---------------------------------------------------------------------------
// Event stream generation (the `gen-events` command)
// ---------------------------------------------------------------------------

/// Renders a pair record as a `pair` event frame payload (full trace
/// schema, though the service only needs `src`/`via`).
pub fn pair_event_json(p: &arq_trace::record::PairRecord) -> String {
    Json::obj([
        ("ev", Json::from("pair")),
        ("time", Json::from(p.time.ticks())),
        ("guid", Json::from(format!("{:032x}", p.guid.0))),
        ("src", Json::from(p.src.0)),
        ("via", Json::from(p.via.0)),
        ("responder", Json::from(p.responder.0)),
        ("query", Json::from(p.query.0)),
    ])
    .to_string()
}

/// Renders a framed event stream for a synthetic trace: every pair as a
/// `pair` frame, plus a `route` lookup (for the pair's own antecedent)
/// after every `route_every` pairs when nonzero.
pub fn render_event_stream(pairs: &[arq_trace::record::PairRecord], route_every: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(pairs.len() * 96);
    let mut lookup_id = 0u64;
    for (i, p) in pairs.iter().enumerate() {
        write_frame(&mut out, &pair_event_json(p)).expect("vec write");
        if route_every > 0 && (i + 1) % route_every == 0 {
            lookup_id += 1;
            let route = Json::obj([
                ("ev", Json::from("route")),
                ("id", Json::from(lookup_id)),
                ("src", Json::from(p.src.0)),
            ]);
            write_frame(&mut out, &route.to_string()).expect("vec write");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use arq_trace::record::PairRecord;
    use arq_trace::{SynthConfig, SynthTrace};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("arq-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn trace(pairs: usize, seed: u64) -> Vec<PairRecord> {
        SynthTrace::new(SynthConfig::paper_default(pairs, seed)).pairs()
    }

    #[test]
    fn frame_round_trip_and_partials() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, "{\"a\":1}").unwrap();
        write_frame(&mut bytes, "").unwrap();
        write_frame(&mut bytes, "hello").unwrap();
        let mut fr = FrameReader::new();
        // Feed byte-by-byte: partials must never produce a frame early.
        let mut got = Vec::new();
        for b in bytes {
            fr.feed(&[b]);
            while let Some(f) = fr.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, ["{\"a\":1}", "", "hello"]);
        assert!(fr.is_drained());
    }

    #[test]
    fn bad_length_header_is_an_error() {
        let mut fr = FrameReader::new();
        fr.feed(b"xyz\npayload\n");
        assert!(fr
            .next_frame()
            .unwrap_err()
            .message
            .contains("length header"));
    }

    #[test]
    fn missing_frame_terminator_is_an_error() {
        let mut fr = FrameReader::new();
        fr.feed(b"2\nabX");
        let e = fr.next_frame().unwrap_err();
        assert!(e.message.contains("not followed by newline"), "{e}");
    }

    #[test]
    fn event_parsing_names_the_missing_field() {
        assert_eq!(
            parse_event("{\"ev\":\"pair\",\"src\":1,\"via\":2}").unwrap(),
            Event::Pair {
                src: HostId(1),
                via: HostId(2)
            }
        );
        let e = parse_event("{\"ev\":\"pair\",\"src\":1}").unwrap_err();
        assert!(e.message.contains("`via`"), "{e}");
        let e = parse_event("{\"ev\":\"warp\"}").unwrap_err();
        assert!(e.message.contains("unknown event kind `warp`"), "{e}");
    }

    #[test]
    fn maintainer_specs_round_trip() {
        let m = Maintainer::from_spec("incremental").unwrap();
        assert_eq!(m.spec(), "incremental(t=10,hl=20000)");
        let m = Maintainer::from_spec("lossy(t=5,eps=0.001)").unwrap();
        assert_eq!(m.spec(), "lossy(t=5,eps=0.001)");
        let e = Maintainer::from_spec("magic").unwrap_err();
        assert!(e.message.contains("unknown maintainer `magic`"), "{e}");
        let e = Maintainer::from_spec("incremental(zap=1)").unwrap_err();
        assert!(e.message.contains("no parameter `zap`"), "{e}");
    }

    #[test]
    fn checkpoint_round_trips_exactly() {
        for spec in ["incremental(t=2,hl=500)", "lossy(t=2,eps=0.01)"] {
            let mut m = Maintainer::from_spec(spec).unwrap();
            for p in trace(3_000, 7) {
                m.observe(p.src, p.via);
            }
            let restored = decode_checkpoint(&encode_checkpoint(&m), &m.spec()).unwrap();
            assert_eq!(restored.consumed(), m.consumed(), "{spec}");
            assert_eq!(
                restored.ruleset().digest(),
                m.ruleset().digest(),
                "{spec} digest"
            );
            // The restored state must also *evolve* identically.
            let mut m2 = restored;
            let mut m1 = m;
            for p in trace(500, 8) {
                m1.observe(p.src, p.via);
                m2.observe(p.src, p.via);
            }
            assert_eq!(
                m1.ruleset().digest(),
                m2.ruleset().digest(),
                "{spec} suffix"
            );
        }
    }

    #[test]
    fn checkpoint_errors_are_typed() {
        let m = Maintainer::from_spec("incremental").unwrap();
        let text = encode_checkpoint(&m);
        let future = text.replacen("v1", "v9", 1);
        let e = decode_checkpoint(&future, &m.spec()).unwrap_err();
        assert!(e.message.contains("unsupported version `v9`"), "{e}");
        let e = decode_checkpoint(&text, "lossy(t=10,eps=0.0001)").unwrap_err();
        assert!(e.message.contains("configured as `lossy"), "{e}");
        let e = decode_checkpoint("garbage", &m.spec()).unwrap_err();
        assert!(
            e.message.contains("bad magic") || e.message.contains("header"),
            "{e}"
        );
    }

    #[test]
    fn end_to_end_stream_matches_direct_feed() {
        let pairs = trace(4_000, 42);
        let stream = render_event_stream(&pairs, 500);
        let cfg = ServeConfig {
            spec: "incremental(t=5,hl=2000)".to_string(),
            block: 1_000,
            queue: 64,
            ..ServeConfig::default()
        };
        let mut replies = Vec::new();
        let summary = run_events(cfg, std::io::Cursor::new(stream), &mut replies).unwrap();
        assert_eq!(summary.pairs, 4_000);
        assert_eq!(summary.routes, 8);
        assert!(summary.drained);
        assert!(summary.refreshes >= 4, "{}", summary.refreshes);
        // Same digest as feeding the maintainer directly.
        let mut direct = Maintainer::from_spec("incremental(t=5,hl=2000)").unwrap();
        for p in &pairs {
            direct.observe(p.src, p.via);
        }
        assert_eq!(summary.ruleset_digest, direct.ruleset().digest());
        // Replies are well-formed routed frames.
        let text = String::from_utf8(replies).unwrap();
        assert!(text.contains("\"ev\":\"routed\""), "{text}");
        assert!(text.contains("\"outcome\":\"rules\"") || text.contains("\"outcome\":\"flood\""));
    }

    #[test]
    fn malformed_events_get_error_replies_not_aborts() {
        let mut stream = Vec::new();
        write_frame(&mut stream, "{\"ev\":\"nope\"}").unwrap();
        write_frame(&mut stream, "{\"ev\":\"pair\",\"src\":1,\"via\":2}").unwrap();
        write_frame(&mut stream, "{\"ev\":\"stats\",\"id\":9}").unwrap();
        let mut replies = Vec::new();
        let summary = run_events(
            ServeConfig::default(),
            std::io::Cursor::new(stream),
            &mut replies,
        )
        .unwrap();
        assert_eq!(summary.events, 3);
        assert_eq!(summary.pairs, 1);
        let text = String::from_utf8(replies).unwrap();
        assert!(text.contains("\"ev\":\"error\""), "{text}");
        assert!(text.contains("\"ev\":\"stats\""), "{text}");
    }

    #[test]
    fn kill_and_restart_reaches_the_uninterrupted_digest() {
        let dir = temp_dir("restart");
        let pairs = trace(6_000, 13);
        let full = render_event_stream(&pairs, 0);
        let spec = "incremental(t=4,hl=3000)".to_string();
        // Uninterrupted reference run.
        let reference = run_events(
            ServeConfig {
                spec: spec.clone(),
                block: 1_000,
                ..ServeConfig::default()
            },
            std::io::Cursor::new(full.clone()),
            &mut Vec::new(),
        )
        .unwrap();
        // "Crashed" run: only a prefix of the stream arrives, but
        // checkpoints are being written along the way.
        let ckpt = dir.join("serve.ckpt").to_string_lossy().to_string();
        let cut = full.len() * 3 / 5;
        let mut prefix = full[..cut].to_vec();
        // Cut exactly at a frame boundary: drop the trailing partial.
        while !prefix.is_empty() && prefix.last() != Some(&b'\n') {
            prefix.pop();
        }
        // A partial frame at EOF is a truncation error — emulate the
        // crash by streaming only whole frames.
        let mut fr = FrameReader::new();
        fr.feed(&prefix);
        let mut whole = Vec::new();
        while let Ok(Some(f)) = fr.next_frame() {
            write_frame(&mut whole, &f).unwrap();
        }
        let crashed = run_events(
            ServeConfig {
                spec: spec.clone(),
                block: 1_000,
                checkpoint: Some(ckpt.clone()),
                checkpoint_every: 500,
                ..ServeConfig::default()
            },
            std::io::Cursor::new(whole),
            &mut Vec::new(),
        )
        .unwrap();
        assert!(crashed.checkpoints > 1, "{}", crashed.checkpoints);
        // Restart: full stream again, same checkpoint path. The replay
        // cursor skips what the checkpoint already covers.
        let restarted = run_events(
            ServeConfig {
                spec: spec.clone(),
                block: 1_000,
                checkpoint: Some(ckpt),
                checkpoint_every: 500,
                ..ServeConfig::default()
            },
            std::io::Cursor::new(full),
            &mut Vec::new(),
        )
        .unwrap();
        assert!(restarted.skipped > 0);
        assert_eq!(restarted.skipped + restarted.pairs, 6_000);
        assert_eq!(restarted.ruleset_digest, reference.ruleset_digest);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overload_sheds_explicitly_and_recovers() {
        // A deliberately slow miner (spin) and a tiny queue force the
        // ladder through all its levels.
        let mut stream = Vec::new();
        for i in 0..200u32 {
            write_frame(
                &mut stream,
                &format!("{{\"ev\":\"pair\",\"src\":{},\"via\":7}}", i % 5),
            )
            .unwrap();
        }
        write_frame(&mut stream, "{\"ev\":\"route\",\"id\":1,\"src\":0}").unwrap();
        let cfg = ServeConfig {
            spec: "incremental(t=2,hl=1000)".to_string(),
            block: 50,
            queue: 2,
            shed: true,
            spin: 500_000,
            ..ServeConfig::default()
        };
        let mut replies = Vec::new();
        let summary = run_events(cfg, std::io::Cursor::new(stream), &mut replies).unwrap();
        assert!(summary.shed_pairs > 0, "queue never filled");
        assert_eq!(
            summary.pairs + summary.shed_pairs,
            200,
            "drops must be counted, never silent"
        );
        let text = String::from_utf8(replies).unwrap();
        assert!(
            text.contains("\"outcome\":\"shed\""),
            "route under overload must answer `shed`: {text}"
        );
        assert_eq!(summary.outcomes.2, 1);
    }

    #[test]
    fn stop_flag_drains_early_but_cleanly() {
        let stop = Arc::new(AtomicBool::new(true)); // stop before the first frame
        let cfg = ServeConfig {
            stop: Arc::clone(&stop),
            ..ServeConfig::default()
        };
        let stream = render_event_stream(&trace(100, 1), 0);
        let summary = run_events(cfg, std::io::Cursor::new(stream), &mut Vec::new()).unwrap();
        assert!(!summary.drained);
        assert_eq!(summary.pairs, 0);
    }

    #[cfg(unix)]
    #[test]
    fn socket_serves_routes_across_connections() {
        use std::os::unix::net::UnixStream;
        let dir = temp_dir("socket");
        let sock = dir.join("arq.sock").to_string_lossy().to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let cfg = ServeConfig {
            spec: "incremental(t=2,hl=1000)".to_string(),
            block: 10,
            stop: Arc::clone(&stop),
            ..ServeConfig::default()
        };
        let sock2 = sock.clone();
        let service = std::thread::spawn(move || run_socket(cfg, &sock2));
        // Wait for the socket to appear.
        let mut stream = None;
        for _ in 0..200 {
            if let Ok(s) = UnixStream::connect(&sock) {
                stream = Some(s);
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let mut stream = stream.expect("service socket never appeared");
        for _ in 0..20 {
            write_frame(&mut stream, "{\"ev\":\"pair\",\"src\":3,\"via\":9}").unwrap();
        }
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut fr = FrameReader::new();
        let next_reply = |stream: &mut UnixStream, fr: &mut FrameReader| loop {
            if let Some(f) = fr.next_frame().unwrap() {
                break f;
            }
            let mut chunk = [0u8; 4096];
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "service hung up early");
            fr.feed(&chunk[..n]);
        };
        // The miner publishes asynchronously; poll stats until the first
        // block refresh lands before asking for a rules answer.
        loop {
            write_frame(&mut stream, "{\"ev\":\"stats\",\"id\":1}").unwrap();
            let stats = next_reply(&mut stream, &mut fr);
            if !stats.contains("\"epoch\":0") {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        write_frame(&mut stream, "{\"ev\":\"route\",\"id\":5,\"src\":3}").unwrap();
        let reply = next_reply(&mut stream, &mut fr);
        assert!(reply.contains("\"id\":5"), "{reply}");
        assert!(reply.contains("\"outcome\":\"rules\""), "{reply}");
        drop(stream);
        stop.store(true, Ordering::Relaxed);
        let summary = service.join().unwrap().unwrap();
        assert_eq!(summary.pairs, 20);
        assert_eq!(summary.routes, 1);
        assert!(
            !std::path::Path::new(&sock).exists(),
            "socket not cleaned up"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_endpoint_scrapes_prometheus_text() {
        let shared = Arc::new(Shared::new(8, false));
        Shared::bump(&shared.c.events);
        Shared::bump(&shared.c.events);
        let stop = Arc::new(AtomicBool::new(false));
        let (join, addr) =
            spawn_metrics("127.0.0.1:0", Arc::clone(&shared), Arc::clone(&stop)).unwrap();
        let mut conn = std::net::TcpStream::connect(&addr).unwrap();
        conn.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut body = String::new();
        std::io::BufReader::new(conn)
            .read_to_string(&mut body)
            .unwrap();
        assert!(body.starts_with("HTTP/1.0 200 OK"), "{body}");
        assert!(body.contains("arq_serve_events_total 2"), "{body}");
        assert!(
            body.contains("# TYPE arq_serve_route_latency_us histogram"),
            "{body}"
        );
        assert!(
            body.lines().any(|l| l.starts_with("arq_serve_epoch ")),
            "{body}"
        );
        stop.store(true, Ordering::Relaxed);
        join.join().unwrap();
    }
}
