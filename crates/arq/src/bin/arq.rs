//! The `arq` command-line binary. All logic lives in [`arq::cli`]; this
//! wrapper only handles process exit codes.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match arq::cli::run(&args) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
