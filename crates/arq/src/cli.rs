//! The `arq` command-line tool.
//!
//! A thin, dependency-free front end over the library: generate
//! calibrated traces, inspect them, run the cleaning/join pipeline,
//! evaluate any rule-maintenance strategy, and run live policy
//! simulations — all from the shell. The binary in `src/bin/arq.rs`
//! forwards to [`run`], which returns its report as a string so the test
//! suite can drive every subcommand in-process.
//!
//! ```text
//! arq gen-trace --pairs 200000 --seed 7 --out trace.csv [--raw] [--upheaval]
//! arq stats     --trace trace.csv [--raw]
//! arq clean-join --raw capture.csv --out pairs.csv
//! arq evaluate  --trace pairs.csv --strategy sliding --block 10000 --support 10 [--chart]
//! arq simulate  --nodes 400 --queries 2000 --policy assoc --seed 1
//! arq run       --exp e3 --trace-events events.jsonl --out artifacts.json
//! arq report    --in artifacts.json --timeline
//! ```

use arq_assoc::mine_pairs;
use arq_assoc::pairs::{mine_pairs_with_confidence, PairMiner, RuleSet};
use arq_core::engine;
use arq_core::engine::{RunArtifact, RunSpec, TraceSource};
use arq_core::evaluate;
use arq_core::sweep;
use arq_gnutella::sim::{SimConfig, Topology};
use arq_overlay::ChurnConfig;
use arq_simkern::chart::{render, ChartOptions};
use arq_simkern::{Json, ToJson};
use arq_trace::csvio;
use arq_trace::stats::{pair_stats, raw_stats};
use arq_trace::{SynthConfig, SynthTrace, TraceDb};
use std::fmt::Write as _;
use std::fs::File;
use std::io::BufReader;
use std::sync::Arc;
use std::time::Instant;

/// A CLI failure with a user-facing message.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Minimal flag parser: `--key value` pairs plus boolean `--flag`s.
struct Flags {
    pairs: Vec<(String, Option<String>)>,
}

impl Flags {
    fn parse(args: &[String], booleans: &[&str]) -> Result<Flags, CliError> {
        let mut pairs = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(flag) = it.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(err(format!("expected a --flag, got `{flag}`")));
            };
            if booleans.contains(&name) {
                pairs.push((name.to_string(), None));
            } else {
                let value = it
                    .next()
                    .ok_or_else(|| err(format!("--{name} needs a value")))?;
                pairs.push((name.to_string(), Some(value.clone())));
            }
        }
        Ok(Flags { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.pairs.iter().any(|(k, _)| k == name)
    }

    fn parse_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("--{name}: cannot parse `{v}`"))),
        }
    }

    fn required(&self, name: &str) -> Result<&str, CliError> {
        self.get(name)
            .ok_or_else(|| err(format!("missing required flag --{name}")))
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
arq — adaptively routing P2P queries using association analysis

USAGE: arq <COMMAND> [FLAGS]

COMMANDS:
  gen-trace   generate a calibrated synthetic trace (CSV)
              --pairs N [--seed S] --out FILE [--raw] [--upheaval]
  stats       describe a trace file
              --trace FILE [--raw]
  clean-join  clean GUIDs and join a raw capture into pairs
              --raw FILE --out FILE
  mine        mine one block's association rules and print the strongest
              --trace FILE [--block N] [--support N] [--confidence F] [--top N]
  evaluate    replay a trace through a rule-maintenance strategy
              --trace FILE [--strategy SPEC] [--block N] [--support N] [--chart]
              strategies: static | sliding | lazy | adaptive | incremental | lossy | topic
              SPEC may also carry registry parameters, e.g. sliding(s=10,c=0.05)
  simulate    run a live overlay simulation with a forwarding policy
              (alias: live)
              [--nodes N] [--queries N] [--policy SPEC] [--seed S]
              [--faults SPEC] [--retry SPEC] [--links SPEC] [--adapt SPEC]
              [--sharded]
              --sharded runs the windowed sharded scale engine with
              ARQ_THREADS workers (byte-identical at any worker count)
              instead of the exact serial engine
              policies: flood | expanding-ring | k-walk | shortcuts |
                        routing-index | superpeer | assoc | assoc-adaptive |
                        hybrid | community
              SPEC accepts registry parameters too, e.g.
              assoc(k=4,hl=500,minconf=0.6) forwards to up to 4
              consequents whose confidence clears 0.6
              --adapt turns on live topology adaptation on a tumbling
              schedule, e.g. 'every=50000,budget=8,degree=2' (rewires
              the overlay toward learned rules, retiring shortcuts on
              rule decay or endpoint crash)
              --faults injects deterministic failures, e.g. 'loss=0.05'
              or 'faults(loss=0.05,crash=0.01,silent=0.02)'; --retry adds
              the bounded-retry lifecycle, e.g. 'deadline=2000,attempts=3';
              --links models byte-accurate per-node bandwidth with bounded
              buffers, e.g. 'up=8,down=32,upbuf=2048,downbuf=8192' or
              'links(up=8,down=32,upbuf=2048,downbuf=8192,loss=0.02,
              jitter=20,riders=0.2,riderup=2)'
  run         execute instrumented engine runs and stream their traces
              --exp e3 runs the E3 block-size sweep preset; otherwise
              [--strategy SPEC] [--pairs N] [--block N] for a trace
              evaluation, or --policy SPEC [--nodes N] [--queries N]
              [--faults SPEC] [--retry SPEC] [--links SPEC] [--adapt SPEC]
              for a live simulation
              [--seed S] [--obs SPEC] [--trace-events FILE] [--out FILE]
              runs are instrumented with obs(events=1,series=1,fanout=16)
              unless --obs overrides; --trace-events streams the event
              log as JSONL; --out writes the artifact array as JSON
  report      summarize persisted artifacts or experiment results
              --in FILE [--timeline]
              accepts an `arq run --out` artifact array or a
              results/e*.json document; --timeline prints the per-block
              series (α/ρ/traffic from obs, else coverage/success);
              link-instrumented artifacts also render query-latency
              p50/p95/p99 (sim ticks) and per-node byte budgets from the
              obs histograms
  bench       measure the hot-path speedups and write a perf baseline
              [--quick] [--threads N] [--iters N] [--seed S] [--out FILE]
              [--pairs N] [--block N] [--nodes N] [--queries N]
              [--scale-nodes N,N,...] [--scale-queries N] [--scale-policy SPEC]
              times block mining (reference vs sharded) on an E3-shaped
              trace, a full evaluation (sequential vs pipelined), an
              E16-shaped live-sim sweep (1 vs N workers), and the
              windowed sharded sim engine at --scale-nodes scale
              (nodes x queries/sec, serial vs sharded), an E17-shaped
              offered-load sweep under byte-accurate congested links
              (latency percentiles + per-node byte budgets per policy),
              and an E18-shaped routing sweep (top-k + confidence-pruned
              policies with live topology adaptation under churn and
              loss); every parallel artifact is checked byte-identical
              to the serial one; also times sweep-plan orchestration
              (journaled run_sweep vs direct execution of the same
              jobs); the JSON lands in BENCH_10.json unless --out
              overrides
  gen-events  render a synthetic trace as a framed event stream for serve
              [--pairs N] [--seed S] [--route-every N] --out FILE
              frames are `<len>\\n<json>\\n`; every pair becomes a
              {\"ev\":\"pair\"} event and --route-every interleaves
              {\"ev\":\"route\"} lookups
  serve       run the crash-safe streaming router service
              [--input FILE|-] [--socket PATH] [--maintainer SPEC]
              [--block N] [--k N] [--queue N] [--shed]
              [--checkpoint FILE] [--checkpoint-every N]
              [--metrics ADDR] [--out FILE] [--spin N]
              ingests framed pair/route/stats events from stdin, a file,
              or a Unix socket; route lookups answer from an atomically
              swapped ruleset refreshed every --block pairs and never
              block on mining; maintainers: incremental(t=10,hl=20000) |
              lossy(t=10,eps=0.0001); the ingest queue is bounded and
              blocks when full unless --shed enables explicit load
              shedding (refreshes first, then pairs + `shed` lookups,
              all counted); --checkpoint restores exact state on start,
              skips already-consumed pairs, and atomically persists
              every --checkpoint-every pairs and at drain (SIGTERM/EOF);
              --metrics serves Prometheus plaintext over HTTP; --out
              writes the summary artifact (incl. the ruleset digest)
  sweep       run a declarative sweep plan (see plans/ and DESIGN.md)
              run PLAN [--out DIR] [--spin MS]
              resume PLAN [--out DIR] [--spin MS]
              show PLAN
              a plan (TOML or JSON) declares a base run plus axes — a
              grid or a seeded latin-hypercube over registry spec
              parameters — and expands to a deterministic job list;
              run fans the jobs over ARQ_THREADS workers, journals
              every completion durably (journal.jsonl, fsync'd per
              line), and writes report.json + runbook.json atomically;
              resume skips exactly the journaled jobs and converges to
              byte-identical outputs even after kill -9; show prints
              the expansion without running anything; --out defaults
              to sweeps/<plan-name>; --spin sleeps each worker MS per
              job (test hook for crash/resume drills)
  help        print this text
";

/// Executes one CLI invocation and returns its stdout-style report.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some((command, rest)) = args.split_first() else {
        return Ok(USAGE.to_string());
    };
    match command.as_str() {
        "gen-trace" => gen_trace(rest),
        "stats" => stats(rest),
        "clean-join" => clean_join(rest),
        "mine" => mine(rest),
        "evaluate" => cmd_evaluate(rest),
        "simulate" | "live" => simulate(rest),
        "run" => cmd_run(rest),
        "report" => cmd_report(rest),
        "bench" => cmd_bench(rest),
        "gen-events" => cmd_gen_events(rest),
        "serve" => cmd_serve(rest),
        "sweep" => cmd_sweep(rest),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(err(format!("unknown command `{other}`\n\n{USAGE}"))),
    }
}

fn gen_trace(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &["raw", "upheaval"])?;
    let pairs: usize = flags.parse_num("pairs", 100_000)?;
    let seed: u64 = flags.parse_num("seed", 1)?;
    let out = flags.required("out")?;
    let cfg = if flags.has("upheaval") {
        SynthConfig::paper_static(pairs, seed)
    } else {
        SynthConfig::paper_default(pairs, seed)
    };
    let gen = SynthTrace::new(cfg);
    // Buffer the CSV and land it atomically: a crash mid-generation
    // must not leave a half-written trace under the final name.
    let mut w: Vec<u8> = Vec::new();
    let mut report = String::new();
    if flags.has("raw") {
        let (queries, replies) = gen.raw();
        csvio::write_raw(&mut w, &queries, &replies).map_err(|e| err(e.to_string()))?;
        let _ = writeln!(
            report,
            "wrote raw trace: {} queries, {} replies -> {out}",
            queries.len(),
            replies.len()
        );
    } else {
        let pairs = gen.pairs();
        csvio::write_pairs(&mut w, &pairs).map_err(|e| err(e.to_string()))?;
        let _ = writeln!(report, "wrote pair trace: {} pairs -> {out}", pairs.len());
    }
    arq_simkern::write_atomic(out, &w).map_err(|e| err(format!("writing {out}: {e}")))?;
    Ok(report)
}

fn stats(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &["raw"])?;
    let path = flags.required("trace")?;
    let file = File::open(path).map_err(|e| err(format!("opening {path}: {e}")))?;
    let mut report = String::new();
    if flags.has("raw") {
        let (queries, replies) =
            csvio::read_raw(BufReader::new(file)).map_err(|e| err(e.to_string()))?;
        let s = raw_stats(&queries, &replies);
        let _ = writeln!(report, "raw trace {path}");
        let _ = writeln!(report, "  queries:             {}", s.queries);
        let _ = writeln!(report, "  replies:             {}", s.replies);
        let _ = writeln!(report, "  answer ratio:        {:.3}", s.answer_ratio);
        let _ = writeln!(report, "  distinct query hosts: {}", s.distinct_query_hosts);
        let _ = writeln!(report, "  distinct GUIDs:      {}", s.distinct_guids);
    } else {
        let pairs = csvio::read_pairs(BufReader::new(file)).map_err(|e| err(e.to_string()))?;
        let s = pair_stats(&pairs);
        let _ = writeln!(report, "pair trace {path}");
        let _ = writeln!(report, "  pairs:               {}", s.pairs);
        let _ = writeln!(report, "  distinct sources:    {}", s.distinct_src);
        let _ = writeln!(report, "  distinct reply vias: {}", s.distinct_via);
        let _ = writeln!(report, "  distinct (src,via):  {}", s.distinct_pairs);
        let _ = writeln!(report, "  pairs per source:    {:.1}", s.pairs_per_src);
        let _ = writeln!(report, "  top pair share:      {:.4}", s.top_pair_share);
    }
    Ok(report)
}

fn clean_join(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &[])?;
    let raw_path = flags.required("raw")?;
    let out = flags.required("out")?;
    let file = File::open(raw_path).map_err(|e| err(format!("opening {raw_path}: {e}")))?;
    let (queries, replies) =
        csvio::read_raw(BufReader::new(file)).map_err(|e| err(e.to_string()))?;
    let mut db = TraceDb::new();
    db.extend(queries, replies);
    let (report_counts, pairs) = db.clean_and_join();
    let mut buf: Vec<u8> = Vec::new();
    csvio::write_pairs(&mut buf, &pairs).map_err(|e| err(e.to_string()))?;
    arq_simkern::write_atomic(out, &buf).map_err(|e| err(format!("writing {out}: {e}")))?;
    let mut report = String::new();
    let _ = writeln!(
        report,
        "cleaned: {} duplicate-GUID queries dropped, {} orphan replies dropped",
        report_counts.duplicate_queries, report_counts.orphan_replies
    );
    let _ = writeln!(report, "joined: {} query-reply pairs -> {out}", pairs.len());
    Ok(report)
}

fn mine(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &[])?;
    let path = flags.required("trace")?;
    let block: usize = flags.parse_num("block", 10_000)?;
    let support: u64 = flags.parse_num("support", 10)?;
    let confidence: f64 = flags.parse_num("confidence", 0.0)?;
    let top: usize = flags.parse_num("top", 20)?;
    let file = File::open(path).map_err(|e| err(format!("opening {path}: {e}")))?;
    let pairs = csvio::read_pairs(BufReader::new(file)).map_err(|e| err(e.to_string()))?;
    if pairs.is_empty() {
        return Err(err("trace holds no pairs"));
    }
    let slice = &pairs[..block.min(pairs.len())];
    let rules = if confidence > 0.0 {
        mine_pairs_with_confidence(slice, support, confidence)
    } else {
        mine_pairs(slice, support)
    };
    let mut report = String::new();
    let _ = writeln!(
        report,
        "mined {} rules over {} antecedents from {} pairs (support >= {support}{})",
        rules.rule_count(),
        rules.antecedent_count(),
        slice.len(),
        if confidence > 0.0 {
            format!(", confidence >= {confidence}")
        } else {
            String::new()
        }
    );
    let mut rows: Vec<_> = rules.iter().collect();
    rows.sort_by_key(|&(_, _, c)| std::cmp::Reverse(c));
    for (src, via, count) in rows.into_iter().take(top) {
        let _ = writeln!(report, "  {{{src}}} -> {{{via}}}   support {count}");
    }
    Ok(report)
}

/// Maps the CLI's strategy flags onto a registry spec string. A full
/// spec like `sliding(s=10,c=0.05)` passes through verbatim; a bare
/// name composes `--support` (and, for the streaming maintainers,
/// `--block`-derived defaults) into parameters.
fn strategy_spec(name: &str, support: u64, block: usize) -> String {
    if name.contains('(') {
        return name.to_string();
    }
    match name {
        // Historical CLI shorthand for `topic-sliding`.
        "topic" => format!("topic-sliding(s={support})"),
        "incremental" => format!("incremental(t={support},hl={})", 2 * block),
        "lossy" => format!("lossy(t={support},eps={})", 1.0 / (2.0 * block as f64)),
        other => format!("{other}(s={support})"),
    }
}

fn cmd_evaluate(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &["chart"])?;
    let path = flags.required("trace")?;
    let block: usize = flags.parse_num("block", 10_000)?;
    let support: u64 = flags.parse_num("support", 10)?;
    let name = flags.get("strategy").unwrap_or("sliding");
    let file = File::open(path).map_err(|e| err(format!("opening {path}: {e}")))?;
    let pairs = csvio::read_pairs(BufReader::new(file)).map_err(|e| err(e.to_string()))?;
    if pairs.len() / block < 2 {
        return Err(err(format!(
            "trace has {} pairs: need at least two blocks of {block}",
            pairs.len()
        )));
    }
    let mut strategy = engine::make_strategy(&strategy_spec(name, support, block))
        .map_err(|e| err(e.to_string()))?;
    let run = evaluate(strategy.as_mut(), &pairs, block);
    let mut report = String::new();
    let _ = writeln!(report, "strategy:        {}", run.strategy);
    let _ = writeln!(report, "trials:          {}", run.trials);
    let _ = writeln!(report, "avg coverage:    {:.3}", run.avg_coverage);
    let _ = writeln!(report, "avg success:     {:.3}", run.avg_success);
    let _ = writeln!(report, "regenerations:   {}", run.regenerations);
    if let Some(bpr) = run.blocks_per_regen() {
        let _ = writeln!(report, "blocks/regen:    {bpr:.2}");
    }
    if flags.has("chart") {
        let _ = writeln!(
            report,
            "\n{}",
            render(
                "coverage (*) and success (+) per trial",
                &[&run.coverage, &run.success],
                &ChartOptions {
                    y_range: Some((0.0, 1.0)),
                    ..Default::default()
                },
            )
        );
    }
    Ok(report)
}

/// Wraps a bare `k=v,...` list into `name(k=v,...)`; full specs that
/// already carry a parameter list pass through verbatim.
fn wrap_spec(name: &str, spec: &str) -> String {
    if spec.contains('(') {
        spec.to_string()
    } else {
        format!("{name}({spec})")
    }
}

fn simulate(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &["sharded"])?;
    let nodes: usize = flags.parse_num("nodes", 400)?;
    let queries: usize = flags.parse_num("queries", 2_000)?;
    let seed: u64 = flags.parse_num("seed", 1)?;
    let policy = flags.get("policy").unwrap_or("flood");
    let mut cfg = SimConfig::default_with(nodes, queries, seed);
    if let Some(spec) = flags.get("faults") {
        cfg.faults = Some(
            engine::make_fault_plan(&wrap_spec("faults", spec)).map_err(|e| err(e.to_string()))?,
        );
    }
    if let Some(spec) = flags.get("retry") {
        cfg.retry = Some(
            engine::make_retry_policy(&wrap_spec("retry", spec)).map_err(|e| err(e.to_string()))?,
        );
    }
    if let Some(spec) = flags.get("links") {
        cfg.links = Some(
            engine::make_link_plan(&wrap_spec("links", spec)).map_err(|e| err(e.to_string()))?,
        );
    }
    if let Some(spec) = flags.get("adapt") {
        cfg.adapt = Some(
            engine::make_adapt_plan(&wrap_spec("adapt", spec)).map_err(|e| err(e.to_string()))?,
        );
    }
    let linked = cfg.links.is_some();
    let faulted = cfg.faults.is_some() || cfg.retry.is_some() || linked;
    let (metrics, stats, _, _) = if flags.has("sharded") {
        engine::run_live_sharded(cfg, policy, engine::thread_count())
            .map_err(|e| err(e.to_string()))?
    } else {
        engine::run_live(cfg, policy, None).map_err(|e| err(e.to_string()))?
    };
    let mut report = String::new();
    for (key, value) in &stats {
        let _ = writeln!(
            report,
            "{:<19}{value:.2}",
            format!("{}:", key.replace('_', " "))
        );
    }
    let _ = writeln!(report, "policy:            {}", metrics.policy);
    let _ = writeln!(report, "queries:           {}", metrics.queries);
    let _ = writeln!(
        report,
        "messages/query:    {:.1}",
        metrics.messages_per_query
    );
    let _ = writeln!(report, "success rate:      {:.3}", metrics.success_rate);
    if let Some(h) = &metrics.first_hit_hops {
        let _ = writeln!(report, "first-hit hops:    {:.2}", h.mean);
    }
    if faulted {
        let _ = writeln!(report, "retried:           {}", metrics.retried);
        let _ = writeln!(report, "expired:           {}", metrics.expired);
        let _ = writeln!(report, "duplicate hits:    {}", metrics.duplicate_hits);
        let _ = writeln!(report, "lost messages:     {}", metrics.lost_messages);
    }
    if linked {
        let _ = writeln!(report, "buffer dropped:    {}", metrics.buffer_dropped);
    }
    Ok(report)
}

/// Default seed for `arq run` — the bench harness's experiment seed, so
/// the E3 preset reproduces the persisted results' configuration.
const RUN_SEED: u64 = 20_060_814;

/// Resolves the `--obs` flag into a registry obs spec. `arq run` always
/// instruments (that is its purpose); bare `k=v` lists wrap into
/// `obs(...)`.
fn obs_spec_from(flags: &Flags) -> String {
    match flags.get("obs") {
        None => "obs".to_string(),
        Some(s) if s == "obs" || s.contains('(') => s.to_string(),
        Some(s) => format!("obs({s})"),
    }
}

fn cmd_run(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &[])?;
    let seed: u64 = flags.parse_num("seed", RUN_SEED)?;
    let obs = obs_spec_from(&flags);
    engine::make_obs_plan(&obs).map_err(|e| err(e.to_string()))?;
    let specs: Vec<RunSpec> = if let Some(exp) = flags.get("exp") {
        match exp {
            // E3 block-size sweep: one shared calibrated trace replayed
            // through the Sliding Window at five block sizes — the same
            // configuration the bench harness persists as results/e3.json
            // at quick scale.
            "e3" => {
                let pairs: usize = flags.parse_num("pairs", 610_000)?;
                let trace = TraceSource::Shared {
                    label: "paper-default".into(),
                    seed,
                    pairs: std::sync::Arc::new(
                        SynthTrace::new(SynthConfig::paper_default(pairs, seed)).pairs(),
                    ),
                };
                [2_500usize, 5_000, 10_000, 20_000, 50_000]
                    .iter()
                    .map(|&bs| RunSpec::TraceEval {
                        trace: trace.clone(),
                        strategy: "sliding(s=10)".into(),
                        block_size: bs,
                        obs: Some(obs.clone()),
                    })
                    .collect()
            }
            other => {
                return Err(err(format!(
                    "unknown experiment preset `{other}` (valid: e3)"
                )))
            }
        }
    } else if let Some(policy) = flags.get("policy") {
        let nodes: usize = flags.parse_num("nodes", 400)?;
        let queries: usize = flags.parse_num("queries", 2_000)?;
        let mut cfg = SimConfig::default_with(nodes, queries, seed);
        if let Some(spec) = flags.get("faults") {
            cfg.faults = Some(
                engine::make_fault_plan(&wrap_spec("faults", spec))
                    .map_err(|e| err(e.to_string()))?,
            );
        }
        if let Some(spec) = flags.get("retry") {
            cfg.retry = Some(
                engine::make_retry_policy(&wrap_spec("retry", spec))
                    .map_err(|e| err(e.to_string()))?,
            );
        }
        if let Some(spec) = flags.get("links") {
            cfg.links = Some(
                engine::make_link_plan(&wrap_spec("links", spec))
                    .map_err(|e| err(e.to_string()))?,
            );
        }
        if let Some(spec) = flags.get("adapt") {
            cfg.adapt = Some(
                engine::make_adapt_plan(&wrap_spec("adapt", spec))
                    .map_err(|e| err(e.to_string()))?,
            );
        }
        vec![RunSpec::LiveSim {
            cfg,
            policy: policy.to_string(),
            graph: None,
            obs: Some(obs.clone()),
        }]
    } else {
        let pairs: usize = flags.parse_num("pairs", 60_000)?;
        let block: usize = flags.parse_num("block", 10_000)?;
        let strategy = flags.get("strategy").unwrap_or("sliding(s=10)");
        vec![RunSpec::TraceEval {
            trace: TraceSource::PaperDefault { pairs, seed },
            strategy: strategy.to_string(),
            block_size: block,
            obs: Some(obs.clone()),
        }]
    };
    let artifacts = engine::execute(&specs).map_err(|e| err(e.to_string()))?;
    if let Some(path) = flags.get("trace-events") {
        let mut out = String::new();
        for a in &artifacts {
            if let Some(report) = &a.obs {
                for ev in &report.events {
                    // Prefix each event with its run index so a
                    // multi-run sweep stays one self-describing stream.
                    let mut fields = match ev.to_json() {
                        Json::Obj(fields) => fields,
                        other => vec![("event".to_string(), other)],
                    };
                    fields.insert(0, ("run".to_string(), Json::from(a.index)));
                    out.push_str(&Json::Obj(fields).to_string());
                    out.push('\n');
                }
            }
        }
        arq_simkern::write_atomic_str(path, &out)
            .map_err(|e| err(format!("writing {path}: {e}")))?;
    }
    if let Some(path) = flags.get("out") {
        let doc = Json::Arr(artifacts.iter().map(ToJson::to_json).collect());
        arq_simkern::write_atomic_str(path, &doc.to_string_pretty())
            .map_err(|e| err(format!("writing {path}: {e}")))?;
    }
    let mut report = String::new();
    for a in &artifacts {
        let events = a.obs.as_ref().map_or(0, |o| o.events.len());
        let _ = writeln!(
            report,
            "run {}: {}  seed {}  digest {:016x}  {events} events",
            a.index, a.label, a.seed, a.digest
        );
        match (&a.obs, a.eval_run(), a.metrics()) {
            (_, Some(run), _) => {
                let _ = writeln!(
                    report,
                    "  trials {}  avg coverage {:.3}  avg success {:.3}  regenerations {}",
                    run.trials, run.avg_coverage, run.avg_success, run.regenerations
                );
            }
            (Some(o), _, Some(m)) => {
                let _ = writeln!(
                    report,
                    "  success {:.3}  msgs/query {:.1}  forwards {}  metrics digest {:016x}",
                    m.success_rate,
                    m.messages_per_query,
                    o.registry.counter_value("forwards").unwrap_or(0),
                    m.digest()
                );
            }
            (None, _, Some(m)) => {
                let _ = writeln!(
                    report,
                    "  success {:.3}  msgs/query {:.1}  metrics digest {:016x}",
                    m.success_rate,
                    m.messages_per_query,
                    m.digest()
                );
            }
            _ => {}
        }
    }
    Ok(report)
}

/// Linear-interpolated quantile from a serialized histogram snapshot
/// (`{lo, hi, buckets, underflow, overflow, count}`), mirroring
/// `Histogram::quantile` so `arq report` reproduces the in-process
/// estimate from persisted artifact JSON alone. Underflow clamps to
/// `lo`, overflow to `hi`; `None` before any observation.
fn json_quantile(h: &Json, q: f64) -> Option<f64> {
    let num = |key: &str| h.get(key).and_then(Json::as_f64);
    let count = num("count")?;
    if count <= 0.0 {
        return None;
    }
    let (lo, hi) = (num("lo")?, num("hi")?);
    let buckets: Vec<f64> = h
        .get("buckets")?
        .as_array()?
        .iter()
        .filter_map(Json::as_f64)
        .collect();
    if buckets.is_empty() {
        return None;
    }
    let pos = q * (count - 1.0);
    let mut seen = num("underflow").unwrap_or(0.0);
    if seen > pos {
        return Some(lo);
    }
    let width = (hi - lo) / buckets.len() as f64;
    for (i, &c) in buckets.iter().enumerate() {
        if c > 0.0 && seen + c > pos {
            return Some(lo + width * (i as f64 + (pos - seen) / c));
        }
        seen += c;
    }
    Some(hi)
}

/// Renders one artifact's JSON object for `arq report`.
/// Renders one `arq run` artifact. Partial or future-schema artifacts
/// produce an error naming the missing or unknown section instead of a
/// report full of placeholders (or a panic downstream).
fn report_artifact(a: &Json, timeline: bool, out: &mut String) -> Result<(), String> {
    let kind = a
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing section `kind` (not an `arq run` artifact?)".to_string())?;
    if kind != "trace-eval" && kind != "live-sim" {
        return Err(format!(
            "unknown artifact kind `{kind}` (this build reads `trace-eval` and `live-sim`; \
             written by a newer arq?)"
        ));
    }
    let run = a
        .get("run")
        .ok_or_else(|| format!("`{kind}` artifact is missing section `run`"))?;
    let s = |key: &str| a.get(key).and_then(Json::as_str).unwrap_or("?");
    let _ = writeln!(
        out,
        "{} {}  seed {}  digest {}",
        kind,
        s("label"),
        a.get("seed").and_then(Json::as_f64).unwrap_or(f64::NAN),
        s("digest")
    );
    if kind == "live-sim" {
        let metrics = run
            .get("metrics")
            .ok_or_else(|| "`live-sim` artifact is missing section `run.metrics`".to_string())?;
        let num = |key: &str| metrics.get(key).and_then(Json::as_f64).unwrap_or(f64::NAN);
        // `buffer_dropped` is serialized only by link-enabled runs that
        // actually dropped; surface it only then.
        let buffered = metrics
            .get("buffer_dropped")
            .and_then(Json::as_f64)
            .map_or(String::new(), |b| format!("  buffer-dropped {b}"));
        let _ = writeln!(
            out,
            "  success {:.3}  msgs/query {:.1}  retried {}  expired {}  duplicate {}  lost {}{}",
            num("success_rate"),
            num("messages_per_query"),
            num("retried"),
            num("expired"),
            num("duplicate_hits"),
            num("lost_messages"),
            buffered
        );
        // Link-layer histograms (query latency, per-node byte budgets)
        // persist as bucket snapshots; render their quantiles here.
        let hists = a
            .get("obs")
            .and_then(|o| o.get("metrics"))
            .and_then(|m| m.get("histograms"));
        let quantile = |name: &str, q: f64| {
            hists
                .and_then(|h| h.get(name))
                .and_then(|h| json_quantile(h, q))
        };
        if let (Some(p50), Some(p95), Some(p99)) = (
            quantile("query_latency", 0.50),
            quantile("query_latency", 0.95),
            quantile("query_latency", 0.99),
        ) {
            let _ = writeln!(
                out,
                "  query latency p50/p95/p99  {p50:.0}/{p95:.0}/{p99:.0} ticks"
            );
        }
        if let (Some(up50), Some(up95), Some(down50), Some(down95)) = (
            quantile("node_up_bytes", 0.50),
            quantile("node_up_bytes", 0.95),
            quantile("node_down_bytes", 0.50),
            quantile("node_down_bytes", 0.95),
        ) {
            let _ = writeln!(
                out,
                "  node bytes p50/p95  up {up50:.0}/{up95:.0}  down {down50:.0}/{down95:.0}"
            );
        }
    } else {
        let num = |key: &str| run.get(key).and_then(Json::as_f64).unwrap_or(f64::NAN);
        let _ = writeln!(
            out,
            "  trials {}  avg coverage {:.3}  avg success {:.3}",
            num("trials"),
            num("avg_coverage"),
            num("avg_success")
        );
    }
    if !timeline {
        return Ok(());
    }
    // Prefer the instrumented per-block series; fall back to the eval
    // run's coverage/success curves for uninstrumented artifacts.
    let obs_series = a.get("obs").and_then(|o| o.get("series"));
    let floats = |v: Option<&Json>| -> Vec<f64> {
        v.and_then(Json::as_array)
            .map(|xs| xs.iter().filter_map(Json::as_f64).collect())
            .unwrap_or_default()
    };
    if let Some(series) = obs_series {
        let alpha = floats(series.get("alpha"));
        let rho = floats(series.get("rho"));
        let traffic = floats(series.get("traffic"));
        let blocks = floats(series.get("blocks"));
        let _ = writeln!(out, "  block      α      ρ   traffic");
        for (i, a) in alpha.iter().enumerate() {
            let _ = writeln!(
                out,
                "  {:>5}  {:.3}  {:.3}  {:>8}",
                blocks.get(i).copied().unwrap_or(i as f64) as u64,
                a,
                rho.get(i).copied().unwrap_or(f64::NAN),
                traffic.get(i).copied().unwrap_or(f64::NAN) as u64
            );
        }
    } else {
        let coverage = floats(run.get("coverage"));
        let success = floats(run.get("success"));
        if !coverage.is_empty() {
            let _ = writeln!(out, "  block      α      ρ");
            for (i, c) in coverage.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "  {:>5}  {:.3}  {:.3}",
                    i + 1,
                    c,
                    success.get(i).copied().unwrap_or(f64::NAN)
                );
            }
        }
    }
    Ok(())
}

fn cmd_report(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &["timeline"])?;
    let path = flags.required("in")?;
    let timeline = flags.has("timeline");
    let text = std::fs::read_to_string(path).map_err(|e| err(format!("reading {path}: {e}")))?;
    let doc = arq_simkern::json::parse(&text).map_err(|e| err(format!("parsing {path}: {e}")))?;
    let mut out = String::new();
    match &doc {
        // An `arq run --out` artifact array.
        Json::Arr(artifacts) => {
            for (i, a) in artifacts.iter().enumerate() {
                report_artifact(a, timeline, &mut out)
                    .map_err(|m| err(format!("{path}: artifact {i}: {m}")))?;
            }
        }
        // A bench results/e*.json document.
        Json::Obj(_) if doc.get("rows").is_some() => {
            let _ = writeln!(
                out,
                "{} — {}",
                doc.get("id").and_then(Json::as_str).unwrap_or("?"),
                doc.get("title").and_then(Json::as_str).unwrap_or("?")
            );
            if let Some(rows) = doc.get("rows").and_then(Json::as_array) {
                for row in rows {
                    let _ = writeln!(
                        out,
                        "  {}: {}",
                        row.at(0).and_then(Json::as_str).unwrap_or("?"),
                        row.at(1).and_then(Json::as_str).unwrap_or("?")
                    );
                }
            }
            if timeline {
                if let Some(Json::Obj(series)) = doc.get("series") {
                    for (name, values) in series {
                        let n = values.as_array().map_or(0, <[Json]>::len);
                        let _ = writeln!(out, "  series {name}: {n} points");
                    }
                }
            }
        }
        // A single artifact object.
        Json::Obj(_) => {
            report_artifact(&doc, timeline, &mut out).map_err(|m| err(format!("{path}: {m}")))?;
        }
        _ => return Err(err(format!("{path}: not an artifact array or report"))),
    }
    Ok(out)
}

/// A byte stream released at a fixed rate — the overload generator for
/// the serve bench. Frames average a constant size, so pacing bytes
/// paces events; reads ahead of schedule briefly park the reader.
struct PacedReader {
    bytes: Vec<u8>,
    sent: usize,
    started: Option<Instant>,
    bytes_per_sec: f64,
}

impl PacedReader {
    fn new(bytes: Vec<u8>, bytes_per_sec: f64) -> Self {
        PacedReader {
            bytes,
            sent: 0,
            started: None,
            bytes_per_sec: bytes_per_sec.max(1.0),
        }
    }
}

impl std::io::Read for PacedReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.sent >= self.bytes.len() {
            return Ok(0);
        }
        let started = *self.started.get_or_insert_with(Instant::now);
        loop {
            let due = (started.elapsed().as_secs_f64() * self.bytes_per_sec) as usize;
            let ready = due.min(self.bytes.len()).saturating_sub(self.sent);
            if ready > 0 {
                let n = ready.min(buf.len());
                buf[..n].copy_from_slice(&self.bytes[self.sent..self.sent + n]);
                self.sent += n;
                return Ok(n);
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }
}

/// Best-of-`iters` wall clock for `f`, in seconds.
fn best_secs(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Rule rows in a canonical order, for before/after equality checks.
fn sorted_rules(rules: &RuleSet) -> Vec<(u32, u32, u64)> {
    let mut rows: Vec<_> = rules.iter().map(|(s, v, c)| (s.0, v.0, c)).collect();
    rows.sort_unstable();
    rows
}

fn ratio(before: f64, after: f64) -> f64 {
    if after > 0.0 {
        before / after
    } else {
        0.0
    }
}

/// The serial wall clock of the E16-shaped sim sweep as recorded by the
/// previous baseline (`BENCH_5.json`, full scale: 6 specs, 250 nodes ×
/// 1200 queries, iters 3). The sweep's configuration is unchanged, so a
/// full-scale `arq bench` can report the architectural speedup of the
/// rebuilt engine (calendar queue + SoA node state) against it.
const BENCH_5_SIM_SERIAL_SECS: f64 = 0.883298658;

/// `arq bench` — the perf-baseline harness behind `BENCH_10.json`.
///
/// Eight measurements of the sharded/pipelined hot path:
///
/// 1. **mining** (E3-shaped): per-block rule mining over the calibrated
///    drifting trace — reference `mine_pairs` (HashMap tally) vs the
///    columnar sharded [`PairMiner`], with the mined rule sets compared
///    row-for-row;
/// 2. **pipeline**: one full trace evaluation through the engine —
///    sequential vs intra-run pipelined mining, artifact JSON compared
///    byte-for-byte (the `ARQ_THREADS`-independence contract);
/// 3. **sim** (E16-shaped): a live-simulation spec sweep (policies ×
///    loss rates) through the executor at 1 worker vs N, artifacts
///    compared byte-for-byte; the executor's thread-budget split is
///    recorded as obs gauges so the numbers can be attributed;
/// 4. **sim_scale**: the windowed sharded engine
///    (`Network::run_sharded`) at `--scale-nodes` scale — whole-run
///    nodes × queries/sec, with the N-thread run's results compared
///    against the single-threaded run's;
/// 5. **links** (E17-shaped): the offered-load sweep under byte-accurate
///    congested links — policies × query rates with bounded buffers and
///    seeded loss — recording query-latency percentiles and per-node
///    byte budgets from the obs histograms, with the parallel artifacts
///    checked byte-identical to the serial ones;
/// 6. **routing** (E18-shaped): the routing-science sweep — top-k +
///    confidence-pruned association policies, the hybrid, and the
///    community/super-peer router, all with live topology adaptation on
///    a two-tier overlay under churn and loss — recording per-policy
///    routing quality (success, traffic, pruned consequents, shortcut
///    lifecycle counters), with the parallel artifacts checked
///    byte-identical to the serial ones;
/// 7. **serve**: the streaming service under overload — sustained
///    capacity is measured with lossless backpressure, then 1x/4x/16x
///    that rate is offered through a paced reader in `--shed` mode,
///    recording route-lookup p50/p99, shed rates, and refresh skips
///    (the bounded-latency-under-overload contract);
/// 8. **sweep**: plan expansion plus the per-job orchestration overhead
///    of the journaled sweep runner — the same jobs through `run_sweep`
///    (fsync'd journal, report assembly) vs directly through the
///    executor, with a resume pass asserting every job is skipped.
fn cmd_bench(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &["quick"])?;
    let quick = flags.has("quick");
    let seed: u64 = flags.parse_num("seed", RUN_SEED)?;
    let threads: usize = flags.parse_num("threads", engine::thread_count())?;
    let threads = threads.max(1);
    let out = flags.get("out").unwrap_or("BENCH_10.json").to_string();
    let iters: usize = flags.parse_num("iters", if quick { 1 } else { 3 })?;
    let total_pairs: usize = flags.parse_num("pairs", if quick { 200_000 } else { 600_000 })?;
    let block_size: usize = flags.parse_num("block", 50_000)?;
    let nodes: usize = flags.parse_num("nodes", if quick { 120 } else { 250 })?;
    let queries: usize = flags.parse_num("queries", if quick { 400 } else { 1_200 })?;
    if total_pairs / block_size < 2 {
        return Err(err(format!(
            "--pairs {total_pairs}: need at least two blocks of {block_size}"
        )));
    }
    let support = 10u64;
    let blocks = total_pairs / block_size;
    let mut report = String::new();
    let _ = writeln!(
        report,
        "arq bench  threads {threads}  seed {seed}  iters {iters}"
    );

    // 1. Block mining over the E3-shaped drifting trace.
    let pairs = SynthTrace::new(SynthConfig::paper_default(total_pairs, seed)).pairs();
    let baseline_secs = best_secs(iters, || {
        for block in pairs.chunks(block_size) {
            std::hint::black_box(mine_pairs(block, support).rule_count());
        }
    });
    let mut miner = PairMiner::sharded(threads);
    let sharded_secs = best_secs(iters, || {
        for block in pairs.chunks(block_size) {
            std::hint::black_box(miner.mine(block, support).rule_count());
        }
    });
    let rules_identical = pairs
        .chunks(block_size)
        .all(|b| sorted_rules(&mine_pairs(b, support)) == sorted_rules(&miner.mine(b, support)));
    let mining_speedup = ratio(baseline_secs, sharded_secs);
    let _ = writeln!(
        report,
        "mining   E3-shaped, {blocks} blocks x {block_size}: \
         reference {baseline_secs:.3}s, sharded {sharded_secs:.3}s \
         ({mining_speedup:.2}x, rules identical: {rules_identical})"
    );

    // 2. Full evaluation, sequential vs pipelined, artifact bytes compared.
    let spec = RunSpec::TraceEval {
        trace: TraceSource::Shared {
            label: "paper-default".into(),
            seed,
            pairs: Arc::new(pairs),
        },
        strategy: "sliding(s=10)".into(),
        block_size,
        obs: None,
    };
    let run_at = |threads: usize| -> Result<String, CliError> {
        Ok(engine::run_one_with_threads(0, &spec, threads)
            .map_err(|e| err(e.to_string()))?
            .to_json()
            .to_string())
    };
    let sequential_json = run_at(1)?;
    let sequential_secs = best_secs(iters, || {
        std::hint::black_box(engine::run_one_with_threads(0, &spec, 1).expect("validated spec"));
    });
    let pipelined_json = run_at(threads)?;
    let pipelined_secs = best_secs(iters, || {
        std::hint::black_box(
            engine::run_one_with_threads(0, &spec, threads).expect("validated spec"),
        );
    });
    let eval_identical = sequential_json == pipelined_json;
    let eval_speedup = ratio(sequential_secs, pipelined_secs);
    let _ = writeln!(
        report,
        "pipeline sliding(s=10), {blocks} blocks x {block_size}: \
         sequential {sequential_secs:.3}s, pipelined {pipelined_secs:.3}s \
         ({eval_speedup:.2}x, artifacts identical: {eval_identical})"
    );

    // 3. E16-shaped live-sim sweep through the parallel executor.
    let mut sim_specs = Vec::new();
    for policy in ["flood", "assoc", "k-walk(k=4)"] {
        for loss in [0.0, 0.05] {
            let mut cfg = SimConfig::default_with(nodes, queries, seed);
            if loss > 0.0 {
                cfg.faults = Some(
                    engine::make_fault_plan(&format!("faults(loss={loss})"))
                        .map_err(|e| err(e.to_string()))?,
                );
            }
            sim_specs.push(RunSpec::LiveSim {
                cfg,
                policy: policy.to_string(),
                graph: None,
                obs: None,
            });
        }
    }
    let arts_json =
        |arts: &[RunArtifact]| Json::Arr(arts.iter().map(ToJson::to_json).collect()).to_string();
    let serial_json =
        arts_json(&engine::execute_with_threads(&sim_specs, 1).map_err(|e| err(e.to_string()))?);
    let serial_secs = best_secs(iters, || {
        std::hint::black_box(engine::execute_with_threads(&sim_specs, 1).expect("validated specs"));
    });
    let parallel_json = arts_json(
        &engine::execute_with_threads(&sim_specs, threads).map_err(|e| err(e.to_string()))?,
    );
    let parallel_secs = best_secs(iters, || {
        std::hint::black_box(
            engine::execute_with_threads(&sim_specs, threads).expect("validated specs"),
        );
    });
    let sim_identical = serial_json == parallel_json;
    let sim_speedup = ratio(serial_secs, parallel_secs);
    // Attribute the sweep's numbers: record the executor's chosen
    // thread-budget split as obs gauges on a bench-local registry. Run
    // artifacts themselves stay thread-count-invariant, so this is the
    // one place the split is visible.
    let (outer, intra) = engine::budget_split(&sim_specs, threads);
    let mut budget = arq_obs::Registry::new();
    let outer_id = budget.gauge("outer_threads");
    let intra_id = budget.gauge("intra_threads");
    budget.set(outer_id, outer as f64);
    budget.set(intra_id, intra as f64);
    let _ = writeln!(
        report,
        "sim      E16-shaped, {} specs, {nodes} nodes x {queries} queries: \
         1 worker {serial_secs:.3}s, {threads} workers {parallel_secs:.3}s \
         ({sim_speedup:.2}x, split {outer}x{intra}, artifacts identical: {sim_identical})",
        sim_specs.len()
    );
    // The sweep's shape is unchanged since BENCH_5, so a full-scale run
    // can report this PR's architectural speedup against the previous
    // baseline's serial wall clock.
    let bench5_comparable = !quick && nodes == 250 && queries == 1_200 && iters == 3;
    if bench5_comparable {
        let _ = writeln!(
            report,
            "         vs BENCH_5 serial {BENCH_5_SIM_SERIAL_SECS:.3}s: {:.2}x",
            ratio(BENCH_5_SIM_SERIAL_SECS, serial_secs)
        );
    }

    // 4. The windowed sharded engine at scale.
    let scale_spec = flags
        .get("scale-nodes")
        .map(str::to_string)
        .unwrap_or_else(|| {
            if quick {
                "20000".to_string()
            } else {
                "100000,1000000".to_string()
            }
        });
    let scale_queries: usize = flags.parse_num("scale-queries", if quick { 500 } else { 5_000 })?;
    let scale_policy = flags
        .get("scale-policy")
        .unwrap_or("k-walk(k=4)")
        .to_string();
    // On a single-core box `--threads` resolves to 1; still exercise the
    // sharded path so the cross-thread identity check is meaningful.
    let scale_threads = if threads > 1 { threads } else { 4 };
    let mut scale_points = Vec::new();
    for part in scale_spec.split(',') {
        let scale_nodes: usize = part
            .trim()
            .parse()
            .map_err(|_| err(format!("--scale-nodes: cannot parse `{part}`")))?;
        let cfg = SimConfig::default_with(scale_nodes, scale_queries, seed);
        let fingerprint =
            |m: &arq_gnutella::metrics::RunMetrics, s: &[(String, f64)]| format!("{m:?}|{s:?}");
        // Correctness first — these runs double as warmup so the timed
        // runs below don't charge first-touch page faults to whichever
        // variant happens to go first.
        let (m1, s1, _, _) = engine::run_live_sharded(cfg.clone(), &scale_policy, 1)
            .map_err(|e| err(e.to_string()))?;
        let (mn, sn, _, _) = engine::run_live_sharded(cfg.clone(), &scale_policy, scale_threads)
            .map_err(|e| err(e.to_string()))?;
        let scale_identical = fingerprint(&m1, &s1) == fingerprint(&mn, &sn);
        let scale_iters = iters.clamp(1, 2); // whole runs are seconds-long
        let scale_serial_secs = best_secs(scale_iters, || {
            std::hint::black_box(
                engine::run_live_sharded(cfg.clone(), &scale_policy, 1).expect("validated spec"),
            );
        });
        let scale_sharded_secs = best_secs(scale_iters, || {
            std::hint::black_box(
                engine::run_live_sharded(cfg.clone(), &scale_policy, scale_threads)
                    .expect("validated spec"),
            );
        });
        let scale_speedup = ratio(scale_serial_secs, scale_sharded_secs);
        let qps = ratio(
            scale_queries as f64,
            scale_sharded_secs.min(scale_serial_secs),
        );
        let _ = writeln!(
            report,
            "scale    {scale_policy}, {scale_nodes} nodes x {scale_queries} queries: \
             1 thread {scale_serial_secs:.3}s, {scale_threads} threads {scale_sharded_secs:.3}s \
             ({scale_speedup:.2}x, {qps:.0} queries/s, success {:.3}, \
             artifacts identical: {scale_identical})",
            m1.success_rate
        );
        scale_points.push(Json::Obj(vec![
            ("nodes".into(), Json::from(scale_nodes)),
            ("queries".into(), Json::from(scale_queries)),
            ("serial_secs".into(), Json::from(scale_serial_secs)),
            ("sharded_secs".into(), Json::from(scale_sharded_secs)),
            ("speedup".into(), Json::from(scale_speedup)),
            ("queries_per_sec".into(), Json::from(qps)),
            (
                "node_queries_per_sec".into(),
                Json::from(scale_nodes as f64 * qps),
            ),
            ("success_rate".into(), Json::from(m1.success_rate)),
            ("artifacts_identical".into(), Json::from(scale_identical)),
        ]));
    }

    // 5. E17-shaped offered-load sweep under byte-accurate links:
    // congested asymmetric bandwidth, bounded buffers, seeded loss, and
    // free-rider uplinks, at rising query rates. Instrumented with
    // registry histograms only, so the persisted rows carry
    // query-latency percentiles and per-node byte budgets.
    const LINK_PLAN: &str =
        "links(up=8,down=32,upbuf=2048,downbuf=8192,loss=0.02,jitter=20,riders=0.2,riderup=2)";
    const LINK_POLICIES: [&str; 3] = ["flood", "assoc", "assoc-adaptive"];
    const LINK_INTERVALS: [u64; 3] = [2_000, 500, 125];
    let mut link_specs = Vec::new();
    let mut link_labels = Vec::new();
    for policy in LINK_POLICIES {
        for interval in LINK_INTERVALS {
            let mut cfg = SimConfig::default_with(nodes, queries, seed);
            cfg.mean_query_interval = arq_simkern::time::Duration::from_ticks(interval);
            cfg.retry = Some(
                engine::make_retry_policy("retry(deadline=2000,attempts=3,maxttl=8)")
                    .map_err(|e| err(e.to_string()))?,
            );
            cfg.links = Some(engine::make_link_plan(LINK_PLAN).map_err(|e| err(e.to_string()))?);
            link_specs.push(RunSpec::LiveSim {
                cfg,
                policy: policy.to_string(),
                graph: None,
                obs: Some("obs(events=0,series=0)".into()),
            });
            link_labels.push((policy, interval));
        }
    }
    let link_serial_arts =
        engine::execute_with_threads(&link_specs, 1).map_err(|e| err(e.to_string()))?;
    let link_arts =
        engine::execute_with_threads(&link_specs, threads).map_err(|e| err(e.to_string()))?;
    let link_identical = arts_json(&link_serial_arts) == arts_json(&link_arts);
    let link_secs = best_secs(iters, || {
        std::hint::black_box(
            engine::execute_with_threads(&link_specs, threads).expect("validated specs"),
        );
    });
    let link_quantile = |a: &RunArtifact, name: &str, q: f64| {
        a.obs
            .as_ref()
            .and_then(|o| o.registry.histogram_value(name))
            .and_then(|h| h.quantile(q))
            .unwrap_or(0.0)
    };
    let mut link_rows = Vec::new();
    for ((policy, interval), a) in link_labels.iter().zip(&link_arts) {
        let m = a.metrics().expect("live spec");
        link_rows.push(Json::Obj(vec![
            ("policy".into(), Json::from(*policy)),
            ("interval".into(), Json::from(*interval)),
            ("success_rate".into(), Json::from(m.success_rate)),
            ("lost_messages".into(), Json::from(m.lost_messages)),
            ("buffer_dropped".into(), Json::from(m.buffer_dropped)),
            (
                "latency_ticks".into(),
                Json::Obj(vec![
                    (
                        "p50".into(),
                        Json::from(link_quantile(a, "query_latency", 0.50)),
                    ),
                    (
                        "p95".into(),
                        Json::from(link_quantile(a, "query_latency", 0.95)),
                    ),
                    (
                        "p99".into(),
                        Json::from(link_quantile(a, "query_latency", 0.99)),
                    ),
                ]),
            ),
            (
                "node_bytes_p95".into(),
                Json::Obj(vec![
                    (
                        "up".into(),
                        Json::from(link_quantile(a, "node_up_bytes", 0.95)),
                    ),
                    (
                        "down".into(),
                        Json::from(link_quantile(a, "node_down_bytes", 0.95)),
                    ),
                ]),
            ),
        ]));
    }
    let _ = writeln!(
        report,
        "links    E17-shaped, {} specs ({} policies x {} loads), {nodes} nodes x {queries} \
         queries: {threads} workers {link_secs:.3}s (artifacts identical: {link_identical})",
        link_specs.len(),
        LINK_POLICIES.len(),
        LINK_INTERVALS.len()
    );

    // 6. E18-shaped routing-science sweep: top-k + confidence-pruned
    //    association policies, the hybrid, and the community router, all
    //    with live topology adaptation on a two-tier overlay under
    //    churn and loss, through the parallel executor at 1 vs N workers
    //    with the byte-identity check. Registry-only obs carries the
    //    shortcut lifecycle counters into the persisted rows.
    const ROUTING_POLICIES: [&str; 4] = [
        "assoc(k=4,minconf=0.6)",
        "assoc-adaptive(k=4,minconf=0.6)",
        "hybrid(cap=5,k=4,minconf=0.6)",
        "community(n=16,k=4,minconf=0.6)",
    ];
    let mut routing_specs = Vec::new();
    for policy in ROUTING_POLICIES {
        let mut cfg = SimConfig::default_with(nodes, queries, seed);
        cfg.topology = Topology::SuperPeer {
            n_super: 16,
            super_degree: 4,
        };
        cfg.ttl = 8;
        cfg.churn = Some(ChurnConfig {
            mean_session: arq_simkern::time::Duration::from_ticks(500_000),
            mean_downtime: arq_simkern::time::Duration::from_ticks(600_000),
            pinned: vec![],
        });
        cfg.faults =
            Some(engine::make_fault_plan("faults(loss=0.1)").map_err(|e| err(e.to_string()))?);
        cfg.retry = Some(
            engine::make_retry_policy("retry(deadline=2000,attempts=3,maxttl=8)")
                .map_err(|e| err(e.to_string()))?,
        );
        cfg.adapt = Some(
            engine::make_adapt_plan("adapt(every=50000,budget=8,degree=2)")
                .map_err(|e| err(e.to_string()))?,
        );
        routing_specs.push(RunSpec::LiveSim {
            cfg,
            policy: policy.to_string(),
            graph: None,
            obs: Some("obs(events=0,series=0)".into()),
        });
    }
    let routing_serial_arts =
        engine::execute_with_threads(&routing_specs, 1).map_err(|e| err(e.to_string()))?;
    let routing_arts =
        engine::execute_with_threads(&routing_specs, threads).map_err(|e| err(e.to_string()))?;
    let routing_identical = arts_json(&routing_serial_arts) == arts_json(&routing_arts);
    let routing_secs = best_secs(iters, || {
        std::hint::black_box(
            engine::execute_with_threads(&routing_specs, threads).expect("validated specs"),
        );
    });
    let obs_counter = |a: &RunArtifact, name: &str| {
        a.obs
            .as_ref()
            .and_then(|o| o.registry.counter_value(name))
            .unwrap_or(0)
    };
    let mut routing_rows = Vec::new();
    for (policy, a) in ROUTING_POLICIES.iter().zip(&routing_arts) {
        let m = a.metrics().expect("live spec");
        routing_rows.push(Json::Obj(vec![
            ("policy".into(), Json::from(*policy)),
            ("success_rate".into(), Json::from(m.success_rate)),
            (
                "messages_per_query".into(),
                Json::from(m.messages_per_query),
            ),
            (
                "pruned_consequents".into(),
                Json::from(a.stat("pruned_consequents").unwrap_or(0.0)),
            ),
            (
                "shortcut_added".into(),
                Json::from(obs_counter(a, "shortcut_added")),
            ),
            (
                "shortcut_retired".into(),
                Json::from(obs_counter(a, "shortcut_retired")),
            ),
            (
                "shortcut_rejected".into(),
                Json::from(obs_counter(a, "shortcut_rejected")),
            ),
        ]));
    }
    let _ = writeln!(
        report,
        "routing  E18-shaped, {} specs, {nodes} nodes x {queries} queries: \
         {threads} workers {routing_secs:.3}s (artifacts identical: {routing_identical})",
        routing_specs.len()
    );

    // 7. The streaming service under overload: measure sustained
    //    capacity with lossless backpressure, then offer 1x/4x/16x that
    //    rate in shed mode and record lookup p99 + shed rates. A fixed
    //    per-pair spin gives mining a defined cost (emulating a heavier
    //    maintainer) so "overload" is a property of the service, not of
    //    the synthetic producer.
    let serve_pairs: usize = if quick { 40_000 } else { 120_000 };
    let serve_spin: u64 = 10_000;
    let serve_block: u64 = 5_000;
    let serve_route_every: usize = 200;
    let serve_trace = SynthTrace::new(SynthConfig::paper_default(serve_pairs, seed)).pairs();
    let serve_stream = crate::serve::render_event_stream(&serve_trace, serve_route_every);
    let serve_cfg = |shed: bool| crate::serve::ServeConfig {
        spec: "incremental(t=10,hl=20000)".to_string(),
        block: serve_block,
        queue: 1024,
        shed,
        spin: serve_spin,
        ..crate::serve::ServeConfig::default()
    };
    let serve_run = |input: Box<dyn std::io::Read + Send>, shed: bool| {
        let start = Instant::now();
        let summary = crate::serve::run_events(serve_cfg(shed), input, &mut std::io::sink())
            .map_err(|e| err(format!("serve bench: {e}")))?;
        Ok::<_, CliError>((summary, start.elapsed().as_secs_f64()))
    };
    let (cap_summary, cap_secs) =
        serve_run(Box::new(std::io::Cursor::new(serve_stream.clone())), false)?;
    let capacity_eps = cap_summary.events as f64 / cap_secs.max(1e-9);
    let _ = writeln!(
        report,
        "serve    capacity {} events in {cap_secs:.3}s = {capacity_eps:.0} events/s \
         (spin {serve_spin}, block {serve_block}, lossless backpressure)",
        cap_summary.events
    );
    let mut serve_rows = Vec::new();
    for factor in [1u32, 4, 16] {
        let offered = capacity_eps * f64::from(factor);
        let bytes_per_sec = offered * (serve_stream.len() as f64 / cap_summary.events as f64);
        let paced = PacedReader::new(serve_stream.clone(), bytes_per_sec);
        let (s, secs) = serve_run(Box::new(paced), true)?;
        let offered_pairs = s.pairs + s.shed_pairs;
        let shed_rate = if offered_pairs == 0 {
            0.0
        } else {
            s.shed_pairs as f64 / offered_pairs as f64
        };
        let (p50, p99) = s.route_latency_us.unwrap_or((f64::NAN, f64::NAN));
        let _ = writeln!(
            report,
            "serve    {factor:>2}x offered ({offered:.0} events/s): {secs:.3}s, \
             shed rate {shed_rate:.3} ({} pairs dropped, {} refreshes shed), \
             route p50/p99 {p50:.0}/{p99:.0}us, {} shed lookups",
            s.shed_pairs, s.shed_refreshes, s.outcomes.2
        );
        serve_rows.push(Json::Obj(vec![
            ("offered_x".into(), Json::from(factor)),
            ("offered_events_per_sec".into(), Json::from(offered)),
            ("secs".into(), Json::from(secs)),
            ("events".into(), Json::from(s.events)),
            ("pairs".into(), Json::from(s.pairs)),
            ("shed_pairs".into(), Json::from(s.shed_pairs)),
            ("shed_rate".into(), Json::from(shed_rate)),
            ("routes".into(), Json::from(s.routes)),
            ("shed_routes".into(), Json::from(s.outcomes.2)),
            ("route_p50_us".into(), Json::from(p50)),
            ("route_p99_us".into(), Json::from(p99)),
            ("refreshes".into(), Json::from(s.refreshes)),
            ("shed_refreshes".into(), Json::from(s.shed_refreshes)),
        ]));
    }

    // 8. Sweep orchestration overhead: the same jobs through the
    //    journaled sweep runner (plan expansion, fsync'd journal,
    //    report assembly) vs directly through the executor, plus a
    //    resume pass that must skip every completed job. Measures what
    //    `arq sweep` costs over `engine::execute` per job.
    let sweep_pairs: usize = if quick { 8_000 } else { 24_000 };
    let sweep_plan_text = format!(
        "name = \"bench-sweep\"\nkind = \"trace-eval\"\nseed = {seed}\n\n\
         [base]\npairs = {sweep_pairs}\nblock = 2000\nstrategy = \"sliding(s=10)\"\n\n\
         [[axis]]\nkey = \"strategy.s\"\nvalues = [3, 5, 10, 20]\n"
    );
    let sweep_plan = sweep::SweepPlan::parse(&sweep_plan_text, "bench-sweep.toml")
        .map_err(|e| err(format!("sweep bench: {e}")))?;
    let expand_start = Instant::now();
    let sweep_jobs = sweep::expand(&sweep_plan).map_err(|e| err(format!("sweep bench: {e}")))?;
    let expand_secs = expand_start.elapsed().as_secs_f64();
    let sweep_specs: Vec<RunSpec> = sweep_jobs.iter().map(|j| j.spec.clone()).collect();
    let direct_start = Instant::now();
    let direct_artifacts = engine::execute_with_threads(&sweep_specs, threads)
        .map_err(|e| err(format!("sweep bench: {e}")))?;
    let direct_secs = direct_start.elapsed().as_secs_f64();
    let sweep_dir = std::env::temp_dir().join(format!("arq-bench-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&sweep_dir);
    let sweep_start = Instant::now();
    let outcome = sweep::run_sweep(&sweep_plan, &sweep_jobs, &sweep_dir, false, 0, threads)
        .map_err(|e| err(format!("sweep bench: {e}")))?;
    let sweep_secs = sweep_start.elapsed().as_secs_f64();
    let resume_start = Instant::now();
    let resumed = sweep::run_sweep(&sweep_plan, &sweep_jobs, &sweep_dir, true, 0, threads)
        .map_err(|e| err(format!("sweep bench: {e}")))?;
    let resume_secs = resume_start.elapsed().as_secs_f64();
    let sweep_resume_clean = resumed.jobs_skipped == resumed.jobs_total
        && resumed.report.to_string() == outcome.report.to_string();
    // The runner must hand back the same artifacts the executor does:
    // match each runbook row's content digest against the direct run.
    let direct_digests: Vec<String> = direct_artifacts
        .iter()
        .map(|a| format!("{:016x}", sweep::artifact_content_digest(a)))
        .collect();
    let runbook_digests: Vec<String> = outcome
        .runbook
        .get("jobs")
        .and_then(Json::as_array)
        .map(|rows| {
            rows.iter()
                .filter_map(|r| r.get("artifact_digest").and_then(Json::as_str))
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();
    let sweep_identical = direct_digests == runbook_digests;
    let _ = std::fs::remove_dir_all(&sweep_dir);
    let sweep_overhead = ratio(sweep_secs, direct_secs);
    let _ = writeln!(
        report,
        "sweep    {} jobs ({sweep_pairs} pairs each): expand {expand_secs:.3}s, direct \
         {direct_secs:.3}s, journaled {sweep_secs:.3}s ({sweep_overhead:.2}x), resume \
         {resume_secs:.3}s skipped {}/{} (artifacts identical: {sweep_identical}, resume \
         clean: {sweep_resume_clean})",
        sweep_jobs.len(),
        resumed.jobs_skipped,
        resumed.jobs_total
    );

    let mut sim_section = vec![
        (
            "workload".to_string(),
            Json::from("e16-shaped policy/loss sweep"),
        ),
        ("specs".to_string(), Json::from(sim_specs.len())),
        ("nodes".to_string(), Json::from(nodes)),
        ("queries".to_string(), Json::from(queries)),
        ("serial_secs".to_string(), Json::from(serial_secs)),
        ("parallel_secs".to_string(), Json::from(parallel_secs)),
        ("speedup".to_string(), Json::from(sim_speedup)),
        ("artifacts_identical".to_string(), Json::from(sim_identical)),
        ("budget".to_string(), budget.to_json()),
    ];
    if bench5_comparable {
        sim_section.push((
            "bench5_serial_secs".to_string(),
            Json::from(BENCH_5_SIM_SERIAL_SECS),
        ));
        sim_section.push((
            "speedup_vs_bench5".to_string(),
            Json::from(ratio(BENCH_5_SIM_SERIAL_SECS, serial_secs)),
        ));
    }
    let doc = Json::Obj(vec![
        ("bench".into(), Json::from("BENCH_10")),
        ("quick".into(), Json::from(quick)),
        ("threads".into(), Json::from(threads)),
        ("seed".into(), Json::from(seed)),
        ("iters".into(), Json::from(iters)),
        (
            "mining".into(),
            Json::Obj(vec![
                ("workload".into(), Json::from("e3-shaped paper-default")),
                ("blocks".into(), Json::from(blocks)),
                ("block_size".into(), Json::from(block_size)),
                ("support".into(), Json::from(support)),
                ("baseline_secs".into(), Json::from(baseline_secs)),
                ("sharded_secs".into(), Json::from(sharded_secs)),
                (
                    "baseline_pairs_per_sec".into(),
                    Json::from(ratio(total_pairs as f64, baseline_secs)),
                ),
                (
                    "sharded_pairs_per_sec".into(),
                    Json::from(ratio(total_pairs as f64, sharded_secs)),
                ),
                ("speedup".into(), Json::from(mining_speedup)),
                ("rules_identical".into(), Json::from(rules_identical)),
            ]),
        ),
        (
            "pipeline".into(),
            Json::Obj(vec![
                ("strategy".into(), Json::from("sliding(s=10)")),
                ("blocks".into(), Json::from(blocks)),
                ("block_size".into(), Json::from(block_size)),
                ("sequential_secs".into(), Json::from(sequential_secs)),
                ("pipelined_secs".into(), Json::from(pipelined_secs)),
                ("speedup".into(), Json::from(eval_speedup)),
                ("artifacts_identical".into(), Json::from(eval_identical)),
            ]),
        ),
        ("sim".into(), Json::Obj(sim_section)),
        (
            "sim_scale".into(),
            Json::Obj(vec![
                (
                    "engine".into(),
                    Json::from("windowed sharded (run_sharded)"),
                ),
                ("policy".into(), Json::from(scale_policy.as_str())),
                ("threads".into(), Json::from(scale_threads)),
                ("points".into(), Json::Arr(scale_points)),
            ]),
        ),
        (
            "links".into(),
            Json::Obj(vec![
                (
                    "workload".into(),
                    Json::from("e17-shaped offered-load sweep under congested links"),
                ),
                ("plan".into(), Json::from(LINK_PLAN)),
                ("specs".into(), Json::from(link_specs.len())),
                ("nodes".into(), Json::from(nodes)),
                ("queries".into(), Json::from(queries)),
                ("secs".into(), Json::from(link_secs)),
                ("artifacts_identical".into(), Json::from(link_identical)),
                ("rows".into(), Json::Arr(link_rows)),
            ]),
        ),
        (
            "routing".into(),
            Json::Obj(vec![
                (
                    "workload".into(),
                    Json::from("e18-shaped routing-science sweep with topology adaptation"),
                ),
                ("specs".into(), Json::from(routing_specs.len())),
                ("nodes".into(), Json::from(nodes)),
                ("queries".into(), Json::from(queries)),
                ("secs".into(), Json::from(routing_secs)),
                ("artifacts_identical".into(), Json::from(routing_identical)),
                ("rows".into(), Json::Arr(routing_rows)),
            ]),
        ),
        (
            "serve".into(),
            Json::Obj(vec![
                (
                    "workload".into(),
                    Json::from("paced overload of arq serve in shed mode"),
                ),
                ("pairs".into(), Json::from(serve_pairs)),
                ("spin".into(), Json::from(serve_spin)),
                ("block".into(), Json::from(serve_block)),
                ("route_every".into(), Json::from(serve_route_every)),
                ("capacity_events_per_sec".into(), Json::from(capacity_eps)),
                ("capacity_secs".into(), Json::from(cap_secs)),
                ("rows".into(), Json::Arr(serve_rows)),
            ]),
        ),
        (
            "sweep".into(),
            Json::Obj(vec![
                (
                    "workload".into(),
                    Json::from("journaled sweep runner vs direct executor"),
                ),
                ("jobs".into(), Json::from(sweep_jobs.len())),
                ("pairs_per_job".into(), Json::from(sweep_pairs)),
                ("expand_secs".into(), Json::from(expand_secs)),
                ("direct_secs".into(), Json::from(direct_secs)),
                ("sweep_secs".into(), Json::from(sweep_secs)),
                ("overhead".into(), Json::from(sweep_overhead)),
                ("resume_secs".into(), Json::from(resume_secs)),
                ("resume_clean".into(), Json::from(sweep_resume_clean)),
                ("artifacts_identical".into(), Json::from(sweep_identical)),
            ]),
        ),
    ]);
    arq_simkern::write_atomic_str(&out, &doc.to_string_pretty())
        .map_err(|e| err(format!("writing {out}: {e}")))?;
    let _ = writeln!(report, "wrote {out}");
    Ok(report)
}

/// `arq sweep` — run, resume, or inspect a declarative sweep plan.
fn cmd_sweep(args: &[String]) -> Result<String, CliError> {
    let Some((action, rest)) = args.split_first() else {
        return Err(err("sweep needs an action: run | resume | show"));
    };
    if !matches!(action.as_str(), "run" | "resume" | "show") {
        return Err(err(format!(
            "unknown sweep action `{action}` (run | resume | show)"
        )));
    }
    let Some((plan_path, rest)) = rest.split_first() else {
        return Err(err(format!("sweep {action} needs a plan file")));
    };
    let flags = Flags::parse(rest, &[])?;
    let plan = sweep::SweepPlan::load(plan_path).map_err(|e| err(e.to_string()))?;
    let jobs = sweep::expand(&plan).map_err(|e| err(e.to_string()))?;
    let mut report = String::new();
    if action == "show" {
        let _ = writeln!(
            report,
            "plan {}  kind {}  seed {}  sampler {}  hash {:016x}",
            plan.name,
            plan.kind.label(),
            plan.seed,
            plan.sampler.describe(),
            plan.hash()
        );
        let _ = writeln!(report, "{} job(s):", jobs.len());
        for job in &jobs {
            let params = if job.params.is_empty() {
                "(base)".to_string()
            } else {
                job.params
                    .iter()
                    .map(|(k, v)| format!("{k}={}", v.render()))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let _ = writeln!(
                report,
                "  #{:<3} {:<24} {params}  [{:016x}]",
                job.index,
                job.spec.subject(),
                job.spec.digest()
            );
        }
        return Ok(report);
    }
    let resume = action == "resume";
    let spin: u64 = flags.parse_num("spin", 0)?;
    let out_dir = flags
        .get("out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::Path::new("sweeps").join(&plan.name));
    let outcome = sweep::run_sweep(&plan, &jobs, &out_dir, resume, spin, engine::thread_count())
        .map_err(|e| err(e.to_string()))?;
    let _ = writeln!(
        report,
        "sweep {}: {} jobs ({} run, {} skipped)",
        plan.name, outcome.jobs_total, outcome.jobs_run, outcome.jobs_skipped
    );
    let _ = writeln!(report, "  report  -> {}", outcome.report_path.display());
    let _ = writeln!(report, "  runbook -> {}", outcome.runbook_path.display());
    let _ = writeln!(report, "  journal -> {}", outcome.journal_path.display());
    Ok(report)
}

fn cmd_gen_events(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &[])?;
    let pairs: usize = flags.parse_num("pairs", 100_000)?;
    let seed: u64 = flags.parse_num("seed", 1)?;
    let route_every: usize = flags.parse_num("route-every", 0)?;
    let out = flags.required("out")?;
    let records = SynthTrace::new(SynthConfig::paper_default(pairs, seed)).pairs();
    let stream = crate::serve::render_event_stream(&records, route_every);
    arq_simkern::write_atomic(out, &stream).map_err(|e| err(format!("writing {out}: {e}")))?;
    let routes = records.len().checked_div(route_every).unwrap_or(0);
    Ok(format!(
        "wrote event stream: {} pair frames, {} route frames, {} bytes -> {out}\n",
        records.len(),
        routes,
        stream.len()
    ))
}

fn cmd_serve(args: &[String]) -> Result<String, CliError> {
    use crate::serve;
    let flags = Flags::parse(args, &["shed"])?;
    let cfg = serve::ServeConfig {
        spec: flags.get("maintainer").unwrap_or("incremental").to_string(),
        block: flags.parse_num("block", 10_000u64)?,
        k: flags.parse_num("k", 2usize)?,
        queue: flags.parse_num("queue", 1024usize)?,
        shed: flags.has("shed"),
        checkpoint: flags.get("checkpoint").map(str::to_string),
        checkpoint_every: flags.parse_num("checkpoint-every", 0u64)?,
        metrics: flags.get("metrics").map(str::to_string),
        spin: flags.parse_num("spin", 0u64)?,
        ..serve::ServeConfig::default()
    };
    serve::install_signal_handlers();
    let input = flags.get("input").unwrap_or("-");
    let socket = flags.get("socket");
    let summary = if let Some(path) = socket {
        #[cfg(unix)]
        {
            serve::run_socket(cfg, path)
        }
        #[cfg(not(unix))]
        {
            return Err(err(format!(
                "--socket {path} requires a Unix platform; use --input instead"
            )));
        }
    } else if input == "-" {
        serve::run_events(cfg, std::io::stdin(), &mut std::io::stdout())
    } else {
        let file =
            File::open(input).map_err(|e| err(format!("opening event stream {input}: {e}")))?;
        serve::run_events(cfg, file, &mut std::io::stdout())
    }
    .map_err(|e| err(e.message))?;
    if let Some(out) = flags.get("out") {
        arq_simkern::write_atomic_str(out, &summary.to_json().to_string_pretty())
            .map_err(|e| err(format!("writing {out}: {e}")))?;
    }
    Ok(summary.report())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("arq-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn gen_events_and_serve_round_trip() {
        let stream = tmp("serve-events.bin");
        let ckpt = tmp("serve.ckpt");
        let summary_path = tmp("serve-summary.json");
        let _ = std::fs::remove_file(&ckpt);
        let out = run(&args(&format!(
            "gen-events --pairs 3000 --seed 6 --route-every 500 --out {stream}"
        )))
        .unwrap();
        assert!(out.contains("3000 pair frames, 6 route frames"), "{out}");
        let out = run(&args(&format!(
            "serve --input {stream} --maintainer incremental(t=4,hl=2000) --block 1000 \
             --checkpoint {ckpt} --checkpoint-every 1000 --out {summary_path}"
        )))
        .unwrap();
        assert!(out.contains("events:          3006 (3000 pairs"), "{out}");
        let doc =
            arq_simkern::json::parse(&std::fs::read_to_string(&summary_path).unwrap()).unwrap();
        assert_eq!(doc.get("pairs").and_then(Json::as_f64), Some(3000.0));
        let digest = doc
            .get("ruleset_digest")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        // Re-running over the same stream with the checkpoint in place
        // skips everything and lands on the same digest.
        let out = run(&args(&format!(
            "serve --input {stream} --maintainer incremental(t=4,hl=2000) --block 1000 \
             --checkpoint {ckpt} --out {summary_path}"
        )))
        .unwrap();
        assert!(out.contains("3000 skipped by checkpoint"), "{out}");
        let doc =
            arq_simkern::json::parse(&std::fs::read_to_string(&summary_path).unwrap()).unwrap();
        assert_eq!(
            doc.get("ruleset_digest").and_then(Json::as_str),
            Some(digest.as_str())
        );
        let _ = std::fs::remove_file(&ckpt);
    }

    #[test]
    fn sweep_show_run_resume_round_trip() {
        let plan_path = tmp("cli-sweep.toml");
        std::fs::write(
            &plan_path,
            "name = \"cli-sweep\"\nkind = \"trace-eval\"\nseed = 5\n\n[base]\npairs = 6000\n\
             block = 2000\nstrategy = \"sliding(s=10)\"\n\n[[axis]]\nkey = \"strategy.s\"\n\
             values = [3, 5]\n",
        )
        .unwrap();
        let out_dir = tmp("cli-sweep-out");
        let _ = std::fs::remove_dir_all(&out_dir);

        let out = run(&args(&format!("sweep show {plan_path}"))).unwrap();
        assert!(
            out.contains("plan cli-sweep  kind trace-eval  seed 5"),
            "{out}"
        );
        assert!(out.contains("2 job(s):"), "{out}");
        assert!(out.contains("strategy.s=3"), "{out}");

        let out = run(&args(&format!("sweep run {plan_path} --out {out_dir}"))).unwrap();
        assert!(
            out.contains("sweep cli-sweep: 2 jobs (2 run, 0 skipped)"),
            "{out}"
        );
        let report_path = std::path::Path::new(&out_dir).join("report.json");
        let first = std::fs::read(&report_path).unwrap();
        let doc = arq_simkern::json::parse(std::str::from_utf8(&first).unwrap()).unwrap();
        assert_eq!(
            doc.get("rows").and_then(Json::as_array).map(|r| r.len()),
            Some(2)
        );

        // Resume over a finished sweep skips every job and reassembles
        // identical bytes from the journal.
        let out = run(&args(&format!("sweep resume {plan_path} --out {out_dir}"))).unwrap();
        assert!(out.contains("(0 run, 2 skipped)"), "{out}");
        assert_eq!(std::fs::read(&report_path).unwrap(), first);
        let _ = std::fs::remove_dir_all(&out_dir);
    }

    #[test]
    fn sweep_rejects_bad_actions_and_bad_plans() {
        let e = run(&args("sweep")).unwrap_err();
        assert!(e.0.contains("run | resume | show"), "{e}");
        let e = run(&args("sweep frobnicate plan.toml")).unwrap_err();
        assert!(e.0.contains("unknown sweep action"), "{e}");
        let e = run(&args("sweep show /nonexistent/plan.toml")).unwrap_err();
        assert!(e.0.contains("plan.toml"), "{e}");
        // Plan-file diagnostics match registry-spec quality: unknown
        // keys list the valid vocabulary.
        let bad = tmp("cli-sweep-bad.toml");
        std::fs::write(
            &bad,
            "name = \"bad\"\nkind = \"trace-eval\"\nseed = 1\n\n[base]\nblok = 2000\n",
        )
        .unwrap();
        let e = run(&args(&format!("sweep show {bad}"))).unwrap_err();
        assert!(e.0.contains("unknown key `blok`"), "{e}");
        assert!(e.0.contains("valid:"), "{e}");
    }

    #[test]
    fn no_args_prints_usage() {
        assert_eq!(run(&[]).unwrap(), USAGE);
        assert_eq!(run(&args("help")).unwrap(), USAGE);
    }

    #[test]
    fn unknown_command_errors() {
        let e = run(&args("frobnicate")).unwrap_err();
        assert!(e.0.contains("unknown command"));
    }

    #[test]
    fn gen_stats_evaluate_pipeline() {
        let trace = tmp("pipeline.csv");
        let out = run(&args(&format!(
            "gen-trace --pairs 30000 --seed 5 --out {trace}"
        )))
        .unwrap();
        assert!(out.contains("30000 pairs"));

        let out = run(&args(&format!("stats --trace {trace}"))).unwrap();
        assert!(out.contains("pairs:               30000"));

        let out = run(&args(&format!(
            "evaluate --trace {trace} --strategy sliding --block 10000 --support 10"
        )))
        .unwrap();
        assert!(out.contains("avg coverage"));
        assert!(out.contains("trials:          2"));
    }

    #[test]
    fn raw_clean_join_pipeline() {
        let raw = tmp("raw.csv");
        let pairs = tmp("joined.csv");
        run(&args(&format!(
            "gen-trace --pairs 3000 --seed 2 --out {raw} --raw"
        )))
        .unwrap();
        let out = run(&args(&format!("stats --trace {raw} --raw"))).unwrap();
        assert!(out.contains("answer ratio"));
        let out = run(&args(&format!("clean-join --raw {raw} --out {pairs}"))).unwrap();
        assert!(out.contains("joined:"));
        let out = run(&args(&format!("stats --trace {pairs}"))).unwrap();
        assert!(out.contains("distinct sources"));
    }

    #[test]
    fn evaluate_rejects_short_traces_and_bad_strategy() {
        let trace = tmp("short.csv");
        run(&args(&format!(
            "gen-trace --pairs 5000 --seed 3 --out {trace}"
        )))
        .unwrap();
        let e = run(&args(&format!("evaluate --trace {trace} --block 10000"))).unwrap_err();
        assert!(e.0.contains("at least two blocks"));
        let e = run(&args(&format!(
            "evaluate --trace {trace} --block 1000 --strategy bogus"
        )))
        .unwrap_err();
        assert!(e.0.contains("unknown strategy"));
    }

    #[test]
    fn mine_prints_ranked_rules() {
        let trace = tmp("mine.csv");
        run(&args(&format!(
            "gen-trace --pairs 12000 --seed 8 --out {trace}"
        )))
        .unwrap();
        let out = run(&args(&format!(
            "mine --trace {trace} --block 10000 --support 10 --top 5"
        )))
        .unwrap();
        assert!(out.contains("mined"), "{out}");
        assert!(out.contains("support"), "{out}");
        // Confidence cut shrinks the set.
        let cut = run(&args(&format!(
            "mine --trace {trace} --block 10000 --support 10 --confidence 0.3"
        )))
        .unwrap();
        let count = |s: &str| -> u64 {
            s.split_whitespace()
                .nth(1)
                .and_then(|w| w.parse().ok())
                .unwrap_or(0)
        };
        assert!(count(&cut) <= count(&out), "confidence cut grew the set");
    }

    #[test]
    fn evaluate_all_strategies_run() {
        let trace = tmp("all.csv");
        run(&args(&format!(
            "gen-trace --pairs 20000 --seed 4 --out {trace}"
        )))
        .unwrap();
        for s in [
            "static",
            "sliding",
            "lazy",
            "adaptive",
            "incremental",
            "lossy",
            "topic",
        ] {
            let out = run(&args(&format!(
                "evaluate --trace {trace} --strategy {s} --block 5000 --support 5"
            )))
            .unwrap_or_else(|e| panic!("strategy {s}: {e}"));
            assert!(out.contains("avg success"), "strategy {s} output:\n{out}");
        }
    }

    #[test]
    fn simulate_policies() {
        for p in ["flood", "assoc", "hybrid", "community(n=8)"] {
            let out = run(&args(&format!(
                "simulate --nodes 60 --queries 150 --policy {p} --seed 9"
            )))
            .unwrap_or_else(|e| panic!("policy {p}: {e}"));
            assert!(out.contains("messages/query"), "policy {p} output:\n{out}");
        }
        let e = run(&args("simulate --policy bogus")).unwrap_err();
        assert!(e.0.contains("unknown policy"));
    }

    #[test]
    fn simulate_with_faults_and_retry() {
        // Bare key=value lists wrap into registry specs; `live` aliases
        // `simulate`.
        let out = run(&args(
            "live --nodes 60 --queries 150 --seed 9 --faults loss=0.2 --retry attempts=2",
        ))
        .unwrap();
        assert!(out.contains("lost messages:"), "{out}");
        assert!(out.contains("retried:"), "{out}");
        // Full specs pass through verbatim.
        let out = run(&args(
            "simulate --nodes 60 --queries 150 --seed 9 --faults faults(loss=0.1,silent=0.05)",
        ))
        .unwrap();
        assert!(out.contains("lost messages:"), "{out}");
        // Bad fault keys surface the registry's key list.
        let e = run(&args("simulate --faults dropchance=0.5")).unwrap_err();
        assert!(e.0.contains("unknown parameter"), "{e}");
        assert!(e.0.contains("valid:"), "{e}");
        let e = run(&args("simulate --retry deadline=0")).unwrap_err();
        assert!(e.0.contains("deadline"), "{e}");
    }

    #[test]
    fn simulate_with_links() {
        // Bare key=value lists wrap into `links(...)`; congested uplinks
        // surface the congestive-drop counter.
        let out = run(&args(
            "simulate --nodes 60 --queries 150 --seed 9 \
             --links up=4,down=16,upbuf=512,downbuf=2048 --retry attempts=2",
        ))
        .unwrap();
        assert!(out.contains("buffer dropped:"), "{out}");
        assert!(out.contains("lost messages:"), "{out}");
        // The sharded engine accepts the same plan.
        let out = run(&args(
            "simulate --sharded --nodes 60 --queries 150 --seed 9 \
             --links links(up=8,down=32,upbuf=2048,downbuf=8192,loss=0.05)",
        ))
        .unwrap();
        assert!(out.contains("buffer dropped:"), "{out}");
        // Bad link keys surface the registry's key list; zero bandwidth
        // is rejected by name.
        let e = run(&args("simulate --links bandwidth=5")).unwrap_err();
        assert!(e.0.contains("unknown parameter"), "{e}");
        assert!(e.0.contains("upbuf"), "{e}");
        let e = run(&args("simulate --links up=0")).unwrap_err();
        assert!(e.0.contains("`up` must be positive"), "{e}");
    }

    #[test]
    fn simulate_rejects_bad_minconf_and_adapt_specs() {
        // A bad `minconf=` surfaces the registry's typed spec error, not
        // a panic from deep inside rule generation — for every policy
        // that understands the knob.
        for p in [
            "assoc(k=4,minconf=1.5)",
            "assoc-adaptive(minconf=-0.1)",
            "hybrid(minconf=2)",
            "community(minconf=1.01)",
        ] {
            let e = run(&args(&format!(
                "simulate --nodes 40 --queries 50 --policy {p}"
            )))
            .unwrap_err();
            assert!(e.0.contains("`minconf` must be in [0, 1]"), "{p}: {e}");
        }
        // Bad adapt plans are rejected by field name at parse time.
        let e = run(&args("simulate --adapt every=0")).unwrap_err();
        assert!(e.0.contains("`every` must be positive"), "{e}");
        let e = run(&args("simulate --adapt budgit=4")).unwrap_err();
        assert!(e.0.contains("unknown parameter"), "{e}");
        assert!(e.0.contains("budget"), "{e}");
        // The happy path: confidence-pruned top-k routing with live
        // topology adaptation runs in both engines.
        let out = run(&args(
            "simulate --nodes 60 --queries 150 --seed 9 --policy assoc(k=4,minconf=0.6) \
             --adapt every=20000,budget=8,degree=2",
        ))
        .unwrap();
        assert!(out.contains("messages/query"), "{out}");
        let out = run(&args(
            "simulate --sharded --nodes 60 --queries 150 --seed 9 \
             --policy assoc(k=4,minconf=0.6) --adapt every=20000,budget=8,degree=2",
        ))
        .unwrap();
        assert!(out.contains("messages/query"), "{out}");
    }

    #[test]
    fn e18_plan_reports_are_thread_count_invariant() {
        // The checked-in E18 plan (rescaled to smoke size) must land a
        // byte-identical report.json at any worker count.
        let mut plan =
            sweep::SweepPlan::parse(include_str!("../../../plans/e18.toml"), "plans/e18.toml")
                .unwrap();
        plan.set_base("nodes", 60usize).unwrap();
        plan.set_base("queries", 120usize).unwrap();
        let jobs = sweep::expand(&plan).unwrap();
        assert_eq!(jobs.len(), 28, "7 policies x 2 worlds x 2 adapt modes");
        let mut reports = Vec::new();
        for threads in [1usize, 4, 20] {
            let dir = tmp(&format!("e18-threads-{threads}"));
            let _ = std::fs::remove_dir_all(&dir);
            let outcome =
                sweep::run_sweep(&plan, &jobs, std::path::Path::new(&dir), false, 0, threads)
                    .unwrap();
            reports.push(std::fs::read(&outcome.report_path).unwrap());
            let _ = std::fs::remove_dir_all(&dir);
        }
        assert_eq!(reports[0], reports[1], "1-thread vs 4-thread report");
        assert_eq!(reports[0], reports[2], "1-thread vs 20-thread report");
    }

    #[test]
    fn run_with_links_reports_percentiles() {
        let arts = tmp("link_artifacts.json");
        let out = run(&args(&format!(
            "run --policy flood --nodes 50 --queries 80 --seed 4 \
             --links up=8,down=32,upbuf=1024,downbuf=4096 --obs events=0,series=0 \
             --out {arts}"
        )))
        .unwrap();
        assert!(out.contains("metrics digest"), "{out}");
        let rep = run(&args(&format!("report --in {arts}"))).unwrap();
        assert!(rep.contains("query latency p50/p95/p99"), "{rep}");
        assert!(rep.contains("node bytes p50/p95"), "{rep}");
    }

    #[test]
    fn simulate_sharded_engine() {
        // The windowed sharded engine behind --sharded is deterministic
        // under faults, churn-free retries and any worker count.
        let cmd = "simulate --sharded --nodes 80 --queries 200 --seed 3 \
                   --policy flood --faults loss=0.1 --retry attempts=2";
        let a = run(&args(cmd)).unwrap();
        let b = run(&args(cmd)).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("messages/query"), "{a}");
        assert!(a.contains("lost messages:"), "{a}");
    }

    #[test]
    fn run_and_report_roundtrip() {
        let events = tmp("events.jsonl");
        let arts = tmp("artifacts.json");
        let out = run(&args(&format!(
            "run --strategy sliding(s=10) --pairs 20000 --block 5000 --seed 3 \
             --trace-events {events} --out {arts}"
        )))
        .unwrap();
        assert!(out.contains("events"), "{out}");
        assert!(out.contains("avg coverage"), "{out}");
        let jsonl = std::fs::read_to_string(&events).unwrap();
        assert!(jsonl.lines().count() > 0, "no events streamed");
        assert!(
            jsonl.lines().all(|l| l.starts_with("{\"run\":0,\"ev\":\"")),
            "events missing run prefix"
        );
        let rep = run(&args(&format!("report --in {arts} --timeline"))).unwrap();
        assert!(rep.contains("trace-eval sliding(s=10)"), "{rep}");
        assert!(rep.contains("α"), "{rep}");
        assert!(rep.contains("traffic"), "{rep}");
    }

    #[test]
    fn run_rejects_bad_obs_and_presets() {
        let e = run(&args("run --obs fanout=0 --pairs 20000")).unwrap_err();
        assert!(e.0.contains("fanout"), "{e}");
        let e = run(&args("run --exp e99")).unwrap_err();
        assert!(e.0.contains("unknown experiment preset"), "{e}");
    }

    #[test]
    fn run_live_world_emits_lifecycle_events() {
        let events = tmp("live_events.jsonl");
        let out = run(&args(&format!(
            "run --policy flood --nodes 50 --queries 60 --seed 4 \
             --faults loss=0.2 --retry attempts=2 --trace-events {events}"
        )))
        .unwrap();
        assert!(out.contains("metrics digest"), "{out}");
        let jsonl = std::fs::read_to_string(&events).unwrap();
        assert!(jsonl.contains("\"ev\":\"forward\""), "{jsonl}");
        assert!(
            jsonl.contains("\"ev\":\"fault_drop\""),
            "no drops at loss=0.2"
        );
    }

    #[test]
    fn report_reads_results_documents() {
        let path = tmp("e0.json");
        std::fs::write(
            &path,
            r#"{"id":"E0","title":"smoke","paper_claim":"n/a",
               "rows":[["metric","1.0"]],"series":{"x":[1,2,3]}}"#,
        )
        .unwrap();
        let rep = run(&args(&format!("report --in {path}"))).unwrap();
        assert!(rep.contains("E0 — smoke"), "{rep}");
        assert!(rep.contains("metric: 1.0"), "{rep}");
        let rep = run(&args(&format!("report --in {path} --timeline"))).unwrap();
        assert!(rep.contains("series x: 3 points"), "{rep}");
    }

    #[test]
    fn report_names_missing_and_unknown_sections() {
        // A future-schema artifact kind is refused by name.
        let path = tmp("future-artifact.json");
        std::fs::write(
            &path,
            r#"[{"kind":"quantum-eval","label":"x","seed":1,"digest":"00","run":{}}]"#,
        )
        .unwrap();
        let e = run(&args(&format!("report --in {path}"))).unwrap_err();
        assert!(e.0.contains("artifact 0"), "{e}");
        assert!(e.0.contains("unknown artifact kind `quantum-eval`"), "{e}");

        // A partial artifact names the section it lost.
        std::fs::write(&path, r#"{"kind":"trace-eval","label":"x","seed":1}"#).unwrap();
        let e = run(&args(&format!("report --in {path}"))).unwrap_err();
        assert!(e.0.contains("missing section `run`"), "{e}");

        std::fs::write(&path, r#"{"kind":"live-sim","label":"x","run":{}}"#).unwrap();
        let e = run(&args(&format!("report --in {path}"))).unwrap_err();
        assert!(e.0.contains("missing section `run.metrics`"), "{e}");

        // Not an artifact at all: `kind` itself is the named gap.
        std::fs::write(&path, r#"{"label":"x"}"#).unwrap();
        let e = run(&args(&format!("report --in {path}"))).unwrap_err();
        assert!(e.0.contains("missing section `kind`"), "{e}");
    }

    #[test]
    fn bench_writes_baseline_json() {
        let out = tmp("bench8.json");
        let report = run(&args(&format!(
            "bench --quick --pairs 40000 --block 20000 --nodes 60 --queries 120 \
             --scale-nodes 2000 --scale-queries 200 --threads 4 --seed 11 --out {out}"
        )))
        .unwrap();
        assert!(report.contains("rules identical: true"), "{report}");
        assert!(report.contains("artifacts identical: true"), "{report}");
        let doc = arq_simkern::json::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
        assert_eq!(doc.get("bench").and_then(Json::as_str), Some("BENCH_10"));
        for section in ["mining", "pipeline", "sim"] {
            let s = doc
                .get(section)
                .unwrap_or_else(|| panic!("missing {section}"));
            assert!(
                s.get("speedup").and_then(Json::as_f64).is_some(),
                "{section} lacks a speedup"
            );
        }
        assert_eq!(
            doc.get("pipeline")
                .and_then(|p| p.get("artifacts_identical")),
            Some(&Json::Bool(true))
        );
        // The executor's budget split is attributed on the sim section:
        // a sim-only sweep never reserves an intra budget.
        let budget = doc
            .get("sim")
            .and_then(|s| s.get("budget"))
            .expect("budget");
        let gauge = |name: &str| {
            budget
                .get("gauges")
                .and_then(|g| g.get(name))
                .and_then(Json::as_f64)
        };
        assert_eq!(gauge("intra_threads"), Some(1.0));
        assert_eq!(gauge("outer_threads"), Some(4.0));
        // The scale section reports throughput per point and the
        // sharded run's results match the single-threaded run's.
        let points = doc
            .get("sim_scale")
            .and_then(|s| s.get("points"))
            .and_then(Json::as_array)
            .expect("sim_scale points");
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].get("nodes").and_then(Json::as_f64), Some(2000.0));
        assert!(points[0]
            .get("queries_per_sec")
            .and_then(Json::as_f64)
            .is_some_and(|q| q > 0.0));
        assert_eq!(
            points[0].get("artifacts_identical"),
            Some(&Json::Bool(true))
        );
        // The E17-shaped link sweep persists latency percentiles and
        // per-node byte budgets per (policy, load) row, byte-identical
        // across worker counts.
        let links = doc.get("links").expect("links section");
        assert_eq!(
            links.get("artifacts_identical"),
            Some(&Json::Bool(true)),
            "link sweep diverged across thread counts"
        );
        let rows = links
            .get("rows")
            .and_then(Json::as_array)
            .expect("link rows");
        assert_eq!(rows.len(), 9, "3 policies x 3 load levels");
        for row in rows {
            assert!(row.get("policy").and_then(Json::as_str).is_some());
            let p95 = row
                .get("latency_ticks")
                .and_then(|l| l.get("p95"))
                .and_then(Json::as_f64)
                .expect("latency p95");
            assert!(p95 >= 0.0);
            assert!(row
                .get("node_bytes_p95")
                .and_then(|n| n.get("up"))
                .and_then(Json::as_f64)
                .is_some());
        }
        // Congestion must actually bite somewhere in the sweep.
        assert!(
            rows.iter().any(|r| r
                .get("buffer_dropped")
                .and_then(Json::as_f64)
                .is_some_and(|b| b > 0.0)),
            "no congestive drops in the link sweep"
        );
        // The E18-shaped routing sweep persists per-policy routing
        // quality with the shortcut lifecycle counters, byte-identical
        // across worker counts.
        let routing = doc.get("routing").expect("routing section");
        assert_eq!(
            routing.get("artifacts_identical"),
            Some(&Json::Bool(true)),
            "routing sweep diverged across thread counts"
        );
        let rrows = routing
            .get("rows")
            .and_then(Json::as_array)
            .expect("routing rows");
        assert_eq!(rrows.len(), 4, "4 confidence-pruned policies");
        for row in rrows {
            assert!(row.get("policy").and_then(Json::as_str).is_some());
            assert!(row.get("success_rate").and_then(Json::as_f64).is_some());
            assert!(row.get("shortcut_added").and_then(Json::as_f64).is_some());
        }
        // Adaptation must actually rewire somewhere in the sweep.
        assert!(
            rrows.iter().any(|r| r
                .get("shortcut_added")
                .and_then(Json::as_f64)
                .is_some_and(|s| s > 0.0)),
            "no shortcuts added anywhere in the routing sweep"
        );
        // The serve section records capacity plus one row per offered
        // load, with lookup latency bounded (a finite p99) and the 16x
        // overload actually shedding — counted, never silent.
        let serve = doc.get("serve").expect("serve section");
        assert!(serve
            .get("capacity_events_per_sec")
            .and_then(Json::as_f64)
            .is_some_and(|c| c > 0.0));
        let srows = serve
            .get("rows")
            .and_then(Json::as_array)
            .expect("serve rows");
        assert_eq!(srows.len(), 3, "1x/4x/16x offered loads");
        for row in srows {
            assert!(row
                .get("route_p99_us")
                .and_then(Json::as_f64)
                .is_some_and(f64::is_finite));
            assert!(row.get("shed_rate").and_then(Json::as_f64).is_some());
        }
        assert!(
            srows[2]
                .get("shed_pairs")
                .and_then(Json::as_f64)
                .is_some_and(|s| s > 0.0),
            "16x offered load must shed"
        );
        // Too-short traces are rejected before any work happens.
        let e = run(&args("bench --quick --pairs 1000 --block 20000")).unwrap_err();
        assert!(e.0.contains("at least two blocks"), "{e}");
    }

    #[test]
    fn flag_parser_errors() {
        let e = run(&args("gen-trace --pairs")).unwrap_err();
        assert!(e.0.contains("needs a value"));
        let e = run(&args("gen-trace positional")).unwrap_err();
        assert!(e.0.contains("expected a --flag"));
        let e = run(&args("gen-trace --pairs ten --out /tmp/x")).unwrap_err();
        assert!(e.0.contains("cannot parse"));
        let e = run(&args("gen-trace --pairs 100")).unwrap_err();
        assert!(e.0.contains("missing required flag --out"));
    }

    #[test]
    fn upheaval_flag_changes_the_trace() {
        let a = tmp("plain.csv");
        let b = tmp("upheaval.csv");
        run(&args(&format!("gen-trace --pairs 2000 --seed 6 --out {a}"))).unwrap();
        run(&args(&format!(
            "gen-trace --pairs 2000 --seed 6 --out {b} --upheaval"
        )))
        .unwrap();
        // Below the upheaval index the streams agree; the flag is still
        // accepted and produces a valid file.
        let pa = csvio::read_pairs(File::open(&a).unwrap()).unwrap();
        let pb = csvio::read_pairs(File::open(&b).unwrap()).unwrap();
        assert_eq!(pa.len(), pb.len());
    }
}
