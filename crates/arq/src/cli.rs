//! The `arq` command-line tool.
//!
//! A thin, dependency-free front end over the library: generate
//! calibrated traces, inspect them, run the cleaning/join pipeline,
//! evaluate any rule-maintenance strategy, and run live policy
//! simulations — all from the shell. The binary in `src/bin/arq.rs`
//! forwards to [`run`], which returns its report as a string so the test
//! suite can drive every subcommand in-process.
//!
//! ```text
//! arq gen-trace --pairs 200000 --seed 7 --out trace.csv [--raw] [--upheaval]
//! arq stats     --trace trace.csv [--raw]
//! arq clean-join --raw capture.csv --out pairs.csv
//! arq evaluate  --trace pairs.csv --strategy sliding --block 10000 --support 10 [--chart]
//! arq simulate  --nodes 400 --queries 2000 --policy assoc --seed 1
//! ```

use arq_assoc::mine_pairs;
use arq_assoc::pairs::mine_pairs_with_confidence;
use arq_core::engine;
use arq_core::evaluate;
use arq_gnutella::sim::SimConfig;
use arq_simkern::chart::{render, ChartOptions};
use arq_trace::csvio;
use arq_trace::stats::{pair_stats, raw_stats};
use arq_trace::{SynthConfig, SynthTrace, TraceDb};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufReader, BufWriter};

/// A CLI failure with a user-facing message.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Minimal flag parser: `--key value` pairs plus boolean `--flag`s.
struct Flags {
    pairs: Vec<(String, Option<String>)>,
}

impl Flags {
    fn parse(args: &[String], booleans: &[&str]) -> Result<Flags, CliError> {
        let mut pairs = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(flag) = it.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(err(format!("expected a --flag, got `{flag}`")));
            };
            if booleans.contains(&name) {
                pairs.push((name.to_string(), None));
            } else {
                let value = it
                    .next()
                    .ok_or_else(|| err(format!("--{name} needs a value")))?;
                pairs.push((name.to_string(), Some(value.clone())));
            }
        }
        Ok(Flags { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.pairs.iter().any(|(k, _)| k == name)
    }

    fn parse_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("--{name}: cannot parse `{v}`"))),
        }
    }

    fn required(&self, name: &str) -> Result<&str, CliError> {
        self.get(name)
            .ok_or_else(|| err(format!("missing required flag --{name}")))
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
arq — adaptively routing P2P queries using association analysis

USAGE: arq <COMMAND> [FLAGS]

COMMANDS:
  gen-trace   generate a calibrated synthetic trace (CSV)
              --pairs N [--seed S] --out FILE [--raw] [--upheaval]
  stats       describe a trace file
              --trace FILE [--raw]
  clean-join  clean GUIDs and join a raw capture into pairs
              --raw FILE --out FILE
  mine        mine one block's association rules and print the strongest
              --trace FILE [--block N] [--support N] [--confidence F] [--top N]
  evaluate    replay a trace through a rule-maintenance strategy
              --trace FILE [--strategy SPEC] [--block N] [--support N] [--chart]
              strategies: static | sliding | lazy | adaptive | incremental | lossy | topic
              SPEC may also carry registry parameters, e.g. sliding(s=10,c=0.05)
  simulate    run a live overlay simulation with a forwarding policy
              (alias: live)
              [--nodes N] [--queries N] [--policy SPEC] [--seed S]
              [--faults SPEC] [--retry SPEC]
              policies: flood | expanding-ring | k-walk | shortcuts |
                        routing-index | superpeer | assoc | assoc-adaptive |
                        hybrid
              SPEC accepts registry parameters too, e.g. assoc(k=2,hl=500)
              --faults injects deterministic failures, e.g. 'loss=0.05'
              or 'faults(loss=0.05,crash=0.01,silent=0.02)'; --retry adds
              the bounded-retry lifecycle, e.g. 'deadline=2000,attempts=3'
  help        print this text
";

/// Executes one CLI invocation and returns its stdout-style report.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some((command, rest)) = args.split_first() else {
        return Ok(USAGE.to_string());
    };
    match command.as_str() {
        "gen-trace" => gen_trace(rest),
        "stats" => stats(rest),
        "clean-join" => clean_join(rest),
        "mine" => mine(rest),
        "evaluate" => cmd_evaluate(rest),
        "simulate" | "live" => simulate(rest),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(err(format!("unknown command `{other}`\n\n{USAGE}"))),
    }
}

fn gen_trace(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &["raw", "upheaval"])?;
    let pairs: usize = flags.parse_num("pairs", 100_000)?;
    let seed: u64 = flags.parse_num("seed", 1)?;
    let out = flags.required("out")?;
    let cfg = if flags.has("upheaval") {
        SynthConfig::paper_static(pairs, seed)
    } else {
        SynthConfig::paper_default(pairs, seed)
    };
    let gen = SynthTrace::new(cfg);
    let file = File::create(out).map_err(|e| err(format!("creating {out}: {e}")))?;
    let mut w = BufWriter::new(file);
    let mut report = String::new();
    if flags.has("raw") {
        let (queries, replies) = gen.raw();
        csvio::write_raw(&mut w, &queries, &replies).map_err(|e| err(e.to_string()))?;
        let _ = writeln!(
            report,
            "wrote raw trace: {} queries, {} replies -> {out}",
            queries.len(),
            replies.len()
        );
    } else {
        let pairs = gen.pairs();
        csvio::write_pairs(&mut w, &pairs).map_err(|e| err(e.to_string()))?;
        let _ = writeln!(report, "wrote pair trace: {} pairs -> {out}", pairs.len());
    }
    Ok(report)
}

fn stats(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &["raw"])?;
    let path = flags.required("trace")?;
    let file = File::open(path).map_err(|e| err(format!("opening {path}: {e}")))?;
    let mut report = String::new();
    if flags.has("raw") {
        let (queries, replies) =
            csvio::read_raw(BufReader::new(file)).map_err(|e| err(e.to_string()))?;
        let s = raw_stats(&queries, &replies);
        let _ = writeln!(report, "raw trace {path}");
        let _ = writeln!(report, "  queries:             {}", s.queries);
        let _ = writeln!(report, "  replies:             {}", s.replies);
        let _ = writeln!(report, "  answer ratio:        {:.3}", s.answer_ratio);
        let _ = writeln!(report, "  distinct query hosts: {}", s.distinct_query_hosts);
        let _ = writeln!(report, "  distinct GUIDs:      {}", s.distinct_guids);
    } else {
        let pairs = csvio::read_pairs(BufReader::new(file)).map_err(|e| err(e.to_string()))?;
        let s = pair_stats(&pairs);
        let _ = writeln!(report, "pair trace {path}");
        let _ = writeln!(report, "  pairs:               {}", s.pairs);
        let _ = writeln!(report, "  distinct sources:    {}", s.distinct_src);
        let _ = writeln!(report, "  distinct reply vias: {}", s.distinct_via);
        let _ = writeln!(report, "  distinct (src,via):  {}", s.distinct_pairs);
        let _ = writeln!(report, "  pairs per source:    {:.1}", s.pairs_per_src);
        let _ = writeln!(report, "  top pair share:      {:.4}", s.top_pair_share);
    }
    Ok(report)
}

fn clean_join(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &[])?;
    let raw_path = flags.required("raw")?;
    let out = flags.required("out")?;
    let file = File::open(raw_path).map_err(|e| err(format!("opening {raw_path}: {e}")))?;
    let (queries, replies) =
        csvio::read_raw(BufReader::new(file)).map_err(|e| err(e.to_string()))?;
    let mut db = TraceDb::new();
    db.extend(queries, replies);
    let (report_counts, pairs) = db.clean_and_join();
    let out_file = File::create(out).map_err(|e| err(format!("creating {out}: {e}")))?;
    csvio::write_pairs(BufWriter::new(out_file), &pairs).map_err(|e| err(e.to_string()))?;
    let mut report = String::new();
    let _ = writeln!(
        report,
        "cleaned: {} duplicate-GUID queries dropped, {} orphan replies dropped",
        report_counts.duplicate_queries, report_counts.orphan_replies
    );
    let _ = writeln!(report, "joined: {} query-reply pairs -> {out}", pairs.len());
    Ok(report)
}

fn mine(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &[])?;
    let path = flags.required("trace")?;
    let block: usize = flags.parse_num("block", 10_000)?;
    let support: u64 = flags.parse_num("support", 10)?;
    let confidence: f64 = flags.parse_num("confidence", 0.0)?;
    let top: usize = flags.parse_num("top", 20)?;
    let file = File::open(path).map_err(|e| err(format!("opening {path}: {e}")))?;
    let pairs = csvio::read_pairs(BufReader::new(file)).map_err(|e| err(e.to_string()))?;
    if pairs.is_empty() {
        return Err(err("trace holds no pairs"));
    }
    let slice = &pairs[..block.min(pairs.len())];
    let rules = if confidence > 0.0 {
        mine_pairs_with_confidence(slice, support, confidence)
    } else {
        mine_pairs(slice, support)
    };
    let mut report = String::new();
    let _ = writeln!(
        report,
        "mined {} rules over {} antecedents from {} pairs (support >= {support}{})",
        rules.rule_count(),
        rules.antecedent_count(),
        slice.len(),
        if confidence > 0.0 {
            format!(", confidence >= {confidence}")
        } else {
            String::new()
        }
    );
    let mut rows: Vec<_> = rules.iter().collect();
    rows.sort_by_key(|&(_, _, c)| std::cmp::Reverse(c));
    for (src, via, count) in rows.into_iter().take(top) {
        let _ = writeln!(report, "  {{{src}}} -> {{{via}}}   support {count}");
    }
    Ok(report)
}

/// Maps the CLI's strategy flags onto a registry spec string. A full
/// spec like `sliding(s=10,c=0.05)` passes through verbatim; a bare
/// name composes `--support` (and, for the streaming maintainers,
/// `--block`-derived defaults) into parameters.
fn strategy_spec(name: &str, support: u64, block: usize) -> String {
    if name.contains('(') {
        return name.to_string();
    }
    match name {
        // Historical CLI shorthand for `topic-sliding`.
        "topic" => format!("topic-sliding(s={support})"),
        "incremental" => format!("incremental(t={support},hl={})", 2 * block),
        "lossy" => format!("lossy(t={support},eps={})", 1.0 / (2.0 * block as f64)),
        other => format!("{other}(s={support})"),
    }
}

fn cmd_evaluate(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &["chart"])?;
    let path = flags.required("trace")?;
    let block: usize = flags.parse_num("block", 10_000)?;
    let support: u64 = flags.parse_num("support", 10)?;
    let name = flags.get("strategy").unwrap_or("sliding");
    let file = File::open(path).map_err(|e| err(format!("opening {path}: {e}")))?;
    let pairs = csvio::read_pairs(BufReader::new(file)).map_err(|e| err(e.to_string()))?;
    if pairs.len() / block < 2 {
        return Err(err(format!(
            "trace has {} pairs: need at least two blocks of {block}",
            pairs.len()
        )));
    }
    let mut strategy = engine::make_strategy(&strategy_spec(name, support, block))
        .map_err(|e| err(e.to_string()))?;
    let run = evaluate(strategy.as_mut(), &pairs, block);
    let mut report = String::new();
    let _ = writeln!(report, "strategy:        {}", run.strategy);
    let _ = writeln!(report, "trials:          {}", run.trials);
    let _ = writeln!(report, "avg coverage:    {:.3}", run.avg_coverage);
    let _ = writeln!(report, "avg success:     {:.3}", run.avg_success);
    let _ = writeln!(report, "regenerations:   {}", run.regenerations);
    if let Some(bpr) = run.blocks_per_regen() {
        let _ = writeln!(report, "blocks/regen:    {bpr:.2}");
    }
    if flags.has("chart") {
        let _ = writeln!(
            report,
            "\n{}",
            render(
                "coverage (*) and success (+) per trial",
                &[&run.coverage, &run.success],
                &ChartOptions {
                    y_range: Some((0.0, 1.0)),
                    ..Default::default()
                },
            )
        );
    }
    Ok(report)
}

/// Wraps a bare `k=v,...` list into `name(k=v,...)`; full specs that
/// already carry a parameter list pass through verbatim.
fn wrap_spec(name: &str, spec: &str) -> String {
    if spec.contains('(') {
        spec.to_string()
    } else {
        format!("{name}({spec})")
    }
}

fn simulate(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args, &[])?;
    let nodes: usize = flags.parse_num("nodes", 400)?;
    let queries: usize = flags.parse_num("queries", 2_000)?;
    let seed: u64 = flags.parse_num("seed", 1)?;
    let policy = flags.get("policy").unwrap_or("flood");
    let mut cfg = SimConfig::default_with(nodes, queries, seed);
    if let Some(spec) = flags.get("faults") {
        cfg.faults = Some(
            engine::make_fault_plan(&wrap_spec("faults", spec)).map_err(|e| err(e.to_string()))?,
        );
    }
    if let Some(spec) = flags.get("retry") {
        cfg.retry = Some(
            engine::make_retry_policy(&wrap_spec("retry", spec)).map_err(|e| err(e.to_string()))?,
        );
    }
    let faulted = cfg.faults.is_some() || cfg.retry.is_some();
    let (metrics, stats, _, _) =
        engine::run_live(cfg, policy, None).map_err(|e| err(e.to_string()))?;
    let mut report = String::new();
    for (key, value) in &stats {
        let _ = writeln!(
            report,
            "{:<19}{value:.2}",
            format!("{}:", key.replace('_', " "))
        );
    }
    let _ = writeln!(report, "policy:            {}", metrics.policy);
    let _ = writeln!(report, "queries:           {}", metrics.queries);
    let _ = writeln!(
        report,
        "messages/query:    {:.1}",
        metrics.messages_per_query
    );
    let _ = writeln!(report, "success rate:      {:.3}", metrics.success_rate);
    if let Some(h) = &metrics.first_hit_hops {
        let _ = writeln!(report, "first-hit hops:    {:.2}", h.mean);
    }
    if faulted {
        let _ = writeln!(report, "retried:           {}", metrics.retried);
        let _ = writeln!(report, "expired:           {}", metrics.expired);
        let _ = writeln!(report, "duplicate hits:    {}", metrics.duplicate_hits);
        let _ = writeln!(report, "lost messages:     {}", metrics.lost_messages);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("arq-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn no_args_prints_usage() {
        assert_eq!(run(&[]).unwrap(), USAGE);
        assert_eq!(run(&args("help")).unwrap(), USAGE);
    }

    #[test]
    fn unknown_command_errors() {
        let e = run(&args("frobnicate")).unwrap_err();
        assert!(e.0.contains("unknown command"));
    }

    #[test]
    fn gen_stats_evaluate_pipeline() {
        let trace = tmp("pipeline.csv");
        let out = run(&args(&format!(
            "gen-trace --pairs 30000 --seed 5 --out {trace}"
        )))
        .unwrap();
        assert!(out.contains("30000 pairs"));

        let out = run(&args(&format!("stats --trace {trace}"))).unwrap();
        assert!(out.contains("pairs:               30000"));

        let out = run(&args(&format!(
            "evaluate --trace {trace} --strategy sliding --block 10000 --support 10"
        )))
        .unwrap();
        assert!(out.contains("avg coverage"));
        assert!(out.contains("trials:          2"));
    }

    #[test]
    fn raw_clean_join_pipeline() {
        let raw = tmp("raw.csv");
        let pairs = tmp("joined.csv");
        run(&args(&format!(
            "gen-trace --pairs 3000 --seed 2 --out {raw} --raw"
        )))
        .unwrap();
        let out = run(&args(&format!("stats --trace {raw} --raw"))).unwrap();
        assert!(out.contains("answer ratio"));
        let out = run(&args(&format!("clean-join --raw {raw} --out {pairs}"))).unwrap();
        assert!(out.contains("joined:"));
        let out = run(&args(&format!("stats --trace {pairs}"))).unwrap();
        assert!(out.contains("distinct sources"));
    }

    #[test]
    fn evaluate_rejects_short_traces_and_bad_strategy() {
        let trace = tmp("short.csv");
        run(&args(&format!(
            "gen-trace --pairs 5000 --seed 3 --out {trace}"
        )))
        .unwrap();
        let e = run(&args(&format!("evaluate --trace {trace} --block 10000"))).unwrap_err();
        assert!(e.0.contains("at least two blocks"));
        let e = run(&args(&format!(
            "evaluate --trace {trace} --block 1000 --strategy bogus"
        )))
        .unwrap_err();
        assert!(e.0.contains("unknown strategy"));
    }

    #[test]
    fn mine_prints_ranked_rules() {
        let trace = tmp("mine.csv");
        run(&args(&format!(
            "gen-trace --pairs 12000 --seed 8 --out {trace}"
        )))
        .unwrap();
        let out = run(&args(&format!(
            "mine --trace {trace} --block 10000 --support 10 --top 5"
        )))
        .unwrap();
        assert!(out.contains("mined"), "{out}");
        assert!(out.contains("support"), "{out}");
        // Confidence cut shrinks the set.
        let cut = run(&args(&format!(
            "mine --trace {trace} --block 10000 --support 10 --confidence 0.3"
        )))
        .unwrap();
        let count = |s: &str| -> u64 {
            s.split_whitespace()
                .nth(1)
                .and_then(|w| w.parse().ok())
                .unwrap_or(0)
        };
        assert!(count(&cut) <= count(&out), "confidence cut grew the set");
    }

    #[test]
    fn evaluate_all_strategies_run() {
        let trace = tmp("all.csv");
        run(&args(&format!(
            "gen-trace --pairs 20000 --seed 4 --out {trace}"
        )))
        .unwrap();
        for s in [
            "static",
            "sliding",
            "lazy",
            "adaptive",
            "incremental",
            "lossy",
            "topic",
        ] {
            let out = run(&args(&format!(
                "evaluate --trace {trace} --strategy {s} --block 5000 --support 5"
            )))
            .unwrap_or_else(|e| panic!("strategy {s}: {e}"));
            assert!(out.contains("avg success"), "strategy {s} output:\n{out}");
        }
    }

    #[test]
    fn simulate_policies() {
        for p in ["flood", "assoc", "hybrid"] {
            let out = run(&args(&format!(
                "simulate --nodes 60 --queries 150 --policy {p} --seed 9"
            )))
            .unwrap_or_else(|e| panic!("policy {p}: {e}"));
            assert!(out.contains("messages/query"), "policy {p} output:\n{out}");
        }
        let e = run(&args("simulate --policy bogus")).unwrap_err();
        assert!(e.0.contains("unknown policy"));
    }

    #[test]
    fn simulate_with_faults_and_retry() {
        // Bare key=value lists wrap into registry specs; `live` aliases
        // `simulate`.
        let out = run(&args(
            "live --nodes 60 --queries 150 --seed 9 --faults loss=0.2 --retry attempts=2",
        ))
        .unwrap();
        assert!(out.contains("lost messages:"), "{out}");
        assert!(out.contains("retried:"), "{out}");
        // Full specs pass through verbatim.
        let out = run(&args(
            "simulate --nodes 60 --queries 150 --seed 9 --faults faults(loss=0.1,silent=0.05)",
        ))
        .unwrap();
        assert!(out.contains("lost messages:"), "{out}");
        // Bad fault keys surface the registry's key list.
        let e = run(&args("simulate --faults dropchance=0.5")).unwrap_err();
        assert!(e.0.contains("unknown parameter"), "{e}");
        assert!(e.0.contains("valid:"), "{e}");
        let e = run(&args("simulate --retry deadline=0")).unwrap_err();
        assert!(e.0.contains("deadline"), "{e}");
    }

    #[test]
    fn flag_parser_errors() {
        let e = run(&args("gen-trace --pairs")).unwrap_err();
        assert!(e.0.contains("needs a value"));
        let e = run(&args("gen-trace positional")).unwrap_err();
        assert!(e.0.contains("expected a --flag"));
        let e = run(&args("gen-trace --pairs ten --out /tmp/x")).unwrap_err();
        assert!(e.0.contains("cannot parse"));
        let e = run(&args("gen-trace --pairs 100")).unwrap_err();
        assert!(e.0.contains("missing required flag --out"));
    }

    #[test]
    fn upheaval_flag_changes_the_trace() {
        let a = tmp("plain.csv");
        let b = tmp("upheaval.csv");
        run(&args(&format!("gen-trace --pairs 2000 --seed 6 --out {a}"))).unwrap();
        run(&args(&format!(
            "gen-trace --pairs 2000 --seed 6 --out {b} --upheaval"
        )))
        .unwrap();
        // Below the upheaval index the streams agree; the flag is still
        // accepted and produces a valid file.
        let pa = csvio::read_pairs(File::open(&a).unwrap()).unwrap();
        let pb = csvio::read_pairs(File::open(&b).unwrap()).unwrap();
        assert_eq!(pa.len(), pb.len());
    }
}
