//! Crash-safe file output.
//!
//! Every artifact the workspace persists — `results/*.json`,
//! `BENCH_*.json`, `arq run --out` artifact arrays, CSV traces, serve
//! checkpoints — goes through [`write_atomic`]: write the full contents
//! to a temporary file in the destination directory, fsync it, then
//! rename it over the target. A reader (or a restarted process) can
//! therefore never observe a truncated file: it sees either the old
//! contents or the new ones, even if the writer is SIGKILLed mid-write.
//!
//! The temporary name embeds the process id so two concurrent writers
//! of the same artifact cannot corrupt each other's staging file; the
//! last rename wins, which is the same last-writer-wins outcome a plain
//! `fs::write` race would have, minus the torn-file failure mode.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;

/// Atomically replaces `path` with `bytes`: write to a temporary file
/// in the same directory, fsync, rename. On any error the target file
/// is untouched (a stale temp file may remain and is overwritten by the
/// next attempt from the same pid).
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("not a file path: {}", path.display()),
        )
    })?;
    let tmp_name = format!(
        ".{}.tmp-{}",
        file_name.to_string_lossy(),
        std::process::id()
    );
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => Path::new(&tmp_name).to_path_buf(),
    };
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    // Durability before visibility: the contents must be on disk before
    // the rename makes them reachable under the real name, otherwise a
    // crash between rename and writeback leaves a visible empty file.
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, path).inspect_err(|_| {
        let _ = fs::remove_file(&tmp);
    })?;
    // Persist the rename itself. Directory fsync is not supported
    // everywhere (e.g. Windows); failure to sync the directory does not
    // un-write the file, so it is best-effort.
    if let Some(d) = dir {
        if let Ok(dirf) = File::open(d) {
            let _ = dirf.sync_all();
        }
    }
    Ok(())
}

/// [`write_atomic`] for string contents.
pub fn write_atomic_str(path: impl AsRef<Path>, text: &str) -> io::Result<()> {
    write_atomic(path, text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("arq-fsio-tests");
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let path = tmp_dir().join("artifact.json");
        write_atomic_str(&path, "{\"v\":1}").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"v\":1}");
        write_atomic_str(&path, "{\"v\":2}").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"v\":2}");
    }

    #[test]
    fn leaves_no_temp_file_behind() {
        let dir = tmp_dir();
        let path = dir.join("clean.json");
        write_atomic_str(&path, "x").unwrap();
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains("clean.json.tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
    }

    #[test]
    fn rejects_directory_targets() {
        let dir = tmp_dir();
        assert!(write_atomic_str(dir.join(".."), "x").is_err());
    }

    #[test]
    fn bare_relative_path_works() {
        let dir = tmp_dir();
        let prev = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        let result = write_atomic_str("bare.json", "ok");
        std::env::set_current_dir(prev).unwrap();
        result.unwrap();
        assert_eq!(fs::read_to_string(dir.join("bare.json")).unwrap(), "ok");
    }
}
