//! Crash-safe file output.
//!
//! Every artifact the workspace persists — `results/*.json`,
//! `BENCH_*.json`, `arq run --out` artifact arrays, CSV traces, serve
//! checkpoints — goes through [`write_atomic`]: write the full contents
//! to a temporary file in the destination directory, fsync it, then
//! rename it over the target. A reader (or a restarted process) can
//! therefore never observe a truncated file: it sees either the old
//! contents or the new ones, even if the writer is SIGKILLed mid-write.
//!
//! The temporary name embeds the process id so two concurrent writers
//! of the same artifact cannot corrupt each other's staging file; the
//! last rename wins, which is the same last-writer-wins outcome a plain
//! `fs::write` race would have, minus the torn-file failure mode.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;

/// Atomically replaces `path` with `bytes`: write to a temporary file
/// in the same directory, fsync, rename. On any error the target file
/// is untouched (a stale temp file may remain and is overwritten by the
/// next attempt from the same pid).
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("not a file path: {}", path.display()),
        )
    })?;
    let tmp_name = format!(
        ".{}.tmp-{}",
        file_name.to_string_lossy(),
        std::process::id()
    );
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => Path::new(&tmp_name).to_path_buf(),
    };
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    // Durability before visibility: the contents must be on disk before
    // the rename makes them reachable under the real name, otherwise a
    // crash between rename and writeback leaves a visible empty file.
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, path).inspect_err(|_| {
        let _ = fs::remove_file(&tmp);
    })?;
    // Persist the rename itself. Directory fsync is not supported
    // everywhere (e.g. Windows); failure to sync the directory does not
    // un-write the file, so it is best-effort.
    if let Some(d) = dir {
        if let Ok(dirf) = File::open(d) {
            let _ = dirf.sync_all();
        }
    }
    Ok(())
}

/// [`write_atomic`] for string contents.
pub fn write_atomic_str(path: impl AsRef<Path>, text: &str) -> io::Result<()> {
    write_atomic(path, text.as_bytes())
}

/// An append-only, crash-tolerant line journal.
///
/// Each [`Journal::append`] writes one newline-terminated record and
/// fsyncs before returning, so a record that `append` acknowledged
/// survives `kill -9`. A crash *during* an append can leave at most one
/// torn record at the tail — a prefix with no terminating newline —
/// which [`Journal::read_lines`] silently drops. Readers therefore see
/// exactly the set of acknowledged records, which is the property sweep
/// resume relies on: a journaled job is done, an unjournaled job is not,
/// and there is no third state.
///
/// Records must not contain `\n` themselves (compact JSON satisfies
/// this); `append` rejects embedded newlines instead of corrupting the
/// framing.
#[derive(Debug)]
pub struct Journal {
    file: File,
}

impl Journal {
    /// Creates (truncating any previous contents) a journal at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Journal> {
        Ok(Journal {
            file: File::create(path)?,
        })
    }

    /// Opens an existing journal for appending.
    pub fn open_append(path: impl AsRef<Path>) -> io::Result<Journal> {
        Ok(Journal {
            file: fs::OpenOptions::new().append(true).open(path)?,
        })
    }

    /// Appends one record and fsyncs. On return the record is durable.
    pub fn append(&mut self, record: &str) -> io::Result<()> {
        if record.contains('\n') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "journal records must be single lines",
            ));
        }
        let mut line = String::with_capacity(record.len() + 1);
        line.push_str(record);
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()
    }

    /// Reads every *complete* (newline-terminated) record at `path`. A
    /// torn tail from a crash mid-append is dropped, not an error.
    pub fn read_lines(path: impl AsRef<Path>) -> io::Result<Vec<String>> {
        let text = fs::read_to_string(path)?;
        let mut lines = Vec::new();
        let mut rest = text.as_str();
        while let Some(nl) = rest.find('\n') {
            lines.push(rest[..nl].to_string());
            rest = &rest[nl + 1..];
        }
        Ok(lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("arq-fsio-tests");
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let path = tmp_dir().join("artifact.json");
        write_atomic_str(&path, "{\"v\":1}").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"v\":1}");
        write_atomic_str(&path, "{\"v\":2}").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"v\":2}");
    }

    #[test]
    fn leaves_no_temp_file_behind() {
        let dir = tmp_dir();
        let path = dir.join("clean.json");
        write_atomic_str(&path, "x").unwrap();
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains("clean.json.tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
    }

    #[test]
    fn rejects_directory_targets() {
        let dir = tmp_dir();
        assert!(write_atomic_str(dir.join(".."), "x").is_err());
    }

    #[test]
    fn journal_appends_and_reads_back() {
        let path = tmp_dir().join(format!("journal-{}.jsonl", std::process::id()));
        let mut j = Journal::create(&path).unwrap();
        j.append("{\"job\":0}").unwrap();
        j.append("{\"job\":1}").unwrap();
        drop(j);
        let mut j = Journal::open_append(&path).unwrap();
        j.append("{\"job\":2}").unwrap();
        assert_eq!(
            Journal::read_lines(&path).unwrap(),
            vec!["{\"job\":0}", "{\"job\":1}", "{\"job\":2}"]
        );
        // Re-creating truncates.
        Journal::create(&path).unwrap();
        assert!(Journal::read_lines(&path).unwrap().is_empty());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn journal_drops_a_torn_tail() {
        let path = tmp_dir().join(format!("torn-{}.jsonl", std::process::id()));
        let mut j = Journal::create(&path).unwrap();
        j.append("complete").unwrap();
        drop(j);
        // Simulate a crash mid-append: a record with no newline.
        use std::io::Write as _;
        let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"torn-partial-reco").unwrap();
        drop(f);
        assert_eq!(Journal::read_lines(&path).unwrap(), vec!["complete"]);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn journal_rejects_embedded_newlines() {
        let path = tmp_dir().join(format!("reject-{}.jsonl", std::process::id()));
        let mut j = Journal::create(&path).unwrap();
        assert!(j.append("two\nlines").is_err());
        assert!(Journal::read_lines(&path).unwrap().is_empty());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn bare_relative_path_works() {
        let dir = tmp_dir();
        let prev = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        let result = write_atomic_str("bare.json", "ok");
        std::env::set_current_dir(prev).unwrap();
        result.unwrap();
        assert_eq!(fs::read_to_string(dir.join("bare.json")).unwrap(), "ok");
    }
}
