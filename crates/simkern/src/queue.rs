//! Deterministic discrete-event queues.
//!
//! Two implementations share one contract: events pop in non-decreasing
//! time order, and events scheduled for the same instant pop in
//! insertion order (FIFO). Tie-breaking matters: two events scheduled
//! for the same instant must always pop in the same order, or a
//! whole-network simulation stops being reproducible across runs.
//!
//! * [`EventQueue`] — the production queue: a calendar/bucket queue with
//!   one-tick-wide buckets over a sliding window of [`CALENDAR_SPAN`]
//!   ticks, plus a binary-heap overflow for events scheduled beyond the
//!   window. Near-future scheduling (the hot path of a network flood,
//!   where every delivery lands within a few hundred ticks) is O(1) per
//!   event with zero steady-state allocation: bucket rings retain their
//!   capacity across reuse, so a long run recycles the same arenas
//!   instead of churning a heap.
//! * [`HeapQueue`] — the original binary-heap queue, kept as the
//!   reference implementation. The property suite drives both with the
//!   same schedule and asserts identical pop sequences; anything the
//!   calendar queue does differently from the heap is a bug.
//!
//! ## Deterministic FIFO tie-breaking
//!
//! Every `schedule` call stamps the event with a monotonically
//! increasing sequence number; pops are ordered by `(time, seq)`. In the
//! calendar queue this falls out structurally: a one-tick bucket only
//! ever receives events for a single instant, appended in sequence
//! order, so draining a bucket front-to-back *is* FIFO order — no
//! per-bucket sort is ever needed. Overflow events are compared against
//! the active bucket head by `(time, seq)` on every pop, so an event
//! that went to the overflow heap still interleaves correctly with
//! bucketed events for the same instant.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

/// Width of the calendar window, in ticks. Events scheduled further than
/// this beyond the current clock go to the overflow heap instead of a
/// bucket; they still pop in exactly the right order, just via O(log n)
/// heap ops instead of O(1) bucket pushes. Hop latencies in the
/// workspace simulators are tens-to-hundreds of ticks, so deliveries —
/// the hot path — essentially always land in the window.
pub const CALENDAR_SPAN: u64 = 4096;

/// Error returned by [`EventQueue::try_schedule`] when the requested
/// fire time is earlier than the queue's clock. Scheduling into the past
/// would reorder simulated time — in the sharded simulator it would let
/// a cross-shard handoff deliver a message into a window that has
/// already been processed — so it is always a bug in the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulePastError {
    /// The rejected fire time.
    pub at: SimTime,
    /// The queue clock at the time of the call.
    pub now: SimTime,
}

impl fmt::Display for SchedulePastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "event scheduled in the past: at={}, now={}",
            self.at, self.now
        )
    }
}

impl std::error::Error for SchedulePastError {}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq)
        // pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A future-event list delivering `(time, event)` pairs in deterministic
/// simulation order: a calendar queue over one-tick buckets with a heap
/// overflow for far-future events.
///
/// ```
/// use arq_simkern::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_ticks(10), "b");
/// q.schedule(SimTime::from_ticks(5), "a");
/// q.schedule(SimTime::from_ticks(10), "c"); // same instant as "b"
/// assert_eq!(q.pop(), Some((SimTime::from_ticks(5), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_ticks(10), "b")));
/// assert_eq!(q.pop(), Some((SimTime::from_ticks(10), "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    /// One-tick buckets; slot `t % CALENDAR_SPAN` holds events firing at
    /// tick `t` for `t` in the window `[now, now + CALENDAR_SPAN)`.
    /// Within a bucket, entries are `(seq, event)` in insertion order —
    /// which is FIFO order, since a bucket covers a single instant.
    buckets: Vec<VecDeque<(u64, E)>>,
    /// Occupancy bitmap over bucket slots (one bit per slot). A set bit
    /// always means the bucket is non-empty.
    occ: Vec<u64>,
    /// Events scheduled at or beyond `now + CALENDAR_SPAN`.
    overflow: BinaryHeap<Entry<E>>,
    /// Tick of the earliest non-empty bucket. Kept exact at all times
    /// (updated on every schedule and pop), so `peek_time` is O(1).
    next_bucket: Option<u64>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
    pending: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..CALENDAR_SPAN).map(|_| VecDeque::new()).collect(),
            occ: vec![0u64; (CALENDAR_SPAN as usize).div_ceil(64)],
            overflow: BinaryHeap::new(),
            next_bucket: None,
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            pending: 0,
        }
    }

    /// Creates an empty queue with pre-reserved overflow capacity (the
    /// calendar buckets grow on demand and keep their capacity).
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = Self::new();
        q.overflow.reserve(cap);
        q
    }

    #[inline]
    fn slot(t: u64) -> usize {
        (t % CALENDAR_SPAN) as usize
    }

    #[inline]
    fn set_occ(&mut self, slot: usize) {
        self.occ[slot / 64] |= 1u64 << (slot % 64);
    }

    #[inline]
    fn clear_occ(&mut self, slot: usize) {
        self.occ[slot / 64] &= !(1u64 << (slot % 64));
    }

    /// Schedules `event` to fire at absolute time `at`, or reports a
    /// typed error if `at` is earlier than the current clock.
    pub fn try_schedule(&mut self, at: SimTime, event: E) -> Result<(), SchedulePastError> {
        if at < self.now {
            return Err(SchedulePastError { at, now: self.now });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending += 1;
        let t = at.ticks();
        if t < self.now.ticks().saturating_add(CALENDAR_SPAN) {
            let slot = Self::slot(t);
            self.buckets[slot].push_back((seq, event));
            self.set_occ(slot);
            if self.next_bucket.is_none_or(|nb| t < nb) {
                self.next_bucket = Some(t);
            }
        } else {
            self.overflow.push(Entry { at, seq, event });
        }
        Ok(())
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock — scheduling into
    /// the past is always a simulator bug. Fallible callers (e.g. a
    /// cross-shard handoff that must prove it never reorders time) use
    /// [`EventQueue::try_schedule`] instead.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        if let Err(e) = self.try_schedule(at, event) {
            panic!("{e}");
        }
    }

    /// Finds the earliest non-empty bucket tick at or after `now` via a
    /// circular bitmap scan. All bucketed events lie in
    /// `[now, now + CALENDAR_SPAN)`, so the first set bit in circular
    /// slot order from `slot(now)` belongs to the earliest bucket.
    fn scan_next_bucket(&self) -> Option<u64> {
        let start = Self::slot(self.now.ticks());
        let words = self.occ.len();
        let w0 = start / 64;
        // First partial word: only slots at or after `start`.
        let masked = self.occ[w0] & (!0u64 << (start % 64));
        if masked != 0 {
            let slot = w0 * 64 + masked.trailing_zeros() as usize;
            return Some(self.absolute_tick(slot, start));
        }
        for i in 1..=words {
            let w = (w0 + i) % words;
            let bits = if w == w0 {
                // Wrapped back to the first word: slots before `start`.
                self.occ[w0] & !(!0u64 << (start % 64))
            } else {
                self.occ[w]
            };
            if bits != 0 {
                let slot = w * 64 + bits.trailing_zeros() as usize;
                return Some(self.absolute_tick(slot, start));
            }
        }
        None
    }

    /// Reconstructs an absolute tick from a bucket slot via its circular
    /// distance from the scan origin.
    #[inline]
    fn absolute_tick(&self, slot: usize, start: usize) -> u64 {
        let dist = (slot + CALENDAR_SPAN as usize - start) % CALENDAR_SPAN as usize;
        self.now.ticks() + dist as u64
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let bucket = self.next_bucket.map(|t| {
            let head_seq = self.buckets[Self::slot(t)]
                .front()
                .expect("next_bucket points at empty bucket")
                .0;
            (t, head_seq)
        });
        let over = self.overflow.peek().map(|e| (e.at.ticks(), e.seq));
        let take_overflow = match (bucket, over) {
            (None, None) => return None,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some(b), Some(o)) => o < b,
        };
        let (at, event) = if take_overflow {
            let e = self.overflow.pop().expect("peeked entry vanished");
            (e.at, e.event)
        } else {
            let t = bucket.expect("bucket branch without bucket").0;
            let slot = Self::slot(t);
            let (_, event) = self.buckets[slot].pop_front().expect("bucket emptied");
            if self.buckets[slot].is_empty() {
                self.clear_occ(slot);
                self.next_bucket = None; // re-established below
            }
            (SimTime::from_ticks(t), event)
        };
        debug_assert!(at >= self.now, "queue produced time regression");
        self.now = at;
        self.popped += 1;
        self.pending -= 1;
        if self.next_bucket.is_none() {
            self.next_bucket = self.scan_next_bucket();
        }
        Some((at, event))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        let bucket = self.next_bucket;
        let over = self.overflow.peek().map(|e| e.at.ticks());
        match (bucket, over) {
            (None, None) => None,
            (Some(t), None) | (None, Some(t)) => Some(SimTime::from_ticks(t)),
            (Some(b), Some(o)) => Some(SimTime::from_ticks(b.min(o))),
        }
    }

    /// Current simulated time: the timestamp of the most recently popped
    /// event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events still pending.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Total number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// Discards all pending events without advancing the clock. Bucket
    /// capacity is retained so a cleared queue re-fills without
    /// allocating.
    pub fn clear(&mut self) {
        for w in 0..self.occ.len() {
            let mut bits = self.occ[w];
            while bits != 0 {
                let slot = w * 64 + bits.trailing_zeros() as usize;
                self.buckets[slot].clear();
                bits &= bits - 1;
            }
            self.occ[w] = 0;
        }
        self.overflow.clear();
        self.next_bucket = None;
        self.pending = 0;
    }
}

/// The original binary-heap event queue, kept as the reference
/// implementation for the calendar queue's property suite (and for
/// callers that prefer a heap's memory profile over bucket arrays).
/// Delivers the exact same `(time, event)` sequence as [`EventQueue`]
/// for any schedule.
pub struct HeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Creates an empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        HeapQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `at`, or reports a
    /// typed error if `at` is earlier than the current clock.
    pub fn try_schedule(&mut self, at: SimTime, event: E) -> Result<(), SchedulePastError> {
        if at < self.now {
            return Err(SchedulePastError { at, now: self.now });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
        Ok(())
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        if let Err(e) = self.try_schedule(at, event) {
            panic!("{e}");
        }
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "heap produced time regression");
        self.now = entry.at;
        self.popped += 1;
        Some((entry.at, entry.event))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Current simulated time: the timestamp of the most recently popped
    /// event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events still pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// Discards all pending events without advancing the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[9u64, 3, 7, 1, 5] {
            q.schedule(SimTime::from_ticks(t), t);
        }
        let mut out = Vec::new();
        while let Some((time, ev)) = q.pop() {
            assert_eq!(time.ticks(), ev);
            out.push(ev);
        }
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
        assert_eq!(q.delivered(), 5);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_ticks(42), i);
        }
        let popped: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_tracks_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(4), ());
        q.schedule(SimTime::from_ticks(8), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ticks(4));
        assert_eq!(q.peek_time(), Some(SimTime::from_ticks(8)));
        q.pop();
        assert_eq!(q.now(), SimTime::from_ticks(8));
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(10), ());
        q.pop();
        q.schedule(SimTime::from_ticks(3), ());
    }

    #[test]
    fn try_schedule_returns_typed_error_for_past_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(10), 1u32);
        q.pop();
        let err = q
            .try_schedule(SimTime::from_ticks(3), 2)
            .expect_err("past schedule must be rejected");
        assert_eq!(err.at, SimTime::from_ticks(3));
        assert_eq!(err.now, SimTime::from_ticks(10));
        assert!(err.to_string().contains("scheduled in the past"), "{err}");
        // The rejected event was not enqueued; the present is still fine.
        assert!(q.is_empty());
        assert!(q.try_schedule(SimTime::from_ticks(10), 3).is_ok());
        assert_eq!(q.pop(), Some((SimTime::from_ticks(10), 3)));
    }

    #[test]
    fn heap_queue_rejects_past_events_too() {
        let mut q = HeapQueue::new();
        q.schedule(SimTime::from_ticks(10), ());
        q.pop();
        let err = q.try_schedule(SimTime::from_ticks(9), ()).unwrap_err();
        assert_eq!(err.now, SimTime::from_ticks(10));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        // Events scheduled from within the drain loop (the common
        // simulator pattern) must still come out in order.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(1), 1u64);
        let mut seen = Vec::new();
        while let Some((t, ev)) = q.pop() {
            seen.push(ev);
            if ev < 5 {
                q.schedule(SimTime::from_ticks(t.ticks() + 2), ev + 1);
                q.schedule(SimTime::from_ticks(t.ticks() + 1), 100 + ev);
            }
        }
        assert_eq!(seen, vec![1, 101, 2, 102, 3, 103, 4, 104, 5]);
    }

    #[test]
    fn clear_keeps_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(5), ());
        q.pop();
        q.schedule(SimTime::from_ticks(9), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_ticks(5));
    }

    #[test]
    fn clear_then_reuse_delivers_in_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(7), 1u32);
        q.schedule(SimTime::from_ticks(CALENDAR_SPAN * 2), 2);
        q.pop();
        q.clear();
        q.schedule(SimTime::from_ticks(30), 4);
        q.schedule(SimTime::from_ticks(20), 3);
        assert_eq!(q.pop(), Some((SimTime::from_ticks(20), 3)));
        assert_eq!(q.pop(), Some((SimTime::from_ticks(30), 4)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn far_future_events_overflow_and_interleave_correctly() {
        let mut q = EventQueue::new();
        // Beyond the calendar window: lands in the overflow heap.
        q.schedule(SimTime::from_ticks(CALENDAR_SPAN * 3), 1u32);
        q.schedule(SimTime::from_ticks(5), 2);
        // Same far instant, later insertion: FIFO across the heap too.
        q.schedule(SimTime::from_ticks(CALENDAR_SPAN * 3), 3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((SimTime::from_ticks(5), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_ticks(CALENDAR_SPAN * 3), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_ticks(CALENDAR_SPAN * 3), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_and_bucket_ties_respect_insertion_order() {
        let mut q = EventQueue::new();
        let t = CALENDAR_SPAN + 100;
        // Scheduled while `t` is beyond the window: goes to overflow.
        q.schedule(SimTime::from_ticks(t), 1u32);
        // Advance the clock so `t` is inside the window.
        q.schedule(SimTime::from_ticks(200), 0);
        assert_eq!(q.pop(), Some((SimTime::from_ticks(200), 0)));
        // Scheduled now: goes to a bucket, but with a *later* seq than
        // the overflow entry — the overflow entry must still pop first.
        q.schedule(SimTime::from_ticks(t), 2);
        assert_eq!(q.pop(), Some((SimTime::from_ticks(t), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_ticks(t), 2)));
    }

    #[test]
    fn window_wraps_across_many_spans() {
        let mut q = EventQueue::new();
        let mut expect = Vec::new();
        for k in 0..20u64 {
            let t = k * (CALENDAR_SPAN / 3 + 7);
            q.schedule(SimTime::from_ticks(t), k);
            expect.push((t, k));
        }
        let mut got = Vec::new();
        while let Some((t, e)) = q.pop() {
            got.push((t.ticks(), e));
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn same_tick_schedule_during_drain_pops_after_remaining() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(10), 0u32);
        q.schedule(SimTime::from_ticks(10), 1);
        assert_eq!(q.pop(), Some((SimTime::from_ticks(10), 0)));
        // Mid-drain append at the same instant: must pop after entry 1.
        q.schedule(SimTime::from_ticks(10), 2);
        assert_eq!(q.pop(), Some((SimTime::from_ticks(10), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_ticks(10), 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn matches_heap_reference_on_mixed_workload() {
        // Differential smoke test (the exhaustive property suite lives in
        // tests/prop.rs): a deterministic pseudo-random schedule with
        // ties, far-future events, and interleaved pops.
        let mut cal = EventQueue::new();
        let mut heap = HeapQueue::new();
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut pending = 0i64;
        for i in 0..10_000u64 {
            let r = step();
            if r % 4 == 0 && pending > 0 {
                assert_eq!(cal.pop(), heap.pop(), "pop {i} diverged");
                pending -= 1;
            } else {
                let base = cal.now().ticks();
                let dt = match r % 3 {
                    0 => r % 8,                      // ties and near-now
                    1 => r % 600,                    // in-window
                    _ => CALENDAR_SPAN + r % 10_000, // overflow
                };
                let at = SimTime::from_ticks(base + dt);
                cal.schedule(at, i);
                heap.schedule(at, i);
                pending += 1;
            }
        }
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            assert_eq!(a, b, "drain diverged");
            if a.is_none() {
                break;
            }
        }
        assert_eq!(cal.delivered(), heap.delivered());
    }
}
