//! Deterministic discrete-event queue.
//!
//! A thin wrapper over [`std::collections::BinaryHeap`] that delivers events
//! in non-decreasing time order and breaks ties by insertion sequence
//! number. Tie-breaking matters: two events scheduled for the same instant
//! must always pop in the same order, or a whole-network simulation stops
//! being reproducible across runs.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A future-event list delivering `(time, event)` pairs in deterministic
/// simulation order.
///
/// ```
/// use arq_simkern::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_ticks(10), "b");
/// q.schedule(SimTime::from_ticks(5), "a");
/// q.schedule(SimTime::from_ticks(10), "c"); // same instant as "b"
/// assert_eq!(q.pop(), Some((SimTime::from_ticks(5), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_ticks(10), "b")));
/// assert_eq!(q.pop(), Some((SimTime::from_ticks(10), "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Creates an empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock — scheduling into
    /// the past is always a simulator bug.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at}, now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "heap produced time regression");
        self.now = entry.at;
        self.popped += 1;
        Some((entry.at, entry.event))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Current simulated time: the timestamp of the most recently popped
    /// event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events still pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// Discards all pending events without advancing the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[9u64, 3, 7, 1, 5] {
            q.schedule(SimTime::from_ticks(t), t);
        }
        let mut out = Vec::new();
        while let Some((time, ev)) = q.pop() {
            assert_eq!(time.ticks(), ev);
            out.push(ev);
        }
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
        assert_eq!(q.delivered(), 5);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_ticks(42), i);
        }
        let popped: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_tracks_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(4), ());
        q.schedule(SimTime::from_ticks(8), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ticks(4));
        assert_eq!(q.peek_time(), Some(SimTime::from_ticks(8)));
        q.pop();
        assert_eq!(q.now(), SimTime::from_ticks(8));
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(10), ());
        q.pop();
        q.schedule(SimTime::from_ticks(3), ());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        // Events scheduled from within the drain loop (the common simulator
        // pattern) must still come out in order.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(1), 1u64);
        let mut seen = Vec::new();
        while let Some((t, ev)) = q.pop() {
            seen.push(ev);
            if ev < 5 {
                q.schedule(SimTime::from_ticks(t.ticks() + 2), ev + 1);
                q.schedule(SimTime::from_ticks(t.ticks() + 1), 100 + ev);
            }
        }
        assert_eq!(seen, vec![1, 101, 2, 102, 3, 103, 4, 104, 5]);
    }

    #[test]
    fn clear_keeps_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(5), ());
        q.pop();
        q.schedule(SimTime::from_ticks(9), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_ticks(5));
    }
}
