//! Deterministic retry timers.
//!
//! Simulated protocols that re-send on timeout need two things from the
//! kernel: a deadline for each attempt and a schedule of growing waits
//! between attempts. [`Backoff`] captures both as a pure function of the
//! attempt number, so a retry lifecycle stays reproducible — no wall
//! clock, no randomness, and saturating arithmetic so extreme
//! configurations degrade to "wait forever" instead of wrapping.

use crate::time::Duration;

/// An exponential backoff schedule: attempt `i` (1-based) waits
/// `base * factor^(i-1)` ticks, capped at `max_attempts` attempts.
///
/// The schedule is a value, not a process: [`Backoff::delay_for`] is a
/// pure function, so simulators can compute the wait for any attempt
/// without tracking iterator state, and two replicas of a run agree on
/// every deadline by construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Backoff {
    /// Wait before the second attempt (the first fires immediately).
    pub base: Duration,
    /// Multiplier applied per additional attempt (≥ 1.0).
    pub factor: f64,
    /// Total attempts allowed, including the first.
    pub max_attempts: u32,
}

impl Backoff {
    /// Creates a schedule.
    ///
    /// # Panics
    ///
    /// Panics if `base` is zero, `factor < 1.0`, or `max_attempts == 0` —
    /// each describes a timer that never waits or never fires.
    pub fn new(base: Duration, factor: f64, max_attempts: u32) -> Self {
        assert!(base.ticks() > 0, "backoff base must be positive");
        assert!(factor >= 1.0, "backoff factor must be at least 1.0");
        assert!(max_attempts > 0, "backoff needs at least one attempt");
        Backoff {
            base,
            factor,
            max_attempts,
        }
    }

    /// The wait after attempt number `attempt` (1-based), or `None` once
    /// the attempt budget is exhausted — attempt `max_attempts` has no
    /// follow-up.
    pub fn delay_for(&self, attempt: u32) -> Option<Duration> {
        if attempt == 0 || attempt >= self.max_attempts {
            return None;
        }
        let scale = self.factor.powi(attempt as i32 - 1);
        let ticks = (self.base.ticks() as f64 * scale).min(u64::MAX as f64);
        Some(Duration::from_ticks(ticks as u64))
    }

    /// Whether another attempt is allowed after `attempt` attempts.
    pub fn allows_retry(&self, attempt: u32) -> bool {
        attempt < self.max_attempts
    }

    /// Total simulated time spent if every attempt times out.
    pub fn worst_case_wait(&self) -> Duration {
        let mut total = Duration::ZERO;
        for attempt in 1..self.max_attempts {
            if let Some(d) = self.delay_for(attempt) {
                total = Duration::from_ticks(total.ticks().saturating_add(d.ticks()));
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_geometrically() {
        let b = Backoff::new(Duration::from_ticks(100), 2.0, 4);
        assert_eq!(b.delay_for(1), Some(Duration::from_ticks(100)));
        assert_eq!(b.delay_for(2), Some(Duration::from_ticks(200)));
        assert_eq!(b.delay_for(3), Some(Duration::from_ticks(400)));
        assert_eq!(b.delay_for(4), None, "attempt budget exhausted");
        assert_eq!(b.delay_for(0), None, "attempts are 1-based");
    }

    #[test]
    fn flat_factor_keeps_constant_waits() {
        let b = Backoff::new(Duration::from_ticks(50), 1.0, 3);
        assert_eq!(b.delay_for(1), Some(Duration::from_ticks(50)));
        assert_eq!(b.delay_for(2), Some(Duration::from_ticks(50)));
        assert!(b.allows_retry(2));
        assert!(!b.allows_retry(3));
    }

    #[test]
    fn worst_case_wait_sums_every_delay() {
        let b = Backoff::new(Duration::from_ticks(100), 2.0, 4);
        assert_eq!(b.worst_case_wait(), Duration::from_ticks(700));
        let single = Backoff::new(Duration::from_ticks(100), 2.0, 1);
        assert_eq!(single.worst_case_wait(), Duration::ZERO);
    }

    #[test]
    fn extreme_schedules_saturate_instead_of_wrapping() {
        let b = Backoff::new(Duration::from_ticks(u64::MAX / 2), 8.0, 10);
        let d = b.delay_for(9).unwrap();
        assert_eq!(d.ticks(), u64::MAX);
    }

    /// Property test over random schedules: delays are monotone
    /// non-decreasing in the attempt number, saturate at `u64::MAX`
    /// instead of wrapping, and the budget boundaries are exact —
    /// `None` at attempt 0 and at every attempt ≥ `max_attempts`.
    #[test]
    fn random_schedules_are_monotone_and_capped() {
        let mut rng = crate::Rng64::seed_from(0xbac0ff);
        for _ in 0..500 {
            let base = Duration::from_ticks(1 + rng.below(1 << 40));
            let factor = 1.0 + rng.below(1_000) as f64 / 100.0;
            let max_attempts = 1 + rng.below(20) as u32;
            let b = Backoff::new(base, factor, max_attempts);

            assert_eq!(b.delay_for(0), None, "attempts are 1-based");
            let mut prev = Duration::ZERO;
            let mut worst = Duration::ZERO;
            for attempt in 1..max_attempts {
                let d = b.delay_for(attempt).expect("within the budget");
                assert!(d >= prev, "delay shrank at attempt {attempt}: {b:?}");
                assert!(d >= base, "delay below base at attempt {attempt}: {b:?}");
                prev = d;
                worst = Duration::from_ticks(worst.ticks().saturating_add(d.ticks()));
                assert!(b.allows_retry(attempt));
            }
            for attempt in max_attempts..max_attempts + 3 {
                assert_eq!(b.delay_for(attempt), None, "budget exhausted: {b:?}");
                assert!(!b.allows_retry(attempt));
            }
            assert_eq!(b.worst_case_wait(), worst);
            // Purity: the same attempt always yields the same delay.
            assert_eq!(b.delay_for(1), b.delay_for(1));
        }
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn rejects_shrinking_factor() {
        Backoff::new(Duration::from_ticks(10), 0.5, 3);
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn rejects_zero_attempts() {
        Backoff::new(Duration::from_ticks(10), 2.0, 0);
    }
}
