//! Deterministic random-number generation.
//!
//! The workspace needs RNG streams that are (a) fast, (b) stable across
//! library versions — the calibrated experiment numbers in `EXPERIMENTS.md`
//! must not drift when `rand` upgrades its `SmallRng` algorithm — and (c)
//! splittable, so every node / workload / churn process can own an
//! independent stream derived from one master seed.
//!
//! We therefore implement [SplitMix64] and [xoshiro256**] directly (public
//! domain algorithms by Steele/Lea/Vigna and Blackman/Vigna respectively).
//! All draw methods are inherent on [`Rng64`], so the workspace carries no
//! external RNG dependency and builds fully offline.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c
//! [xoshiro256**]: https://prng.di.unimi.it/xoshiro256starstar.c

/// SplitMix64: a tiny 64-bit generator used for seeding and stream
/// derivation. Passes BigCrush when used as a stepping sequence.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    ///
    /// Named after the reference C implementation; this type is not an
    /// `Iterator`, so the similarity is harmless.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the workspace's general-purpose generator.
///
/// 256 bits of state, period 2^256 − 1, excellent statistical quality, and
/// ~0.8 ns per output on modern x86-64.
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed, expanding it through
    /// SplitMix64 as recommended by the xoshiro authors.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next();
        }
        // All-zero state is the one invalid configuration.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Rng64 { s }
    }

    #[inline]
    fn next_raw(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `u64` in `[0, bound)` using Lemire's multiply-shift
    /// rejection method (unbiased).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        loop {
            let x = self.next_raw();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` index in `[0, len)`.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed value with the given mean.
    #[inline]
    pub fn exp(&mut self, mean: f64) -> f64 {
        // Inverse CDF; guard against ln(0).
        let u = 1.0 - self.f64();
        -mean * u.ln()
    }

    /// Picks a uniformly random element of a non-empty slice.
    #[inline]
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Reservoir-samples `k` distinct indices from `[0, n)`.
    ///
    /// Returned indices are in ascending order of first selection, which is
    /// itself deterministic for a given stream state.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        if k >= n {
            return (0..n).collect();
        }
        let mut reservoir: Vec<usize> = (0..k).collect();
        for i in k..n {
            let j = self.index(i + 1);
            if j < k {
                reservoir[j] = i;
            }
        }
        reservoir
    }
}

impl Rng64 {
    /// Next 32 random bits (upper half of the next raw output).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_raw() >> 32) as u32
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_raw().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_raw().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Derives independent, labelled RNG streams from a single master seed.
///
/// Components ask for a stream by a string label; the label is hashed (FNV)
/// together with the master seed so that adding a new stream never perturbs
/// existing ones — the property that keeps experiments comparable as the
/// codebase grows.
#[derive(Debug, Clone)]
pub struct StreamFactory {
    master: u64,
}

impl StreamFactory {
    /// Creates a factory from the experiment's master seed.
    pub fn new(master_seed: u64) -> Self {
        StreamFactory {
            master: master_seed,
        }
    }

    /// Derives the stream for `label`.
    pub fn stream(&self, label: &str) -> Rng64 {
        Rng64::seed_from(self.master ^ fnv1a(label.as_bytes()))
    }

    /// Derives the stream for `label` plus a numeric discriminator, e.g.
    /// one stream per node.
    pub fn stream_n(&self, label: &str, n: u64) -> Rng64 {
        let mut sm = SplitMix64::new(
            self.master ^ fnv1a(label.as_bytes()) ^ n.wrapping_mul(0xA24B_AED4_963E_E407),
        );
        Rng64::seed_from(sm.next())
    }
}

/// FNV-1a hash of a byte string. Used for stream labelling here and for
/// config digests in run provenance — stable across platforms and
/// versions by construction.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the canonical C code.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next();
        let second = sm.next();
        assert_ne!(first, second);
        // Determinism: same seed, same sequence.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next(), first);
        assert_eq!(sm2.next(), second);
    }

    #[test]
    fn xoshiro_is_deterministic_and_nondegenerate() {
        let mut a = Rng64::seed_from(42);
        let mut b = Rng64::seed_from(42);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // No short cycles / constant output.
        let distinct: std::collections::HashSet<_> = xs.iter().collect();
        assert_eq!(distinct.len(), 64);
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut rng = Rng64::seed_from(7);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.below(10) as usize] += 1;
        }
        for &c in &counts {
            // Each bucket expects 10_000; allow 5% slack.
            assert!((9_500..=10_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng64::seed_from(11);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn exp_has_requested_mean() {
        let mut rng = Rng64::seed_from(13);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.exp(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng64::seed_from(3);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = Rng64::seed_from(5);
        for _ in 0..100 {
            let s = rng.sample_indices(50, 10);
            assert_eq!(s.len(), 10);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), 10);
            assert!(s.iter().all(|&i| i < 50));
        }
        assert_eq!(rng.sample_indices(3, 10), vec![0, 1, 2]);
    }

    #[test]
    fn streams_are_independent_and_stable() {
        let f = StreamFactory::new(99);
        let mut a1 = f.stream("alpha");
        let mut a2 = f.stream("alpha");
        let mut b = f.stream("beta");
        assert_eq!(a1.next_u64(), a2.next_u64());
        assert_ne!(a1.next_u64(), b.next_u64());
        let mut n0 = f.stream_n("node", 0);
        let mut n1 = f.stream_n("node", 1);
        assert_ne!(n0.next_u64(), n1.next_u64());
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = Rng64::seed_from(21);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
