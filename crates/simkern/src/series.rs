//! Time-series containers for per-trial measurements.
//!
//! The paper's figures are all "measure vs. trial number" plots. A
//! [`TimeSeries`] is an ordered list of `(x, y)` points with helpers for
//! the reductions the experiment harness needs: means, rolling windows,
//! down-sampling for chart rendering, and tail averages.

use crate::stats::{Summary, Welford};

/// A named, ordered sequence of `(x, y)` measurements.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    /// Series label (used by charts and JSON output).
    pub name: String,
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            xs: Vec::new(),
            ys: Vec::new(),
        }
    }

    /// Creates a series from y-values indexed 0, 1, 2, …
    pub fn from_values(name: impl Into<String>, ys: impl IntoIterator<Item = f64>) -> Self {
        let ys: Vec<f64> = ys.into_iter().collect();
        let xs = (0..ys.len()).map(|i| i as f64).collect();
        TimeSeries {
            name: name.into(),
            xs,
            ys,
        }
    }

    /// Appends a point. `x` must be non-decreasing.
    pub fn push(&mut self, x: f64, y: f64) {
        if let Some(&last) = self.xs.last() {
            assert!(x >= last, "time series x must be non-decreasing");
        }
        self.xs.push(x);
        self.ys.push(y);
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.ys.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.ys.is_empty()
    }

    /// The x-coordinates.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The y-coordinates.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Iterates over `(x, y)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.xs.iter().copied().zip(self.ys.iter().copied())
    }

    /// Mean of all y-values (0 if empty).
    pub fn mean(&self) -> f64 {
        let mut w = Welford::new();
        for &y in &self.ys {
            w.push(y);
        }
        w.mean()
    }

    /// Mean of the last `n` y-values.
    pub fn tail_mean(&self, n: usize) -> f64 {
        let start = self.ys.len().saturating_sub(n);
        let tail = &self.ys[start..];
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter().sum::<f64>() / tail.len() as f64
    }

    /// Summary statistics of the y-values.
    pub fn summary(&self) -> Option<Summary> {
        Summary::of(&self.ys)
    }

    /// Centered-as-possible rolling mean with the given window size,
    /// truncating at the edges (same-length output).
    pub fn rolling_mean(&self, window: usize) -> TimeSeries {
        assert!(window > 0, "window must be positive");
        let mut out = TimeSeries::new(format!("{} (rolling {})", self.name, window));
        for i in 0..self.ys.len() {
            let lo = i.saturating_sub(window / 2);
            let hi = (i + window.div_ceil(2)).min(self.ys.len());
            let slice = &self.ys[lo..hi];
            out.push(self.xs[i], slice.iter().sum::<f64>() / slice.len() as f64);
        }
        out
    }

    /// Downsamples to at most `max_points` by bucket-averaging; used before
    /// chart rendering.
    pub fn downsample(&self, max_points: usize) -> TimeSeries {
        assert!(max_points > 0);
        if self.len() <= max_points {
            return self.clone();
        }
        let mut out = TimeSeries::new(self.name.clone());
        let per = self.len() as f64 / max_points as f64;
        for b in 0..max_points {
            let lo = (b as f64 * per) as usize;
            let hi = (((b + 1) as f64 * per) as usize)
                .min(self.len())
                .max(lo + 1);
            let n = (hi - lo) as f64;
            let x = self.xs[lo..hi].iter().sum::<f64>() / n;
            let y = self.ys[lo..hi].iter().sum::<f64>() / n;
            out.push(x, y);
        }
        out
    }

    /// First index whose y-value drops below `threshold` and never rises to
    /// or above it again; `None` if the series ends at or above the
    /// threshold. Used for "success had dropped to almost 0 around the 16th
    /// trial and never rose again"-style observations.
    pub fn final_drop_below(&self, threshold: f64) -> Option<usize> {
        let mut candidate = None;
        for (i, &y) in self.ys.iter().enumerate() {
            if y < threshold {
                if candidate.is_none() {
                    candidate = Some(i);
                }
            } else {
                candidate = None;
            }
        }
        candidate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_reduce() {
        let mut s = TimeSeries::new("cov");
        for i in 0..10 {
            s.push(i as f64, i as f64 * 0.1);
        }
        assert_eq!(s.len(), 10);
        assert!((s.mean() - 0.45).abs() < 1e-12);
        assert!((s.tail_mean(2) - 0.85).abs() < 1e-12);
        assert_eq!(s.iter().count(), 10);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_time_regression() {
        let mut s = TimeSeries::new("x");
        s.push(5.0, 1.0);
        s.push(4.0, 1.0);
    }

    #[test]
    fn from_values_indexes_sequentially() {
        let s = TimeSeries::from_values("v", [1.0, 2.0, 3.0]);
        assert_eq!(s.xs(), &[0.0, 1.0, 2.0]);
        assert_eq!(s.ys(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn rolling_mean_smooths() {
        let s = TimeSeries::from_values("v", [0.0, 10.0, 0.0, 10.0, 0.0]);
        let r = s.rolling_mean(3);
        assert_eq!(r.len(), 5);
        // Middle points average their neighborhood.
        assert!((r.ys()[2] - 20.0 / 3.0).abs() < 1e-9);
        // Edges truncate.
        assert!((r.ys()[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn downsample_preserves_mean_approximately() {
        let s = TimeSeries::from_values("v", (0..1000).map(|i| i as f64));
        let d = s.downsample(10);
        assert_eq!(d.len(), 10);
        assert!((d.mean() - s.mean()).abs() < 1.0);
        // Short series untouched.
        assert_eq!(s.downsample(2000).len(), 1000);
    }

    #[test]
    fn final_drop_below_finds_last_crossing() {
        let s = TimeSeries::from_values("v", [0.9, 0.1, 0.8, 0.05, 0.02, 0.01]);
        assert_eq!(s.final_drop_below(0.5), Some(3));
        assert_eq!(s.final_drop_below(0.001), None);
        let rises = TimeSeries::from_values("v", [0.1, 0.9]);
        assert_eq!(rises.final_drop_below(0.5), None);
    }

    #[test]
    fn tail_mean_of_empty_is_zero() {
        let s = TimeSeries::new("e");
        assert_eq!(s.tail_mean(5), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.is_empty());
        assert!(s.summary().is_none());
    }
}
