//! # arq-simkern — discrete-event simulation kernel
//!
//! Foundation crate for the `arq` workspace. It provides the pieces every
//! simulator and every experiment in the workspace builds on:
//!
//! * [`time::SimTime`] — a monotone simulated clock value;
//! * [`queue::EventQueue`] — a calendar/bucket event queue with
//!   **deterministic tie-breaking** (events scheduled at the same instant
//!   fire in insertion order), which is what makes whole-simulation runs
//!   reproducible; the original binary-heap implementation survives as
//!   [`queue::HeapQueue`], the reference the calendar queue is
//!   property-tested against;
//! * [`rng`] — self-contained SplitMix64 / Xoshiro256** generators with
//!   inherent draw methods (no external RNG crate), plus a
//!   [`rng::StreamFactory`] that derives independent, stable sub-streams
//!   from one master seed;
//! * [`stats`] — streaming statistics (Welford mean/variance, histograms,
//!   exact quantiles, EWMA);
//! * [`series`] — time-series containers used for per-trial coverage and
//!   success measurements;
//! * [`timer`] — deterministic exponential [`timer::Backoff`] schedules
//!   for retry/timeout lifecycles;
//! * [`chart`] — ASCII line charts used to render the paper's figures into
//!   `EXPERIMENTS.md`;
//! * [`json`] — dependency-free JSON values and serialization with
//!   insertion-ordered objects, so experiment artifacts are byte-stable;
//! * [`fsio`] — crash-safe artifact output (write-temp, fsync, rename),
//!   so an interrupted run can never leave a truncated file.
//!
//! The kernel deliberately does not prescribe an event *type*: each
//! simulator (e.g. `arq-gnutella`) defines its own event enum and drains an
//! `EventQueue<E>` in its own loop. This keeps the hot loop monomorphic and
//! allocation-free.

#![warn(missing_docs)]

pub mod chart;
pub mod fsio;
pub mod json;
pub mod queue;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;
pub mod timer;

pub use fsio::{write_atomic, write_atomic_str, Journal};
pub use json::{Json, ToJson};
pub use queue::{EventQueue, HeapQueue, SchedulePastError};
pub use rng::{Rng64, SplitMix64, StreamFactory};
pub use series::TimeSeries;
pub use stats::{Ewma, Histogram, Summary, Welford};
pub use time::SimTime;
pub use timer::Backoff;
