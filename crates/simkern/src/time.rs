//! Simulated time.
//!
//! Time is a plain `u64` tick count wrapped in a newtype. The unit is
//! whatever the enclosing simulator decides (the Gnutella simulator uses
//! microseconds); the kernel only requires monotonicity and cheap ordering.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in abstract ticks.
///
/// `SimTime` is totally ordered and supports saturating arithmetic with
/// [`Duration`] deltas. Construction from a raw tick count is explicit via
/// [`SimTime::from_ticks`] to avoid accidental unit confusion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (difference of two [`SimTime`]s).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from a raw tick count.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Returns the raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: Duration) -> Self {
        SimTime(self.0.saturating_add(d.0))
    }

    /// The duration elapsed since `earlier`, or zero if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// A zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from a raw tick count.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        Duration(ticks)
    }

    /// Returns the raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Multiplies the span by an integer factor, saturating on overflow.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> Self {
        Duration(self.0.saturating_mul(k))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ticks", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::from_ticks(5);
        let b = a + Duration::from_ticks(7);
        assert_eq!(b.ticks(), 12);
        assert!(b > a);
        assert_eq!(b - a, Duration::from_ticks(7));
        assert_eq!(b.since(a).ticks(), 7);
        assert_eq!(a.since(b), Duration::ZERO);
    }

    #[test]
    fn saturating_ops() {
        let m = SimTime::MAX;
        assert_eq!(m.saturating_add(Duration::from_ticks(1)), SimTime::MAX);
        let d = Duration::from_ticks(u64::MAX / 2 + 1);
        assert_eq!(d.saturating_mul(3).ticks(), u64::MAX);
    }

    #[test]
    fn add_assign_advances() {
        let mut t = SimTime::ZERO;
        t += Duration::from_ticks(3);
        t += Duration::from_ticks(4);
        assert_eq!(t, SimTime::from_ticks(7));
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(SimTime::from_ticks(42).to_string(), "t=42");
        assert_eq!(Duration::from_ticks(9).to_string(), "9 ticks");
    }
}
