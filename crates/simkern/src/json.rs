//! Dependency-free JSON values, serialization, and parsing.
//!
//! The workspace persists experiment artifacts as JSON (`results/*.json`)
//! and the engine's determinism guarantee is stated over those bytes —
//! two runs of the same `RunSpec` list must serialize identically at any
//! thread count. That guarantee is easiest to audit when the serializer
//! is small and in-tree, and it frees the tier-1 build from crates.io:
//!
//! * [`Json`] — a value tree whose objects preserve insertion order, so
//!   serialization is a pure function of construction order (no hash-map
//!   iteration nondeterminism);
//! * compact and pretty writers with shortest-round-trip float
//!   formatting (`f64`'s `Display`);
//! * a strict recursive-descent [`parse`] used by tests and tools to
//!   read artifacts back;
//! * [`ToJson`] — the conversion trait result types implement instead of
//!   external-derive serialization.
//!
//! Not a general-purpose JSON library: no borrowed strings, no streaming,
//! numbers are `i128`-or-`f64`. That is exactly enough for artifacts.

use std::fmt::Write as _;

/// A JSON value. Objects keep their insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i128),
    /// A float. Non-finite values serialize as `null`, like serde_json.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Converts a value into a [`Json`] tree.
pub trait ToJson {
    /// The JSON form of `self`.
    fn to_json(&self) -> Json;
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends `key: value` to an object; panics on other variants.
    pub fn push_field(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        match self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("push_field on non-object {other:?}"),
        }
        self
    }

    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<const N: usize>(fields: [(&str, Json); N]) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup; `None` on non-arrays.
    pub fn at(&self, index: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(index),
            _ => None,
        }
    }

    /// The numeric value of `Int` / `Float` variants.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The string value of `Str` variants.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements of `Arr` variants.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Indented serialization (two spaces), for human-read artifacts.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => write_f64(out, *f),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

/// Compact serialization (no whitespace) — `to_string()` yields the
/// byte-deterministic form the executor's guarantees are stated over.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a decimal point so the value parses back as Float.
        let _ = write!(out, "{f:.1}");
    } else {
        // Rust's Display prints the shortest string that round-trips.
        let _ = write!(out, "{f}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

macro_rules! int_from {
    ($($t:ty),*) => {$(
        impl From<$t> for Json {
            fn from(v: $t) -> Json {
                Json::Int(v as i128)
            }
        }
    )*};
}
int_from!(i32, i64, u32, u64, usize);

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<&String> for Json {
    fn from(v: &String) -> Json {
        Json::Str(v.clone())
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl From<&[f64]> for Json {
    fn from(v: &[f64]) -> Json {
        Json::Arr(v.iter().map(|&y| Json::Float(y)).collect())
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

impl ToJson for crate::series::TimeSeries {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::from(&self.name)),
            ("xs", Json::from(self.xs())),
            ("ys", Json::from(self.ys())),
        ])
    }
}

impl ToJson for crate::stats::Summary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::from(self.count)),
            ("mean", Json::from(self.mean)),
            ("stddev", Json::from(self.stddev)),
            ("min", Json::from(self.min)),
            ("p25", Json::from(self.p25)),
            ("p50", Json::from(self.p50)),
            ("p75", Json::from(self.p75)),
            ("p95", Json::from(self.p95)),
            ("max", Json::from(self.max)),
        ])
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        self.as_ref().map_or(Json::Null, ToJson::to_json)
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

/// Parses a complete JSON document. Trailing garbage is an error.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(ParseError::at(pos, "trailing characters"));
    }
    Ok(value)
}

/// A JSON parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    fn at(offset: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            offset,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), ParseError> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(ParseError::at(*pos, format!("expected `{token}`")))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(ParseError::at(*pos, "unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(ParseError::at(*pos, "expected `,` or `]`")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(ParseError::at(*pos, "expected `,` or `}`")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(ParseError::at(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(ParseError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| ParseError::at(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| ParseError::at(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| ParseError::at(*pos, "bad \\u escape"))?;
                        // Surrogate pairs are unsupported (artifacts are
                        // ASCII + BMP); map lone surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(ParseError::at(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| ParseError::at(*pos, "invalid UTF-8"))?;
                let c = rest.chars().next().expect("non-empty remainder");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| ParseError::at(start, "invalid number"))?;
    if text.is_empty() || text == "-" {
        return Err(ParseError::at(start, "expected a value"));
    }
    if is_float {
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| ParseError::at(start, "invalid float"))
    } else {
        text.parse::<i128>()
            .map(Json::Int)
            .map_err(|_| ParseError::at(start, "invalid integer"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_serialization_is_canonical() {
        let v = Json::obj([
            ("name", Json::from("series \"a\"")),
            ("n", Json::from(3u64)),
            ("mean", Json::from(0.5f64)),
            ("tags", Json::from(vec![Json::Null, Json::Bool(true)])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"series \"a\"","n":3,"mean":0.5,"tags":[null,true]}"#
        );
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &f in &[0.1, 1.0 / 3.0, 1e-300, 123456.789, -0.0, 2.0] {
            let s = Json::Float(f).to_string();
            let back = parse(&s).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), f.to_bits(), "value {f}");
        }
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
    }

    #[test]
    fn integers_stay_integers() {
        assert_eq!(Json::from(u64::MAX).to_string(), u64::MAX.to_string());
        assert_eq!(parse("42").unwrap(), Json::Int(42));
        assert_eq!(parse("2.0").unwrap(), Json::Float(2.0));
    }

    #[test]
    fn parse_round_trips_nested_documents() {
        let text = r#"{"a": [1, 2.5, "x", {"b": null}], "c": false}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Bool(false)));
        assert_eq!(
            v.get("a").unwrap().at(3).unwrap().get("b"),
            Some(&Json::Null)
        );
        let reparsed = parse(&v.to_string()).unwrap();
        assert_eq!(reparsed, v);
        let repretty = parse(&v.to_string_pretty()).unwrap();
        assert_eq!(repretty, v);
    }

    #[test]
    fn object_order_is_preserved() {
        let mut v = Json::object();
        v.push_field("z", 1u64);
        v.push_field("a", 2u64);
        assert_eq!(v.to_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn parse_errors_carry_position() {
        assert!(parse("").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        let e = parse("[1] x").unwrap_err();
        assert!(e.message.contains("trailing"));
        assert_eq!(e.offset, 4);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nquote\"back\\slash\ttab\u{1}";
        let v = Json::from(s);
        assert_eq!(parse(&v.to_string()).unwrap().as_str(), Some(s));
    }
}
