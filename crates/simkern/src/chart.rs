//! ASCII line charts.
//!
//! The experiment harness regenerates the paper's figures as text so they
//! can live inside `EXPERIMENTS.md` and terminal output. Rendering is
//! intentionally simple: a fixed character grid, one glyph per series,
//! y-axis labels on the left, and a legend underneath.

use crate::series::TimeSeries;
use std::fmt::Write as _;

/// Glyphs assigned to series in order.
const GLYPHS: [char; 8] = ['*', '+', 'o', 'x', '#', '@', '%', '&'];

/// Configuration for [`render`].
#[derive(Debug, Clone)]
pub struct ChartOptions {
    /// Plot-area width in characters (excluding axis labels).
    pub width: usize,
    /// Plot-area height in characters.
    pub height: usize,
    /// Fixed y-range; `None` auto-scales to the data.
    pub y_range: Option<(f64, f64)>,
    /// Axis titles.
    pub x_label: String,
    /// Y-axis title.
    pub y_label: String,
}

impl Default for ChartOptions {
    fn default() -> Self {
        ChartOptions {
            width: 72,
            height: 18,
            y_range: None,
            x_label: "trial".to_string(),
            y_label: "value".to_string(),
        }
    }
}

/// Renders one or more series onto a character grid and returns the chart
/// as a multi-line string.
///
/// Empty input (no series, or all series empty) yields a placeholder line
/// rather than panicking, since experiments may legitimately produce no
/// data points under extreme parameters.
pub fn render(title: &str, series: &[&TimeSeries], opts: &ChartOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let nonempty: Vec<&&TimeSeries> = series.iter().filter(|s| !s.is_empty()).collect();
    if nonempty.is_empty() {
        out.push_str("  (no data)\n");
        return out;
    }

    // Determine ranges.
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for s in &nonempty {
        for (x, y) in s.iter() {
            xmin = xmin.min(x);
            xmax = xmax.max(x);
            ymin = ymin.min(y);
            ymax = ymax.max(y);
        }
    }
    if let Some((lo, hi)) = opts.y_range {
        ymin = lo;
        ymax = hi;
    }
    if (ymax - ymin).abs() < 1e-12 {
        ymax = ymin + 1.0;
    }
    if (xmax - xmin).abs() < 1e-12 {
        xmax = xmin + 1.0;
    }

    let w = opts.width.max(8);
    let h = opts.height.max(4);
    let mut grid = vec![vec![' '; w]; h];

    for (si, s) in nonempty.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        let plot = s.downsample(w);
        for (x, y) in plot.iter() {
            let cx = (((x - xmin) / (xmax - xmin)) * (w - 1) as f64).round() as usize;
            let yy = y.clamp(ymin, ymax);
            let cy = (((yy - ymin) / (ymax - ymin)) * (h - 1) as f64).round() as usize;
            let row = h - 1 - cy;
            let cell = &mut grid[row][cx.min(w - 1)];
            // Later series overwrite blanks but not earlier series' points,
            // so overlapping curves stay visible.
            if *cell == ' ' {
                *cell = glyph;
            }
        }
    }

    // Y axis labels: top, middle, bottom.
    let label_for = |row: usize| -> String {
        let frac = (h - 1 - row) as f64 / (h - 1) as f64;
        format!("{:>8.3}", ymin + frac * (ymax - ymin))
    };
    for (row, cells) in grid.iter().enumerate() {
        let label = if row == 0 || row == h - 1 || row == h / 2 {
            label_for(row)
        } else {
            " ".repeat(8)
        };
        let line: String = cells.iter().collect();
        let _ = writeln!(out, "{label} |{line}");
    }
    let _ = writeln!(out, "{} +{}", " ".repeat(8), "-".repeat(w));
    let _ = writeln!(
        out,
        "{} {:<w$}",
        " ".repeat(8),
        format!(
            "{:.1}{:>pad$.1}",
            xmin,
            xmax,
            pad = w.saturating_sub(format!("{xmin:.1}").len() + 1)
        ),
        w = w
    );
    let _ = writeln!(out, "          x: {}   y: {}", opts.x_label, opts.y_label);
    for (si, s) in nonempty.iter().enumerate() {
        let _ = writeln!(out, "          {} {}", GLYPHS[si % GLYPHS.len()], s.name);
    }
    out
}

/// Renders a two-column Markdown table from label/value pairs — used for
/// the per-experiment summary rows in `EXPERIMENTS.md`.
pub fn markdown_table(headers: (&str, &str), rows: &[(String, String)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| {} | {} |", headers.0, headers.1);
    let _ = writeln!(out, "|---|---|");
    for (k, v) in rows {
        let _ = writeln!(out, "| {k} | {v} |");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nonempty_grid() {
        let s = TimeSeries::from_values("rising", (0..50).map(|i| i as f64 / 50.0));
        let opts = ChartOptions::default();
        let text = render("Figure T", &[&s], &opts);
        assert!(text.contains("Figure T"));
        assert!(text.contains('*'), "glyph missing:\n{text}");
        assert!(text.contains("rising"));
        // One grid row per configured height; decorations carry no '|'.
        let plot_rows = text.lines().filter(|l| l.contains('|')).count();
        assert_eq!(plot_rows, opts.height);
    }

    #[test]
    fn empty_series_is_placeholder() {
        let s = TimeSeries::new("empty");
        let text = render("Nothing", &[&s], &ChartOptions::default());
        assert!(text.contains("(no data)"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let s = TimeSeries::from_values("flat", std::iter::repeat_n(0.5, 10));
        let text = render("Flat", &[&s], &ChartOptions::default());
        assert!(text.contains('*'));
    }

    #[test]
    fn two_series_get_distinct_glyphs() {
        let a = TimeSeries::from_values("a", (0..20).map(|i| i as f64));
        let b = TimeSeries::from_values("b", (0..20).map(|i| (20 - i) as f64));
        let text = render("Cross", &[&a, &b], &ChartOptions::default());
        assert!(text.contains('*') && text.contains('+'));
    }

    #[test]
    fn fixed_y_range_clamps() {
        let s = TimeSeries::from_values("big", [0.0, 5.0, 10.0]);
        let opts = ChartOptions {
            y_range: Some((0.0, 1.0)),
            ..Default::default()
        };
        let text = render("Clamped", &[&s], &opts);
        assert!(text.contains("1.000"));
    }

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(("metric", "value"), &[("coverage".into(), "0.80".into())]);
        assert_eq!(t.lines().count(), 3);
        assert!(t.contains("| coverage | 0.80 |"));
    }
}
