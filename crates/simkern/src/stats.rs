//! Streaming statistics.
//!
//! Every experiment in the workspace reports summary statistics over
//! per-trial measurements (coverage, success, messages per query, hop
//! counts…). This module provides the accumulators used for that:
//! numerically stable Welford mean/variance, a fixed-bucket histogram, an
//! exact-quantile summary, and an exponentially weighted moving average
//! (used by the adaptive strategy's threshold calculators).

/// Welford's online algorithm for mean and variance.
///
/// Numerically stable for long streams; O(1) per observation.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A complete summary of a finished sample: moments plus exact quantiles.
///
/// Built from a slice in O(n log n); intended for end-of-experiment
/// reporting rather than hot loops.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (unbiased).
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample. Returns `None` for an empty slice.
    pub fn of(sample: &[f64]) -> Option<Summary> {
        if sample.is_empty() {
            return None;
        }
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        let mut w = Welford::new();
        for &x in sample {
            w.push(x);
        }
        Some(Summary {
            count: sorted.len(),
            mean: w.mean(),
            stddev: w.stddev(),
            min: sorted[0],
            p25: quantile(&sorted, 0.25),
            p50: quantile(&sorted, 0.50),
            p75: quantile(&sorted, 0.75),
            p95: quantile(&sorted, 0.95),
            max: *sorted.last().unwrap(),
        })
    }
}

/// Linear-interpolated quantile of a **sorted** slice.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// A fixed-range, fixed-bucket histogram for positive measurements
/// (message counts, hop counts, latencies).
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram covering `[lo, hi)` with `n` equal buckets.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(hi > lo && n > 0, "degenerate histogram range");
        Histogram {
            lo,
            hi,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total number of recorded observations (including out-of-range).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Per-bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the top of the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The inclusive lower edge of bucket `i`.
    pub fn bucket_lo(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        self.lo + width * i as f64
    }

    /// The range's lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// The range's (exclusive) upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Linear-interpolated quantile estimate from the bucket counts, or
    /// `None` before any observation. Underflow observations are
    /// treated as `lo` and overflow as `hi` (clamped), so tail
    /// quantiles of a saturated histogram report the range edge rather
    /// than inventing values.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.count == 0 {
            return None;
        }
        let pos = q * (self.count - 1) as f64;
        let mut seen = self.underflow as f64;
        if seen > pos {
            return Some(self.lo);
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            let c = c as f64;
            if c > 0.0 && seen + c > pos {
                // Spread the bucket's mass uniformly across its width.
                let frac = (pos - seen) / c;
                return Some(self.lo + width * (i as f64 + frac));
            }
            seen += c;
        }
        Some(self.hi)
    }
}

/// Exponentially weighted moving average.
///
/// `alpha` is the weight of the newest observation. The adaptive strategy
/// offers this as an alternative threshold calculator to the paper's plain
/// mean-of-last-N.
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha {alpha} out of (0,1]");
        Ewma { alpha, value: None }
    }

    /// Feeds one observation and returns the updated average.
    pub fn push(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => prev + self.alpha * (x - prev),
        };
        self.value = Some(v);
        v
    }

    /// Current average, or `None` before any observation.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Naive unbiased variance = 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.max(), Some(9.0));
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..313] {
            left.push(x);
        }
        for &x in &xs[313..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn empty_welford_is_defined() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), None);
        assert_eq!(w.max(), None);
    }

    #[test]
    fn summary_quantiles() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&xs).unwrap();
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!((s.p25 - 25.75).abs() < 1e-9);
        assert!((s.p95 - 95.05).abs() < 1e-9);
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn quantile_single_element() {
        assert_eq!(quantile(&[3.0], 0.0), 3.0);
        assert_eq!(quantile(&[3.0], 1.0), 3.0);
    }

    #[test]
    fn histogram_buckets_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 9.99, -1.0, 10.0, 25.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.buckets(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.bucket_lo(0), 0.0);
        assert_eq!(h.bucket_lo(4), 8.0);
    }

    #[test]
    fn histogram_quantiles_interpolate() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantiles");
        for x in 0..100 {
            h.record(x as f64 + 0.5);
        }
        // Uniform fill: quantiles track the value range linearly (within
        // one bucket width of the exact answer).
        for (q, want) in [(0.0, 0.0), (0.5, 50.0), (0.95, 95.0), (1.0, 100.0)] {
            let got = h.quantile(q).unwrap();
            assert!((got - want).abs() <= 10.0, "q={q}: got {got}, want ~{want}");
        }
        assert_eq!(h.lo(), 0.0);
        assert_eq!(h.hi(), 100.0);
    }

    #[test]
    fn histogram_quantiles_clamp_out_of_range() {
        let mut h = Histogram::new(10.0, 20.0, 5);
        h.record(-5.0); // underflow
        h.record(99.0); // overflow
        assert_eq!(h.quantile(0.0), Some(10.0), "underflow clamps to lo");
        assert_eq!(h.quantile(1.0), Some(20.0), "overflow clamps to hi");
    }

    #[test]
    fn ewma_converges_to_constant() {
        let mut e = Ewma::new(0.3);
        assert_eq!(e.value(), None);
        for _ in 0..200 {
            e.push(7.0);
        }
        assert!((e.value().unwrap() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_first_observation_is_identity() {
        let mut e = Ewma::new(0.1);
        assert_eq!(e.push(42.0), 42.0);
    }

    #[test]
    #[should_panic(expected = "out of (0,1]")]
    fn ewma_rejects_bad_alpha() {
        Ewma::new(0.0);
    }
}
