// Property tests require the external `proptest` crate; the feature is
// default-off so offline builds skip this file entirely.
#![cfg(feature = "proptest")]

//! Property-based tests for the simulation kernel.

use arq_simkern::time::Duration;
use arq_simkern::{EventQueue, HeapQueue, Rng64, SimTime, Summary, Welford};
use proptest::prelude::*;

/// One step of a differential queue workload.
#[derive(Debug, Clone)]
enum QueueOp {
    /// Schedule an event `dt` ticks after the current clock (0 produces
    /// same-instant ties; large values exercise the overflow heap).
    Schedule(u64),
    /// Pop one event from both queues and compare.
    Pop,
    /// Drop all pending events from both queues (clock is kept).
    Clear,
}

fn queue_op() -> impl Strategy<Value = QueueOp> {
    prop_oneof![
        5 => (0u64..12_000).prop_map(QueueOp::Schedule),
        4 => Just(QueueOp::Pop),
        1 => Just(QueueOp::Clear),
    ]
}

proptest! {
    /// The calendar queue pops the exact same `(SimTime, event)` sequence
    /// as the reference binary-heap queue under arbitrary interleavings of
    /// schedules (including same-timestamp ties and far-future overflow),
    /// pops, and `clear()`/re-use.
    #[test]
    fn calendar_queue_matches_heap_reference(ops in proptest::collection::vec(queue_op(), 1..400)) {
        let mut cal = EventQueue::new();
        let mut heap = HeapQueue::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                QueueOp::Schedule(dt) => {
                    let at = SimTime::from_ticks(cal.now().ticks() + dt);
                    cal.schedule(at, i);
                    heap.schedule(at, i);
                }
                QueueOp::Pop => {
                    prop_assert_eq!(cal.peek_time(), heap.peek_time(), "peek diverged at op {}", i);
                    prop_assert_eq!(cal.pop(), heap.pop(), "pop diverged at op {}", i);
                    prop_assert_eq!(cal.now(), heap.now());
                }
                QueueOp::Clear => {
                    cal.clear();
                    heap.clear();
                    prop_assert!(cal.is_empty());
                    prop_assert_eq!(cal.now(), heap.now(), "clear must keep the clock");
                }
            }
            prop_assert_eq!(cal.len(), heap.len(), "len diverged at op {}", i);
        }
        // Drain whatever is left and compare the tails.
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            prop_assert_eq!(&a, &b, "drain diverged");
            if a.is_none() {
                break;
            }
        }
    }

    /// Events always pop in (time, insertion) order, regardless of the
    /// schedule pattern.
    #[test]
    fn event_queue_is_totally_ordered(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ticks(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(t > lt || (t == lt && idx > lidx), "ordering violated");
            }
            last = Some((t, idx));
        }
        prop_assert_eq!(q.delivered(), times.len() as u64);
    }

    /// Welford's merge is equivalent to sequential accumulation at any
    /// split point.
    #[test]
    fn welford_merge_any_split(
        xs in proptest::collection::vec(-1e6f64..1e6, 2..300),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((xs.len() as f64 * split_frac) as usize).min(xs.len());
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..split] {
            a.push(x);
        }
        for &x in &xs[split..] {
            b.push(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!(
            (a.variance() - whole.variance()).abs() < 1e-5 * (1.0 + whole.variance().abs())
        );
    }

    /// Summary quantiles are ordered and bounded by min/max.
    #[test]
    fn summary_quantiles_are_monotone(xs in proptest::collection::vec(-1e4f64..1e4, 1..200)) {
        let s = Summary::of(&xs).unwrap();
        prop_assert!(s.min <= s.p25 + 1e-12);
        prop_assert!(s.p25 <= s.p50 + 1e-12);
        prop_assert!(s.p50 <= s.p75 + 1e-12);
        prop_assert!(s.p75 <= s.p95 + 1e-12);
        prop_assert!(s.p95 <= s.max + 1e-12);
        prop_assert!(s.mean >= s.min - 1e-12 && s.mean <= s.max + 1e-12);
    }

    /// `below(n)` is always in range and deterministic per seed.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut a = Rng64::seed_from(seed);
        let mut b = Rng64::seed_from(seed);
        for _ in 0..50 {
            let x = a.below(bound);
            prop_assert!(x < bound);
            prop_assert_eq!(x, b.below(bound));
        }
    }

    /// `sample_indices` returns exactly `min(k, n)` distinct in-range
    /// indices.
    #[test]
    fn sample_indices_properties(seed in any::<u64>(), n in 0usize..200, k in 0usize..200) {
        let mut rng = Rng64::seed_from(seed);
        let s = rng.sample_indices(n, k);
        prop_assert_eq!(s.len(), k.min(n));
        let set: std::collections::HashSet<_> = s.iter().collect();
        prop_assert_eq!(set.len(), s.len());
        prop_assert!(s.iter().all(|&i| i < n));
    }

    /// SimTime arithmetic is associative for additions within range.
    #[test]
    fn simtime_addition_associative(a in 0u64..1 << 40, b in 0u64..1 << 20, c in 0u64..1 << 20) {
        let t = SimTime::from_ticks(a);
        let left = (t + Duration::from_ticks(b)) + Duration::from_ticks(c);
        let right = t + (Duration::from_ticks(b) + Duration::from_ticks(c));
        prop_assert_eq!(left, right);
    }
}
