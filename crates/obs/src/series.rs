//! Per-block α/ρ/traffic time series.
//!
//! The instrumented counterpart of the evaluator's coverage/success
//! series: one entry per test block, with α and ρ recomputed here from
//! the raw RULESET-TEST counts (Eq. 1 / Eq. 2, including the paper's
//! zero-denominator conventions). Keeping the computation independent of
//! `core::eval` is the point — the test suite asserts both agree
//! exactly.

use arq_simkern::{Json, ToJson};

/// Per-block instrumented series.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BlockSeries {
    blocks: Vec<usize>,
    alpha: Vec<f64>,
    rho: Vec<f64>,
    traffic: Vec<u64>,
}

impl BlockSeries {
    /// An empty series.
    pub fn new() -> Self {
        BlockSeries::default()
    }

    /// Appends one block's raw counts: `total`/`covered`/`successes` are
    /// the RULESET-TEST tallies, `traffic` the pairs the block carried.
    ///
    /// α = covered/total (0 for an empty block) and ρ =
    /// successes/covered (0 when nothing is covered) — exactly Eq. 1 and
    /// Eq. 2.
    pub fn push(&mut self, block: usize, total: u64, covered: u64, successes: u64, traffic: u64) {
        self.blocks.push(block);
        self.alpha.push(if total == 0 {
            0.0
        } else {
            covered as f64 / total as f64
        });
        self.rho.push(if covered == 0 {
            0.0
        } else {
            successes as f64 / covered as f64
        });
        self.traffic.push(traffic);
    }

    /// Number of recorded blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Block indices.
    pub fn blocks(&self) -> &[usize] {
        &self.blocks
    }

    /// Coverage α per block.
    pub fn alpha(&self) -> &[f64] {
        &self.alpha
    }

    /// Success ρ per block.
    pub fn rho(&self) -> &[f64] {
        &self.rho
    }

    /// Pairs per block.
    pub fn traffic(&self) -> &[u64] {
        &self.traffic
    }
}

impl ToJson for BlockSeries {
    fn to_json(&self) -> Json {
        Json::obj([
            (
                "blocks",
                Json::Arr(self.blocks.iter().map(|&b| Json::from(b)).collect()),
            ),
            ("alpha", Json::from(self.alpha.as_slice())),
            ("rho", Json::from(self.rho.as_slice())),
            (
                "traffic",
                Json::Arr(self.traffic.iter().map(|&t| Json::from(t)).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_follow_the_paper_conventions() {
        let mut s = BlockSeries::new();
        s.push(1, 100, 80, 60, 1_000);
        s.push(2, 0, 0, 0, 0); // empty block
        s.push(3, 10, 0, 0, 50); // nothing covered
        assert_eq!(s.alpha(), &[0.8, 0.0, 0.0]);
        assert_eq!(s.rho(), &[0.75, 0.0, 0.0]);
        assert_eq!(s.traffic(), &[1_000, 0, 50]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }
}
