//! # arq-obs — structured event tracing and metrics for deterministic runs
//!
//! A zero-overhead-when-disabled observability layer for the `arq`
//! workspace. Instrumented code holds an [`Obs`] handle and calls
//! [`Obs::record`] with a closure; when the handle is disabled (the
//! default everywhere) the closure is never evaluated and the cost is a
//! single branch on a niche-optimized `Option`. When enabled, every
//! event:
//!
//! * is appended to the structured **event log** (unless
//!   [`ObsConfig::events`] is off),
//! * bumps its per-kind **counter** in the [`Registry`], plus
//!   kind-specific instruments (the forward fan-out histogram, the
//!   rule-set size gauge),
//! * and, for block-level events, extends the per-block α/ρ/traffic
//!   [`BlockSeries`].
//!
//! ## Determinism contract
//!
//! Events carry simulated coordinates only — block indices and
//! [`arq_simkern::SimTime`] ticks, never a wall clock — and are recorded
//! from the single-threaded run loop in execution order. A finished
//! [`ObsReport`] therefore serializes to byte-identical JSON/JSONL for
//! identical run configurations, at any worker-thread count. That makes
//! the event stream itself a testable artifact: golden-trace tests diff
//! it against checked-in snapshots.

#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod registry;
pub mod series;

pub use event::{DropKind, Event};
pub use export::to_prometheus;
pub use registry::{CounterId, GaugeId, HistogramId, Registry};
pub use series::BlockSeries;

use arq_simkern::{Json, ToJson};

/// What an enabled [`Obs`] collects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObsConfig {
    /// Keep the full structured event log (counters/series are always
    /// kept). Turn off for long live runs where per-relay events would
    /// dominate memory.
    pub events: bool,
    /// Record the per-block α/ρ/traffic series.
    pub series: bool,
    /// Buckets of the forward fan-out histogram (fixed range `[0, 64)`).
    pub fanout_buckets: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            events: true,
            series: true,
            fanout_buckets: 16,
        }
    }
}

/// Pre-registered instrument handles, resolved once at enable time so
/// the record path never searches by name.
#[derive(Debug, Clone)]
struct Instruments {
    blocks: CounterId,
    rule_hits: CounterId,
    rule_misses: CounterId,
    rule_successes: CounterId,
    remines: CounterId,
    forwards: CounterId,
    messages: CounterId,
    retries: CounterId,
    expired: CounterId,
    fault_drops: CounterId,
    buffer_drops: CounterId,
    shortcut_added: CounterId,
    shortcut_retired: CounterId,
    shortcut_rejected: CounterId,
    rules: GaugeId,
    fanout: HistogramId,
    query_latency: HistogramId,
    node_up_bytes: HistogramId,
    node_down_bytes: HistogramId,
}

#[derive(Debug, Clone)]
struct Inner {
    cfg: ObsConfig,
    events: Vec<Event>,
    registry: Registry,
    ids: Instruments,
    series: BlockSeries,
    /// Traffic of the block announced by the last `BlockStart`, consumed
    /// by the matching `RuleTally`.
    pending_traffic: u64,
}

/// The recorder handle instrumented code holds.
///
/// Construct with [`Obs::disabled`] (free) or [`Obs::enabled`]; consume
/// with [`Obs::report`].
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Box<Inner>>,
}

impl Obs {
    /// A no-op recorder: [`Obs::record`] never evaluates its closure.
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// A live recorder collecting per `cfg`.
    pub fn enabled(cfg: ObsConfig) -> Self {
        let mut registry = Registry::new();
        let ids = Instruments {
            blocks: registry.counter("blocks"),
            rule_hits: registry.counter("rule_hits"),
            rule_misses: registry.counter("rule_misses"),
            rule_successes: registry.counter("rule_successes"),
            remines: registry.counter("remines"),
            forwards: registry.counter("forwards"),
            messages: registry.counter("messages"),
            retries: registry.counter("retries"),
            expired: registry.counter("expired"),
            fault_drops: registry.counter("fault_drops"),
            buffer_drops: registry.counter("buffer_drops"),
            shortcut_added: registry.counter("shortcut_added"),
            shortcut_retired: registry.counter("shortcut_retired"),
            shortcut_rejected: registry.counter("shortcut_rejected"),
            rules: registry.gauge("rules"),
            fanout: registry.histogram("fanout", 0.0, 64.0, cfg.fanout_buckets.max(1)),
            // Link-layer instruments: first-hit latency in sim ticks and
            // per-node byte budgets, filled by the live simulator when a
            // link plan is active.
            query_latency: registry.histogram("query_latency", 0.0, 16_384.0, 64),
            node_up_bytes: registry.histogram("node_up_bytes", 0.0, 1_048_576.0, 32),
            node_down_bytes: registry.histogram("node_down_bytes", 0.0, 1_048_576.0, 32),
        };
        Obs {
            inner: Some(Box::new(Inner {
                cfg,
                events: Vec::new(),
                registry,
                ids,
                series: BlockSeries::new(),
                pending_traffic: 0,
            })),
        }
    }

    /// Whether this handle collects anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one event. The closure runs only when enabled, so the
    /// disabled path costs one branch and constructs nothing.
    #[inline]
    pub fn record(&mut self, make: impl FnOnce() -> Event) {
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.record(make());
        }
    }

    /// Records one answered query's first-hit latency (in sim ticks)
    /// into the `query_latency` histogram. Registry-only — latency
    /// percentiles need no per-query event.
    #[inline]
    pub fn observe_query_latency(&mut self, ticks: u64) {
        if let Some(inner) = self.inner.as_deref_mut() {
            let id = inner.ids.query_latency;
            inner.registry.observe(id, ticks as f64);
        }
    }

    /// Records one node's end-of-run byte budget (bytes pushed through
    /// its upload and download links) into the `node_up_bytes` /
    /// `node_down_bytes` histograms.
    #[inline]
    pub fn observe_node_bytes(&mut self, up: u64, down: u64) {
        if let Some(inner) = self.inner.as_deref_mut() {
            let (u, d) = (inner.ids.node_up_bytes, inner.ids.node_down_bytes);
            inner.registry.observe(u, up as f64);
            inner.registry.observe(d, down as f64);
        }
    }

    /// Finishes collection. `None` when disabled.
    pub fn report(self) -> Option<ObsReport> {
        self.inner.map(|inner| ObsReport {
            events: inner.events,
            registry: inner.registry,
            series: inner.series,
        })
    }
}

impl Inner {
    fn record(&mut self, ev: Event) {
        match &ev {
            Event::BlockStart { pairs, .. } => {
                self.registry.inc(self.ids.blocks, 1);
                self.pending_traffic = *pairs as u64;
            }
            Event::RuleTally {
                block,
                total,
                covered,
                successes,
            } => {
                self.registry.inc(self.ids.rule_hits, *covered);
                self.registry.inc(self.ids.rule_misses, total - covered);
                self.registry.inc(self.ids.rule_successes, *successes);
                if self.cfg.series {
                    self.series
                        .push(*block, *total, *covered, *successes, self.pending_traffic);
                }
            }
            Event::ReMine { rules_after, .. } => {
                self.registry.inc(self.ids.remines, 1);
                self.registry.set(self.ids.rules, *rules_after as f64);
            }
            Event::Forward { selected, .. } => {
                self.registry.inc(self.ids.forwards, 1);
                self.registry.inc(self.ids.messages, *selected as u64);
                self.registry.observe(self.ids.fanout, *selected as f64);
            }
            Event::Retry { .. } => self.registry.inc(self.ids.retries, 1),
            Event::Expire { .. } => self.registry.inc(self.ids.expired, 1),
            Event::FaultDrop { .. } => self.registry.inc(self.ids.fault_drops, 1),
            Event::BufferDrop { .. } => self.registry.inc(self.ids.buffer_drops, 1),
            Event::ShortcutAdded { .. } => self.registry.inc(self.ids.shortcut_added, 1),
            Event::ShortcutRetired { .. } => self.registry.inc(self.ids.shortcut_retired, 1),
            Event::ShortcutRejected { .. } => self.registry.inc(self.ids.shortcut_rejected, 1),
        }
        if self.cfg.events {
            self.events.push(ev);
        }
    }
}

/// Everything an enabled run collected, ready for attachment to a run
/// artifact.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// The structured event log (empty when `ObsConfig::events` is off).
    pub events: Vec<Event>,
    /// Final counter/gauge/histogram values.
    pub registry: Registry,
    /// Per-block α/ρ/traffic series (empty in the live world and when
    /// `ObsConfig::series` is off).
    pub series: BlockSeries,
}

impl ObsReport {
    /// The event stream as JSON Lines: one compact object per event, in
    /// record order, byte-deterministic.
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_json().to_string());
            out.push('\n');
        }
        out
    }
}

impl ToJson for ObsReport {
    fn to_json(&self) -> Json {
        Json::obj([
            (
                "events",
                Json::Arr(self.events.iter().map(ToJson::to_json).collect()),
            ),
            ("metrics", self.registry.to_json()),
            ("series", self.series.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arq_simkern::SimTime;

    #[test]
    fn disabled_recorder_never_evaluates_the_closure() {
        let mut obs = Obs::disabled();
        obs.record(|| panic!("closure must not run when disabled"));
        assert!(!obs.is_enabled());
        assert!(obs.report().is_none());
    }

    #[test]
    fn events_feed_counters_series_and_log() {
        let mut obs = Obs::enabled(ObsConfig::default());
        obs.record(|| Event::BlockStart {
            block: 1,
            pairs: 100,
        });
        obs.record(|| Event::RuleTally {
            block: 1,
            total: 50,
            covered: 40,
            successes: 30,
        });
        obs.record(|| Event::ReMine {
            block: 1,
            rules_before: 7,
            rules_after: 9,
        });
        obs.record(|| Event::Forward {
            at: SimTime::from_ticks(5),
            node: 2,
            candidates: 4,
            selected: 3,
        });
        let report = obs.report().expect("enabled");
        assert_eq!(report.events.len(), 4);
        assert_eq!(report.registry.counter_value("blocks"), Some(1));
        assert_eq!(report.registry.counter_value("rule_hits"), Some(40));
        assert_eq!(report.registry.counter_value("rule_misses"), Some(10));
        assert_eq!(report.registry.counter_value("remines"), Some(1));
        assert_eq!(report.registry.counter_value("messages"), Some(3));
        assert_eq!(report.registry.gauge_value("rules"), Some(9.0));
        assert_eq!(report.series.alpha(), &[0.8]);
        assert_eq!(report.series.rho(), &[0.75]);
        assert_eq!(report.series.traffic(), &[100]);
        assert_eq!(report.events_jsonl().lines().count(), 4);
    }

    #[test]
    fn link_instruments_fill_histograms_without_events() {
        let mut obs = Obs::disabled();
        obs.observe_query_latency(10); // no-op, must not panic
        obs.observe_node_bytes(1, 2);

        let mut obs = Obs::enabled(ObsConfig::default());
        obs.record(|| Event::BufferDrop {
            at: SimTime::from_ticks(3),
            kind: DropKind::Query,
        });
        obs.observe_query_latency(120);
        obs.observe_query_latency(900);
        obs.observe_node_bytes(4_000, 16_000);
        let report = obs.report().unwrap();
        assert_eq!(report.registry.counter_value("buffer_drops"), Some(1));
        let lat = report.registry.histogram_value("query_latency").unwrap();
        assert_eq!(lat.count(), 2);
        assert!(lat.quantile(0.5).is_some());
        assert_eq!(
            report
                .registry
                .histogram_value("node_up_bytes")
                .unwrap()
                .count(),
            1
        );
        // The buffer drop is a real event in the log too.
        assert_eq!(report.events.len(), 1);
    }

    #[test]
    fn event_log_and_series_can_be_turned_off() {
        let mut obs = Obs::enabled(ObsConfig {
            events: false,
            series: false,
            ..Default::default()
        });
        obs.record(|| Event::BlockStart {
            block: 1,
            pairs: 10,
        });
        obs.record(|| Event::RuleTally {
            block: 1,
            total: 5,
            covered: 5,
            successes: 5,
        });
        let report = obs.report().unwrap();
        assert!(report.events.is_empty());
        assert!(report.series.is_empty());
        // Counters are always kept.
        assert_eq!(report.registry.counter_value("rule_hits"), Some(5));
    }
}
