//! The typed event taxonomy.
//!
//! Every instrumentation point in the workspace emits one of these
//! variants. Events carry **simulated** coordinates only — a block index
//! in the trace-evaluation world, a [`SimTime`] in the live-simulation
//! world — never a wall clock, so an event stream is a pure function of
//! the run configuration and byte-identical across replays and worker
//! counts.

use arq_simkern::{Json, SimTime, ToJson};

/// Which message class the fault layer dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropKind {
    /// A query in flight.
    Query,
    /// A hit travelling the reverse path.
    Hit,
}

impl DropKind {
    /// Stable wire label.
    pub fn label(&self) -> &'static str {
        match self {
            DropKind::Query => "query",
            DropKind::Hit => "hit",
        }
    }
}

/// One structured observation from a run.
///
/// The trace-evaluation world emits [`Event::BlockStart`],
/// [`Event::RuleTally`], and [`Event::ReMine`]; the live simulator emits
/// [`Event::Forward`], [`Event::Retry`], [`Event::Expire`], and
/// [`Event::FaultDrop`].
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A test block is about to be evaluated (block 0 is the warm-up and
    /// emits nothing — trials start at block 1).
    BlockStart {
        /// Block index within the trace.
        block: usize,
        /// Pairs in the block (the block's traffic).
        pairs: usize,
    },
    /// The block's RULESET-TEST tallies: of `total` unique responded
    /// queries, `covered` matched a rule antecedent (the hits; the other
    /// `total - covered` are the misses) and `successes` of the covered
    /// ones were answered via a rule consequent.
    RuleTally {
        /// Block index.
        block: usize,
        /// `N` — unique responded queries.
        total: u64,
        /// `n` — queries covered by an antecedent.
        covered: u64,
        /// `s` — covered queries answered via a consequent.
        successes: u64,
    },
    /// The strategy rebuilt its rule set after testing `block`.
    ReMine {
        /// Block index that triggered the regeneration.
        block: usize,
        /// Rules held while testing the block.
        rules_before: usize,
        /// Rules held after the rebuild.
        rules_after: usize,
    },
    /// A relay decision: the policy at `node` picked `selected` of
    /// `candidates` live neighbors (the forward fan-out).
    Forward {
        /// Simulated time of the decision.
        at: SimTime,
        /// Deciding node id.
        node: u32,
        /// Legal forwarding targets offered.
        candidates: usize,
        /// Targets actually selected.
        selected: usize,
    },
    /// A query deadline fired and the query was reissued.
    Retry {
        /// Simulated time of the deadline.
        at: SimTime,
        /// Query index within the run.
        query: usize,
        /// The attempt that just timed out (1-based).
        attempt: u32,
        /// TTL of the reissued attempt.
        ttl: u32,
    },
    /// A query exhausted its retry budget without a hit.
    Expire {
        /// Simulated time of the final deadline.
        at: SimTime,
        /// Query index within the run.
        query: usize,
        /// Attempts spent in total.
        attempts: u32,
    },
    /// The fault layer dropped a message in flight.
    FaultDrop {
        /// Simulated delivery time of the lost message.
        at: SimTime,
        /// What was lost.
        kind: DropKind,
    },
    /// A full link-layer byte buffer rejected a message (congestive
    /// drop — distinct from the random in-flight loss of
    /// [`Event::FaultDrop`]).
    BufferDrop {
        /// Simulated time the message hit the full buffer.
        at: SimTime,
        /// What was dropped.
        kind: DropKind,
    },
    /// Topology adaptation applied a shortcut edge `asker — target`.
    ShortcutAdded {
        /// Boundary time of the adaptation round.
        at: SimTime,
        /// The node that gains the shortcut.
        asker: u32,
        /// Its new neighbor.
        target: u32,
    },
    /// An applied shortcut was retired: its source rule decayed out of
    /// the policy's consequents, or an endpoint left the overlay.
    ShortcutRetired {
        /// Boundary time of the adaptation round.
        at: SimTime,
        /// The shortcut's owner.
        asker: u32,
        /// The retired neighbor.
        target: u32,
    },
    /// A proposed shortcut was rejected at application time because an
    /// endpoint crashed between the propose and apply boundaries.
    ShortcutRejected {
        /// Boundary time of the adaptation round.
        at: SimTime,
        /// The proposal's owner.
        asker: u32,
        /// The dead (or departed) endpoint's proposed neighbor.
        target: u32,
    },
}

impl Event {
    /// Stable kind label — the `ev` field on the wire and the per-kind
    /// counter name in the registry.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::BlockStart { .. } => "block",
            Event::RuleTally { .. } => "rule_tally",
            Event::ReMine { .. } => "remine",
            Event::Forward { .. } => "forward",
            Event::Retry { .. } => "retry",
            Event::Expire { .. } => "expire",
            Event::FaultDrop { .. } => "fault_drop",
            Event::BufferDrop { .. } => "buffer_drop",
            Event::ShortcutAdded { .. } => "shortcut_added",
            Event::ShortcutRetired { .. } => "shortcut_retired",
            Event::ShortcutRejected { .. } => "shortcut_rejected",
        }
    }
}

impl ToJson for Event {
    fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = vec![("ev".into(), Json::from(self.kind()))];
        let mut push = |k: &str, v: Json| fields.push((k.to_string(), v));
        match self {
            Event::BlockStart { block, pairs } => {
                push("block", Json::from(*block));
                push("pairs", Json::from(*pairs));
            }
            Event::RuleTally {
                block,
                total,
                covered,
                successes,
            } => {
                push("block", Json::from(*block));
                push("total", Json::from(*total));
                push("covered", Json::from(*covered));
                push("successes", Json::from(*successes));
            }
            Event::ReMine {
                block,
                rules_before,
                rules_after,
            } => {
                push("block", Json::from(*block));
                push("rules_before", Json::from(*rules_before));
                push("rules_after", Json::from(*rules_after));
            }
            Event::Forward {
                at,
                node,
                candidates,
                selected,
            } => {
                push("at", Json::from(at.ticks()));
                push("node", Json::from(*node));
                push("candidates", Json::from(*candidates));
                push("selected", Json::from(*selected));
            }
            Event::Retry {
                at,
                query,
                attempt,
                ttl,
            } => {
                push("at", Json::from(at.ticks()));
                push("query", Json::from(*query));
                push("attempt", Json::from(*attempt));
                push("ttl", Json::from(*ttl));
            }
            Event::Expire {
                at,
                query,
                attempts,
            } => {
                push("at", Json::from(at.ticks()));
                push("query", Json::from(*query));
                push("attempts", Json::from(*attempts));
            }
            Event::FaultDrop { at, kind } | Event::BufferDrop { at, kind } => {
                push("at", Json::from(at.ticks()));
                push("kind", Json::from(kind.label()));
            }
            Event::ShortcutAdded { at, asker, target }
            | Event::ShortcutRetired { at, asker, target }
            | Event::ShortcutRejected { at, asker, target } => {
                push("at", Json::from(at.ticks()));
                push("asker", Json::from(*asker));
                push("target", Json::from(*target));
            }
        }
        Json::Obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serialize_compactly_with_kind_first() {
        let ev = Event::RuleTally {
            block: 3,
            total: 100,
            covered: 80,
            successes: 60,
        };
        assert_eq!(
            ev.to_json().to_string(),
            r#"{"ev":"rule_tally","block":3,"total":100,"covered":80,"successes":60}"#
        );
        let ev = Event::FaultDrop {
            at: SimTime::from_ticks(42),
            kind: DropKind::Hit,
        };
        assert_eq!(
            ev.to_json().to_string(),
            r#"{"ev":"fault_drop","at":42,"kind":"hit"}"#
        );
        let ev = Event::BufferDrop {
            at: SimTime::from_ticks(7),
            kind: DropKind::Query,
        };
        assert_eq!(
            ev.to_json().to_string(),
            r#"{"ev":"buffer_drop","at":7,"kind":"query"}"#
        );
        let ev = Event::ShortcutAdded {
            at: SimTime::from_ticks(9),
            asker: 3,
            target: 11,
        };
        assert_eq!(
            ev.to_json().to_string(),
            r#"{"ev":"shortcut_added","at":9,"asker":3,"target":11}"#
        );
    }

    #[test]
    fn kinds_are_distinct() {
        let kinds = [
            Event::BlockStart { block: 0, pairs: 0 }.kind(),
            Event::RuleTally {
                block: 0,
                total: 0,
                covered: 0,
                successes: 0,
            }
            .kind(),
            Event::ReMine {
                block: 0,
                rules_before: 0,
                rules_after: 0,
            }
            .kind(),
            Event::Forward {
                at: SimTime::ZERO,
                node: 0,
                candidates: 0,
                selected: 0,
            }
            .kind(),
            Event::Retry {
                at: SimTime::ZERO,
                query: 0,
                attempt: 0,
                ttl: 0,
            }
            .kind(),
            Event::Expire {
                at: SimTime::ZERO,
                query: 0,
                attempts: 0,
            }
            .kind(),
            Event::FaultDrop {
                at: SimTime::ZERO,
                kind: DropKind::Query,
            }
            .kind(),
            Event::BufferDrop {
                at: SimTime::ZERO,
                kind: DropKind::Query,
            }
            .kind(),
            Event::ShortcutAdded {
                at: SimTime::ZERO,
                asker: 0,
                target: 0,
            }
            .kind(),
            Event::ShortcutRetired {
                at: SimTime::ZERO,
                asker: 0,
                target: 0,
            }
            .kind(),
            Event::ShortcutRejected {
                at: SimTime::ZERO,
                asker: 0,
                target: 0,
            }
            .kind(),
        ];
        let mut unique: Vec<&str> = kinds.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), kinds.len());
    }
}
