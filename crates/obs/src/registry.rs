//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms.
//!
//! Instruments live in insertion order and snapshot to JSON in that
//! order, so a registry filled by a deterministic run serializes to
//! byte-identical text. Handles ([`CounterId`], [`GaugeId`],
//! [`HistogramId`]) are plain indices — registration is done once at
//! enable time and the hot path is a vector indexing, no hashing.

use arq_simkern::{Histogram, Json, ToJson};

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A deterministic, insertion-ordered collection of instruments.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers (or re-finds) a counter by name.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| n == name) {
            return CounterId(i);
        }
        self.counters.push((name.to_string(), 0));
        CounterId(self.counters.len() - 1)
    }

    /// Adds `by` to a counter.
    #[inline]
    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counters[id.0].1 += by;
    }

    /// Registers (or re-finds) a gauge by name.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _)| n == name) {
            return GaugeId(i);
        }
        self.gauges.push((name.to_string(), 0.0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Sets a gauge to `value`.
    #[inline]
    pub fn set(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0].1 = value;
    }

    /// Registers (or re-finds) a histogram by name, covering `[lo, hi)`
    /// with `n` equal buckets.
    pub fn histogram(&mut self, name: &str, lo: f64, hi: f64, n: usize) -> HistogramId {
        if let Some(i) = self.histograms.iter().position(|(nm, _)| nm == name) {
            return HistogramId(i);
        }
        self.histograms
            .push((name.to_string(), Histogram::new(lo, hi, n)));
        HistogramId(self.histograms.len() - 1)
    }

    /// Records one observation into a histogram.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, x: f64) {
        self.histograms[id.0].1.record(x);
    }

    /// Reads a counter back by name (reporting/tests).
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Reads a gauge back by name.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Reads a histogram back by name (reporting: quantiles and budgets
    /// are computed from the bucket counts, not from raw samples).
    pub fn histogram_value(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Inserts (or replaces) a pre-filled histogram under `name`. This
    /// is how a service snapshots hot-path instruments kept outside the
    /// registry (behind their own locks) into a scrapeable view.
    pub fn adopt_histogram(&mut self, name: &str, h: Histogram) {
        if let Some(slot) = self.histograms.iter_mut().find(|(n, _)| n == name) {
            slot.1 = h;
        } else {
            self.histograms.push((name.to_string(), h));
        }
    }

    /// Counters in registration order.
    pub fn counters(&self) -> &[(String, u64)] {
        &self.counters
    }

    /// Gauges in registration order.
    pub fn gauges(&self) -> &[(String, f64)] {
        &self.gauges
    }

    /// Histograms in registration order.
    pub fn histograms(&self) -> &[(String, Histogram)] {
        &self.histograms
    }
}

impl ToJson for Registry {
    fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(n, v)| (n.clone(), Json::from(*v)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(n, v)| (n.clone(), Json::Float(*v)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(n, h)| {
                    (
                        n.clone(),
                        Json::obj([
                            ("lo", Json::Float(h.lo())),
                            ("hi", Json::Float(h.hi())),
                            (
                                "buckets",
                                Json::Arr(h.buckets().iter().map(|&c| Json::from(c)).collect()),
                            ),
                            ("underflow", Json::from(h.underflow())),
                            ("overflow", Json::from(h.overflow())),
                            ("count", Json::from(h.count())),
                        ]),
                    )
                })
                .collect(),
        );
        Json::obj([
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_ordered() {
        let mut r = Registry::new();
        let a = r.counter("alpha");
        let b = r.counter("beta");
        assert_eq!(r.counter("alpha"), a);
        r.inc(a, 2);
        r.inc(b, 1);
        r.inc(a, 3);
        assert_eq!(r.counter_value("alpha"), Some(5));
        assert_eq!(r.counter_value("beta"), Some(1));
        assert_eq!(r.counter_value("gamma"), None);
        let names: Vec<&str> = r.counters().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["alpha", "beta"]);
    }

    #[test]
    fn adopt_histogram_inserts_and_replaces() {
        let mut r = Registry::new();
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.record(1.0);
        r.adopt_histogram("lat", h.clone());
        assert_eq!(r.histogram_value("lat").unwrap().count(), 1);
        h.record(2.0);
        r.adopt_histogram("lat", h);
        assert_eq!(r.histogram_value("lat").unwrap().count(), 2);
        assert_eq!(r.histograms().len(), 1);
    }

    #[test]
    fn snapshot_is_insertion_ordered_json() {
        let mut r = Registry::new();
        let c = r.counter("z_first");
        r.counter("a_second");
        r.inc(c, 7);
        let g = r.gauge("level");
        r.set(g, 0.5);
        let h = r.histogram("fanout", 0.0, 8.0, 4);
        r.observe(h, 1.0);
        r.observe(h, 9.0);
        assert_eq!(
            r.to_json().to_string(),
            r#"{"counters":{"z_first":7,"a_second":0},"gauges":{"level":0.5},"histograms":{"fanout":{"lo":0.0,"hi":8.0,"buckets":[1,0,0,0],"underflow":0,"overflow":1,"count":2}}}"#
        );
        assert_eq!(r.histogram_value("fanout").unwrap().count(), 2);
        assert!(r.histogram_value("missing").is_none());
    }
}
