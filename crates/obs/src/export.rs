//! Plaintext metrics exposition for scraping.
//!
//! Renders a [`Registry`] in the Prometheus text format (the
//! `text/plain; version=0.0.4` exposition format): counters and gauges
//! as single samples, histograms as cumulative `_bucket{le="..."}`
//! series plus `_count`. Instrument names are sanitized to the metric
//! charset (`[a-zA-Z0-9_]`) and prefixed, so a registry shared with the
//! deterministic-run machinery exports without renaming anything.
//!
//! The output is deterministic: instruments render in registration
//! order, floats in shortest-roundtrip form. `arq serve --metrics`
//! serves exactly this text over HTTP.

use crate::registry::Registry;
use std::fmt::Write;

/// Sanitizes an instrument name into the metric-name charset.
fn metric_name(prefix: &str, name: &str) -> String {
    let mut out = String::with_capacity(prefix.len() + 1 + name.len());
    out.push_str(prefix);
    out.push('_');
    for ch in name.chars() {
        out.push(if ch.is_ascii_alphanumeric() || ch == '_' {
            ch
        } else {
            '_'
        });
    }
    out
}

/// Renders a float the way Prometheus expects (`+Inf` spelled out).
fn render_f64(x: f64) -> String {
    if x == f64::INFINITY {
        "+Inf".to_string()
    } else {
        format!("{x}")
    }
}

/// Renders `registry` in the Prometheus plaintext exposition format,
/// with every metric name prefixed by `prefix` (e.g. `arq`).
pub fn to_prometheus(registry: &Registry, prefix: &str) -> String {
    let mut out = String::new();
    for (name, value) in registry.counters() {
        let m = metric_name(prefix, name);
        let _ = writeln!(out, "# TYPE {m} counter");
        let _ = writeln!(out, "{m} {value}");
    }
    for (name, value) in registry.gauges() {
        let m = metric_name(prefix, name);
        let _ = writeln!(out, "# TYPE {m} gauge");
        let _ = writeln!(out, "{m} {}", render_f64(*value));
    }
    for (name, h) in registry.histograms() {
        let m = metric_name(prefix, name);
        let _ = writeln!(out, "# TYPE {m} histogram");
        // Cumulative buckets; the fixed-range histogram's underflow
        // belongs to every bucket (observations below `lo` are ≤ any
        // finite edge) and overflow only to +Inf.
        let mut cumulative = h.underflow();
        let n = h.buckets().len();
        for (i, &c) in h.buckets().iter().enumerate() {
            cumulative += c;
            // The upper edge of bucket i is the lower edge of i+1 (the
            // last edge is exactly `hi`).
            let le = if i + 1 == n {
                h.hi()
            } else {
                h.bucket_lo(i + 1)
            };
            let _ = writeln!(out, "{m}_bucket{{le=\"{}\"}} {cumulative}", render_f64(le));
        }
        let _ = writeln!(out, "{m}_bucket{{le=\"+Inf\"}} {}", h.count());
        let _ = writeln!(out, "{m}_count {}", h.count());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render() {
        let mut r = Registry::new();
        let c = r.counter("events_total");
        r.inc(c, 41);
        r.inc(c, 1);
        let g = r.gauge("queue depth"); // space sanitized to underscore
        r.set(g, 0.5);
        let text = to_prometheus(&r, "arq");
        assert!(text.contains("# TYPE arq_events_total counter\narq_events_total 42\n"));
        assert!(text.contains("# TYPE arq_queue_depth gauge\narq_queue_depth 0.5\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut r = Registry::new();
        let h = r.histogram("lat", 0.0, 4.0, 4);
        for x in [0.5, 1.5, 1.6, 3.5, 9.0] {
            r.observe(h, x);
        }
        let text = to_prometheus(&r, "arq");
        assert!(text.contains("arq_lat_bucket{le=\"1\"} 1"), "{text}");
        assert!(text.contains("arq_lat_bucket{le=\"2\"} 3"), "{text}");
        assert!(text.contains("arq_lat_bucket{le=\"4\"} 4"), "{text}");
        assert!(text.contains("arq_lat_bucket{le=\"+Inf\"} 5"), "{text}");
        assert!(text.contains("arq_lat_count 5"), "{text}");
    }

    #[test]
    fn empty_registry_renders_empty() {
        assert_eq!(to_prometheus(&Registry::new(), "arq"), "");
    }

    #[test]
    fn deterministic_output() {
        let build = || {
            let mut r = Registry::new();
            let a = r.counter("a");
            r.inc(a, 7);
            let h = r.histogram("b", 0.0, 10.0, 2);
            r.observe(h, 3.0);
            to_prometheus(&r, "p")
        };
        assert_eq!(build(), build());
    }
}
