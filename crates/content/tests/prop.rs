// Property tests require the external `proptest` crate; the feature is
// default-off so offline builds skip this file entirely.
#![cfg(feature = "proptest")]

//! Property-based tests for the content/workload model.

use arq_content::{Catalog, CatalogConfig, InterestProfile, Library, Topic, Zipf};
use arq_simkern::Rng64;
use proptest::prelude::*;

proptest! {
    /// Zipf pmf sums to 1 and is non-increasing in rank for any support
    /// and exponent.
    #[test]
    fn zipf_pmf_is_a_distribution(n in 1usize..500, alpha in 0.0f64..3.0) {
        let z = Zipf::new(n, alpha);
        let total: f64 = (0..n).map(|k| z.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "pmf sums to {total}");
        for k in 1..n {
            prop_assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
        }
    }

    /// Samples always fall inside the support.
    #[test]
    fn zipf_samples_in_support(seed in any::<u64>(), n in 1usize..200, alpha in 0.0f64..2.5) {
        let z = Zipf::new(n, alpha);
        let mut rng = Rng64::seed_from(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Interest profiles have distinct topics and normalized weights.
    #[test]
    fn profile_weights_normalized(seed in any::<u64>(), topics in 1usize..100, k in 1usize..10) {
        let mut rng = Rng64::seed_from(seed);
        let p = InterestProfile::sample(topics, k, &mut rng);
        let kk = k.min(topics);
        prop_assert_eq!(p.topics().len(), kk);
        let set: std::collections::HashSet<_> = p.topics().iter().collect();
        prop_assert_eq!(set.len(), kk);
        let total: f64 = (0..kk).map(|i| p.weight(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        // Sampling returns only profile topics.
        for _ in 0..50 {
            let t = p.sample_topic(&mut rng);
            prop_assert!(p.topics().contains(&t));
        }
    }

    /// Drift keeps the profile size constant and its topics within the
    /// universe.
    #[test]
    fn drift_preserves_shape(seed in any::<u64>(), topics in 2usize..50, steps in 0usize..100) {
        let mut rng = Rng64::seed_from(seed);
        let mut p = InterestProfile::sample(topics, 3, &mut rng);
        let size = p.topics().len();
        for _ in 0..steps {
            p.drift(topics, 0.5, &mut rng);
            prop_assert_eq!(p.topics().len(), size);
            let set: std::collections::HashSet<_> = p.topics().iter().collect();
            prop_assert_eq!(set.len(), size, "drift produced duplicate topics");
            prop_assert!(p.topics().iter().all(|t| (t.0 as usize) < topics));
        }
    }

    /// Overlap is symmetric and bounded.
    #[test]
    fn overlap_symmetric_bounded(seed in any::<u64>()) {
        let mut rng = Rng64::seed_from(seed);
        let a = InterestProfile::sample(30, 4, &mut rng);
        let b = InterestProfile::sample(30, 4, &mut rng);
        let ab = a.overlap(&b);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((ab - b.overlap(&a)).abs() < 1e-12);
    }

    /// Libraries sampled from a single-topic profile contain only that
    /// topic's files, and queries the library answers really match.
    #[test]
    fn library_respects_profile(seed in any::<u64>(), topic in 0u16..8, n in 1usize..40) {
        let mut rng = Rng64::seed_from(seed);
        let catalog = Catalog::generate(
            CatalogConfig { topics: 8, files_per_topic: 50, ..Default::default() },
            &mut rng,
        );
        let profile = InterestProfile::from_pairs(&[(Topic(topic), 1.0)]);
        let lib = Library::sample(&catalog, &profile, n, &mut rng);
        prop_assert!(!lib.is_empty());
        prop_assert!(lib.len() <= n);
        for f in lib.iter() {
            prop_assert_eq!(catalog.meta(f).topic, Topic(topic));
        }
    }
}
