//! Zipf-distributed sampling.
//!
//! P2P measurement studies consistently find Zipf-like popularity for both
//! query terms and shared files. This sampler precomputes the cumulative
//! distribution once and draws in O(log n) by binary search, which is fast
//! enough to sit inside the per-query hot loop.

use arq_simkern::Rng64;

/// A Zipf(α) distribution over ranks `0..n` (rank 0 most popular).
///
/// P(rank = k) ∝ 1 / (k+1)^α. With α = 0 this degenerates to the uniform
/// distribution, which tests exploit.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution over `n` ranks with exponent `alpha >= 0`.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf over empty support");
        assert!(alpha >= 0.0, "negative Zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top.
        *cdf.last_mut().unwrap() = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the support is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank.
    pub fn sample(&self, rng: &mut Rng64) -> usize {
        let u = rng.f64();
        // partition_point returns the first index with cdf > u.
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_alpha_zero() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_sums_to_one_and_decreases() {
        let z = Zipf::new(100, 0.9);
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..100 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12, "pmf not monotone at {k}");
        }
    }

    #[test]
    fn sampling_matches_pmf() {
        let z = Zipf::new(10, 1.0);
        let mut rng = Rng64::seed_from(77);
        let n = 200_000;
        let mut counts = [0u32; 10];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let got = f64::from(count) / n as f64;
            let want = z.pmf(k);
            assert!(
                (got - want).abs() < 0.01,
                "rank {k}: got {got:.4}, want {want:.4}"
            );
        }
    }

    #[test]
    fn single_rank_support() {
        let z = Zipf::new(1, 1.2);
        let mut rng = Rng64::seed_from(1);
        assert_eq!(z.sample(&mut rng), 0);
        assert!((z.pmf(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty support")]
    fn rejects_empty_support() {
        Zipf::new(0, 1.0);
    }
}
