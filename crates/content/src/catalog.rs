//! The shared-content catalog.
//!
//! The universe of files that can be shared and queried for. Each file
//! belongs to exactly one [`Topic`] (interest group — e.g. a music genre)
//! and carries a small set of keyword ids used when rendering query
//! strings. Within a topic, files are ranked by popularity and drawn
//! Zipf-distributed by both the sharing and the querying side, which is
//! what makes some files replicated at many peers and others rare.

use crate::zipf::Zipf;
use arq_simkern::Rng64;
use std::fmt;

/// An interest group / content category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Topic(pub u16);

/// A shared file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u32);

impl fmt::Display for Topic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "topic{}", self.0)
    }
}

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file{}", self.0)
    }
}

/// Catalog shape parameters.
#[derive(Debug, Clone)]
pub struct CatalogConfig {
    /// Number of topics (interest groups).
    pub topics: usize,
    /// Files per topic.
    pub files_per_topic: usize,
    /// Zipf exponent for within-topic file popularity.
    pub file_alpha: f64,
    /// Zipf exponent for topic popularity (how skewed interests are across
    /// the population).
    pub topic_alpha: f64,
    /// Keywords attached to each file.
    pub keywords_per_file: usize,
    /// Size of the keyword vocabulary.
    pub vocabulary: usize,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            topics: 20,
            files_per_topic: 500,
            file_alpha: 0.9,
            topic_alpha: 0.6,
            keywords_per_file: 3,
            vocabulary: 4_000,
        }
    }
}

/// Metadata of one catalog file.
#[derive(Debug, Clone)]
pub struct FileMeta {
    /// The file's interest group.
    pub topic: Topic,
    /// Popularity rank within the topic (0 = most popular).
    pub rank: u32,
    /// Keyword ids for query-string rendering.
    pub keywords: Vec<u32>,
}

/// The content universe.
#[derive(Debug, Clone)]
pub struct Catalog {
    cfg: CatalogConfig,
    files: Vec<FileMeta>,
    file_pop: Zipf,
    topic_pop: Zipf,
}

impl Catalog {
    /// Generates a catalog. Keyword assignment is the only random part;
    /// topic/rank structure is deterministic from the config.
    pub fn generate(cfg: CatalogConfig, rng: &mut Rng64) -> Self {
        assert!(cfg.topics > 0 && cfg.files_per_topic > 0, "empty catalog");
        let mut files = Vec::with_capacity(cfg.topics * cfg.files_per_topic);
        for t in 0..cfg.topics {
            for r in 0..cfg.files_per_topic {
                let keywords = (0..cfg.keywords_per_file)
                    .map(|_| rng.below(cfg.vocabulary as u64) as u32)
                    .collect();
                files.push(FileMeta {
                    topic: Topic(t as u16),
                    rank: r as u32,
                    keywords,
                });
            }
        }
        let file_pop = Zipf::new(cfg.files_per_topic, cfg.file_alpha);
        let topic_pop = Zipf::new(cfg.topics, cfg.topic_alpha);
        Catalog {
            cfg,
            files,
            file_pop,
            topic_pop,
        }
    }

    /// The config the catalog was generated from.
    pub fn config(&self) -> &CatalogConfig {
        &self.cfg
    }

    /// Total number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the catalog is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Number of topics.
    pub fn topic_count(&self) -> usize {
        self.cfg.topics
    }

    /// Metadata for a file.
    pub fn meta(&self, f: FileId) -> &FileMeta {
        &self.files[f.0 as usize]
    }

    /// The file with a given topic and within-topic rank.
    pub fn file_at(&self, topic: Topic, rank: u32) -> FileId {
        assert!((topic.0 as usize) < self.cfg.topics, "topic out of range");
        assert!(
            (rank as usize) < self.cfg.files_per_topic,
            "rank out of range"
        );
        FileId(topic.0 as u32 * self.cfg.files_per_topic as u32 + rank)
    }

    /// Draws a file within `topic` according to file popularity.
    pub fn sample_file(&self, topic: Topic, rng: &mut Rng64) -> FileId {
        let rank = self.file_pop.sample(rng) as u32;
        self.file_at(topic, rank)
    }

    /// Draws a topic according to global topic popularity.
    pub fn sample_topic(&self, rng: &mut Rng64) -> Topic {
        Topic(self.topic_pop.sample(rng) as u16)
    }

    /// Renders a human-readable query string for a file — the analogue of
    /// the paper's recorded query strings.
    pub fn query_string(&self, f: FileId) -> String {
        let m = self.meta(f);
        let words: Vec<String> = m.keywords.iter().map(|k| format!("kw{k}")).collect();
        format!("{} {} r{}", m.topic, words.join(" "), m.rank)
    }

    /// Byte length of [`Catalog::query_string`] without rendering it —
    /// the link layer sizes every query message from this, so it must
    /// stay exactly in sync with the rendered form (asserted in tests).
    pub fn query_len(&self, f: FileId) -> usize {
        let m = self.meta(f);
        // "topic{t}" + per keyword " kw{k}" + " r{rank}".
        let mut len =
            5 + decimal_digits(u64::from(m.topic.0)) + 2 + decimal_digits(u64::from(m.rank));
        for &k in &m.keywords {
            len += 3 + decimal_digits(u64::from(k));
        }
        len
    }
}

/// Digits in the base-10 rendering of `n`.
fn decimal_digits(mut n: u64) -> usize {
    let mut d = 1;
    while n >= 10 {
        n /= 10;
        d += 1;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Catalog {
        let cfg = CatalogConfig {
            topics: 3,
            files_per_topic: 10,
            file_alpha: 1.0,
            topic_alpha: 0.5,
            keywords_per_file: 2,
            vocabulary: 50,
        };
        Catalog::generate(cfg, &mut Rng64::seed_from(1))
    }

    #[test]
    fn layout_is_dense_and_indexed() {
        let c = small();
        assert_eq!(c.len(), 30);
        assert_eq!(c.topic_count(), 3);
        for t in 0..3u16 {
            for r in 0..10u32 {
                let f = c.file_at(Topic(t), r);
                let m = c.meta(f);
                assert_eq!(m.topic, Topic(t));
                assert_eq!(m.rank, r);
            }
        }
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn file_at_checks_bounds() {
        small().file_at(Topic(0), 10);
    }

    #[test]
    fn sample_file_stays_in_topic_and_prefers_low_ranks() {
        let c = small();
        let mut rng = Rng64::seed_from(2);
        let mut rank_counts = vec![0u32; 10];
        for _ in 0..20_000 {
            let f = c.sample_file(Topic(1), &mut rng);
            let m = c.meta(f);
            assert_eq!(m.topic, Topic(1));
            rank_counts[m.rank as usize] += 1;
        }
        assert!(
            rank_counts[0] > rank_counts[9] * 3,
            "popularity skew missing: {rank_counts:?}"
        );
    }

    #[test]
    fn keywords_within_vocabulary() {
        let c = small();
        for i in 0..c.len() {
            let m = c.meta(FileId(i as u32));
            assert_eq!(m.keywords.len(), 2);
            assert!(m.keywords.iter().all(|&k| k < 50));
        }
    }

    #[test]
    fn query_string_is_stable_and_descriptive() {
        let c = small();
        let f = c.file_at(Topic(2), 7);
        let s = c.query_string(f);
        assert!(s.starts_with("topic2 "));
        assert!(s.ends_with(" r7"));
        assert_eq!(s, c.query_string(f));
    }

    #[test]
    fn query_len_matches_rendered_string() {
        let c = small();
        for i in 0..c.len() {
            let f = FileId(i as u32);
            assert_eq!(c.query_len(f), c.query_string(f).len(), "file {i}");
        }
        // Multi-digit topics/ranks/keywords too.
        let big = Catalog::generate(
            CatalogConfig {
                topics: 12,
                files_per_topic: 120,
                vocabulary: 2_000,
                ..Default::default()
            },
            &mut Rng64::seed_from(9),
        );
        for i in 0..big.len() {
            let f = FileId(i as u32);
            assert_eq!(big.query_len(f), big.query_string(f).len(), "file {i}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small();
        let b = small();
        for i in 0..a.len() {
            assert_eq!(
                a.meta(FileId(i as u32)).keywords,
                b.meta(FileId(i as u32)).keywords
            );
        }
    }
}
