//! # arq-content — content and query-workload models
//!
//! The paper's routing heuristic works because of **interest-based
//! locality**: users query within a limited set of interests, and nodes
//! that answered one query tend to be able to answer the next. This crate
//! models exactly the pieces needed to reproduce that phenomenon:
//!
//! * [`zipf::Zipf`] — a Zipf(α) sampler; both file popularity and topic
//!   popularity in P2P measurement studies follow Zipf-like laws;
//! * [`catalog`] — a universe of shared files, each belonging to a topic
//!   (interest group) and carrying keywords;
//! * [`interest::InterestProfile`] — a node's weighting over topics, with
//!   optional slow drift (users' tastes change over days, which is one of
//!   the forces that ages static rule sets);
//! * [`workload`] — per-node shared-file libraries and the query
//!   generator that drives every simulation;
//! * [`keywords`] — keyword-subset matching and per-node inverted
//!   indices, the search model whose flexibility the paper contrasts
//!   with exact-match DHT lookup.

#![warn(missing_docs)]

pub mod catalog;
pub mod interest;
pub mod keywords;
pub mod workload;
pub mod zipf;

pub use catalog::{Catalog, CatalogConfig, FileId, Topic};
pub use interest::InterestProfile;
pub use keywords::{KeywordIndex, KeywordQuery};
pub use workload::{Library, QueryKey, WorkloadConfig, WorkloadGen};
pub use zipf::Zipf;
