//! Per-node interest profiles.
//!
//! A node's interests are a small weighted set of topics. Queries are
//! drawn from the profile, and the node's shared library is drawn from the
//! same profile — that correlation *is* interest-based locality.
//!
//! Profiles can **drift**: at each drift step, with some probability one
//! interest is replaced by a fresh topic. Drift plus churn together
//! produce the slow decay of rule-set quality the paper measures.

use crate::catalog::Topic;
use arq_simkern::Rng64;

/// A weighted set of topics a node cares about.
#[derive(Debug, Clone)]
pub struct InterestProfile {
    topics: Vec<Topic>,
    weights: Vec<f64>, // normalized, same length as topics
}

impl InterestProfile {
    /// Samples a profile of `k` distinct topics from `topic_count`,
    /// weighted by a geometric decay (the first interest dominates).
    pub fn sample(topic_count: usize, k: usize, rng: &mut Rng64) -> Self {
        assert!(topic_count > 0, "no topics to choose from");
        let k = k.clamp(1, topic_count);
        let picks = rng.sample_indices(topic_count, k);
        let topics: Vec<Topic> = picks.into_iter().map(|t| Topic(t as u16)).collect();
        let mut weights: Vec<f64> = (0..k).map(|i| 0.6f64.powi(i as i32)).collect();
        let total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= total;
        }
        InterestProfile { topics, weights }
    }

    /// Builds a profile from explicit topic/weight pairs (weights need not
    /// be normalized).
    pub fn from_pairs(pairs: &[(Topic, f64)]) -> Self {
        assert!(!pairs.is_empty(), "empty interest profile");
        let total: f64 = pairs.iter().map(|(_, w)| *w).sum();
        assert!(total > 0.0, "profile weights sum to zero");
        InterestProfile {
            topics: pairs.iter().map(|(t, _)| *t).collect(),
            weights: pairs.iter().map(|(_, w)| w / total).collect(),
        }
    }

    /// The topics in the profile.
    pub fn topics(&self) -> &[Topic] {
        &self.topics
    }

    /// The normalized weight of topic at position `i`.
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Draws a topic according to the profile weights.
    pub fn sample_topic(&self, rng: &mut Rng64) -> Topic {
        let u = rng.f64();
        let mut acc = 0.0;
        for (t, w) in self.topics.iter().zip(&self.weights) {
            acc += w;
            if u < acc {
                return *t;
            }
        }
        *self.topics.last().unwrap()
    }

    /// One drift step: with probability `p`, replaces the least-weighted
    /// interest with a uniformly random topic not already present. Returns
    /// whether a replacement happened.
    pub fn drift(&mut self, topic_count: usize, p: f64, rng: &mut Rng64) -> bool {
        if !rng.chance(p) {
            return false;
        }
        if topic_count <= self.topics.len() {
            return false; // nothing new to drift to
        }
        let mut guard = 0;
        let new_topic = loop {
            let cand = Topic(rng.below(topic_count as u64) as u16);
            if !self.topics.contains(&cand) {
                break cand;
            }
            guard += 1;
            if guard > 10_000 {
                return false;
            }
        };
        // Replace the entry with the smallest weight.
        let (idx, _) = self
            .weights
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        self.topics[idx] = new_topic;
        true
    }

    /// Jaccard overlap of the topic sets of two profiles — used by tests
    /// and by the interest-shortcut baseline to gauge peer similarity.
    pub fn overlap(&self, other: &InterestProfile) -> f64 {
        let a: std::collections::BTreeSet<Topic> = self.topics.iter().copied().collect();
        let b: std::collections::BTreeSet<Topic> = other.topics.iter().copied().collect();
        let inter = a.intersection(&b).count();
        let union = a.union(&b).count();
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_gives_distinct_topics_and_normalized_weights() {
        let mut rng = Rng64::seed_from(1);
        let p = InterestProfile::sample(50, 4, &mut rng);
        assert_eq!(p.topics().len(), 4);
        let set: std::collections::HashSet<_> = p.topics().iter().collect();
        assert_eq!(set.len(), 4);
        let total: f64 = (0..4).map(|i| p.weight(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(p.weight(0) > p.weight(3), "first interest must dominate");
    }

    #[test]
    fn k_clamped_to_topic_count() {
        let mut rng = Rng64::seed_from(2);
        let p = InterestProfile::sample(2, 10, &mut rng);
        assert_eq!(p.topics().len(), 2);
    }

    #[test]
    fn sample_topic_respects_weights() {
        let p = InterestProfile::from_pairs(&[(Topic(0), 3.0), (Topic(1), 1.0)]);
        let mut rng = Rng64::seed_from(3);
        let n = 100_000;
        let zero = (0..n)
            .filter(|_| p.sample_topic(&mut rng) == Topic(0))
            .count();
        let frac = zero as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn drift_replaces_weakest_interest() {
        let mut p = InterestProfile::from_pairs(&[(Topic(0), 0.7), (Topic(1), 0.3)]);
        let mut rng = Rng64::seed_from(4);
        let changed = p.drift(100, 1.0, &mut rng);
        assert!(changed);
        assert_eq!(p.topics()[0], Topic(0), "dominant interest replaced");
        assert_ne!(p.topics()[1], Topic(1), "weakest interest not replaced");
    }

    #[test]
    fn drift_never_fires_with_p_zero() {
        let mut p = InterestProfile::from_pairs(&[(Topic(0), 1.0)]);
        let mut rng = Rng64::seed_from(5);
        for _ in 0..100 {
            assert!(!p.drift(10, 0.0, &mut rng));
        }
        assert_eq!(p.topics(), &[Topic(0)]);
    }

    #[test]
    fn drift_noop_when_no_new_topics() {
        let mut p = InterestProfile::from_pairs(&[(Topic(0), 0.5), (Topic(1), 0.5)]);
        let mut rng = Rng64::seed_from(6);
        assert!(!p.drift(2, 1.0, &mut rng));
    }

    #[test]
    fn overlap_bounds_and_identity() {
        let a = InterestProfile::from_pairs(&[(Topic(0), 1.0), (Topic(1), 1.0)]);
        let b = InterestProfile::from_pairs(&[(Topic(1), 1.0), (Topic(2), 1.0)]);
        let c = InterestProfile::from_pairs(&[(Topic(7), 1.0)]);
        assert!((a.overlap(&a) - 1.0).abs() < 1e-12);
        assert!((a.overlap(&b) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(a.overlap(&c), 0.0);
    }
}
