//! Per-node libraries and query generation.
//!
//! A [`Library`] is the set of files a node shares; a [`WorkloadGen`]
//! owns one library + interest profile per node and produces the query
//! stream that drives a simulation. Both draw from the same interest
//! profile, producing the interest-based locality the routing heuristic
//! exploits.

use crate::catalog::{Catalog, FileId, Topic};
use crate::interest::InterestProfile;
use arq_simkern::Rng64;
use std::collections::BTreeSet;

/// What a query asks for. Matching is by exact file — the Gnutella
/// analogue of "this set of keywords identifies the song I want". The
/// topic rides along for baselines (routing indices classify by topic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryKey {
    /// The file being searched for.
    pub file: FileId,
    /// The file's interest group.
    pub topic: Topic,
}

/// The set of files one node shares.
#[derive(Debug, Clone, Default)]
pub struct Library {
    files: BTreeSet<FileId>,
}

impl Library {
    /// An empty library (free riders exist in real networks).
    pub fn empty() -> Self {
        Library::default()
    }

    /// Fills a library with `n` files drawn from the node's interests.
    pub fn sample(catalog: &Catalog, profile: &InterestProfile, n: usize, rng: &mut Rng64) -> Self {
        let mut files = BTreeSet::new();
        let mut guard = 0;
        while files.len() < n && guard < n * 50 {
            let topic = profile.sample_topic(rng);
            files.insert(catalog.sample_file(topic, rng));
            guard += 1;
        }
        Library { files }
    }

    /// Whether the library contains `f`.
    pub fn contains(&self, f: FileId) -> bool {
        self.files.contains(&f)
    }

    /// Whether this library can answer `q`.
    pub fn matches(&self, q: QueryKey) -> bool {
        self.contains(q.file)
    }

    /// Number of shared files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the node shares nothing.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Iterates over shared files.
    pub fn iter(&self) -> impl Iterator<Item = FileId> + '_ {
        self.files.iter().copied()
    }

    /// Adds a file (e.g. after a successful download — downloads spread
    /// content in real networks).
    pub fn insert(&mut self, f: FileId) -> bool {
        self.files.insert(f)
    }
}

/// Workload shape parameters.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Interests per node.
    pub interests_per_node: usize,
    /// Shared files per node (mean; actual value is uniform in ±50%).
    pub files_per_node: usize,
    /// Fraction of nodes sharing nothing (free riders).
    pub free_rider_fraction: f64,
    /// Per-query probability that a node's profile drifts one step.
    pub drift_per_query: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            interests_per_node: 3,
            files_per_node: 60,
            free_rider_fraction: 0.2,
            drift_per_query: 0.0005,
        }
    }
}

/// Per-node state driving query generation.
pub struct WorkloadGen {
    cfg: WorkloadConfig,
    profiles: Vec<InterestProfile>,
    libraries: Vec<Library>,
}

impl WorkloadGen {
    /// Builds libraries and profiles for `n` nodes.
    pub fn generate(n: usize, catalog: &Catalog, cfg: WorkloadConfig, rng: &mut Rng64) -> Self {
        let mut profiles = Vec::with_capacity(n);
        let mut libraries = Vec::with_capacity(n);
        for _ in 0..n {
            let profile =
                InterestProfile::sample(catalog.topic_count(), cfg.interests_per_node, rng);
            let lib = if rng.chance(cfg.free_rider_fraction) {
                Library::empty()
            } else {
                let lo = cfg.files_per_node / 2;
                let span = cfg.files_per_node.max(1);
                let count = lo + rng.index(span);
                Library::sample(catalog, &profile, count.max(1), rng)
            };
            profiles.push(profile);
            libraries.push(lib);
        }
        WorkloadGen {
            cfg,
            profiles,
            libraries,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the workload covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The library of node `i`.
    pub fn library(&self, i: usize) -> &Library {
        &self.libraries[i]
    }

    /// Mutable library access (downloads).
    pub fn library_mut(&mut self, i: usize) -> &mut Library {
        &mut self.libraries[i]
    }

    /// The interest profile of node `i`.
    pub fn profile(&self, i: usize) -> &InterestProfile {
        &self.profiles[i]
    }

    /// Generates the next query for node `i`, applying interest drift.
    pub fn next_query(&mut self, i: usize, catalog: &Catalog, rng: &mut Rng64) -> QueryKey {
        self.profiles[i].drift(catalog.topic_count(), self.cfg.drift_per_query, rng);
        let topic = self.profiles[i].sample_topic(rng);
        let file = catalog.sample_file(topic, rng);
        QueryKey { file, topic }
    }

    /// All nodes whose library can answer `q` — ground truth for
    /// hit-rate accounting.
    pub fn holders(&self, q: QueryKey) -> Vec<usize> {
        self.libraries
            .iter()
            .enumerate()
            .filter(|(_, lib)| lib.matches(q))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogConfig;

    fn setup() -> (Catalog, WorkloadGen, Rng64) {
        let mut rng = Rng64::seed_from(42);
        let catalog = Catalog::generate(
            CatalogConfig {
                topics: 10,
                files_per_topic: 100,
                ..Default::default()
            },
            &mut rng,
        );
        let gen = WorkloadGen::generate(
            100,
            &catalog,
            WorkloadConfig {
                free_rider_fraction: 0.2,
                ..Default::default()
            },
            &mut rng,
        );
        (catalog, gen, rng)
    }

    #[test]
    fn library_sampling_respects_interests() {
        let mut rng = Rng64::seed_from(9);
        let catalog = Catalog::generate(
            CatalogConfig {
                topics: 10,
                files_per_topic: 50,
                ..Default::default()
            },
            &mut rng,
        );
        let profile = InterestProfile::from_pairs(&[(Topic(3), 1.0)]);
        let lib = Library::sample(&catalog, &profile, 20, &mut rng);
        assert!(!lib.is_empty());
        for f in lib.iter() {
            assert_eq!(catalog.meta(f).topic, Topic(3));
        }
    }

    #[test]
    fn free_riders_exist_in_expected_proportion() {
        let (_, gen, _) = setup();
        let free = (0..gen.len())
            .filter(|&i| gen.library(i).is_empty())
            .count();
        assert!((10..=35).contains(&free), "free riders {free}/100");
    }

    #[test]
    fn queries_are_answerable_by_someone_usually() {
        let (catalog, mut gen, mut rng) = setup();
        let mut answered = 0;
        let total = 500;
        for q in 0..total {
            let node = q % gen.len();
            let query = gen.next_query(node, &catalog, &mut rng);
            if !gen.holders(query).is_empty() {
                answered += 1;
            }
        }
        // Popular files are widely replicated; most queries should have at
        // least one holder somewhere in a 100-node network.
        assert!(
            answered * 10 > total * 5,
            "only {answered}/{total} answerable"
        );
    }

    #[test]
    fn interest_locality_biases_queries_to_profile_topics() {
        let (catalog, mut gen, mut rng) = setup();
        let profile_topics: BTreeSet<Topic> = gen.profile(0).topics().iter().copied().collect();
        let mut in_profile = 0;
        for _ in 0..200 {
            let q = gen.next_query(0, &catalog, &mut rng);
            if profile_topics.contains(&q.topic) {
                in_profile += 1;
            }
        }
        // Drift may rotate a topic occasionally; the vast majority of
        // queries still come from the (current) profile.
        assert!(in_profile > 150, "only {in_profile}/200 in-profile");
    }

    #[test]
    fn holders_reports_exactly_matching_nodes() {
        let (catalog, mut gen, mut rng) = setup();
        let q = gen.next_query(0, &catalog, &mut rng);
        for &h in &gen.holders(q) {
            assert!(gen.library(h).matches(q));
        }
        // insertion updates holders
        let before = gen.holders(q).len();
        let target = (0..gen.len())
            .find(|&i| !gen.library(i).matches(q))
            .unwrap();
        gen.library_mut(target).insert(q.file);
        assert_eq!(gen.holders(q).len(), before + 1);
    }

    #[test]
    fn query_key_equality_is_by_file() {
        let a = QueryKey {
            file: FileId(5),
            topic: Topic(1),
        };
        let b = QueryKey {
            file: FileId(5),
            topic: Topic(1),
        };
        assert_eq!(a, b);
    }
}
