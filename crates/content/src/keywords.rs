//! Keyword-subset search.
//!
//! §II of the paper faults structured (DHT) systems because "queries
//! must match the content exactly, so wild card searches or searches
//! which contain a permutation of the words will not find the
//! corresponding content". Unstructured search matches on *keywords*: a
//! query is a bag of words, and a file matches when the query's words
//! are a subset of the file's words, in any order. This module provides
//! that matching model:
//!
//! * [`KeywordQuery`] — a normalized (sorted, deduplicated) word set;
//! * [`KeywordIndex`] — a per-node inverted index from word to posting
//!   list, answering subset queries by merge-intersection, the structure
//!   a real servent keeps over its shared folder.

use crate::catalog::{Catalog, FileId};

/// A keyword query: a normalized set of word ids.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct KeywordQuery {
    words: Vec<u32>,
}

impl KeywordQuery {
    /// Builds a query from word ids; order and duplicates are
    /// irrelevant (the permutation-insensitivity the paper highlights).
    pub fn new(words: impl IntoIterator<Item = u32>) -> Self {
        let mut words: Vec<u32> = words.into_iter().collect();
        words.sort_unstable();
        words.dedup();
        KeywordQuery { words }
    }

    /// The full keyword set identifying file `f` in `catalog`.
    pub fn for_file(catalog: &Catalog, f: FileId) -> Self {
        KeywordQuery::new(catalog.meta(f).keywords.iter().copied())
    }

    /// A partial query: the first `n` keywords of file `f` (what a user
    /// remembering only part of a title would type).
    pub fn partial(catalog: &Catalog, f: FileId, n: usize) -> Self {
        KeywordQuery::new(catalog.meta(f).keywords.iter().copied().take(n))
    }

    /// The normalized word ids.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Whether the query has no words (matches everything).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Whether every query word appears in `file_words` (which must be
    /// sorted).
    pub fn matches_sorted(&self, file_words: &[u32]) -> bool {
        debug_assert!(file_words.windows(2).all(|w| w[0] <= w[1]));
        let mut i = 0;
        'outer: for &w in &self.words {
            while i < file_words.len() {
                match file_words[i].cmp(&w) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Equal => {
                        i += 1;
                        continue 'outer;
                    }
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }
}

/// An inverted keyword index over a set of files.
#[derive(Debug, Clone, Default)]
pub struct KeywordIndex {
    /// (word, sorted posting list) pairs, sorted by word.
    postings: Vec<(u32, Vec<FileId>)>,
    /// Per-file sorted keyword sets, for verification.
    files: Vec<(FileId, Vec<u32>)>,
}

impl KeywordIndex {
    /// Builds an index over `files` using `catalog` metadata.
    pub fn build(catalog: &Catalog, files: impl IntoIterator<Item = FileId>) -> Self {
        let mut files: Vec<(FileId, Vec<u32>)> = files
            .into_iter()
            .map(|f| {
                let mut words = catalog.meta(f).keywords.clone();
                words.sort_unstable();
                words.dedup();
                (f, words)
            })
            .collect();
        files.sort_by_key(|(f, _)| *f);
        files.dedup_by_key(|(f, _)| *f);
        let mut postings: std::collections::BTreeMap<u32, Vec<FileId>> = Default::default();
        for (f, words) in &files {
            for &w in words {
                postings.entry(w).or_default().push(*f);
            }
        }
        KeywordIndex {
            postings: postings.into_iter().collect(),
            files,
        }
    }

    /// Number of indexed files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Number of distinct indexed words.
    pub fn vocabulary(&self) -> usize {
        self.postings.len()
    }

    fn posting(&self, word: u32) -> Option<&[FileId]> {
        self.postings
            .binary_search_by_key(&word, |(w, _)| *w)
            .ok()
            .map(|i| self.postings[i].1.as_slice())
    }

    /// All indexed files whose keyword set contains every query word,
    /// by posting-list intersection. An empty query matches every file.
    pub fn search(&self, query: &KeywordQuery) -> Vec<FileId> {
        if query.is_empty() {
            return self.files.iter().map(|(f, _)| *f).collect();
        }
        // Intersect postings, rarest first for early exit.
        let mut lists: Vec<&[FileId]> = Vec::with_capacity(query.words().len());
        for &w in query.words() {
            match self.posting(w) {
                Some(p) => lists.push(p),
                None => return Vec::new(),
            }
        }
        lists.sort_by_key(|l| l.len());
        let mut result: Vec<FileId> = lists[0].to_vec();
        for l in &lists[1..] {
            result.retain(|f| l.binary_search(f).is_ok());
            if result.is_empty() {
                break;
            }
        }
        result
    }

    /// Whether any indexed file matches the query.
    pub fn any_match(&self, query: &KeywordQuery) -> bool {
        !self.search(query).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{CatalogConfig, Topic};
    use arq_simkern::Rng64;

    fn catalog() -> Catalog {
        Catalog::generate(
            CatalogConfig {
                topics: 4,
                files_per_topic: 25,
                keywords_per_file: 4,
                vocabulary: 40,
                ..Default::default()
            },
            &mut Rng64::seed_from(8),
        )
    }

    #[test]
    fn query_normalization_is_permutation_insensitive() {
        let a = KeywordQuery::new([3, 1, 2]);
        let b = KeywordQuery::new([2, 3, 1, 1]);
        assert_eq!(a, b);
        assert_eq!(a.words(), &[1, 2, 3]);
    }

    #[test]
    fn full_query_finds_its_file() {
        let cat = catalog();
        let idx = KeywordIndex::build(&cat, (0..cat.len() as u32).map(FileId));
        for t in 0..4u16 {
            let f = cat.file_at(Topic(t), 3);
            let q = KeywordQuery::for_file(&cat, f);
            let hits = idx.search(&q);
            assert!(hits.contains(&f), "file {f} not found by its own keywords");
        }
    }

    #[test]
    fn partial_query_matches_supersets() {
        let cat = catalog();
        let idx = KeywordIndex::build(&cat, (0..cat.len() as u32).map(FileId));
        let f = cat.file_at(Topic(1), 0);
        let partial = KeywordQuery::partial(&cat, f, 2);
        let full = KeywordQuery::for_file(&cat, f);
        let partial_hits = idx.search(&partial);
        let full_hits = idx.search(&full);
        assert!(partial_hits.contains(&f));
        // Fewer constraints -> at least as many results.
        assert!(partial_hits.len() >= full_hits.len());
        for h in &full_hits {
            assert!(
                partial_hits.contains(h),
                "partial query lost a full-query hit"
            );
        }
    }

    #[test]
    fn search_results_actually_match() {
        let cat = catalog();
        let idx = KeywordIndex::build(&cat, (0..cat.len() as u32).map(FileId));
        let q = KeywordQuery::new([5, 11]);
        for f in idx.search(&q) {
            let mut words = cat.meta(f).keywords.clone();
            words.sort_unstable();
            assert!(q.matches_sorted(&words), "non-matching file {f} returned");
        }
        // And nothing matching was missed (brute-force cross-check).
        let brute: Vec<FileId> = (0..cat.len() as u32)
            .map(FileId)
            .filter(|&f| {
                let mut words = cat.meta(f).keywords.clone();
                words.sort_unstable();
                q.matches_sorted(&words)
            })
            .collect();
        let mut found = idx.search(&q);
        found.sort_unstable();
        assert_eq!(found, brute);
    }

    #[test]
    fn unknown_word_matches_nothing() {
        let cat = catalog();
        let idx = KeywordIndex::build(&cat, (0..10u32).map(FileId));
        let q = KeywordQuery::new([9_999]);
        assert!(idx.search(&q).is_empty());
        assert!(!idx.any_match(&q));
    }

    #[test]
    fn empty_query_matches_everything() {
        let cat = catalog();
        let idx = KeywordIndex::build(&cat, (0..10u32).map(FileId));
        let q = KeywordQuery::new([]);
        assert_eq!(idx.search(&q).len(), 10);
    }

    #[test]
    fn empty_index() {
        let cat = catalog();
        let idx = KeywordIndex::build(&cat, std::iter::empty());
        assert!(idx.is_empty());
        assert_eq!(idx.vocabulary(), 0);
        assert!(idx.search(&KeywordQuery::new([1])).is_empty());
    }

    #[test]
    fn duplicate_files_indexed_once() {
        let cat = catalog();
        let idx = KeywordIndex::build(&cat, [FileId(1), FileId(1), FileId(2)]);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn matches_sorted_edge_cases() {
        let q = KeywordQuery::new([2, 4]);
        assert!(q.matches_sorted(&[1, 2, 3, 4]));
        assert!(!q.matches_sorted(&[2, 3]));
        assert!(!q.matches_sorted(&[]));
        let empty = KeywordQuery::new([]);
        assert!(empty.matches_sorted(&[]));
        assert!(empty.matches_sorted(&[7]));
    }
}
