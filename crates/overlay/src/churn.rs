//! Session-based churn.
//!
//! Peers in unstructured P2P networks alternate between online *sessions*
//! and offline periods. [`ChurnProcess`] models each node as an
//! independent alternating renewal process with exponentially distributed
//! session and downtime lengths, and yields a merged, time-ordered stream
//! of [`ChurnEvent`]s for the simulator to apply.
//!
//! Churn is the force that ages association rule sets in the paper: when a
//! neighbor departs, rules with that neighbor as antecedent stop matching
//! (coverage decays), and when a serving node departs, rules pointing
//! toward it go stale (success decays).

use crate::graph::{Graph, NodeId};
use arq_simkern::time::{Duration, SimTime};
use arq_simkern::{EventQueue, Rng64};

/// What happened to a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnKind {
    /// The node went offline.
    Leave,
    /// The node came (back) online.
    Join,
    /// The node failed permanently: it departs and never rejoins. Session
    /// churn never produces this kind — fault injection does — but it
    /// lives here so every consumer of churn events handles the full
    /// lifecycle of a peer.
    Crash,
}

/// A single churn transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// When the transition happens.
    pub at: SimTime,
    /// Which node.
    pub node: NodeId,
    /// Leave or join.
    pub kind: ChurnKind,
}

/// Churn parameters.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Mean online-session length, in simulation ticks.
    pub mean_session: Duration,
    /// Mean offline period, in simulation ticks.
    pub mean_downtime: Duration,
    /// Nodes exempt from churn (e.g. the trace-collector node, which must
    /// stay up for the whole measurement like the paper's modified client).
    pub pinned: Vec<NodeId>,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            mean_session: Duration::from_ticks(600_000_000), // 10 min in µs
            mean_downtime: Duration::from_ticks(300_000_000),
            pinned: Vec::new(),
        }
    }
}

/// A [`ChurnConfig`] that would break the exponential session sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnConfigError {
    /// `mean_session` is zero: every session would collapse to the
    /// sampler's 1-tick floor, which is never what a caller meant.
    ZeroMeanSession,
    /// `mean_downtime` is zero: nodes would rejoin instantly forever.
    ZeroMeanDowntime,
}

impl std::fmt::Display for ChurnConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnConfigError::ZeroMeanSession => {
                write!(f, "churn mean_session must be positive (got 0 ticks)")
            }
            ChurnConfigError::ZeroMeanDowntime => {
                write!(f, "churn mean_downtime must be positive (got 0 ticks)")
            }
        }
    }
}

impl std::error::Error for ChurnConfigError {}

impl ChurnConfig {
    /// Checks that both mean durations are usable by the exponential
    /// sampler. (Durations are unsigned, so "negative" inputs from user
    /// flags surface here as zero after parsing.)
    pub fn validate(&self) -> Result<(), ChurnConfigError> {
        if self.mean_session.ticks() == 0 {
            return Err(ChurnConfigError::ZeroMeanSession);
        }
        if self.mean_downtime.ticks() == 0 {
            return Err(ChurnConfigError::ZeroMeanDowntime);
        }
        Ok(())
    }
}

/// Generator of a merged, time-ordered churn-event stream for all nodes.
pub struct ChurnProcess {
    queue: EventQueue<(NodeId, ChurnKind)>,
    cfg: ChurnConfig,
    rng: Rng64,
}

impl ChurnProcess {
    /// Creates a process for `n` nodes, all initially online, scheduling
    /// each unpinned node's first departure.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`ChurnConfig::validate`]; use
    /// [`ChurnProcess::try_new`] to surface the typed error instead.
    pub fn new(n: usize, cfg: ChurnConfig, rng: Rng64) -> Self {
        match Self::try_new(n, cfg, rng) {
            Ok(p) => p,
            Err(e) => panic!("invalid churn config: {e}"),
        }
    }

    /// Like [`ChurnProcess::new`], rejecting degenerate configurations
    /// with a [`ChurnConfigError`] instead of letting the exponential
    /// sampler silently degrade to 1-tick sessions.
    pub fn try_new(n: usize, cfg: ChurnConfig, mut rng: Rng64) -> Result<Self, ChurnConfigError> {
        cfg.validate()?;
        let mut queue = EventQueue::with_capacity(n);
        for i in 0..n {
            let node = NodeId(i as u32);
            if cfg.pinned.contains(&node) {
                continue;
            }
            let dt = rng.exp(cfg.mean_session.ticks() as f64).max(1.0) as u64;
            queue.schedule(SimTime::from_ticks(dt), (node, ChurnKind::Leave));
        }
        Ok(ChurnProcess { queue, cfg, rng })
    }

    /// Returns the next churn event at or before `horizon`, if any,
    /// scheduling the node's following transition.
    pub fn next_before(&mut self, horizon: SimTime) -> Option<ChurnEvent> {
        let at = self.queue.peek_time()?;
        if at > horizon {
            return None;
        }
        let (at, (node, kind)) = self.queue.pop().expect("peeked entry vanished");
        let (mean, next_kind) = match kind {
            ChurnKind::Leave => (self.cfg.mean_downtime, ChurnKind::Join),
            ChurnKind::Join => (self.cfg.mean_session, ChurnKind::Leave),
            // The session process never schedules crashes; a crashed node
            // simply has no follow-up transition.
            ChurnKind::Crash => return Some(ChurnEvent { at, node, kind }),
        };
        let dt = self.rng.exp(mean.ticks() as f64).max(1.0) as u64;
        self.queue.schedule(
            at.saturating_add(Duration::from_ticks(dt)),
            (node, next_kind),
        );
        Some(ChurnEvent { at, node, kind })
    }

    /// Time of the next pending transition.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }
}

/// Wires a (re)joining node to `target_degree` uniformly random live
/// peers. Returns the chosen peers. The uniform choice — rather than
/// reconnecting to former neighbors — is what makes post-rejoin routing
/// state stale, matching observed Gnutella behaviour.
pub fn rewire_join(
    g: &mut Graph,
    node: NodeId,
    target_degree: usize,
    rng: &mut Rng64,
) -> Vec<NodeId> {
    let candidates: Vec<NodeId> = g.live_nodes().filter(|&m| m != node).collect();
    if candidates.is_empty() {
        return Vec::new();
    }
    let k = target_degree.min(candidates.len());
    let picks = rng.sample_indices(candidates.len(), k);
    let mut chosen = Vec::with_capacity(k);
    for idx in picks {
        let peer = candidates[idx];
        if g.add_edge(node, peer) {
            chosen.push(peer);
        }
    }
    chosen
}

/// Fraction of time a node is expected to be online under the config:
/// `session / (session + downtime)`.
pub fn expected_availability(cfg: &ChurnConfig) -> f64 {
    let s = cfg.mean_session.ticks() as f64;
    let d = cfg.mean_downtime.ticks() as f64;
    s / (s + d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(session: u64, down: u64) -> ChurnConfig {
        ChurnConfig {
            mean_session: Duration::from_ticks(session),
            mean_downtime: Duration::from_ticks(down),
            pinned: Vec::new(),
        }
    }

    #[test]
    fn events_are_time_ordered_and_alternate() {
        let mut p = ChurnProcess::new(20, cfg(1000, 500), Rng64::seed_from(1));
        let mut last = SimTime::ZERO;
        let mut state = [true; 20]; // all start online
        for _ in 0..500 {
            let ev = p.next_before(SimTime::MAX).unwrap();
            assert!(ev.at >= last, "events out of order");
            last = ev.at;
            let up = &mut state[ev.node.index()];
            match ev.kind {
                ChurnKind::Leave => {
                    assert!(*up, "leave while already offline");
                    *up = false;
                }
                ChurnKind::Join => {
                    assert!(!*up, "join while already online");
                    *up = true;
                }
                ChurnKind::Crash => panic!("alternating process never crashes"),
            }
        }
    }

    #[test]
    fn horizon_bounds_delivery() {
        let mut p = ChurnProcess::new(5, cfg(100, 100), Rng64::seed_from(2));
        let horizon = SimTime::from_ticks(10);
        while let Some(ev) = p.next_before(horizon) {
            assert!(ev.at <= horizon);
        }
        // Future events still pending.
        assert!(p.peek_time().unwrap() > horizon);
    }

    #[test]
    fn pinned_nodes_never_churn() {
        let mut c = cfg(10, 10);
        c.pinned = vec![NodeId(0)];
        let mut p = ChurnProcess::new(3, c, Rng64::seed_from(3));
        for _ in 0..200 {
            let ev = p.next_before(SimTime::MAX).unwrap();
            assert_ne!(ev.node, NodeId(0), "pinned node churned");
        }
    }

    #[test]
    fn zero_means_are_rejected_with_typed_errors() {
        assert_eq!(
            cfg(0, 100).validate(),
            Err(ChurnConfigError::ZeroMeanSession)
        );
        assert_eq!(
            cfg(100, 0).validate(),
            Err(ChurnConfigError::ZeroMeanDowntime)
        );
        assert_eq!(cfg(100, 100).validate(), Ok(()));
        assert!(ChurnProcess::try_new(5, cfg(0, 100), Rng64::seed_from(1)).is_err());
        let msg = ChurnConfigError::ZeroMeanDowntime.to_string();
        assert!(msg.contains("mean_downtime"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "invalid churn config")]
    fn new_panics_on_degenerate_config() {
        ChurnProcess::new(5, cfg(100, 0), Rng64::seed_from(1));
    }

    #[test]
    fn availability_formula() {
        assert!((expected_availability(&cfg(600, 300)) - 2.0 / 3.0).abs() < 1e-12);
        assert!((expected_availability(&cfg(100, 100)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn long_run_availability_matches_expectation() {
        // Simulate a long horizon and measure the fraction of time node 0
        // spends online; it should approach session/(session+down).
        let mut p = ChurnProcess::new(1, cfg(1000, 500), Rng64::seed_from(7));
        let horizon = SimTime::from_ticks(3_000_000);
        let mut online_since = Some(SimTime::ZERO);
        let mut online_total = 0u64;
        while let Some(ev) = p.next_before(horizon) {
            match ev.kind {
                ChurnKind::Leave => {
                    online_total += ev.at.ticks() - online_since.take().unwrap().ticks();
                }
                ChurnKind::Join => {
                    online_since = Some(ev.at);
                }
                ChurnKind::Crash => panic!("alternating process never crashes"),
            }
        }
        if let Some(s) = online_since {
            online_total += horizon.ticks() - s.ticks();
        }
        let frac = online_total as f64 / horizon.ticks() as f64;
        assert!((frac - 2.0 / 3.0).abs() < 0.05, "availability {frac}");
    }

    #[test]
    fn rewire_join_attaches_to_live_peers() {
        let mut g = Graph::new(10);
        for i in 1..10 {
            g.add_edge(NodeId(0), NodeId(i));
        }
        g.depart(NodeId(5));
        g.depart(NodeId(9));
        let mut rng = Rng64::seed_from(4);
        g.rejoin(NodeId(9));
        let peers = rewire_join(&mut g, NodeId(9), 3, &mut rng);
        assert_eq!(peers.len(), 3);
        assert!(peers.iter().all(|&p| g.is_alive(p) && p != NodeId(9)));
        assert!(!peers.contains(&NodeId(5)), "attached to departed node");
        g.check_invariants().unwrap();
    }

    #[test]
    fn rewire_join_with_no_candidates() {
        let mut g = Graph::new(1);
        let mut rng = Rng64::seed_from(5);
        assert!(rewire_join(&mut g, NodeId(0), 3, &mut rng).is_empty());
    }
}
