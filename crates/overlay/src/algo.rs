//! Graph algorithms over live nodes.
//!
//! All traversals respect liveness: departed nodes are invisible, exactly
//! as they are to protocol messages.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// BFS hop distances from `src` over live nodes. Unreachable (or departed)
/// nodes get `u32::MAX`.
pub fn bfs_distances(g: &Graph, src: NodeId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.len()];
    if !g.is_alive(src) {
        return dist;
    }
    let mut q = VecDeque::new();
    dist[src.index()] = 0;
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        let du = dist[u.index()];
        for v in g.live_neighbors(u) {
            if dist[v.index()] == u32::MAX {
                dist[v.index()] = du + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

/// Live nodes reachable from `src` within `ttl` hops (inclusive),
/// excluding `src` itself. This is exactly the set a TTL-limited flood
/// can cover.
pub fn reachable_within(g: &Graph, src: NodeId, ttl: u32) -> Vec<NodeId> {
    let dist = bfs_distances(g, src);
    g.live_nodes()
        .filter(|n| *n != src && dist[n.index()] <= ttl)
        .collect()
}

/// Connected components over live nodes, each sorted by id, ordered by
/// smallest member.
pub fn components(g: &Graph) -> Vec<Vec<NodeId>> {
    let mut seen = vec![false; g.len()];
    let mut comps = Vec::new();
    for start in g.live_nodes() {
        if seen[start.index()] {
            continue;
        }
        let mut comp = Vec::new();
        let mut q = VecDeque::new();
        seen[start.index()] = true;
        q.push_back(start);
        while let Some(u) = q.pop_front() {
            comp.push(u);
            for v in g.live_neighbors(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    q.push_back(v);
                }
            }
        }
        comp.sort_unstable();
        comps.push(comp);
    }
    comps
}

/// Whether all live nodes form a single connected component.
pub fn is_connected(g: &Graph) -> bool {
    components(g).len() <= 1
}

/// Estimates the live-graph diameter by running BFS from `samples` seed
/// nodes and taking the largest finite distance observed. Exact when
/// `samples >= live node count`.
pub fn estimate_diameter(g: &Graph, samples: usize) -> u32 {
    let live: Vec<NodeId> = g.live_nodes().collect();
    let mut best = 0;
    for &src in live.iter().take(samples.max(1)) {
        let dist = bfs_distances(g, src);
        for n in &live {
            let d = dist[n.index()];
            if d != u32::MAX {
                best = best.max(d);
            }
        }
    }
    best
}

/// Mean shortest-path length between live node pairs, sampled from
/// `samples` BFS sources. Unreachable pairs are skipped.
pub fn mean_path_length(g: &Graph, samples: usize) -> f64 {
    let live: Vec<NodeId> = g.live_nodes().collect();
    let mut total = 0u64;
    let mut pairs = 0u64;
    for &src in live.iter().take(samples.max(1)) {
        let dist = bfs_distances(g, src);
        for n in &live {
            let d = dist[n.index()];
            if *n != src && d != u32::MAX {
                total += d as u64;
                pairs += 1;
            }
        }
    }
    if pairs == 0 {
        0.0
    } else {
        total as f64 / pairs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{clique, ring};

    #[test]
    fn bfs_on_ring() {
        let g = ring(8);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4, 3, 2, 1]);
    }

    #[test]
    fn bfs_respects_departures() {
        let mut g = ring(6);
        g.depart(NodeId(3));
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[3], u32::MAX);
        // Path to node 4 must now go the long way: 0-5-4.
        assert_eq!(d[4], 2);
        assert_eq!(d[2], 2);
    }

    #[test]
    fn bfs_from_departed_source_reaches_nothing() {
        let mut g = ring(4);
        g.depart(NodeId(0));
        let d = bfs_distances(&g, NodeId(0));
        assert!(d.iter().all(|&x| x == u32::MAX));
    }

    #[test]
    fn reachable_within_ttl() {
        let g = ring(10);
        let r2 = reachable_within(&g, NodeId(0), 2);
        assert_eq!(r2, vec![NodeId(1), NodeId(2), NodeId(8), NodeId(9)]);
        let all = reachable_within(&g, NodeId(0), 5);
        assert_eq!(all.len(), 9);
    }

    #[test]
    fn components_split_and_merge() {
        let mut g = ring(6);
        // Cut the ring twice -> still one component? No: a ring minus two
        // edges is two paths.
        g.remove_edge(NodeId(0), NodeId(1));
        g.remove_edge(NodeId(3), NodeId(4));
        let comps = components(&g);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![NodeId(0), NodeId(4), NodeId(5)]);
        assert_eq!(comps[1], vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert!(!is_connected(&g));
        g.add_edge(NodeId(0), NodeId(1));
        assert!(is_connected(&g));
    }

    #[test]
    fn diameter_and_path_length() {
        let g = ring(8);
        assert_eq!(estimate_diameter(&g, 8), 4);
        let c = clique(5);
        assert_eq!(estimate_diameter(&c, 5), 1);
        assert!((mean_path_length(&c, 5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = Graph::new(0);
        assert!(is_connected(&g));
        assert_eq!(estimate_diameter(&g, 3), 0);
        assert_eq!(mean_path_length(&g, 3), 0.0);
    }
}

/// Local clustering coefficient of `n`: the fraction of its live
/// neighbor pairs that are themselves connected. 0 for degree < 2.
pub fn clustering_coefficient(g: &Graph, n: NodeId) -> f64 {
    let neighbors: Vec<NodeId> = g.live_neighbors(n).collect();
    if neighbors.len() < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    let mut total = 0usize;
    for (i, &a) in neighbors.iter().enumerate() {
        for &b in &neighbors[i + 1..] {
            total += 1;
            if g.has_edge(a, b) {
                closed += 1;
            }
        }
    }
    closed as f64 / total as f64
}

/// Mean local clustering coefficient over live nodes (Watts–Strogatz's
/// C). Small-world graphs score far above same-density random graphs.
pub fn mean_clustering(g: &Graph) -> f64 {
    let live: Vec<NodeId> = g.live_nodes().collect();
    if live.is_empty() {
        return 0.0;
    }
    live.iter()
        .map(|&n| clustering_coefficient(g, n))
        .sum::<f64>()
        / live.len() as f64
}

/// Degree assortativity (Pearson correlation of degrees across live
/// edges). Negative for hub-and-spoke overlays like Barabási–Albert and
/// measured Gnutella snapshots; ~0 for Erdős–Rényi. Returns 0 when the
/// graph has no edges or uniform degrees.
pub fn degree_assortativity(g: &Graph) -> f64 {
    let mut xs: Vec<f64> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    for a in g.live_nodes() {
        for b in g.live_neighbors(a) {
            // Count each edge in both directions, as the standard
            // definition does.
            xs.push(g.degree(a) as f64);
            ys.push(g.degree(b) as f64);
        }
    }
    if xs.is_empty() {
        return 0.0;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(&ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod structure_tests {
    use super::*;
    use crate::generate::{barabasi_albert, clique, ring, watts_strogatz};
    use arq_simkern::Rng64;

    #[test]
    fn clique_clusters_perfectly() {
        let g = clique(6);
        assert!((clustering_coefficient(&g, NodeId(0)) - 1.0).abs() < 1e-12);
        assert!((mean_clustering(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ring_has_no_triangles() {
        let g = ring(8);
        assert_eq!(mean_clustering(&g), 0.0);
        assert_eq!(clustering_coefficient(&g, NodeId(0)), 0.0);
    }

    #[test]
    fn small_world_clusters_more_than_random_rewiring() {
        let mut rng = Rng64::seed_from(3);
        let lattice = watts_strogatz(200, 3, 0.0, &mut rng);
        let rewired = watts_strogatz(200, 3, 1.0, &mut rng);
        let c_lattice = mean_clustering(&lattice);
        let c_rewired = mean_clustering(&rewired);
        assert!(
            c_lattice > 2.0 * c_rewired,
            "lattice {c_lattice} vs rewired {c_rewired}"
        );
        // The k=3 ring lattice's exact C is 0.6.
        assert!((c_lattice - 0.6).abs() < 1e-9);
    }

    #[test]
    fn barabasi_albert_is_disassortative() {
        let mut rng = Rng64::seed_from(4);
        let g = barabasi_albert(600, 3, &mut rng);
        let r = degree_assortativity(&g);
        assert!(r < 0.0, "BA should be disassortative, got {r}");
        assert!(r > -1.0);
    }

    #[test]
    fn regular_graphs_have_zero_assortativity() {
        // Uniform degree -> zero variance -> defined as 0.
        assert_eq!(degree_assortativity(&ring(10)), 0.0);
        assert_eq!(degree_assortativity(&clique(5)), 0.0);
        assert_eq!(degree_assortativity(&Graph::new(3)), 0.0);
    }

    #[test]
    fn clustering_ignores_departed_neighbors() {
        let mut g = clique(4);
        assert!((clustering_coefficient(&g, NodeId(0)) - 1.0).abs() < 1e-12);
        g.depart(NodeId(3));
        // Remaining neighborhood of 0 is {1, 2}, still connected.
        assert!((clustering_coefficient(&g, NodeId(0)) - 1.0).abs() < 1e-12);
        g.remove_edge(NodeId(1), NodeId(2));
        assert_eq!(clustering_coefficient(&g, NodeId(0)), 0.0);
    }
}
