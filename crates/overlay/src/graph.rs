//! Mutable undirected overlay graph.
//!
//! Nodes are dense integer ids. Each node carries a liveness flag: a peer
//! that leaves the network stays in the id space (its identity — the
//! paper's "IP address" — persists) but takes no further part in routing
//! until it rejoins. Adjacency is stored as sorted `Vec<NodeId>` per node:
//! overlays are sparse (Gnutella averages 3–10 neighbors), so linear scans
//! beat hashing while keeping iteration order deterministic.

use std::fmt;

/// Identifier of an overlay node. Dense, stable across leave/rejoin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An undirected overlay graph with per-node liveness.
#[derive(Debug, Clone)]
pub struct Graph {
    adj: Vec<Vec<NodeId>>,
    alive: Vec<bool>,
    edges: usize,
}

impl Graph {
    /// Creates a graph with `n` isolated, live nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            alive: vec![true; n],
            edges: 0,
        }
    }

    /// Total number of node ids (live and departed).
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no nodes at all.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of undirected edges currently present.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Number of live nodes.
    pub fn live_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adj.len() as u32).map(NodeId)
    }

    /// Iterator over live node ids.
    pub fn live_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(move |n| self.is_alive(*n))
    }

    /// Whether `n` is currently live.
    #[inline]
    pub fn is_alive(&self, n: NodeId) -> bool {
        self.alive[n.index()]
    }

    /// Adds a fresh isolated live node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.adj.len() as u32);
        self.adj.push(Vec::new());
        self.alive.push(true);
        id
    }

    /// Adds the undirected edge `{a, b}`. Returns `false` (and does
    /// nothing) if the edge already exists or `a == b`.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        if a == b || self.has_edge(a, b) {
            return false;
        }
        let (ai, bi) = (a.index(), b.index());
        assert!(
            ai < self.adj.len() && bi < self.adj.len(),
            "edge endpoint out of range"
        );
        insert_sorted(&mut self.adj[ai], b);
        insert_sorted(&mut self.adj[bi], a);
        self.edges += 1;
        true
    }

    /// Removes the undirected edge `{a, b}` if present. Returns whether an
    /// edge was removed.
    pub fn remove_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        let removed = remove_sorted(&mut self.adj[a.index()], b);
        if removed {
            remove_sorted(&mut self.adj[b.index()], a);
            self.edges -= 1;
        }
        removed
    }

    /// Whether the edge `{a, b}` exists.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.adj[a.index()].binary_search(&b).is_ok()
    }

    /// All neighbors of `n` (live or not — callers filter by liveness when
    /// routing).
    #[inline]
    pub fn neighbors(&self, n: NodeId) -> &[NodeId] {
        &self.adj[n.index()]
    }

    /// Neighbors of `n` that are currently live.
    pub fn live_neighbors<'a>(&'a self, n: NodeId) -> impl Iterator<Item = NodeId> + 'a {
        self.adj[n.index()]
            .iter()
            .copied()
            .filter(move |m| self.is_alive(*m))
    }

    /// Degree of `n` counting all incident edges.
    pub fn degree(&self, n: NodeId) -> usize {
        self.adj[n.index()].len()
    }

    /// Marks `n` as departed and removes all its incident edges, returning
    /// the former neighbor list. Its id remains valid.
    pub fn depart(&mut self, n: NodeId) -> Vec<NodeId> {
        self.alive[n.index()] = false;
        let former = std::mem::take(&mut self.adj[n.index()]);
        for &m in &former {
            remove_sorted(&mut self.adj[m.index()], n);
        }
        self.edges -= former.len();
        former
    }

    /// Marks `n` as live again (the caller wires its new edges).
    pub fn rejoin(&mut self, n: NodeId) {
        self.alive[n.index()] = true;
    }

    /// Degree histogram over live nodes: `result[d]` = number of live
    /// nodes with degree `d`.
    pub fn degree_distribution(&self) -> Vec<usize> {
        let max_deg = self.live_nodes().map(|n| self.degree(n)).max().unwrap_or(0);
        let mut hist = vec![0usize; max_deg + 1];
        for n in self.live_nodes() {
            hist[self.degree(n)] += 1;
        }
        hist
    }

    /// Mean degree over live nodes.
    pub fn mean_degree(&self) -> f64 {
        let live = self.live_count();
        if live == 0 {
            return 0.0;
        }
        let total: usize = self.live_nodes().map(|n| self.degree(n)).sum();
        total as f64 / live as f64
    }

    /// Validates internal invariants (symmetry, sortedness, no self loops,
    /// edge count). Used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut counted = 0usize;
        for n in self.nodes() {
            let adj = &self.adj[n.index()];
            if adj.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("adjacency of {n} not sorted/deduped"));
            }
            for &m in adj {
                if m == n {
                    return Err(format!("self loop at {n}"));
                }
                if self.adj[m.index()].binary_search(&n).is_err() {
                    return Err(format!("asymmetric edge {n}-{m}"));
                }
            }
            counted += adj.len();
        }
        if counted != self.edges * 2 {
            return Err(format!(
                "edge count mismatch: counted {} half-edges, recorded {} edges",
                counted, self.edges
            ));
        }
        Ok(())
    }
}

fn insert_sorted(v: &mut Vec<NodeId>, x: NodeId) {
    if let Err(pos) = v.binary_search(&x) {
        v.insert(pos, x);
    }
}

fn remove_sorted(v: &mut Vec<NodeId>, x: NodeId) -> bool {
    match v.binary_search(&x) {
        Ok(pos) => {
            v.remove(pos);
            true
        }
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_remove_edges() {
        let mut g = Graph::new(4);
        assert!(g.add_edge(NodeId(0), NodeId(1)));
        assert!(g.add_edge(NodeId(1), NodeId(2)));
        assert!(!g.add_edge(NodeId(0), NodeId(1)), "duplicate edge accepted");
        assert!(!g.add_edge(NodeId(2), NodeId(2)), "self loop accepted");
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(NodeId(1), NodeId(0)));
        assert!(g.remove_edge(NodeId(0), NodeId(1)));
        assert!(!g.remove_edge(NodeId(0), NodeId(1)));
        assert_eq!(g.edge_count(), 1);
        g.check_invariants().unwrap();
    }

    #[test]
    fn neighbors_sorted_and_symmetric() {
        let mut g = Graph::new(5);
        g.add_edge(NodeId(2), NodeId(4));
        g.add_edge(NodeId(2), NodeId(0));
        g.add_edge(NodeId(2), NodeId(3));
        assert_eq!(g.neighbors(NodeId(2)), &[NodeId(0), NodeId(3), NodeId(4)]);
        assert_eq!(g.degree(NodeId(2)), 3);
        assert_eq!(g.neighbors(NodeId(4)), &[NodeId(2)]);
        g.check_invariants().unwrap();
    }

    #[test]
    fn depart_and_rejoin() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(1), NodeId(2));
        let former = g.depart(NodeId(0));
        assert_eq!(former, vec![NodeId(1), NodeId(2)]);
        assert!(!g.is_alive(NodeId(0)));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.live_count(), 3);
        assert_eq!(g.degree(NodeId(0)), 0);
        g.check_invariants().unwrap();

        g.rejoin(NodeId(0));
        assert!(g.is_alive(NodeId(0)));
        g.add_edge(NodeId(0), NodeId(3));
        assert_eq!(g.live_count(), 4);
        g.check_invariants().unwrap();
    }

    #[test]
    fn live_neighbors_filter_departed() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(2));
        g.depart(NodeId(1));
        // Departed node's edges are removed entirely.
        let live: Vec<NodeId> = g.live_neighbors(NodeId(0)).collect();
        assert_eq!(live, vec![NodeId(2)]);
    }

    #[test]
    fn add_node_extends_id_space() {
        let mut g = Graph::new(1);
        let n = g.add_node();
        assert_eq!(n, NodeId(1));
        assert_eq!(g.len(), 2);
        g.add_edge(NodeId(0), n);
        g.check_invariants().unwrap();
    }

    #[test]
    fn degree_stats() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(0), NodeId(3));
        let hist = g.degree_distribution();
        assert_eq!(hist, vec![0, 3, 0, 1]);
        assert!((g.mean_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_stats() {
        let g = Graph::new(0);
        assert!(g.is_empty());
        assert_eq!(g.mean_degree(), 0.0);
        assert_eq!(g.degree_distribution(), vec![0]);
        g.check_invariants().unwrap();
    }
}
