//! # arq-overlay — unstructured overlay-network substrate
//!
//! Models the *topology* half of an unstructured P2P system:
//!
//! * [`graph::Graph`] — a mutable undirected graph over dense
//!   [`graph::NodeId`]s with a liveness bit per node (departed peers keep
//!   their id so traces remain joinable, exactly as IP addresses persist in
//!   the paper's Gnutella trace);
//! * [`generate`] — topology generators: Erdős–Rényi, Barabási–Albert
//!   preferential attachment (the standard model for Gnutella-like
//!   power-law overlays), Watts–Strogatz small-world, rings and cliques;
//! * [`churn`] — a session-based churn process producing join/leave events
//!   with configurable mean session and downtime lengths; rejoining peers
//!   rewire to fresh neighbors, which is the mechanism that ages rule sets
//!   in the paper's evaluation;
//! * [`algo`] — BFS distances, reachability within a TTL horizon,
//!   connected components and degree statistics used by tests and the
//!   experiment harness.

#![warn(missing_docs)]

pub mod algo;
pub mod churn;
pub mod generate;
pub mod graph;

pub use churn::{ChurnConfig, ChurnConfigError, ChurnEvent, ChurnProcess};
pub use graph::{Graph, NodeId};
