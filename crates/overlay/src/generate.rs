//! Topology generators.
//!
//! Unstructured P2P overlays are commonly modelled as random graphs. The
//! generators here are deterministic given an [`Rng64`] stream:
//!
//! * [`erdos_renyi`] — G(n, p) uniform random graph;
//! * [`barabasi_albert`] — preferential attachment, yielding the power-law
//!   degree distribution measured in real Gnutella snapshots; the default
//!   topology for the workspace's experiments;
//! * [`watts_strogatz`] — ring lattice with rewiring (small-world);
//! * [`ring`], [`clique`] — degenerate topologies for tests;
//! * [`ensure_connected`] — patches any generator's output into a single
//!   connected component by bridging components, so floods can reach every
//!   node in baseline comparisons.

use crate::graph::{Graph, NodeId};
use arq_simkern::Rng64;

/// Erdős–Rényi G(n, p): each of the n(n−1)/2 possible edges is present
/// independently with probability `p`.
pub fn erdos_renyi(n: usize, p: f64, rng: &mut Rng64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p out of range");
    let mut g = Graph::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.chance(p) {
                g.add_edge(NodeId(a as u32), NodeId(b as u32));
            }
        }
    }
    g
}

/// Barabási–Albert preferential attachment.
///
/// Starts from a small seed clique of `m` nodes; each subsequent node
/// attaches to `m` existing nodes chosen with probability proportional to
/// their current degree (via the standard repeated-endpoint trick).
pub fn barabasi_albert(n: usize, m: usize, rng: &mut Rng64) -> Graph {
    assert!(m >= 1, "attachment count must be >= 1");
    assert!(n > m, "need more nodes than the seed clique");
    let mut g = Graph::new(n);
    // Seed: clique over the first m+1 nodes so every seed node has degree m.
    for a in 0..=m {
        for b in (a + 1)..=m {
            g.add_edge(NodeId(a as u32), NodeId(b as u32));
        }
    }
    // endpoint pool: each node appears once per unit of degree.
    let mut pool: Vec<NodeId> = Vec::with_capacity(2 * n * m);
    for a in 0..=m {
        for _ in 0..g.degree(NodeId(a as u32)) {
            pool.push(NodeId(a as u32));
        }
    }
    for v in (m + 1)..n {
        let v = NodeId(v as u32);
        let mut targets: Vec<NodeId> = Vec::with_capacity(m);
        // Rejection-sample m distinct targets from the degree-weighted pool.
        let mut guard = 0usize;
        while targets.len() < m {
            let t = *rng.pick(&pool);
            if t != v && !targets.contains(&t) {
                targets.push(t);
            }
            guard += 1;
            assert!(
                guard < 100_000,
                "BA sampling failed to find distinct targets"
            );
        }
        for t in targets {
            g.add_edge(v, t);
            pool.push(v);
            pool.push(t);
        }
    }
    g
}

/// Watts–Strogatz small-world graph: ring lattice with `k` neighbors per
/// side, each edge rewired with probability `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, rng: &mut Rng64) -> Graph {
    assert!(k >= 1 && 2 * k < n, "lattice degree too large for n");
    assert!((0.0..=1.0).contains(&beta));
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in 1..=k {
            g.add_edge(NodeId(i as u32), NodeId(((i + j) % n) as u32));
        }
    }
    // Rewire: for each lattice edge (i, i+j), with prob beta replace the
    // far endpoint with a uniform random node.
    for i in 0..n {
        for j in 1..=k {
            if rng.chance(beta) {
                let old = NodeId(((i + j) % n) as u32);
                let a = NodeId(i as u32);
                // Find a new endpoint avoiding self loops and duplicates.
                let mut guard = 0;
                loop {
                    let b = NodeId(rng.index(n) as u32);
                    if b != a && !g.has_edge(a, b) {
                        g.remove_edge(a, old);
                        g.add_edge(a, b);
                        break;
                    }
                    guard += 1;
                    if guard > 1000 {
                        break; // dense corner case: keep the lattice edge
                    }
                }
            }
        }
    }
    g
}

/// A simple cycle over `n` nodes.
pub fn ring(n: usize) -> Graph {
    let mut g = Graph::new(n);
    if n >= 2 {
        for i in 0..n {
            g.add_edge(NodeId(i as u32), NodeId(((i + 1) % n) as u32));
        }
    }
    g
}

/// The complete graph over `n` nodes.
pub fn clique(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            g.add_edge(NodeId(a as u32), NodeId(b as u32));
        }
    }
    g
}

/// Connects all live components of `g` by adding one bridge edge between a
/// representative of each component and the first component. Returns the
/// number of bridges added.
pub fn ensure_connected(g: &mut Graph, rng: &mut Rng64) -> usize {
    let comps = crate::algo::components(g);
    if comps.len() <= 1 {
        return 0;
    }
    let mut bridges = 0;
    let anchor_comp = &comps[0];
    for comp in &comps[1..] {
        let a = *rng.pick(anchor_comp);
        let b = *rng.pick(comp);
        if g.add_edge(a, b) {
            bridges += 1;
        }
    }
    bridges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::components;

    fn rng() -> Rng64 {
        Rng64::seed_from(0xDEAD_BEEF)
    }

    #[test]
    fn erdos_renyi_edge_density() {
        let n = 200;
        let p = 0.05;
        let g = erdos_renyi(n, p, &mut rng());
        g.check_invariants().unwrap();
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.edge_count() as f64;
        assert!(
            (got - expected).abs() < expected * 0.25,
            "edges {got} vs expected {expected}"
        );
    }

    #[test]
    fn erdos_renyi_extremes() {
        assert_eq!(erdos_renyi(10, 0.0, &mut rng()).edge_count(), 0);
        assert_eq!(erdos_renyi(10, 1.0, &mut rng()).edge_count(), 45);
    }

    #[test]
    fn barabasi_albert_degrees() {
        let n = 500;
        let m = 3;
        let g = barabasi_albert(n, m, &mut rng());
        g.check_invariants().unwrap();
        // Every non-seed node contributed exactly m edges.
        assert_eq!(g.edge_count(), m * (m + 1) / 2 + (n - m - 1) * m);
        // Minimum degree is m; maximum is much larger (hubs exist).
        let min_deg = g.nodes().map(|v| g.degree(v)).min().unwrap();
        let max_deg = g.nodes().map(|v| g.degree(v)).max().unwrap();
        assert_eq!(min_deg, m);
        assert!(max_deg > 4 * m, "no hubs formed: max degree {max_deg}");
        // BA graphs are connected by construction.
        assert_eq!(components(&g).len(), 1);
    }

    #[test]
    fn watts_strogatz_preserves_edge_count_without_rewiring() {
        let g = watts_strogatz(50, 2, 0.0, &mut rng());
        g.check_invariants().unwrap();
        assert_eq!(g.edge_count(), 100);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
    }

    #[test]
    fn watts_strogatz_rewires_some_edges() {
        let g = watts_strogatz(100, 2, 0.5, &mut rng());
        g.check_invariants().unwrap();
        // Edge count conserved (rewiring replaces, never deletes).
        assert_eq!(g.edge_count(), 200);
        // Some long-range edges must now exist.
        let long_range = g
            .nodes()
            .flat_map(|a| g.neighbors(a).iter().map(move |&b| (a, b)))
            .filter(|&(a, b)| {
                let d = (a.0 as i64 - b.0 as i64).rem_euclid(100);
                let ring_dist = d.min(100 - d);
                ring_dist > 2
            })
            .count();
        assert!(long_range > 0, "rewiring produced no long-range edges");
    }

    #[test]
    fn ring_and_clique() {
        let r = ring(6);
        assert_eq!(r.edge_count(), 6);
        assert!(r.nodes().all(|v| r.degree(v) == 2));
        let c = clique(5);
        assert_eq!(c.edge_count(), 10);
        assert!(c.nodes().all(|v| c.degree(v) == 4));
        assert_eq!(ring(1).edge_count(), 0);
    }

    #[test]
    fn ensure_connected_bridges_components() {
        let mut g = Graph::new(9);
        // three triangles
        for base in [0u32, 3, 6] {
            g.add_edge(NodeId(base), NodeId(base + 1));
            g.add_edge(NodeId(base + 1), NodeId(base + 2));
            g.add_edge(NodeId(base), NodeId(base + 2));
        }
        assert_eq!(components(&g).len(), 3);
        let added = ensure_connected(&mut g, &mut rng());
        assert_eq!(added, 2);
        assert_eq!(components(&g).len(), 1);
        // Idempotent.
        assert_eq!(ensure_connected(&mut g, &mut rng()), 0);
    }
}

/// Two-tier superpeer topology (Yang & Garcia-Molina, ICDE'03): the first
/// `n_super` node ids form a well-connected superpeer core (each core
/// node links to `super_degree` random other core nodes, patched to a
/// single component), and every remaining node is a *leaf* attached to
/// exactly one uniformly chosen superpeer.
///
/// Returns the graph plus the leaf → superpeer assignment
/// (`assignment[i]` is meaningful only for `i >= n_super`; superpeer
/// entries map to themselves).
pub fn superpeer(
    n: usize,
    n_super: usize,
    super_degree: usize,
    rng: &mut Rng64,
) -> (Graph, Vec<NodeId>) {
    assert!(
        n_super >= 2 && n_super < n,
        "need at least 2 superpeers and some leaves"
    );
    assert!(
        super_degree >= 1 && super_degree < n_super,
        "bad core degree"
    );
    // Build the core in its own graph so connectivity patching cannot
    // accidentally bridge to still-isolated leaf ids.
    let mut core = Graph::new(n_super);
    for s in 0..n_super {
        let me = NodeId(s as u32);
        let mut linked = 0;
        let mut guard = 0;
        while linked < super_degree && guard < 10_000 {
            let other = NodeId(rng.index(n_super) as u32);
            if other != me && core.add_edge(me, other) {
                linked += 1;
            }
            guard += 1;
        }
    }
    ensure_connected(&mut core, rng);
    let mut g = Graph::new(n);
    for s in core.nodes() {
        for &t in core.neighbors(s) {
            g.add_edge(s, t);
        }
    }
    // Leaves.
    let mut assignment: Vec<NodeId> = (0..n_super as u32).map(NodeId).collect();
    for leaf in n_super..n {
        let sp = NodeId(rng.index(n_super) as u32);
        g.add_edge(NodeId(leaf as u32), sp);
        assignment.push(sp);
    }
    (g, assignment)
}

#[cfg(test)]
mod superpeer_tests {
    use super::*;
    use crate::algo::is_connected;

    #[test]
    fn two_tier_structure() {
        let mut rng = Rng64::seed_from(11);
        let (g, assignment) = superpeer(100, 10, 3, &mut rng);
        g.check_invariants().unwrap();
        assert!(is_connected(&g));
        assert_eq!(assignment.len(), 100);
        // Every leaf has exactly one edge, to its assigned superpeer.
        for leaf in 10..100u32 {
            assert_eq!(g.degree(NodeId(leaf)), 1);
            assert_eq!(g.neighbors(NodeId(leaf)), &[assignment[leaf as usize]]);
            assert!(assignment[leaf as usize].0 < 10, "leaf assigned to a leaf");
        }
        // Superpeers map to themselves and are interconnected.
        for s in 0..10u32 {
            assert_eq!(assignment[s as usize], NodeId(s));
            assert!(g.degree(NodeId(s)) >= 3);
        }
    }

    #[test]
    #[should_panic(expected = "superpeers")]
    fn rejects_degenerate_config() {
        superpeer(10, 10, 2, &mut Rng64::seed_from(1));
    }
}
