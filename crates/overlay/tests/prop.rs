// Property tests require the external `proptest` crate; the feature is
// default-off so offline builds skip this file entirely.
#![cfg(feature = "proptest")]

//! Property-based tests for the overlay substrate.

use arq_overlay::algo::{bfs_distances, components, is_connected};
use arq_overlay::{generate, Graph, NodeId};
use arq_simkern::Rng64;
use proptest::prelude::*;

fn arbitrary_graph(n: usize, edges: &[(u32, u32)]) -> Graph {
    let mut g = Graph::new(n);
    for &(a, b) in edges {
        let (a, b) = (a as usize % n, b as usize % n);
        if a != b {
            g.add_edge(NodeId(a as u32), NodeId(b as u32));
        }
    }
    g
}

proptest! {
    /// Random edge insertions/removals never violate graph invariants.
    #[test]
    fn graph_invariants_under_random_ops(
        n in 2usize..40,
        ops in proptest::collection::vec((any::<u32>(), any::<u32>(), any::<bool>()), 0..200),
    ) {
        let mut g = Graph::new(n);
        for (a, b, add) in ops {
            let a = NodeId(a % n as u32);
            let b = NodeId(b % n as u32);
            if add {
                g.add_edge(a, b);
            } else {
                g.remove_edge(a, b);
            }
        }
        prop_assert!(g.check_invariants().is_ok());
    }

    /// BFS distances satisfy the triangle inequality along edges:
    /// |d(u) − d(v)| ≤ 1 for every live edge {u, v} reachable from src.
    #[test]
    fn bfs_distances_are_lipschitz(
        n in 2usize..30,
        edges in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..150),
        src in any::<u32>(),
    ) {
        let g = arbitrary_graph(n, &edges);
        let src = NodeId(src % n as u32);
        let d = bfs_distances(&g, src);
        prop_assert_eq!(d[src.index()], 0);
        for u in g.nodes() {
            for &v in g.neighbors(u) {
                let (du, dv) = (d[u.index()], d[v.index()]);
                if du != u32::MAX || dv != u32::MAX {
                    prop_assert!(du != u32::MAX && dv != u32::MAX, "one endpoint unreachable");
                    prop_assert!(du.abs_diff(dv) <= 1, "edge {u}-{v}: {du} vs {dv}");
                }
            }
        }
    }

    /// Components partition the live nodes.
    #[test]
    fn components_partition_live_nodes(
        n in 1usize..30,
        edges in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..100),
        departures in proptest::collection::vec(any::<u32>(), 0..10),
    ) {
        let mut g = arbitrary_graph(n, &edges);
        for d in departures {
            g.depart(NodeId(d % n as u32));
        }
        let comps = components(&g);
        let mut seen = std::collections::HashSet::new();
        for comp in &comps {
            for &node in comp {
                prop_assert!(g.is_alive(node));
                prop_assert!(seen.insert(node), "node in two components");
            }
        }
        prop_assert_eq!(seen.len(), g.live_count());
    }

    /// Generators produce simple graphs; BA is additionally connected with
    /// exactly the predicted edge count.
    #[test]
    fn barabasi_albert_structure(seed in any::<u64>(), n in 5usize..80, m in 1usize..4) {
        prop_assume!(n > m + 1);
        let g = generate::barabasi_albert(n, m, &mut Rng64::seed_from(seed));
        prop_assert!(g.check_invariants().is_ok());
        prop_assert!(is_connected(&g));
        prop_assert_eq!(g.edge_count(), m * (m + 1) / 2 + (n - m - 1) * m);
        prop_assert!(g.nodes().all(|v| g.degree(v) >= m));
    }

    /// `ensure_connected` always yields a single component.
    #[test]
    fn ensure_connected_connects(
        seed in any::<u64>(),
        n in 2usize..40,
        edges in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..40),
    ) {
        let mut g = arbitrary_graph(n, &edges);
        generate::ensure_connected(&mut g, &mut Rng64::seed_from(seed));
        prop_assert!(is_connected(&g));
        prop_assert!(g.check_invariants().is_ok());
    }

    /// Departing and rejoining a node restores liveness and keeps
    /// invariants; its edges are gone until rewired.
    #[test]
    fn depart_rejoin_cycle(
        n in 2usize..30,
        edges in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..100),
        victim in any::<u32>(),
    ) {
        let mut g = arbitrary_graph(n, &edges);
        let v = NodeId(victim % n as u32);
        let before_edges = g.edge_count();
        let removed = g.depart(v);
        prop_assert_eq!(g.edge_count(), before_edges - removed.len());
        prop_assert!(!g.is_alive(v));
        g.rejoin(v);
        prop_assert!(g.is_alive(v));
        prop_assert_eq!(g.degree(v), 0);
        prop_assert!(g.check_invariants().is_ok());
    }
}

proptest! {
    /// Superpeer topologies are connected two-tier graphs: every leaf has
    /// exactly one edge, pointing into the core.
    #[test]
    fn superpeer_topology_structure(
        seed in any::<u64>(),
        n_super in 2usize..12,
        leaves in 1usize..60,
        degree in 1usize..4,
    ) {
        prop_assume!(degree < n_super);
        let n = n_super + leaves;
        let (g, assignment) =
            generate::superpeer(n, n_super, degree, &mut Rng64::seed_from(seed));
        prop_assert!(g.check_invariants().is_ok());
        prop_assert!(is_connected(&g));
        prop_assert_eq!(assignment.len(), n);
        for (leaf, &sp) in assignment.iter().enumerate().skip(n_super) {
            let leaf_id = NodeId(leaf as u32);
            prop_assert_eq!(g.degree(leaf_id), 1);
            prop_assert!((sp.0 as usize) < n_super);
            prop_assert!(g.has_edge(leaf_id, sp));
        }
    }
}
