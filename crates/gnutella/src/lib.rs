//! # arq-gnutella — unstructured P2P protocol simulator
//!
//! A discrete-event simulator of a Gnutella-style unstructured overlay:
//! nodes issue keyword queries for files, queries are relayed hop-by-hop
//! under a TTL, hits travel back along the reverse path, duplicate
//! messages are suppressed by GUID, and peers churn.
//!
//! The piece that makes the workspace's experiments possible is the
//! [`policy::ForwardingPolicy`] trait: every routing scheme — plain
//! flooding, k-random walks, routing indices, interest shortcuts, and the
//! paper's association-rule router — is a policy deciding *which subset of
//! neighbors* receives a relayed query. Everything else (dedup, TTL,
//! reverse-path hits, churn, metrics, trace collection) is shared
//! infrastructure, so policy comparisons are apples-to-apples.
//!
//! A designated **collector node** records exactly the per-message fields
//! the paper's modified Gnutella client captured (see
//! [`collector::Collector`]), producing `arq-trace` records that feed the
//! offline mining pipeline.
//!
//! The [`faults`] module layers deterministic fault injection over the
//! simulator — per-link loss, latency jitter, crash-without-rejoin nodes,
//! and silent free-riders — and [`sim::RetryPolicy`] gives queries a
//! deadline/retry lifecycle so robustness under those faults is
//! measurable per policy. The [`net`] module generalizes the fault layer
//! into a byte-accurate link model: per-node asymmetric bandwidth,
//! bounded byte buffers with congestive drops, and per-link loss/jitter
//! that subsumes the `FaultPlan` loss/jitter knobs.

#![warn(missing_docs)]

pub mod collector;
pub mod discovery;
pub mod faults;
pub mod guid;
pub mod message;
pub mod metrics;
pub mod net;
pub mod node;
pub mod policy;
pub mod sim;
pub mod store;

pub use collector::Collector;
pub use discovery::{ping_crawl, rewire_via_discovery, Discovery};
pub use faults::{FaultPlan, FaultPlanError, FaultState};
pub use message::QueryMsg;
pub use metrics::{QueryOutcome, RunMetrics};
pub use net::{LinkPlan, LinkPlanError, LinkState};
pub use policy::{FloodPolicy, ForwardingPolicy, ShortcutProposal};
pub use sim::{AdaptPlan, AdaptPlanError, Network, RetryPolicy, SimConfig};
pub use store::GuidStore;
