//! Per-node protocol state.
//!
//! Each node remembers which GUIDs it has seen (duplicate suppression —
//! floods revisit nodes constantly) and, for each GUID, the upstream
//! neighbor it first heard the query from. That upstream pointer is the
//! reverse-path routing table along which hits travel back.
//!
//! The table is bounded two ways: by capacity (LRU eviction of the
//! oldest entry) and, optionally, by age — entries older than a
//! sim-time TTL expire lazily on the next [`NodeState::record`]. Age
//! expiry keeps long dead queries from pinning cache slots in long runs
//! with retries, where each retry mints a fresh GUID.

use arq_overlay::NodeId;
use arq_simkern::time::Duration;
use arq_simkern::SimTime;
use arq_trace::record::Guid;
use std::collections::{HashMap, VecDeque};

/// Where a query entered this node from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Upstream {
    /// The node issued the query itself.
    Origin,
    /// The query arrived from this neighbor.
    Neighbor(NodeId),
}

/// A node's message-routing memory, bounded LRU-style with optional
/// sim-time expiry.
#[derive(Debug)]
pub struct NodeState {
    seen: HashMap<Guid, Upstream>,
    order: VecDeque<(Guid, SimTime)>,
    capacity: usize,
    expiry: Option<Duration>,
}

impl NodeState {
    /// Creates state remembering at most `capacity` GUIDs, with no age
    /// limit.
    pub fn new(capacity: usize) -> Self {
        Self::with_expiry(capacity, None)
    }

    /// Creates state remembering at most `capacity` GUIDs, each for at
    /// most `expiry` of sim time (when `Some`).
    pub fn with_expiry(capacity: usize, expiry: Option<Duration>) -> Self {
        assert!(capacity > 0, "GUID cache needs capacity");
        if let Some(ttl) = expiry {
            assert!(ttl > Duration::ZERO, "GUID expiry must be positive");
        }
        NodeState {
            seen: HashMap::new(),
            order: VecDeque::new(),
            capacity,
            expiry,
        }
    }

    /// Records the first sighting of `guid` at sim time `now`. Returns
    /// `false` (a duplicate) if the GUID was already known — the message
    /// must then be dropped, not relayed.
    pub fn record(&mut self, guid: Guid, upstream: Upstream, now: SimTime) -> bool {
        self.expire(now);
        if self.seen.contains_key(&guid) {
            return false;
        }
        if self.order.len() == self.capacity {
            if let Some((old, _)) = self.order.pop_front() {
                self.seen.remove(&old);
            }
        }
        self.seen.insert(guid, upstream);
        self.order.push_back((guid, now));
        true
    }

    /// Drops entries recorded more than the expiry TTL before `now`.
    /// Insertion times are monotone, so expired entries are a prefix of
    /// the order queue and this is amortized O(1) per record.
    fn expire(&mut self, now: SimTime) {
        let Some(ttl) = self.expiry else { return };
        while let Some(&(old, at)) = self.order.front() {
            if now.since(at) <= ttl {
                break;
            }
            self.order.pop_front();
            self.seen.remove(&old);
        }
    }

    /// Whether `guid` has been seen.
    pub fn has_seen(&self, guid: Guid) -> bool {
        self.seen.contains_key(&guid)
    }

    /// The reverse-path hop for `guid`, if still remembered.
    pub fn upstream(&self, guid: Guid) -> Option<Upstream> {
        self.seen.get(&guid).copied()
    }

    /// Number of remembered GUIDs.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether nothing has been seen.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Forgets everything (used when a node leaves the network: Gnutella
    /// state does not survive a disconnect).
    pub fn reset(&mut self) {
        self.seen.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: SimTime = SimTime::ZERO;

    #[test]
    fn first_sighting_accepted_duplicate_rejected() {
        let mut s = NodeState::new(8);
        assert!(s.record(Guid(1), Upstream::Neighbor(NodeId(5)), T0));
        assert!(!s.record(Guid(1), Upstream::Neighbor(NodeId(6)), T0));
        // Upstream stays the first one.
        assert_eq!(s.upstream(Guid(1)), Some(Upstream::Neighbor(NodeId(5))));
    }

    #[test]
    fn origin_marker() {
        let mut s = NodeState::new(8);
        s.record(Guid(9), Upstream::Origin, T0);
        assert_eq!(s.upstream(Guid(9)), Some(Upstream::Origin));
    }

    #[test]
    fn lru_eviction() {
        let mut s = NodeState::new(3);
        for i in 0..5u128 {
            assert!(s.record(Guid(i), Upstream::Origin, T0));
        }
        assert_eq!(s.len(), 3);
        assert!(!s.has_seen(Guid(0)));
        assert!(!s.has_seen(Guid(1)));
        assert!(s.has_seen(Guid(2)));
        assert!(s.has_seen(Guid(4)));
        // An evicted GUID can be recorded again.
        assert!(s.record(Guid(0), Upstream::Neighbor(NodeId(1)), T0));
    }

    #[test]
    fn entries_expire_by_sim_time() {
        let mut s = NodeState::with_expiry(16, Some(Duration::from_ticks(100)));
        assert!(s.record(Guid(1), Upstream::Origin, SimTime::from_ticks(0)));
        assert!(s.record(Guid(2), Upstream::Origin, SimTime::from_ticks(60)));
        // Inside the TTL both are still duplicates.
        assert!(!s.record(Guid(1), Upstream::Origin, SimTime::from_ticks(100)));
        // At t=150 the first entry (age 150 > 100) is expired, the second
        // (age 90) survives.
        assert!(s.record(
            Guid(1),
            Upstream::Neighbor(NodeId(2)),
            SimTime::from_ticks(150)
        ));
        assert!(!s.record(Guid(2), Upstream::Origin, SimTime::from_ticks(150)));
        assert_eq!(s.upstream(Guid(1)), Some(Upstream::Neighbor(NodeId(2))));
    }

    #[test]
    fn expiry_frees_capacity() {
        let mut s = NodeState::with_expiry(2, Some(Duration::from_ticks(10)));
        s.record(Guid(1), Upstream::Origin, SimTime::from_ticks(0));
        s.record(Guid(2), Upstream::Origin, SimTime::from_ticks(0));
        // Both expired by t=20: the new entry does not evict via LRU.
        assert!(s.record(Guid(3), Upstream::Origin, SimTime::from_ticks(20)));
        assert_eq!(s.len(), 1);
        assert!(!s.has_seen(Guid(1)));
        assert!(!s.has_seen(Guid(2)));
    }

    #[test]
    fn no_expiry_means_age_is_ignored() {
        let mut s = NodeState::new(4);
        s.record(Guid(1), Upstream::Origin, SimTime::from_ticks(0));
        assert!(!s.record(Guid(1), Upstream::Origin, SimTime::from_ticks(u64::MAX)));
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = NodeState::new(4);
        s.record(Guid(1), Upstream::Origin, T0);
        s.reset();
        assert!(s.is_empty());
        assert!(!s.has_seen(Guid(1)));
        assert!(s.record(Guid(1), Upstream::Origin, T0));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        NodeState::new(0);
    }

    #[test]
    #[should_panic(expected = "expiry")]
    fn zero_expiry_rejected() {
        NodeState::with_expiry(4, Some(Duration::ZERO));
    }
}
