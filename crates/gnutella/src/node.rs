//! Per-node protocol state.
//!
//! Each node remembers which GUIDs it has seen (duplicate suppression —
//! floods revisit nodes constantly) and, for each GUID, the upstream
//! neighbor it first heard the query from. That upstream pointer is the
//! reverse-path routing table along which hits travel back.

use arq_overlay::NodeId;
use arq_trace::record::Guid;
use std::collections::{HashMap, VecDeque};

/// Where a query entered this node from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Upstream {
    /// The node issued the query itself.
    Origin,
    /// The query arrived from this neighbor.
    Neighbor(NodeId),
}

/// A node's message-routing memory, bounded LRU-style.
#[derive(Debug)]
pub struct NodeState {
    seen: HashMap<Guid, Upstream>,
    order: VecDeque<Guid>,
    capacity: usize,
}

impl NodeState {
    /// Creates state remembering at most `capacity` GUIDs.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "GUID cache needs capacity");
        NodeState {
            seen: HashMap::new(),
            order: VecDeque::new(),
            capacity,
        }
    }

    /// Records the first sighting of `guid`. Returns `false` (a
    /// duplicate) if the GUID was already known — the message must then
    /// be dropped, not relayed.
    pub fn record(&mut self, guid: Guid, upstream: Upstream) -> bool {
        if self.seen.contains_key(&guid) {
            return false;
        }
        if self.order.len() == self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.seen.remove(&old);
            }
        }
        self.seen.insert(guid, upstream);
        self.order.push_back(guid);
        true
    }

    /// Whether `guid` has been seen.
    pub fn has_seen(&self, guid: Guid) -> bool {
        self.seen.contains_key(&guid)
    }

    /// The reverse-path hop for `guid`, if still remembered.
    pub fn upstream(&self, guid: Guid) -> Option<Upstream> {
        self.seen.get(&guid).copied()
    }

    /// Number of remembered GUIDs.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether nothing has been seen.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Forgets everything (used when a node leaves the network: Gnutella
    /// state does not survive a disconnect).
    pub fn reset(&mut self) {
        self.seen.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sighting_accepted_duplicate_rejected() {
        let mut s = NodeState::new(8);
        assert!(s.record(Guid(1), Upstream::Neighbor(NodeId(5))));
        assert!(!s.record(Guid(1), Upstream::Neighbor(NodeId(6))));
        // Upstream stays the first one.
        assert_eq!(s.upstream(Guid(1)), Some(Upstream::Neighbor(NodeId(5))));
    }

    #[test]
    fn origin_marker() {
        let mut s = NodeState::new(8);
        s.record(Guid(9), Upstream::Origin);
        assert_eq!(s.upstream(Guid(9)), Some(Upstream::Origin));
    }

    #[test]
    fn lru_eviction() {
        let mut s = NodeState::new(3);
        for i in 0..5u128 {
            assert!(s.record(Guid(i), Upstream::Origin));
        }
        assert_eq!(s.len(), 3);
        assert!(!s.has_seen(Guid(0)));
        assert!(!s.has_seen(Guid(1)));
        assert!(s.has_seen(Guid(2)));
        assert!(s.has_seen(Guid(4)));
        // An evicted GUID can be recorded again.
        assert!(s.record(Guid(0), Upstream::Neighbor(NodeId(1))));
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = NodeState::new(4);
        s.record(Guid(1), Upstream::Origin);
        s.reset();
        assert!(s.is_empty());
        assert!(!s.has_seen(Guid(1)));
        assert!(s.record(Guid(1), Upstream::Origin));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        NodeState::new(0);
    }
}
