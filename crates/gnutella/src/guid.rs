//! GUID generation, including faulty clients.
//!
//! Gnutella queries carry a 128-bit GUID chosen by the *issuing client*.
//! The paper discovered that some clients generate them incorrectly —
//! different queries sharing a GUID — and had to clean the trace. To
//! exercise that pipeline end-to-end, a configurable fraction of
//! simulated nodes run a [`GuidGen::Faulty`] generator that draws from a
//! tiny per-node pool instead of fresh randomness.

use arq_simkern::Rng64;
use arq_trace::record::Guid;

/// Per-node GUID generator.
#[derive(Debug, Clone)]
pub enum GuidGen {
    /// Correct client: fresh 128 random bits each time.
    Proper,
    /// Faulty client: cycles through a small fixed pool, reproducing the
    /// duplicate-GUID pathology in the paper's §IV-A.
    Faulty {
        /// The node's few reusable GUIDs.
        pool: Vec<Guid>,
        /// Next pool index to hand out.
        cursor: usize,
    },
}

impl GuidGen {
    /// Creates a faulty generator with `pool_size` reusable GUIDs.
    pub fn faulty(pool_size: usize, rng: &mut Rng64) -> Self {
        assert!(pool_size >= 1, "faulty pool must hold at least one GUID");
        let pool = (0..pool_size).map(|_| random_guid(rng)).collect();
        GuidGen::Faulty { pool, cursor: 0 }
    }

    /// Produces the next GUID for this node.
    pub fn next(&mut self, rng: &mut Rng64) -> Guid {
        match self {
            GuidGen::Proper => random_guid(rng),
            GuidGen::Faulty { pool, cursor } => {
                let g = pool[*cursor % pool.len()];
                *cursor += 1;
                g
            }
        }
    }

    /// Whether this generator is the faulty variant.
    pub fn is_faulty(&self) -> bool {
        matches!(self, GuidGen::Faulty { .. })
    }
}

fn random_guid(rng: &mut Rng64) -> Guid {
    Guid((u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn proper_guids_are_distinct() {
        let mut rng = Rng64::seed_from(1);
        let mut gen = GuidGen::Proper;
        let guids: HashSet<Guid> = (0..10_000).map(|_| gen.next(&mut rng)).collect();
        assert_eq!(guids.len(), 10_000);
        assert!(!gen.is_faulty());
    }

    #[test]
    fn faulty_guids_repeat() {
        let mut rng = Rng64::seed_from(2);
        let mut gen = GuidGen::faulty(3, &mut rng);
        let guids: Vec<Guid> = (0..9).map(|_| gen.next(&mut rng)).collect();
        assert_eq!(guids[0], guids[3]);
        assert_eq!(guids[1], guids[4]);
        assert_eq!(guids[2], guids[8]);
        let distinct: HashSet<_> = guids.iter().collect();
        assert_eq!(distinct.len(), 3);
        assert!(gen.is_faulty());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn faulty_pool_must_be_nonempty() {
        GuidGen::faulty(0, &mut Rng64::seed_from(3));
    }
}
