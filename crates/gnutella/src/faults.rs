//! Deterministic fault injection for the live simulator.
//!
//! The paper's premise is that rule sets age as the network changes, but
//! clean session churn is only one aging force. Real overlays also lose
//! messages in flight, jitter on congested links, lose peers permanently
//! (crash without rejoin), and carry free-riders that accept traffic
//! without relaying it. [`FaultPlan`] describes those four failure modes
//! declaratively; [`FaultState`] is the seeded runtime the simulator
//! consults on every delivery.
//!
//! Determinism: all fault randomness flows from one labelled
//! [`arq_simkern::StreamFactory`] stream (`"faults"`), independent of the
//! simulator's other streams. A plan with every rate at zero therefore
//! draws nothing and perturbs nothing — a zero plan is byte-identical to
//! no plan at all, which the property suite asserts.

use arq_overlay::NodeId;
use arq_simkern::time::Duration;
use arq_simkern::{Rng64, SimTime};

/// Declarative description of the faults injected into one run.
///
/// All rates default to zero (a no-op plan); construct via
/// [`FaultPlan::default`] and set fields, or parse a registry spec string
/// like `faults(loss=0.05,crash=0.01,silent=0.02,jitter=40)` through the
/// engine registry.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Per-link message loss probability: each transmission (query or
    /// hit, per hop) is independently dropped with this probability.
    pub loss: f64,
    /// Extra per-hop latency jitter: each delivery is delayed by a
    /// uniform draw from `[0, jitter)` ticks on top of the configured hop
    /// latency. Zero disables.
    pub jitter: u64,
    /// Fraction of nodes that crash permanently (depart without ever
    /// rejoining) at a uniformly random instant inside the run horizon.
    pub crash: f64,
    /// Fraction of nodes that are silent free-riders: they receive
    /// queries (and may answer from their own library) but never forward
    /// them onward.
    pub silent: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            loss: 0.0,
            jitter: 0,
            crash: 0.0,
            silent: 0.0,
        }
    }
}

/// A [`FaultPlan`] with an out-of-range rate.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// A probability field is outside `[0, 1)`.
    RateOutOfRange {
        /// Which field (`loss`, `crash`, or `silent`).
        field: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::RateOutOfRange { field, value } => {
                write!(f, "fault rate `{field}` must be in [0, 1), got {value}")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

impl FaultPlan {
    /// Checks every rate is a probability in `[0, 1)`.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        for (field, value) in [
            ("loss", self.loss),
            ("crash", self.crash),
            ("silent", self.silent),
        ] {
            if !(0.0..1.0).contains(&value) {
                return Err(FaultPlanError::RateOutOfRange { field, value });
            }
        }
        Ok(())
    }

    /// Whether the plan injects nothing — the simulator skips the fault
    /// layer entirely for no-op plans, which is what makes a zero plan
    /// byte-identical to running without one.
    pub fn is_noop(&self) -> bool {
        self.loss == 0.0 && self.jitter == 0 && self.crash == 0.0 && self.silent == 0.0
    }

    /// Canonical spec-style description (used in config digests and
    /// labels): `faults(loss=0.05,jitter=40,crash=0.01,silent=0.02)`.
    pub fn describe(&self) -> String {
        format!(
            "faults(loss={},jitter={},crash={},silent={})",
            self.loss, self.jitter, self.crash, self.silent
        )
    }
}

/// Seeded runtime state of one run's fault injection, plus the failure
/// counters that feed [`crate::metrics::RunMetrics`].
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    silent: Vec<bool>,
    crashes: Vec<(SimTime, NodeId)>,
    rng: Rng64,
    lost: u64,
}

impl FaultState {
    /// Materializes a plan for `n` nodes.
    ///
    /// Crash instants are drawn uniformly over `[0, horizon)`; `exempt`
    /// nodes (e.g. a trace collector that must stay online) neither crash
    /// nor fall silent. All draws come from `rng`, and zero-rate modes
    /// draw nothing at all.
    pub fn new(
        plan: FaultPlan,
        n: usize,
        horizon: SimTime,
        exempt: &[NodeId],
        mut rng: Rng64,
    ) -> Self {
        plan.validate().expect("invalid fault plan");
        let mut silent = vec![false; n];
        if plan.silent > 0.0 {
            for (i, s) in silent.iter_mut().enumerate() {
                if !exempt.contains(&NodeId(i as u32)) && rng.chance(plan.silent) {
                    *s = true;
                }
            }
        }
        let mut crashes = Vec::new();
        if plan.crash > 0.0 {
            let span = horizon.ticks().max(1);
            for i in 0..n {
                let node = NodeId(i as u32);
                if !exempt.contains(&node) && rng.chance(plan.crash) {
                    crashes.push((SimTime::from_ticks(rng.below(span)), node));
                }
            }
            // Time-ordered (ties by node id) so the simulator can schedule
            // them in one deterministic pass.
            crashes.sort_by_key(|&(at, node)| (at, node.0));
        }
        FaultState {
            plan,
            silent,
            crashes,
            rng,
            lost: 0,
        }
    }

    /// The plan this state was built from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether `node` is a silent free-rider.
    pub fn is_silent(&self, node: NodeId) -> bool {
        self.silent.get(node.index()).copied().unwrap_or(false)
    }

    /// Number of silent nodes in this run.
    pub fn silent_count(&self) -> usize {
        self.silent.iter().filter(|&&s| s).count()
    }

    /// The crash schedule, time-ordered.
    pub fn crash_schedule(&self) -> &[(SimTime, NodeId)] {
        &self.crashes
    }

    /// Rolls per-link loss for one transmission; returns `true` (and
    /// counts it) when the message is dropped in flight.
    ///
    /// This is the degenerate (zero-bandwidth) corner of the link
    /// layer's loss process: both delegate to [`crate::net::loss_roll`]
    /// so the two models stay draw-for-draw compatible. When a
    /// [`crate::net::LinkPlan`] is active the simulator folds this loss
    /// into the link and stops consulting the fault layer per message.
    pub fn drops_message(&mut self) -> bool {
        if crate::net::loss_roll(&mut self.rng, self.plan.loss) {
            self.lost += 1;
            true
        } else {
            false
        }
    }

    /// Extra delivery delay for one transmission — the unbuffered
    /// corner of the link layer's jitter (see
    /// [`crate::net::jitter_draw`]).
    pub fn jitter(&mut self) -> Duration {
        Duration::from_ticks(crate::net::jitter_draw(&mut self.rng, self.plan.jitter))
    }

    /// Messages dropped so far.
    pub fn lost(&self) -> u64 {
        self.lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_bounds_rates() {
        let mut plan = FaultPlan::default();
        assert!(plan.validate().is_ok());
        assert!(plan.is_noop());
        plan.loss = 1.0;
        let e = plan.validate().unwrap_err();
        assert!(e.to_string().contains("loss"), "{e}");
        plan.loss = 0.2;
        plan.crash = -0.1;
        assert!(plan.validate().is_err());
        plan.crash = 0.0;
        assert!(plan.validate().is_ok());
        assert!(!plan.is_noop());
    }

    #[test]
    fn zero_plan_draws_nothing() {
        let rng = Rng64::seed_from(7);
        let mut state = FaultState::new(
            FaultPlan::default(),
            50,
            SimTime::from_ticks(1_000),
            &[],
            rng,
        );
        assert_eq!(state.silent_count(), 0);
        assert!(state.crash_schedule().is_empty());
        for _ in 0..100 {
            assert!(!state.drops_message());
            assert_eq!(state.jitter(), Duration::ZERO);
        }
        assert_eq!(state.lost(), 0);
        // The stream was never advanced: a fresh clone produces the same
        // next value as an untouched one.
        let mut a = state.rng;
        let mut b = Rng64::seed_from(7);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn crash_schedule_is_time_ordered_and_exempts() {
        let plan = FaultPlan {
            crash: 0.5,
            ..Default::default()
        };
        let state = FaultState::new(
            plan,
            100,
            SimTime::from_ticks(10_000),
            &[NodeId(3)],
            Rng64::seed_from(11),
        );
        let crashes = state.crash_schedule();
        assert!(!crashes.is_empty());
        assert!(crashes.windows(2).all(|w| w[0].0 <= w[1].0), "unsorted");
        assert!(crashes
            .iter()
            .all(|&(at, n)| { n != NodeId(3) && at < SimTime::from_ticks(10_000) }));
    }

    #[test]
    fn silent_selection_respects_rate_and_exemptions() {
        let plan = FaultPlan {
            silent: 0.3,
            ..Default::default()
        };
        let state = FaultState::new(
            plan,
            1_000,
            SimTime::from_ticks(1),
            &[NodeId(0)],
            Rng64::seed_from(5),
        );
        assert!(!state.is_silent(NodeId(0)), "exempt node fell silent");
        let frac = state.silent_count() as f64 / 1_000.0;
        assert!((frac - 0.3).abs() < 0.08, "silent fraction {frac}");
    }

    #[test]
    fn loss_counter_tracks_drops() {
        let plan = FaultPlan {
            loss: 0.5,
            ..Default::default()
        };
        let mut state = FaultState::new(plan, 10, SimTime::from_ticks(1), &[], Rng64::seed_from(3));
        let mut dropped = 0u64;
        for _ in 0..1_000 {
            if state.drops_message() {
                dropped += 1;
            }
        }
        assert_eq!(state.lost(), dropped);
        assert!((400..600).contains(&dropped), "dropped {dropped}");
    }

    #[test]
    fn describe_is_canonical() {
        let plan = FaultPlan {
            loss: 0.05,
            jitter: 40,
            crash: 0.01,
            silent: 0.02,
        };
        assert_eq!(
            plan.describe(),
            "faults(loss=0.05,jitter=40,crash=0.01,silent=0.02)"
        );
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn state_rejects_invalid_plans() {
        let plan = FaultPlan {
            loss: 2.0,
            ..Default::default()
        };
        FaultState::new(plan, 10, SimTime::from_ticks(1), &[], Rng64::seed_from(1));
    }
}
