//! The trace-collector node.
//!
//! The paper instrumented one Gnutella client for seven days; the
//! [`Collector`] plays that role in the simulator. Attached to a single
//! node, it records a [`arq_trace::record::QueryRecord`] for every query
//! descriptor that *arrives from a neighbor*, and a
//! [`arq_trace::record::ReplyRecord`] for every hit that passes through
//! on its way back — with `via` being the neighbor that handed the hit
//! over, exactly the field the association rules consume.

use arq_content::QueryKey;
use arq_overlay::NodeId;
use arq_simkern::SimTime;
use arq_trace::record::{Guid, HostId, QueryId, QueryRecord, ReplyRecord};
use arq_trace::TraceDb;

/// Maps simulator node ids to trace host ids (identity on the index; the
/// indirection exists so traces never depend on simulator internals).
pub fn host_of(node: NodeId) -> HostId {
    HostId(node.0)
}

/// Derives the interned query-string id for a key (topic and file rank
/// determine the string, mirroring `Catalog::query_string`).
pub fn query_id_of(key: QueryKey) -> QueryId {
    QueryId((u32::from(key.topic.0) << 20) | key.file.0)
}

/// Records the traffic visible at one node.
#[derive(Debug)]
pub struct Collector {
    node: NodeId,
    db: TraceDb,
    queries_seen: u64,
    replies_seen: u64,
}

impl Collector {
    /// Attaches a collector to `node`.
    pub fn new(node: NodeId) -> Self {
        Collector {
            node,
            db: TraceDb::new(),
            queries_seen: 0,
            replies_seen: 0,
        }
    }

    /// The instrumented node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Called when a query arrives at the collector node from a neighbor.
    pub fn on_query(&mut self, time: SimTime, guid: Guid, from: NodeId, key: QueryKey) {
        self.queries_seen += 1;
        self.db.push_query(QueryRecord {
            time,
            guid,
            from: host_of(from),
            query: query_id_of(key),
        });
    }

    /// Called when a hit passes through (or terminates at) the collector
    /// node, having arrived from neighbor `via`.
    pub fn on_reply(
        &mut self,
        time: SimTime,
        guid: Guid,
        via: NodeId,
        responder: NodeId,
        key: QueryKey,
    ) {
        self.replies_seen += 1;
        self.db.push_reply(ReplyRecord {
            time,
            guid,
            via: host_of(via),
            responder: host_of(responder),
            file: query_id_of(key),
        });
    }

    /// Queries recorded so far.
    pub fn queries_seen(&self) -> u64 {
        self.queries_seen
    }

    /// Replies recorded so far.
    pub fn replies_seen(&self) -> u64 {
        self.replies_seen
    }

    /// Consumes the collector, yielding the populated trace database
    /// (still raw: run `clean_and_join` on it, as the paper did).
    pub fn into_db(self) -> TraceDb {
        self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arq_content::{FileId, Topic};

    #[test]
    fn records_accumulate_and_join() {
        let mut c = Collector::new(NodeId(5));
        let key = QueryKey {
            file: FileId(42),
            topic: Topic(3),
        };
        c.on_query(SimTime::from_ticks(10), Guid(1), NodeId(2), key);
        c.on_reply(SimTime::from_ticks(30), Guid(1), NodeId(7), NodeId(99), key);
        assert_eq!(c.queries_seen(), 1);
        assert_eq!(c.replies_seen(), 1);
        assert_eq!(c.node(), NodeId(5));

        let mut db = c.into_db();
        let (_, pairs) = db.clean_and_join();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].src, HostId(2));
        assert_eq!(pairs[0].via, HostId(7));
        assert_eq!(pairs[0].responder, HostId(99));
    }

    #[test]
    fn query_id_is_injective_within_ranges() {
        let a = query_id_of(QueryKey {
            file: FileId(1),
            topic: Topic(0),
        });
        let b = query_id_of(QueryKey {
            file: FileId(1),
            topic: Topic(1),
        });
        let c = query_id_of(QueryKey {
            file: FileId(2),
            topic: Topic(0),
        });
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
