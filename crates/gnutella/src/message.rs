//! Protocol messages.
//!
//! Only the two message types that matter for search are modelled: the
//! query descriptor and the query hit. (Gnutella's Ping/Pong neighbor
//! discovery is subsumed by the overlay substrate.)

use arq_content::QueryKey;
use arq_overlay::NodeId;
use arq_trace::record::Guid;

/// A query descriptor in flight.
///
/// As in Gnutella, the message does *not* name the issuing node — replies
/// travel the reverse path, preserving querier anonymity (a property the
/// paper calls out for association routing as well).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryMsg {
    /// GUID stamped by the issuer (faulty clients may reuse them).
    pub guid: Guid,
    /// What is being searched for.
    pub key: QueryKey,
    /// Remaining time-to-live; a node forwards only if `ttl > 1` after
    /// decrement.
    pub ttl: u32,
    /// Hops travelled so far.
    pub hops: u32,
}

/// Gnutella descriptor header: 16-byte GUID + type + TTL + hops +
/// 4-byte payload length.
pub const HEADER_BYTES: u64 = 23;
/// Query payload: 2-byte minimum-speed field plus a typical 20-byte
/// search string (the workspace's catalog renders ~20-char strings).
pub const QUERY_PAYLOAD_BYTES: u64 = 2 + 20;
/// QueryHit payload: count + port + IPv4 + speed (11 bytes), one result
/// entry (8-byte index/size + ~20-byte name + terminator), and the
/// 16-byte servent id.
pub const HIT_PAYLOAD_BYTES: u64 = 11 + 8 + 21 + 16;

impl QueryMsg {
    /// Bytes this descriptor occupies on the wire.
    pub const fn wire_size(&self) -> u64 {
        HEADER_BYTES + QUERY_PAYLOAD_BYTES
    }

    /// Wire size of a query whose rendered search string is
    /// `search_len` bytes: header + 2-byte minimum speed + string +
    /// NUL terminator. Used by the link layer, which sizes messages
    /// from the content model instead of the nominal constant.
    pub const fn wire_size_for(search_len: usize) -> u64 {
        HEADER_BYTES + 2 + search_len as u64 + 1
    }

    /// The message as it looks after one more hop, or `None` when the TTL
    /// is exhausted and the message must not be relayed further.
    pub fn hop(&self) -> Option<QueryMsg> {
        if self.ttl <= 1 {
            return None;
        }
        Some(QueryMsg {
            ttl: self.ttl - 1,
            hops: self.hops + 1,
            ..*self
        })
    }
}

/// A query hit travelling back along the reverse path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HitMsg {
    /// GUID of the query being answered.
    pub guid: Guid,
    /// The node actually sharing the file.
    pub responder: NodeId,
    /// What was matched.
    pub key: QueryKey,
    /// Hops the *query* travelled to reach the responder.
    pub query_hops: u32,
}

impl HitMsg {
    /// Bytes this hit occupies on the wire.
    pub const fn wire_size(&self) -> u64 {
        HEADER_BYTES + HIT_PAYLOAD_BYTES
    }

    /// Wire size of a hit whose result name is `result_len` bytes:
    /// header + result-set preamble (11) + index/size (8) + name +
    /// double-NUL terminator (2) + servent id (16). Used by the link
    /// layer, which sizes messages from the content model.
    pub const fn wire_size_for(result_len: usize) -> u64 {
        HEADER_BYTES + 11 + 8 + result_len as u64 + 2 + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arq_content::{FileId, Topic};

    fn msg(ttl: u32) -> QueryMsg {
        QueryMsg {
            guid: Guid(7),
            key: QueryKey {
                file: FileId(1),
                topic: Topic(2),
            },
            ttl,
            hops: 0,
        }
    }

    #[test]
    fn hop_decrements_and_counts() {
        let m = msg(3);
        let h1 = m.hop().unwrap();
        assert_eq!(h1.ttl, 2);
        assert_eq!(h1.hops, 1);
        let h2 = h1.hop().unwrap();
        assert_eq!(h2.ttl, 1);
        assert_eq!(h2.hops, 2);
        assert!(h2.hop().is_none(), "ttl 1 must stop relaying");
    }

    #[test]
    fn ttl_zero_never_relays() {
        assert!(msg(0).hop().is_none());
    }

    #[test]
    fn wire_sizes_are_plausible() {
        let m = msg(3);
        assert_eq!(m.wire_size(), 45);
        let h = HitMsg {
            guid: Guid(1),
            responder: NodeId(0),
            key: m.key,
            query_hops: 2,
        };
        assert_eq!(h.wire_size(), 79);
        assert!(h.wire_size() > m.wire_size(), "hits carry result payloads");
    }

    #[test]
    fn content_sized_wire_sizes_track_string_lengths() {
        // A 19-byte search string reproduces the nominal constant
        // (2 + 20 payload = 2-byte speed + 19 chars + NUL).
        assert_eq!(
            QueryMsg::wire_size_for(19),
            HEADER_BYTES + QUERY_PAYLOAD_BYTES
        );
        assert_eq!(HitMsg::wire_size_for(19), HEADER_BYTES + HIT_PAYLOAD_BYTES);
        assert_eq!(
            QueryMsg::wire_size_for(30) - QueryMsg::wire_size_for(19),
            11
        );
        assert!(HitMsg::wire_size_for(0) > QueryMsg::wire_size_for(0));
    }

    #[test]
    fn guid_and_key_preserved_across_hops() {
        let m = msg(5);
        let h = m.hop().unwrap();
        assert_eq!(h.guid, m.guid);
        assert_eq!(h.key, m.key);
    }
}
