//! Struct-of-arrays GUID/reverse-path storage for the whole network.
//!
//! [`crate::node::NodeState`] keeps one `HashMap` + `VecDeque` per node —
//! perfectly fine at hundreds of nodes, but at 100k–1M nodes the
//! simulator's hottest operation (GUID dedup + upstream lookup, done for
//! every delivered message) becomes a pointer chase through a million
//! separately-allocated maps. [`GuidStore`] replaces the per-node maps
//! with **one** open-addressed table over `(node, guid)` keys, laid out
//! as parallel arrays (nodes / guids / upstreams), plus per-node FIFO
//! rings for capacity eviction and age expiry.
//!
//! The semantics are exactly [`crate::node::NodeState`]'s, per node:
//!
//! * first sighting records the upstream and returns `true`; duplicates
//!   return `false` and do **not** refresh the entry (first upstream
//!   wins, as in Gnutella reverse-path routing);
//! * capacity eviction is FIFO over insertion order;
//! * optional age expiry lazily drops entries older than the TTL before
//!   each record (insertion times are monotone, so expired entries are
//!   always a ring prefix);
//! * `reset` forgets a node's entire memory (driven by churn).
//!
//! None of the observable behavior depends on hash iteration order —
//! lookups are point queries and eviction order comes from the rings —
//! so swapping `NodeState` for `GuidStore` is byte-identical to the
//! digest goldens. A differential test against `NodeState` pins that.
//!
//! The table supports a `base` node offset so the sharded simulator can
//! give each worker its own store covering one contiguous node range.

use crate::node::Upstream;
use arq_overlay::NodeId;
use arq_simkern::time::Duration;
use arq_simkern::SimTime;
use arq_trace::record::Guid;
use std::collections::VecDeque;

/// Slot marker for "empty" in the node array. Real node ids are table
/// indices (≤ tens of millions), so the max value is safely out of band.
const EMPTY: u32 = u32::MAX;
/// Upstream encoding for [`Upstream::Origin`]; real neighbors use their
/// node id.
const ORIGIN: u32 = u32::MAX;

/// Network-wide GUID memory in struct-of-arrays layout: one
/// open-addressed `(node, guid) → upstream` table plus per-node FIFO
/// insertion rings.
#[derive(Debug)]
pub struct GuidStore {
    /// Owning node per slot (`EMPTY` marks a free slot).
    slot_nodes: Vec<u32>,
    /// GUID per slot; only meaningful where `slot_nodes` is occupied.
    slot_guids: Vec<u128>,
    /// Encoded upstream per slot (`ORIGIN` or a neighbor id).
    slot_ups: Vec<u32>,
    /// Power-of-two table size minus one.
    mask: usize,
    /// Occupied slots.
    live: usize,
    /// Per-node FIFO of `(guid, inserted_at_tick)`, indexed by
    /// `node - base`. Drives capacity eviction and age expiry.
    rings: Vec<VecDeque<(u128, u64)>>,
    /// First node id covered by this store.
    base: u32,
    capacity: usize,
    expiry: Option<u64>,
}

impl GuidStore {
    /// Creates a store covering nodes `0..nodes`, each remembering at
    /// most `capacity` GUIDs, optionally for at most `expiry` sim time.
    pub fn new(nodes: usize, capacity: usize, expiry: Option<Duration>) -> Self {
        Self::with_range(0, nodes, capacity, expiry)
    }

    /// Creates a store covering the node range `base..base + count`
    /// (shard-local storage for the parallel simulator).
    pub fn with_range(base: u32, count: usize, capacity: usize, expiry: Option<Duration>) -> Self {
        assert!(capacity > 0, "GUID cache needs capacity");
        if let Some(ttl) = expiry {
            assert!(ttl > Duration::ZERO, "GUID expiry must be positive");
        }
        let table = 1024usize;
        GuidStore {
            slot_nodes: vec![EMPTY; table],
            slot_guids: vec![0; table],
            slot_ups: vec![0; table],
            mask: table - 1,
            live: 0,
            rings: (0..count).map(|_| VecDeque::new()).collect(),
            base,
            capacity,
            expiry: expiry.map(Duration::ticks),
        }
    }

    #[inline]
    fn ring_index(&self, node: NodeId) -> usize {
        debug_assert!(
            node.0 >= self.base && ((node.0 - self.base) as usize) < self.rings.len(),
            "node {node} outside store range"
        );
        (node.0 - self.base) as usize
    }

    /// SplitMix64-style finalizer over the combined key. The result only
    /// feeds slot choice; observable behavior never depends on it.
    #[inline]
    fn hash(node: u32, guid: u128) -> u64 {
        let mut x = (guid as u64)
            ^ ((guid >> 64) as u64).rotate_left(32)
            ^ (u64::from(node)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// Linear probe: `Ok(slot)` when the key is present, `Err(slot)` with
    /// the insertion point otherwise.
    #[inline]
    fn probe(&self, node: u32, guid: u128) -> Result<usize, usize> {
        let mut i = (Self::hash(node, guid) as usize) & self.mask;
        loop {
            let n = self.slot_nodes[i];
            if n == EMPTY {
                return Err(i);
            }
            if n == node && self.slot_guids[i] == guid {
                return Ok(i);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Doubles the table, re-inserting every occupied slot.
    fn grow(&mut self) {
        let new_len = (self.mask + 1) * 2;
        let old_nodes = std::mem::replace(&mut self.slot_nodes, vec![EMPTY; new_len]);
        let old_guids = std::mem::replace(&mut self.slot_guids, vec![0; new_len]);
        let old_ups = std::mem::replace(&mut self.slot_ups, vec![0; new_len]);
        self.mask = new_len - 1;
        for (i, &n) in old_nodes.iter().enumerate() {
            if n == EMPTY {
                continue;
            }
            let slot = self
                .probe(n, old_guids[i])
                .expect_err("duplicate key during rehash");
            self.slot_nodes[slot] = n;
            self.slot_guids[slot] = old_guids[i];
            self.slot_ups[slot] = old_ups[i];
        }
    }

    /// Removes the slot holding `(node, guid)` with backward-shift
    /// deletion, keeping probe chains intact without tombstones.
    fn remove(&mut self, node: u32, guid: u128) {
        let Ok(mut pos) = self.probe(node, guid) else {
            debug_assert!(false, "removing absent key");
            return;
        };
        let mask = self.mask;
        let mut next = (pos + 1) & mask;
        while self.slot_nodes[next] != EMPTY {
            let ideal = (Self::hash(self.slot_nodes[next], self.slot_guids[next]) as usize) & mask;
            // `next` may fill the hole iff the hole lies on its probe
            // path, i.e. cyclic-distance(ideal → pos) < distance(ideal →
            // next).
            if (next.wrapping_sub(ideal) & mask) >= (next.wrapping_sub(pos) & mask) {
                self.slot_nodes[pos] = self.slot_nodes[next];
                self.slot_guids[pos] = self.slot_guids[next];
                self.slot_ups[pos] = self.slot_ups[next];
                pos = next;
            }
            next = (next + 1) & mask;
        }
        self.slot_nodes[pos] = EMPTY;
        self.live -= 1;
    }

    /// Drops `node`'s entries recorded more than the expiry TTL before
    /// `now`. Amortized O(1) per record: expired entries are a prefix of
    /// the insertion ring.
    fn expire(&mut self, node: NodeId, now: SimTime) {
        let Some(ttl) = self.expiry else { return };
        let r = self.ring_index(node);
        while let Some(&(guid, at)) = self.rings[r].front() {
            if now.ticks().saturating_sub(at) <= ttl {
                break;
            }
            self.rings[r].pop_front();
            self.remove(node.0, guid);
        }
    }

    /// Records the first sighting of `guid` at `node`. Returns `false`
    /// (a duplicate) if the GUID was already known there — the message
    /// must then be dropped, not relayed. The first upstream wins;
    /// duplicates never refresh it.
    pub fn record(&mut self, node: NodeId, guid: Guid, upstream: Upstream, now: SimTime) -> bool {
        self.expire(node, now);
        if self.probe(node.0, guid.0).is_ok() {
            return false;
        }
        let r = self.ring_index(node);
        if self.rings[r].len() == self.capacity {
            if let Some((old, _)) = self.rings[r].pop_front() {
                self.remove(node.0, old);
            }
        }
        if (self.live + 1) * 2 > self.mask + 1 {
            self.grow();
        }
        let slot = self
            .probe(node.0, guid.0)
            .expect_err("key appeared during insert");
        self.slot_nodes[slot] = node.0;
        self.slot_guids[slot] = guid.0;
        self.slot_ups[slot] = match upstream {
            Upstream::Origin => ORIGIN,
            Upstream::Neighbor(n) => n.0,
        };
        self.live += 1;
        self.rings[r].push_back((guid.0, now.ticks()));
        true
    }

    /// The reverse-path hop for `guid` at `node`, if still remembered.
    pub fn upstream(&self, node: NodeId, guid: Guid) -> Option<Upstream> {
        self.probe(node.0, guid.0).ok().map(|slot| {
            let up = self.slot_ups[slot];
            if up == ORIGIN {
                Upstream::Origin
            } else {
                Upstream::Neighbor(NodeId(up))
            }
        })
    }

    /// Whether `node` has seen `guid`.
    pub fn has_seen(&self, node: NodeId, guid: Guid) -> bool {
        self.probe(node.0, guid.0).is_ok()
    }

    /// Number of GUIDs `node` currently remembers.
    pub fn node_len(&self, node: NodeId) -> usize {
        self.rings[self.ring_index(node)].len()
    }

    /// Total entries across all nodes.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the store holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Forgets everything `node` has seen (a departed node's protocol
    /// state does not survive the disconnect). Ring capacity is kept.
    pub fn reset(&mut self, node: NodeId) {
        let r = self.ring_index(node);
        let mut ring = std::mem::take(&mut self.rings[r]);
        for (guid, _) in ring.drain(..) {
            self.remove(node.0, guid);
        }
        self.rings[r] = ring;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeState;

    const T0: SimTime = SimTime::ZERO;

    #[test]
    fn first_sighting_accepted_duplicate_rejected() {
        let mut s = GuidStore::new(8, 8, None);
        let n = NodeId(3);
        assert!(s.record(n, Guid(1), Upstream::Neighbor(NodeId(5)), T0));
        assert!(!s.record(n, Guid(1), Upstream::Neighbor(NodeId(6)), T0));
        // Upstream stays the first one.
        assert_eq!(s.upstream(n, Guid(1)), Some(Upstream::Neighbor(NodeId(5))));
        // Other nodes are unaffected.
        assert!(!s.has_seen(NodeId(4), Guid(1)));
    }

    #[test]
    fn fifo_eviction_per_node() {
        let mut s = GuidStore::new(4, 3, None);
        let n = NodeId(0);
        for i in 0..5u128 {
            assert!(s.record(n, Guid(i), Upstream::Origin, T0));
        }
        assert_eq!(s.node_len(n), 3);
        assert!(!s.has_seen(n, Guid(0)));
        assert!(!s.has_seen(n, Guid(1)));
        assert!(s.has_seen(n, Guid(2)));
        assert!(s.has_seen(n, Guid(4)));
        // An evicted GUID can be recorded again.
        assert!(s.record(n, Guid(0), Upstream::Neighbor(NodeId(1)), T0));
    }

    #[test]
    fn entries_expire_by_sim_time() {
        let mut s = GuidStore::new(4, 16, Some(Duration::from_ticks(100)));
        let n = NodeId(1);
        assert!(s.record(n, Guid(1), Upstream::Origin, SimTime::from_ticks(0)));
        assert!(s.record(n, Guid(2), Upstream::Origin, SimTime::from_ticks(60)));
        assert!(!s.record(n, Guid(1), Upstream::Origin, SimTime::from_ticks(100)));
        // At t=150 the first entry (age 150 > 100) is expired, the second
        // (age 90) survives.
        assert!(s.record(
            n,
            Guid(1),
            Upstream::Neighbor(NodeId(2)),
            SimTime::from_ticks(150)
        ));
        assert!(!s.record(n, Guid(2), Upstream::Origin, SimTime::from_ticks(150)));
        assert_eq!(s.upstream(n, Guid(1)), Some(Upstream::Neighbor(NodeId(2))));
    }

    #[test]
    fn reset_clears_only_that_node() {
        let mut s = GuidStore::new(4, 8, None);
        s.record(NodeId(0), Guid(1), Upstream::Origin, T0);
        s.record(NodeId(1), Guid(1), Upstream::Neighbor(NodeId(0)), T0);
        s.reset(NodeId(0));
        assert!(!s.has_seen(NodeId(0), Guid(1)));
        assert!(s.has_seen(NodeId(1), Guid(1)));
        assert_eq!(s.node_len(NodeId(0)), 0);
        assert!(s.record(NodeId(0), Guid(1), Upstream::Origin, T0));
    }

    #[test]
    fn sharded_range_uses_offset_indexing() {
        let mut s = GuidStore::with_range(1000, 4, 8, None);
        let n = NodeId(1002);
        assert!(s.record(n, Guid(7), Upstream::Neighbor(NodeId(3)), T0));
        assert!(s.has_seen(n, Guid(7)));
        assert_eq!(s.node_len(n), 1);
        s.reset(n);
        assert!(s.is_empty());
    }

    #[test]
    fn survives_growth_past_initial_table() {
        // Force several doublings and verify every entry stays findable.
        let mut s = GuidStore::new(16, 1 << 20, None);
        for i in 0..4096u128 {
            let n = NodeId((i % 16) as u32);
            assert!(s.record(n, Guid(i), Upstream::Neighbor(NodeId(9)), T0));
        }
        assert_eq!(s.len(), 4096);
        for i in 0..4096u128 {
            let n = NodeId((i % 16) as u32);
            assert!(s.has_seen(n, Guid(i)), "lost Guid({i})");
        }
    }

    /// The load-bearing test: a pseudo-random op mix must behave exactly
    /// like one `NodeState` per node — same accept/reject decisions, same
    /// upstream answers — including eviction, expiry, and resets.
    #[test]
    fn differential_against_node_state() {
        let nodes = 8usize;
        let capacity = 5usize;
        let expiry = Some(Duration::from_ticks(300));
        let mut store = GuidStore::new(nodes, capacity, expiry);
        let mut refs: Vec<NodeState> = (0..nodes)
            .map(|_| NodeState::with_expiry(capacity, expiry))
            .collect();
        let mut x = 0x0123_4567_89AB_CDEF_u64;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut now = 0u64;
        for _ in 0..20_000 {
            now += step() % 8;
            let t = SimTime::from_ticks(now);
            let node = NodeId((step() % nodes as u64) as u32);
            match step() % 10 {
                0 => {
                    store.reset(node);
                    refs[node.index()].reset();
                }
                1..=6 => {
                    // Small GUID space to provoke duplicates.
                    let guid = Guid(u128::from(step() % 40));
                    let up = if step() % 4 == 0 {
                        Upstream::Origin
                    } else {
                        Upstream::Neighbor(NodeId((step() % 8) as u32))
                    };
                    let a = store.record(node, guid, up, t);
                    let b = refs[node.index()].record(guid, up, t);
                    assert_eq!(a, b, "record diverged at t={now} node={node}");
                }
                _ => {
                    let guid = Guid(u128::from(step() % 40));
                    assert_eq!(
                        store.upstream(node, guid),
                        refs[node.index()].upstream(guid),
                        "upstream diverged at t={now} node={node}"
                    );
                    assert_eq!(
                        store.has_seen(node, guid),
                        refs[node.index()].has_seen(guid)
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        GuidStore::new(4, 0, None);
    }
}
