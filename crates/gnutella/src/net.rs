//! Byte-accurate deterministic link layer: per-node asymmetric
//! bandwidth, bounded byte buffers, per-link latency jitter, and seeded
//! loss — the fault model v2.
//!
//! The model follows the shape of real network simulators (ce-netsim):
//! a message travels `send → upload buffer → upload channel → link
//! (propagation + jitter, loss) → download channel → download buffer →
//! deliver`. Everything advances on `simkern` ticks — there is no wall
//! clock anywhere — so a run is byte-identical at any `ARQ_THREADS`, in
//! both the exact and the windowed sharded engines.
//!
//! ## Tick accounting
//!
//! Bandwidth is configured in bytes/tick (`f64`) but stored as integer
//! **milli-bytes per tick** so all arithmetic is exact: transmitting
//! `b` bytes over a channel of rate `r` mbpt takes `ceil(b·1000 / r)`
//! ticks. Each node carries two virtual-time counters, `up_free` and
//! `down_free` — the tick at which its upload (download) channel next
//! becomes idle. A send at `now` starts at `max(now, up_free)` and the
//! channel is work-conserving FIFO by construction. Queued bytes at
//! `now` are recovered from the counter as `(free − now) · r / 1000`,
//! which is what the bounded buffers are checked against: a message
//! that would push the backlog past the configured byte budget is
//! dropped with the distinct [`Transmission::BufferDropped`] outcome —
//! never counted as link loss.
//!
//! ## Relationship to [`crate::faults::FaultPlan`]
//!
//! The fault plan's per-message loss and latency jitter are the
//! degenerate (zero-bandwidth, unbuffered) corner of this model; see
//! [`loss_roll`] and [`jitter_draw`], which both layers share. When a
//! link plan is active the simulator folds the fault plan's loss and
//! jitter into the link (loss composes as `1 − (1−a)(1−b)`, jitter
//! adds) so a message is rolled exactly once; crash and silent
//! free-rider behavior stay with [`crate::faults::FaultState`]. A
//! zero-valued [`LinkPlan`] is a no-op: the simulator constructs no
//! [`LinkState`] and draws no RNG, so the run is byte-identical to one
//! with no plan at all.

use arq_content::FileId;
use arq_overlay::NodeId;
use arq_simkern::Rng64;

/// Shared primitive: Bernoulli loss roll. Draws from `rng` only when
/// `p > 0`, so a zero-loss plan consumes no randomness.
#[inline]
pub fn loss_roll(rng: &mut Rng64, p: f64) -> bool {
    p > 0.0 && rng.chance(p)
}

/// Shared primitive: uniform jitter draw in `[0, max)` ticks. Draws
/// from `rng` only when `max > 0`, so a zero-jitter plan consumes no
/// randomness.
#[inline]
pub fn jitter_draw(rng: &mut Rng64, max: u64) -> u64 {
    if max == 0 {
        0
    } else {
        rng.below(max)
    }
}

/// Declarative link-layer configuration (the `links(...)` spec).
///
/// All-zero (the default) is a no-op: the simulator behaves exactly as
/// if no plan were configured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkPlan {
    /// Upload bandwidth in bytes/tick for ordinary nodes. `0` means
    /// unconstrained (infinite-rate channel).
    pub up: f64,
    /// Download bandwidth in bytes/tick. `0` means unconstrained.
    pub down: f64,
    /// Upload buffer budget in bytes. `0` means unbounded; requires
    /// `up > 0` when set (a buffer without a channel is meaningless).
    pub up_buf: u64,
    /// Download buffer budget in bytes. `0` means unbounded; requires
    /// `down > 0` when set.
    pub down_buf: u64,
    /// Per-message link-loss probability in `[0, 1)`.
    pub loss: f64,
    /// Maximum extra propagation jitter in ticks (uniform `[0, jitter)`).
    pub jitter: u64,
    /// Fraction of nodes modeled as free-riders with the asymmetric
    /// low-upload profile, in `[0, 1)`.
    pub riders: f64,
    /// Upload bandwidth in bytes/tick for free-rider nodes; required
    /// positive when `riders > 0`.
    pub rider_up: f64,
}

impl Default for LinkPlan {
    fn default() -> Self {
        LinkPlan {
            up: 0.0,
            down: 0.0,
            up_buf: 0,
            down_buf: 0,
            loss: 0.0,
            jitter: 0,
            riders: 0.0,
            rider_up: 0.0,
        }
    }
}

/// Why a [`LinkPlan`] is invalid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkPlanError {
    /// A probability field fell outside `[0, 1)`.
    RateOutOfRange {
        /// Which field.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A bandwidth field was negative or not finite.
    BadBandwidth {
        /// Which field.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A byte buffer was bounded without the matching channel rate.
    BufferWithoutBandwidth {
        /// Which buffer field.
        field: &'static str,
    },
    /// `riders > 0` without a positive `rider_up` rate.
    RiderWithoutUplink,
}

impl std::fmt::Display for LinkPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkPlanError::RateOutOfRange { field, value } => {
                write!(f, "link rate `{field}` must be in [0, 1), got {value}")
            }
            LinkPlanError::BadBandwidth { field, value } => {
                write!(
                    f,
                    "link bandwidth `{field}` must be finite and non-negative, got {value}"
                )
            }
            LinkPlanError::BufferWithoutBandwidth { field } => {
                write!(
                    f,
                    "link buffer `{field}` requires the matching bandwidth to be positive"
                )
            }
            LinkPlanError::RiderWithoutUplink => {
                write!(f, "link free-riders require `riderup` to be positive")
            }
        }
    }
}

impl std::error::Error for LinkPlanError {}

impl LinkPlan {
    /// Checks every field's range.
    pub fn validate(&self) -> Result<(), LinkPlanError> {
        for (field, value) in [("loss", self.loss), ("riders", self.riders)] {
            if !(0.0..1.0).contains(&value) {
                return Err(LinkPlanError::RateOutOfRange { field, value });
            }
        }
        for (field, value) in [
            ("up", self.up),
            ("down", self.down),
            ("riderup", self.rider_up),
        ] {
            if !value.is_finite() || value < 0.0 {
                return Err(LinkPlanError::BadBandwidth { field, value });
            }
        }
        if self.up_buf > 0 && self.up <= 0.0 {
            return Err(LinkPlanError::BufferWithoutBandwidth { field: "upbuf" });
        }
        if self.down_buf > 0 && self.down <= 0.0 {
            return Err(LinkPlanError::BufferWithoutBandwidth { field: "downbuf" });
        }
        if self.riders > 0.0 && self.rider_up <= 0.0 {
            return Err(LinkPlanError::RiderWithoutUplink);
        }
        Ok(())
    }

    /// Whether this plan changes nothing (the zero-capacity config).
    pub fn is_noop(&self) -> bool {
        self.up == 0.0
            && self.down == 0.0
            && self.up_buf == 0
            && self.down_buf == 0
            && self.loss == 0.0
            && self.jitter == 0
            && self.riders == 0.0
    }

    /// Canonical spec string, mirroring the registry's `links(...)` form.
    pub fn describe(&self) -> String {
        format!(
            "links(up={},down={},upbuf={},downbuf={},loss={},jitter={},riders={},riderup={})",
            self.up,
            self.down,
            self.up_buf,
            self.down_buf,
            self.loss,
            self.jitter,
            self.riders,
            self.rider_up
        )
    }
}

/// Outcome of offering one message to the link layer at send time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transmission {
    /// The message survives; deliver it at the given tick (upload
    /// queueing + transmit + propagation + jitter + download queueing
    /// + receive).
    Delivered {
        /// Absolute delivery tick.
        at: u64,
    },
    /// Dropped on the link by the seeded loss process (counts toward
    /// `lost_messages`).
    Lost,
    /// Dropped by a full upload or download buffer (counts toward
    /// `buffer_dropped`, never toward `lost_messages`).
    BufferDropped,
}

/// Converts a bytes/tick rate to integer milli-bytes per tick.
fn milli(rate: f64) -> u64 {
    (rate * 1000.0).round() as u64
}

/// Ticks to move `bytes` through a channel of `mbpt` milli-bytes/tick.
/// An unconstrained channel (`mbpt == 0`) is instantaneous.
#[inline]
fn tx_ticks(bytes: u64, mbpt: u64) -> u64 {
    if mbpt == 0 {
        0
    } else {
        (bytes * 1000).div_ceil(mbpt)
    }
}

/// Bytes still queued on a channel whose virtual idle time is `free`,
/// observed at `now`.
#[inline]
fn queued_bytes(free: u64, now: u64, mbpt: u64) -> u64 {
    free.saturating_sub(now).saturating_mul(mbpt) / 1000
}

/// Live link-layer state for one run: per-node channel clocks, byte
/// budgets, free-rider assignment, and the seeded loss/jitter stream.
#[derive(Debug, Clone)]
pub struct LinkState {
    up_mbpt: u64,
    down_mbpt: u64,
    rider_mbpt: u64,
    up_buf: u64,
    down_buf: u64,
    loss: f64,
    jitter: u64,
    rng: Rng64,
    rider: Vec<bool>,
    up_free: Vec<u64>,
    down_free: Vec<u64>,
    up_bytes: Vec<u64>,
    down_bytes: Vec<u64>,
    query_sizes: Vec<u32>,
    hit_sizes: Vec<u32>,
    max_msg: u64,
    lost: u64,
    buffer_dropped: u64,
    bytes_sent: u64,
    bytes_delivered: u64,
    bytes_lost: u64,
    bytes_buffer_dropped: u64,
    send_done: u64,
}

impl LinkState {
    /// Builds link state for `nodes` nodes. `extra_loss`/`extra_jitter`
    /// fold a coexisting [`crate::faults::FaultPlan`]'s loss and jitter
    /// into the link so each message is rolled exactly once.
    /// `query_sizes`/`hit_sizes` are per-file wire sizes derived from
    /// the content model; `exempt` nodes (the trace collector) are
    /// never assigned the free-rider profile. `rng` must be a dedicated
    /// stream (label `"links"`).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        plan: &LinkPlan,
        nodes: usize,
        extra_loss: f64,
        extra_jitter: u64,
        query_sizes: Vec<u32>,
        hit_sizes: Vec<u32>,
        exempt: &[NodeId],
        mut rng: Rng64,
    ) -> Self {
        plan.validate().expect("invalid link plan");
        let loss = 1.0 - (1.0 - plan.loss) * (1.0 - extra_loss);
        let jitter = plan.jitter + extra_jitter;
        let rider = if plan.riders > 0.0 {
            (0..nodes)
                .map(|i| !exempt.contains(&NodeId(i as u32)) && rng.chance(plan.riders))
                .collect()
        } else {
            Vec::new()
        };
        let max_msg = query_sizes
            .iter()
            .chain(hit_sizes.iter())
            .copied()
            .max()
            .unwrap_or(0) as u64;
        LinkState {
            up_mbpt: milli(plan.up),
            down_mbpt: milli(plan.down),
            rider_mbpt: milli(plan.rider_up),
            up_buf: plan.up_buf,
            down_buf: plan.down_buf,
            loss,
            jitter,
            rng,
            rider,
            up_free: vec![0; nodes],
            down_free: vec![0; nodes],
            up_bytes: vec![0; nodes],
            down_bytes: vec![0; nodes],
            query_sizes,
            hit_sizes,
            max_msg,
            lost: 0,
            buffer_dropped: 0,
            bytes_sent: 0,
            bytes_delivered: 0,
            bytes_lost: 0,
            bytes_buffer_dropped: 0,
            send_done: 0,
        }
    }

    /// Wire size of the query for `file`, from the content model.
    #[inline]
    pub fn query_size(&self, file: FileId) -> u64 {
        u64::from(self.query_sizes[file.0 as usize])
    }

    /// Wire size of a hit answering the query for `file`.
    #[inline]
    pub fn hit_size(&self, file: FileId) -> u64 {
        u64::from(self.hit_sizes[file.0 as usize])
    }

    /// Upload rate for `node` in milli-bytes/tick (free-riders get the
    /// asymmetric low-upload profile).
    #[inline]
    fn up_rate(&self, node: NodeId) -> u64 {
        if self.rider.get(node.index()).copied().unwrap_or(false) {
            self.rider_mbpt
        } else {
            self.up_mbpt
        }
    }

    /// Whether `node` carries the free-rider link profile.
    pub fn is_rider(&self, node: NodeId) -> bool {
        self.rider.get(node.index()).copied().unwrap_or(false)
    }

    /// Number of nodes assigned the free-rider profile.
    pub fn rider_count(&self) -> usize {
        self.rider.iter().filter(|r| **r).count()
    }

    /// Offers one `bytes`-sized message from `from` to `to` at `now`,
    /// with `prop` ticks of caller-drawn propagation latency. Advances
    /// channel clocks, rolls loss/jitter, checks both buffers, and
    /// returns the outcome. All RNG draws happen here, in a fixed
    /// order, on the dedicated link stream.
    pub fn transmit(
        &mut self,
        now: u64,
        from: NodeId,
        to: NodeId,
        bytes: u64,
        prop: u64,
    ) -> Transmission {
        self.bytes_sent += bytes;
        let up_rate = self.up_rate(from);
        if self.up_buf > 0
            && up_rate > 0
            && queued_bytes(self.up_free[from.index()], now, up_rate) + bytes > self.up_buf
        {
            self.buffer_dropped += 1;
            self.bytes_buffer_dropped += bytes;
            return Transmission::BufferDropped;
        }
        let tx_start = now.max(self.up_free[from.index()]);
        let tx_done = tx_start.saturating_add(tx_ticks(bytes, up_rate));
        if up_rate > 0 {
            self.up_free[from.index()] = tx_done;
        }
        self.up_bytes[from.index()] += bytes;
        self.send_done = self.send_done.max(tx_done);
        if loss_roll(&mut self.rng, self.loss) {
            self.lost += 1;
            self.bytes_lost += bytes;
            return Transmission::Lost;
        }
        let arrival = tx_done
            .saturating_add(prop)
            .saturating_add(jitter_draw(&mut self.rng, self.jitter));
        if self.down_buf > 0
            && self.down_mbpt > 0
            && queued_bytes(self.down_free[to.index()], arrival, self.down_mbpt) + bytes
                > self.down_buf
        {
            self.buffer_dropped += 1;
            self.bytes_buffer_dropped += bytes;
            return Transmission::BufferDropped;
        }
        let rx_start = arrival.max(self.down_free[to.index()]);
        let rx_done = rx_start.saturating_add(tx_ticks(bytes, self.down_mbpt));
        if self.down_mbpt > 0 {
            self.down_free[to.index()] = rx_done;
        }
        Transmission::Delivered { at: rx_done }
    }

    /// Records a message completing delivery at its destination.
    pub fn on_delivered(&mut self, to: NodeId, bytes: u64) {
        self.bytes_delivered += bytes;
        self.down_bytes[to.index()] += bytes;
    }

    /// Marks the start of a query attempt: [`LinkState::send_done`]
    /// will report the latest upload-completion tick of the attempt's
    /// sends (or `now` if nothing left the buffer).
    pub fn begin_attempt(&mut self, now: u64) {
        self.send_done = now;
    }

    /// Latest upload-completion tick since [`LinkState::begin_attempt`]
    /// — the point the retry deadline clock starts from.
    pub fn send_done(&self) -> u64 {
        self.send_done
    }

    /// Messages dropped by the seeded link-loss process.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Messages dropped by a full upload or download buffer.
    pub fn buffer_dropped(&self) -> u64 {
        self.buffer_dropped
    }

    /// Byte conservation ledger: `(sent, delivered, lost,
    /// buffer_dropped)`. At the end of a drained run,
    /// `sent == delivered + lost + buffer_dropped` (nothing in flight).
    pub fn byte_ledger(&self) -> (u64, u64, u64, u64) {
        (
            self.bytes_sent,
            self.bytes_delivered,
            self.bytes_lost,
            self.bytes_buffer_dropped,
        )
    }

    /// Per-node uploaded bytes (accepted onto the wire).
    pub fn node_up_bytes(&self) -> &[u64] {
        &self.up_bytes
    }

    /// Per-node downloaded (delivered) bytes.
    pub fn node_down_bytes(&self) -> &[u64] {
        &self.down_bytes
    }

    /// Upper bound on `deliver − send` ticks for any message, given the
    /// propagation ceiling `prop_hi`. `None` when a channel is
    /// rate-limited but unbuffered (queueing delay is then unbounded —
    /// the windowed sharded engine rejects such plans; the exact engine
    /// does not need a bound).
    pub fn max_delay(&self, prop_hi: u64) -> Option<u64> {
        let mut total = prop_hi + self.jitter;
        let up_slow = match (self.up_mbpt, self.rider.is_empty()) {
            (0, true) => 0,
            (0, false) => self.rider_mbpt,
            (r, true) => r,
            (r, false) => r.min(self.rider_mbpt),
        };
        if up_slow > 0 {
            if self.up_buf == 0 {
                return None;
            }
            total += tx_ticks(self.up_buf + self.max_msg, up_slow);
        }
        if self.down_mbpt > 0 {
            if self.down_buf == 0 {
                return None;
            }
            total += tx_ticks(self.down_buf + self.max_msg, self.down_mbpt);
        }
        Some(total + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sizes() -> (Vec<u32>, Vec<u32>) {
        (vec![45, 50], vec![79, 84])
    }

    fn plan() -> LinkPlan {
        LinkPlan {
            up: 10.0,
            down: 40.0,
            up_buf: 200,
            down_buf: 400,
            ..Default::default()
        }
    }

    fn state(plan: &LinkPlan) -> LinkState {
        let (q, h) = sizes();
        LinkState::new(plan, 4, 0.0, 0, q, h, &[], Rng64::seed_from(7))
    }

    #[test]
    fn default_plan_is_noop_and_valid() {
        let p = LinkPlan::default();
        assert!(p.is_noop());
        p.validate().expect("noop plan is valid");
    }

    #[test]
    fn validate_rejects_bad_fields() {
        assert!(matches!(
            LinkPlan {
                loss: 1.0,
                ..Default::default()
            }
            .validate(),
            Err(LinkPlanError::RateOutOfRange { field: "loss", .. })
        ));
        assert!(matches!(
            LinkPlan {
                up: -1.0,
                ..Default::default()
            }
            .validate(),
            Err(LinkPlanError::BadBandwidth { field: "up", .. })
        ));
        assert!(matches!(
            LinkPlan {
                up_buf: 64,
                ..Default::default()
            }
            .validate(),
            Err(LinkPlanError::BufferWithoutBandwidth { field: "upbuf" })
        ));
        assert!(matches!(
            LinkPlan {
                riders: 0.5,
                ..Default::default()
            }
            .validate(),
            Err(LinkPlanError::RiderWithoutUplink)
        ));
    }

    #[test]
    fn serialized_transmits_queue_on_the_upload_channel() {
        let mut s = state(&plan());
        // 45 bytes at 10 B/tick = 5 ticks up + 2 ticks down (40 B/tick).
        let a = s.transmit(0, NodeId(0), NodeId(1), 45, 10);
        assert_eq!(a, Transmission::Delivered { at: 17 });
        // Second message queues behind the first upload: starts at 5.
        let b = s.transmit(0, NodeId(0), NodeId(2), 45, 10);
        assert_eq!(b, Transmission::Delivered { at: 22 });
    }

    #[test]
    fn full_upload_buffer_drops_with_distinct_outcome() {
        let mut s = state(&LinkPlan {
            up: 1.0,
            up_buf: 100,
            ..Default::default()
        });
        // Each 45 B message takes 45 ticks to upload; backlog builds.
        assert!(matches!(
            s.transmit(0, NodeId(0), NodeId(1), 45, 1),
            Transmission::Delivered { .. }
        ));
        assert!(matches!(
            s.transmit(0, NodeId(0), NodeId(1), 45, 1),
            Transmission::Delivered { .. }
        ));
        // 90 bytes queued (45 in flight + 45 waiting); the third would
        // make 135 > 100.
        assert_eq!(
            s.transmit(0, NodeId(0), NodeId(1), 45, 1),
            Transmission::BufferDropped
        );
        assert_eq!(s.buffer_dropped(), 1);
        assert_eq!(s.lost(), 0);
        let (sent, _, lost, buffered) = s.byte_ledger();
        assert_eq!(sent, 135);
        assert_eq!(lost, 0);
        assert_eq!(buffered, 45);
    }

    #[test]
    fn byte_ledger_conserves() {
        let mut s = state(&LinkPlan {
            loss: 0.3,
            jitter: 5,
            ..plan()
        });
        let mut delivered = Vec::new();
        for i in 0..200u32 {
            let from = NodeId(i % 4);
            let to = NodeId((i + 1) % 4);
            match s.transmit(u64::from(i), from, to, 45, 10) {
                Transmission::Delivered { .. } => delivered.push((to, 45)),
                Transmission::Lost | Transmission::BufferDropped => {}
            }
        }
        for (to, b) in delivered {
            s.on_delivered(to, b);
        }
        let (sent, del, lost, buffered) = s.byte_ledger();
        assert_eq!(sent, del + lost + buffered);
        assert_eq!(sent, 200 * 45);
    }

    #[test]
    fn max_delay_requires_bounded_buffers() {
        assert!(state(&plan()).max_delay(50).is_some());
        let unbuffered = LinkPlan {
            up: 10.0,
            ..Default::default()
        };
        assert_eq!(state(&unbuffered).max_delay(50), None);
        // No bandwidth constraint at all: latency + jitter bound.
        let latency_only = LinkPlan {
            loss: 0.1,
            jitter: 8,
            ..Default::default()
        };
        assert_eq!(state(&latency_only).max_delay(50), Some(59));
    }

    #[test]
    fn delivery_never_precedes_max_delay_bound() {
        let p = LinkPlan {
            up: 4.0,
            down: 16.0,
            up_buf: 300,
            down_buf: 600,
            jitter: 12,
            loss: 0.05,
            ..Default::default()
        };
        let mut s = state(&p);
        let bound = s.max_delay(50).expect("bounded");
        for i in 0..500u64 {
            if let Transmission::Delivered { at } = s.transmit(i, NodeId(0), NodeId(1), 84, 50) {
                assert!(
                    at - i <= bound,
                    "delivery {at} from {i} exceeds bound {bound}"
                );
            }
        }
    }

    #[test]
    fn riders_get_the_slow_upload_profile() {
        let p = LinkPlan {
            up: 100.0,
            up_buf: 10_000,
            riders: 0.5,
            rider_up: 1.0,
            ..Default::default()
        };
        let (q, h) = sizes();
        let s = LinkState::new(&p, 64, 0.0, 0, q, h, &[NodeId(0)], Rng64::seed_from(3));
        assert!(s.rider_count() > 0);
        assert!(!s.is_rider(NodeId(0)), "exempt node must not be a rider");
    }

    #[test]
    fn deadline_clock_tracks_send_completion() {
        let mut s = state(&plan());
        s.begin_attempt(100);
        assert_eq!(s.send_done(), 100);
        s.transmit(100, NodeId(0), NodeId(1), 45, 10);
        // 45 B at 10 B/tick: upload finishes at 105.
        assert_eq!(s.send_done(), 105);
    }
}
