//! Ping/Pong peer discovery.
//!
//! The half of the Gnutella protocol the search simulator abstracts
//! away: Ping descriptors flood outward under a TTL, and every receiving
//! servent answers with a Pong carrying its address, teaching the pinger
//! about peers beyond its direct neighbors. Rejoining nodes use the
//! harvest to choose attachment points, which biases reconnection toward
//! the neighborhood they probed instead of a uniform global choice —
//! [`rewire_via_discovery`] is the drop-in alternative to
//! `arq_overlay::churn::rewire_join`.
//!
//! The simulation is synchronous (a BFS with per-hop byte accounting)
//! because discovery traffic does not interact with in-flight queries;
//! what matters for the workspace is the *peer set* it yields and its
//! message cost.

use crate::message::HEADER_BYTES;
use arq_overlay::{Graph, NodeId};
use arq_simkern::Rng64;
use std::collections::VecDeque;

/// Pong payload: port + IPv4 + two 4-byte share counters.
pub const PONG_PAYLOAD_BYTES: u64 = 14;

/// The result of one ping crawl.
#[derive(Debug, Clone)]
pub struct Discovery {
    /// Peers that answered, ordered by (hop distance, id) — nearest
    /// first.
    pub peers: Vec<NodeId>,
    /// Ping transmissions performed.
    pub pings: u64,
    /// Pong transmissions performed (each travels the reverse path).
    pub pongs: u64,
}

impl Discovery {
    /// Total bytes this crawl put on the wire.
    pub fn bytes(&self) -> u64 {
        self.pings * HEADER_BYTES + self.pongs * (HEADER_BYTES + PONG_PAYLOAD_BYTES)
    }
}

/// Floods a Ping from `origin` with the given `ttl` and collects the
/// Pongs. Peers are discovered in BFS order; each discovered peer's Pong
/// travels back hop-by-hop (accounted per hop, as on the real network).
pub fn ping_crawl(graph: &Graph, origin: NodeId, ttl: u32) -> Discovery {
    let mut result = Discovery {
        peers: Vec::new(),
        pings: 0,
        pongs: 0,
    };
    if !graph.is_alive(origin) || ttl == 0 {
        return result;
    }
    let mut dist = vec![u32::MAX; graph.len()];
    dist[origin.index()] = 0;
    let mut q = VecDeque::new();
    q.push_back(origin);
    while let Some(u) = q.pop_front() {
        let d = dist[u.index()];
        if d >= ttl {
            continue;
        }
        for v in graph.live_neighbors(u) {
            // The ping is transmitted whether or not v is new (floods
            // revisit nodes; duplicates are dropped on arrival).
            result.pings += 1;
            if dist[v.index()] == u32::MAX {
                dist[v.index()] = d + 1;
                result.peers.push(v);
                // v's pong travels d+1 hops back to the origin.
                result.pongs += u64::from(d) + 1;
                q.push_back(v);
            }
        }
    }
    // BFS pushes in (distance, neighbor-order); normalize ties by id for
    // deterministic output.
    let dist_ref = &dist;
    result.peers.sort_by_key(|p| (dist_ref[p.index()], p.0));
    result
}

/// Rewires a rejoining node using a ping crawl from a live bootstrap
/// peer: the node attaches to up to `target_degree` peers sampled from
/// the crawl harvest (bootstrap included). Falls back to the bootstrap
/// alone when the crawl finds nobody. Returns the chosen peers.
pub fn rewire_via_discovery(
    graph: &mut Graph,
    node: NodeId,
    bootstrap: NodeId,
    ttl: u32,
    target_degree: usize,
    rng: &mut Rng64,
) -> Vec<NodeId> {
    debug_assert!(graph.is_alive(node), "rejoin the node before rewiring");
    let crawl = ping_crawl(graph, bootstrap, ttl);
    let mut candidates: Vec<NodeId> = std::iter::once(bootstrap)
        .chain(crawl.peers)
        .filter(|&p| p != node && graph.is_alive(p))
        .collect();
    candidates.dedup();
    if candidates.is_empty() {
        return Vec::new();
    }
    let k = target_degree.min(candidates.len());
    let picks = rng.sample_indices(candidates.len(), k);
    let mut chosen = Vec::with_capacity(k);
    for idx in picks {
        let peer = candidates[idx];
        if graph.add_edge(node, peer) {
            chosen.push(peer);
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use arq_overlay::generate::{clique, ring};

    #[test]
    fn crawl_discovers_the_ttl_ball() {
        let g = ring(10);
        let d = ping_crawl(&g, NodeId(0), 2);
        // Within 2 hops of node 0 on a ring: 1, 2, 8, 9.
        assert_eq!(d.peers, vec![NodeId(1), NodeId(9), NodeId(2), NodeId(8)]);
        // Nearest first.
        assert_eq!(d.peers[0], NodeId(1));
        assert!(d.pings > 0 && d.pongs > 0);
        assert!(d.bytes() > 0);
    }

    #[test]
    fn ttl_one_sees_only_neighbors() {
        let g = clique(5);
        let d = ping_crawl(&g, NodeId(2), 1);
        assert_eq!(d.peers.len(), 4);
        assert_eq!(d.pings, 4);
        assert_eq!(d.pongs, 4); // each pong travels 1 hop
    }

    #[test]
    fn crawl_from_dead_or_zero_ttl_is_empty() {
        let mut g = ring(5);
        assert!(ping_crawl(&g, NodeId(0), 0).peers.is_empty());
        g.depart(NodeId(0));
        assert!(ping_crawl(&g, NodeId(0), 3).peers.is_empty());
    }

    #[test]
    fn pong_cost_grows_with_distance() {
        let g = ring(12);
        let near = ping_crawl(&g, NodeId(0), 1);
        let far = ping_crawl(&g, NodeId(0), 4);
        assert!(far.pongs > near.pongs);
        // Far crawl: peers at distance d cost d pong hops each:
        // 2*(1+2+3+4) = 20.
        assert_eq!(far.pongs, 20);
    }

    #[test]
    fn discovery_rewiring_attaches_locally() {
        let mut g = ring(20);
        // Node 10 leaves and rejoins near node 0.
        g.depart(NodeId(10));
        g.rejoin(NodeId(10));
        let mut rng = Rng64::seed_from(4);
        let chosen = rewire_via_discovery(&mut g, NodeId(10), NodeId(0), 2, 3, &mut rng);
        assert!(!chosen.is_empty());
        g.check_invariants().unwrap();
        // Every chosen peer is within the crawl ball around node 0
        // (bootstrap, or ≤ 2 hops from it on the healed ring).
        for p in &chosen {
            let within: Vec<NodeId> = std::iter::once(NodeId(0))
                .chain(ping_crawl(&g, NodeId(0), 2).peers)
                .collect();
            assert!(
                within.contains(p) || *p == NodeId(10),
                "peer {p} outside the discovery ball"
            );
        }
    }

    #[test]
    fn discovery_rewiring_survives_isolated_bootstrap() {
        let mut g = arq_overlay::Graph::new(3);
        // Bootstrap is alive but alone.
        let mut rng = Rng64::seed_from(5);
        let chosen = rewire_via_discovery(&mut g, NodeId(1), NodeId(0), 3, 2, &mut rng);
        assert_eq!(
            chosen,
            vec![NodeId(0)],
            "must at least attach to the bootstrap"
        );
    }
}
