//! The network simulator.
//!
//! A single-threaded, deterministic discrete-event simulation. One run
//! wires together:
//!
//! * a topology from `arq-overlay` (plus optional churn);
//! * a content catalog and per-node workload from `arq-content`;
//! * the protocol mechanics of this crate (GUID dedup, TTL, reverse-path
//!   hits);
//! * a [`ForwardingPolicy`] making every relay decision;
//! * optionally an expanding-ring reissue schedule at the querier;
//! * optionally a [`Collector`] recording the paper's trace at one node.
//!
//! Determinism: all randomness flows from labelled
//! [`arq_simkern::StreamFactory`] streams, events tie-break by insertion
//! order, and policies receive their own RNG stream — two runs with the
//! same [`SimConfig`] produce byte-identical results.

use crate::collector::Collector;
use crate::faults::{FaultPlan, FaultState};
use crate::guid::GuidGen;
use crate::message::{HitMsg, QueryMsg};
use crate::metrics::{MetricsBuilder, QueryOutcome, RunMetrics};
use crate::net::{LinkPlan, LinkState, Transmission};
use crate::node::Upstream;
use crate::policy::{ForwardCtx, ForwardingPolicy, ShortcutProposal};
use crate::store::GuidStore;
use arq_content::{Catalog, CatalogConfig, FileId, QueryKey, WorkloadConfig, WorkloadGen};
use arq_obs::{DropKind, Event as ObsEvent, Obs, ObsReport};
use arq_overlay::churn::{rewire_join, ChurnKind};
use arq_overlay::{generate, ChurnConfig, ChurnProcess, Graph, NodeId};
use arq_simkern::time::Duration;
use arq_simkern::{Backoff, EventQueue, Rng64, SimTime, StreamFactory};
use arq_trace::record::Guid;
use arq_trace::TraceDb;
use std::collections::HashMap;

pub mod sharded;

/// Which random topology to build.
#[derive(Debug, Clone)]
pub enum Topology {
    /// Barabási–Albert preferential attachment with `m` edges per node.
    BarabasiAlbert {
        /// Edges added per joining node.
        m: usize,
    },
    /// Erdős–Rényi with edge probability `p`.
    ErdosRenyi {
        /// Edge probability.
        p: f64,
    },
    /// Watts–Strogatz ring lattice (`k` per side) with rewiring `beta`.
    WattsStrogatz {
        /// Lattice half-degree.
        k: usize,
        /// Rewiring probability.
        beta: f64,
    },
    /// Two-tier superpeer topology: ids `0..n_super` form the core.
    SuperPeer {
        /// Core size.
        n_super: usize,
        /// Core interconnection degree.
        super_degree: usize,
    },
}

/// Expanding-ring reissue schedule (Lv et al., baseline).
#[derive(Debug, Clone)]
pub struct RingSchedule {
    /// Successive TTLs to try.
    pub ttls: Vec<u32>,
    /// How long to wait for a hit before escalating.
    pub wait: Duration,
}

/// Timeout-driven retry schedule for individual queries.
///
/// Every issued query gets a deadline. If no hit arrives in time the
/// issuer reissues under a **fresh GUID** with an escalated TTL
/// (expanding-ring style) and waits again, successive waits growing
/// geometrically per [`Backoff`]. A query that exhausts `max_attempts`
/// without a hit is marked expired. On every timeout — including the
/// final, expiring one — the forwarding policy receives
/// [`ForwardingPolicy::on_failure`] feedback for the failed attempt's
/// first-hop targets, which is how learning policies notice dead rules.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Wait before the first deadline fires.
    pub deadline: Duration,
    /// Total attempts allowed (initial issue + retries), at least 1.
    pub max_attempts: u32,
    /// Geometric growth factor for successive waits (>= 1.0).
    pub backoff: f64,
    /// TTL added per retry (attempt `k` uses `ttl + ttl_step * k`).
    pub ttl_step: u32,
    /// TTL ceiling for the escalation.
    pub max_ttl: u32,
}

impl RetryPolicy {
    /// A moderate default: 3 attempts, doubling waits, +1 TTL per retry.
    pub fn default_with(deadline: Duration, max_ttl: u32) -> Self {
        RetryPolicy {
            deadline,
            max_attempts: 3,
            backoff: 2.0,
            ttl_step: 1,
            max_ttl,
        }
    }
}

/// A parameter of an [`AdaptPlan`] is out of range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdaptPlanError {
    /// A field that must be positive was zero.
    ZeroField {
        /// Which field.
        field: &'static str,
    },
}

impl std::fmt::Display for AdaptPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdaptPlanError::ZeroField { field } => {
                write!(f, "adapt plan field `{field}` must be positive")
            }
        }
    }
}

impl std::error::Error for AdaptPlanError {}

/// Live topology adaptation on a tumbling schedule.
///
/// Every `every` ticks the simulator runs one adaptation round:
///
/// 1. **Retire** applied shortcuts whose source rule decayed out of the
///    policy ([`ForwardingPolicy::shortcut_active`] turned false) or
///    whose edge vanished because an endpoint left the overlay.
/// 2. **Apply** the proposals collected at the *previous* boundary,
///    re-validating endpoint liveness first — a proposal whose endpoint
///    crashed between the propose and apply boundaries is rejected and
///    counted, never applied. At most `budget` shortcuts are applied per
///    round, and no node may own more than `degree` shortcut edges.
/// 3. **Collect** fresh proposals via
///    [`ForwardingPolicy::propose_shortcuts`] for the next boundary.
///
/// Rounds consume no randomness, so a plan over a policy that proposes
/// nothing (plain flooding) is byte-identical to no plan at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptPlan {
    /// Interval between adaptation rounds (the tumbling boundary).
    pub every: Duration,
    /// Max shortcuts applied per round, network-wide.
    pub budget: usize,
    /// Max shortcut edges any single node may own (as asker).
    pub degree: usize,
}

impl AdaptPlan {
    /// A moderate default: rounds every `every`, 8 shortcuts per round,
    /// at most 2 owned per node.
    pub fn default_with(every: Duration) -> Self {
        AdaptPlan {
            every,
            budget: 8,
            degree: 2,
        }
    }

    /// Checks every field is positive.
    pub fn validate(&self) -> Result<(), AdaptPlanError> {
        if self.every.ticks() == 0 {
            return Err(AdaptPlanError::ZeroField { field: "every" });
        }
        if self.budget == 0 {
            return Err(AdaptPlanError::ZeroField { field: "budget" });
        }
        if self.degree == 0 {
            return Err(AdaptPlanError::ZeroField { field: "degree" });
        }
        Ok(())
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of overlay nodes.
    pub nodes: usize,
    /// Topology generator.
    pub topology: Topology,
    /// Query TTL (ignored when `ring` is set).
    pub ttl: u32,
    /// Number of queries to issue.
    pub queries: usize,
    /// Mean inter-query interval (global Poisson process), in ticks.
    pub mean_query_interval: Duration,
    /// Per-hop latency range `[lo, hi)` in ticks.
    pub hop_latency: (u64, u64),
    /// Churn model; `None` freezes the topology.
    pub churn: Option<ChurnConfig>,
    /// Edges re-established when a node rejoins.
    pub rejoin_degree: usize,
    /// When set, rejoining nodes discover attachment points with a
    /// ping crawl of this TTL from a random live bootstrap peer (instead
    /// of wiring to uniform random peers), biasing reconnection toward
    /// one neighborhood as real bootstrap caches do.
    pub rejoin_via_ping: Option<u32>,
    /// Per-node GUID cache capacity.
    pub guid_cache: usize,
    /// Fraction of nodes with faulty GUID generators.
    pub faulty_fraction: f64,
    /// Node to instrument with a trace collector.
    pub collector: Option<NodeId>,
    /// Content catalog shape.
    pub catalog: CatalogConfig,
    /// Workload shape.
    pub workload: WorkloadConfig,
    /// Expanding-ring schedule; `None` means single-shot queries.
    /// Mutually exclusive with `retry`.
    pub ring: Option<RingSchedule>,
    /// Probability that any transmitted message is silently lost in
    /// flight (UDP-style failure injection; 0.0 disables).
    pub loss_rate: f64,
    /// Fault-injection plan (loss, jitter, crashes, silent free-riders);
    /// `None` — or a plan with every rate zero — injects nothing.
    pub faults: Option<FaultPlan>,
    /// Per-query deadline/retry lifecycle; `None` means queries are
    /// fire-and-forget. Mutually exclusive with `ring`.
    pub retry: Option<RetryPolicy>,
    /// Byte-accurate link layer (bandwidth, bounded buffers, loss,
    /// jitter); `None` — or an all-zero plan — models infinite-capacity
    /// links and is byte-identical to the pre-link simulator. When
    /// active it subsumes the fault plan's loss and jitter.
    pub links: Option<LinkPlan>,
    /// Age limit for seen-GUID table entries; `None` keeps entries until
    /// LRU capacity eviction.
    pub guid_expiry: Option<Duration>,
    /// Live topology adaptation on a tumbling schedule; `None` keeps the
    /// overlay as churn leaves it. A plan over a policy that proposes no
    /// shortcuts is byte-identical to no plan.
    pub adapt: Option<AdaptPlan>,
    /// When `true`, an issuer downloads the file after its first hit,
    /// adding it to its own library — the replication feedback loop that
    /// spreads popular content through real file-sharing networks.
    pub download_on_hit: bool,
    /// Master seed.
    pub seed: u64,
}

impl SimConfig {
    /// A small-but-realistic default: 500-node power-law overlay, TTL 5.
    pub fn default_with(nodes: usize, queries: usize, seed: u64) -> Self {
        SimConfig {
            nodes,
            topology: Topology::BarabasiAlbert { m: 3 },
            ttl: 5,
            queries,
            mean_query_interval: Duration::from_ticks(2_000),
            hop_latency: (20, 80),
            churn: None,
            rejoin_degree: 3,
            rejoin_via_ping: None,
            guid_cache: 4_096,
            faulty_fraction: 0.02,
            collector: None,
            catalog: CatalogConfig::default(),
            workload: WorkloadConfig::default(),
            ring: None,
            loss_rate: 0.0,
            faults: None,
            retry: None,
            links: None,
            guid_expiry: None,
            adapt: None,
            download_on_hit: false,
            seed,
        }
    }
}

enum Event {
    Issue {
        qidx: usize,
    },
    Query {
        to: NodeId,
        from: NodeId,
        msg: QueryMsg,
        /// Index of the query this message is accounted to (resolved
        /// once at issue time from the GUID, so deliveries never touch
        /// a GUID→query map).
        qidx: usize,
    },
    Hit {
        to: NodeId,
        from: NodeId,
        msg: HitMsg,
        qidx: usize,
    },
    RingTimeout {
        qidx: usize,
        stage: usize,
    },
    QueryDeadline {
        qidx: usize,
        attempt: u32,
    },
    Crash {
        node: NodeId,
    },
}

/// Everything a finished run yields.
#[derive(Debug)]
pub struct SimResult {
    /// Aggregated traffic/search metrics.
    pub metrics: RunMetrics,
    /// The collector's raw trace, when a collector was configured.
    pub trace: Option<TraceDb>,
    /// Final simulated time.
    pub end_time: SimTime,
    /// Distinct query GUIDs observed across all attempts (with proper
    /// generators this equals `total_attempts`: every retry re-draws).
    pub distinct_query_guids: usize,
    /// Query attempts issued across all queries (initial + reissues).
    pub total_attempts: u64,
    /// Structured event trace and metrics, when an enabled [`Obs`] was
    /// attached via [`Network::with_obs`]. `None` otherwise.
    pub obs: Option<ObsReport>,
    /// Link-layer byte ledger `(sent, delivered, lost, buffer_dropped)`
    /// when a link plan was active. A drained run conserves bytes:
    /// `sent == delivered + lost + buffer_dropped`.
    pub link_bytes: Option<(u64, u64, u64, u64)>,
}

struct LiveQuery {
    node: NodeId,
    key: QueryKey,
    issued_at: SimTime,
    outcome: QueryOutcome,
    /// First-hop targets of the most recent attempt — the neighbors the
    /// issuer's policy picked; they receive failure feedback on timeout.
    first_hop: Vec<NodeId>,
    /// Responders whose hits already reached the issuer (duplicate
    /// suppression across retries).
    responders: Vec<NodeId>,
}

/// Book-keeping of an active [`AdaptPlan`]: the two-phase
/// propose-then-apply pipeline plus the set of shortcuts currently
/// applied to the overlay.
struct AdaptState {
    plan: AdaptPlan,
    /// Boundary time of the next adaptation round.
    next_round: SimTime,
    /// Proposals collected at the previous boundary, awaiting liveness
    /// re-validation and application at the next.
    pending: Vec<ShortcutProposal>,
    /// Shortcuts applied to the overlay and not yet retired.
    applied: Vec<ShortcutProposal>,
    /// Shortcut edges currently owned per node (asker side), bounded by
    /// `plan.degree`.
    degree: Vec<u32>,
}

impl AdaptState {
    fn new(plan: AdaptPlan, nodes: usize) -> Self {
        AdaptState {
            next_round: SimTime::ZERO.saturating_add(plan.every),
            pending: Vec::new(),
            applied: Vec::new(),
            degree: vec![0; nodes],
            plan,
        }
    }
}

/// One simulation instance. Build with [`Network::new`], consume with
/// [`Network::run`].
pub struct Network<P: ForwardingPolicy> {
    cfg: SimConfig,
    graph: Graph,
    catalog: Catalog,
    workload: WorkloadGen,
    policy: P,
    /// Network-wide GUID dedup + reverse-path memory in struct-of-arrays
    /// layout (one open-addressed table instead of a HashMap per node).
    store: GuidStore,
    guid_gens: Vec<GuidGen>,
    churn: Option<ChurnProcess>,
    collector: Option<Collector>,
    queue: EventQueue<Event>,
    queries: Vec<LiveQuery>,
    /// First query to use each GUID. Written once per issued attempt
    /// (cold path); per-message accounting rides on the `qidx` embedded
    /// in the events instead of hitting this map.
    guid_to_query: HashMap<Guid, usize>,
    issue_rng: Rng64,
    net_rng: Rng64,
    policy_rng: Rng64,
    faults: Option<FaultState>,
    /// Byte-accurate link layer; `None` models infinite-capacity links.
    links: Option<LinkState>,
    /// Nodes that crashed permanently; their churn events are ignored.
    crashed: Vec<bool>,
    /// Live topology adaptation; `None` when no plan is configured.
    adapt: Option<AdaptState>,
    obs: Obs,
    /// Reused candidate buffer for [`Network::relay`] — the hottest call
    /// in a flood, so it must not allocate per hop.
    candidate_scratch: Vec<NodeId>,
    /// Reused selection buffer, filled by
    /// [`ForwardingPolicy::select_into`] on every relay.
    selected_scratch: Vec<NodeId>,
}

impl<P: ForwardingPolicy> Network<P> {
    /// Builds the network, workload, and event schedule.
    pub fn new(cfg: SimConfig, policy: P) -> Self {
        Self::build(cfg, policy, None)
    }

    /// Like [`Network::new`] but runs on a caller-supplied overlay graph
    /// (must have exactly `cfg.nodes` nodes). Used by the
    /// topology-adaptation experiment to replay a workload on a rewired
    /// overlay.
    pub fn with_graph(cfg: SimConfig, policy: P, graph: Graph) -> Self {
        assert_eq!(
            graph.len(),
            cfg.nodes,
            "supplied graph size does not match cfg.nodes"
        );
        Self::build(cfg, policy, Some(graph))
    }

    fn build(cfg: SimConfig, mut policy: P, prebuilt: Option<Graph>) -> Self {
        assert!(cfg.nodes >= 4, "network too small");
        assert!(cfg.queries > 0, "no queries to run");
        assert!(cfg.hop_latency.1 > cfg.hop_latency.0, "empty latency range");
        assert!(
            (0.0..1.0).contains(&cfg.loss_rate),
            "loss rate must be in [0, 1)"
        );
        assert!(
            cfg.ring.is_none() || cfg.retry.is_none(),
            "ring and retry schedules are mutually exclusive"
        );
        if let Some(rp) = &cfg.retry {
            // Backoff::new enforces deadline > 0, backoff >= 1, attempts > 0.
            let _ = Backoff::new(rp.deadline, rp.backoff, rp.max_attempts);
            assert!(
                rp.max_ttl >= cfg.ttl,
                "retry max_ttl below the base TTL would shrink the search"
            );
        }
        if let Some(plan) = &cfg.faults {
            plan.validate().expect("invalid fault plan");
        }
        if let Some(plan) = &cfg.links {
            plan.validate().expect("invalid link plan");
        }
        if let Some(plan) = &cfg.adapt {
            plan.validate().expect("invalid adapt plan");
        }
        let streams = StreamFactory::new(cfg.seed);
        let mut topo_rng = streams.stream("topology");
        let graph = prebuilt.unwrap_or_else(|| match cfg.topology {
            Topology::BarabasiAlbert { m } => {
                generate::barabasi_albert(cfg.nodes, m, &mut topo_rng)
            }
            Topology::ErdosRenyi { p } => {
                let mut g = generate::erdos_renyi(cfg.nodes, p, &mut topo_rng);
                generate::ensure_connected(&mut g, &mut topo_rng);
                g
            }
            Topology::WattsStrogatz { k, beta } => {
                generate::watts_strogatz(cfg.nodes, k, beta, &mut topo_rng)
            }
            Topology::SuperPeer {
                n_super,
                super_degree,
            } => generate::superpeer(cfg.nodes, n_super, super_degree, &mut topo_rng).0,
        });
        graph
            .check_invariants()
            .expect("generator produced a broken graph");

        let mut cat_rng = streams.stream("catalog");
        let catalog = Catalog::generate(cfg.catalog.clone(), &mut cat_rng);
        let mut wl_rng = streams.stream("workload");
        let workload =
            WorkloadGen::generate(cfg.nodes, &catalog, cfg.workload.clone(), &mut wl_rng);

        let mut guid_rng = streams.stream("guid");
        let guid_gens = (0..cfg.nodes)
            .map(|_| {
                if guid_rng.chance(cfg.faulty_fraction) {
                    GuidGen::faulty(4, &mut guid_rng)
                } else {
                    GuidGen::Proper
                }
            })
            .collect();

        let churn = cfg.churn.clone().map(|mut c| {
            if let Some(col) = cfg.collector {
                // The collector must stay online for the full capture,
                // like the paper's instrumented client.
                if !c.pinned.contains(&col) {
                    c.pinned.push(col);
                }
            }
            ChurnProcess::new(cfg.nodes, c, streams.stream("churn"))
        });

        let mut issue_rng = streams.stream("issue");
        let mut queue = EventQueue::with_capacity(cfg.queries * 4);
        let mut t = SimTime::ZERO;
        for qidx in 0..cfg.queries {
            let dt = issue_rng
                .exp(cfg.mean_query_interval.ticks() as f64)
                .max(1.0) as u64;
            t = t.saturating_add(Duration::from_ticks(dt));
            queue.schedule(t, Event::Issue { qidx });
        }

        // The fault layer draws from its own stream, so a zero-rate plan
        // (or no plan) leaves every other stream untouched. Crash times
        // span the issue horizon — the last scheduled query.
        let faults = cfg.faults.clone().map(|plan| {
            let exempt: Vec<NodeId> = cfg.collector.into_iter().collect();
            FaultState::new(plan, cfg.nodes, t, &exempt, streams.stream("faults"))
        });
        if let Some(f) = &faults {
            for &(at, node) in f.crash_schedule() {
                queue.schedule(at, Event::Crash { node });
            }
        }

        // The link layer only exists for non-noop plans and draws from
        // its own labelled stream, so a zero-capacity plan (or none)
        // leaves the run byte-identical to the pre-link simulator. An
        // active link layer subsumes the fault plan's per-message loss
        // and jitter: they are folded in here and the per-delivery
        // fault rolls are skipped for the rest of the run.
        let links = match &cfg.links {
            Some(plan) if !plan.is_noop() => {
                let exempt: Vec<NodeId> = cfg.collector.into_iter().collect();
                let (extra_loss, extra_jitter) =
                    cfg.faults.as_ref().map_or((0.0, 0), |f| (f.loss, f.jitter));
                let query_sizes: Vec<u32> = (0..catalog.len())
                    .map(|i| QueryMsg::wire_size_for(catalog.query_len(FileId(i as u32))) as u32)
                    .collect();
                let hit_sizes: Vec<u32> = (0..catalog.len())
                    .map(|i| HitMsg::wire_size_for(catalog.query_len(FileId(i as u32))) as u32)
                    .collect();
                Some(LinkState::new(
                    plan,
                    cfg.nodes,
                    extra_loss,
                    extra_jitter,
                    query_sizes,
                    hit_sizes,
                    &exempt,
                    streams.stream("links"),
                ))
            }
            _ => None,
        };

        policy.init(&graph, &workload, &catalog);

        Network {
            collector: cfg.collector.map(Collector::new),
            store: GuidStore::new(cfg.nodes, cfg.guid_cache, cfg.guid_expiry),
            guid_gens,
            churn,
            queue,
            queries: Vec::with_capacity(cfg.queries),
            guid_to_query: HashMap::with_capacity(cfg.queries * 2),
            issue_rng,
            net_rng: streams.stream("net"),
            policy_rng: streams.stream("policy"),
            faults,
            links,
            crashed: vec![false; cfg.nodes],
            adapt: cfg
                .adapt
                .clone()
                .map(|plan| AdaptState::new(plan, cfg.nodes)),
            obs: Obs::disabled(),
            candidate_scratch: Vec::new(),
            selected_scratch: Vec::new(),
            graph,
            catalog,
            workload,
            policy,
            cfg,
        }
    }

    /// Immutable access to the overlay (tests and baselines use it).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Attaches an observability recorder. Instrumentation reads only
    /// simulated time and deterministic counters, so the resulting trace
    /// is byte-identical across thread counts and (with a disabled
    /// recorder) the run itself is unchanged.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    fn hop_latency(&mut self) -> Duration {
        let (lo, hi) = self.cfg.hop_latency;
        Duration::from_ticks(lo + self.net_rng.below(hi - lo))
    }

    fn apply_churn_until(&mut self, horizon: SimTime) {
        let Some(churn) = self.churn.as_mut() else {
            return;
        };
        let mut changed = false;
        while let Some(ev) = churn.next_before(horizon) {
            if self.crashed[ev.node.index()] {
                continue; // crashed nodes neither leave nor rejoin
            }
            match ev.kind {
                ChurnKind::Leave => {
                    self.graph.depart(ev.node);
                    self.store.reset(ev.node);
                }
                ChurnKind::Crash => {
                    self.graph.depart(ev.node);
                    self.store.reset(ev.node);
                    self.crashed[ev.node.index()] = true;
                }
                ChurnKind::Join => {
                    self.graph.rejoin(ev.node);
                    let mut wired = false;
                    if let Some(ttl) = self.cfg.rejoin_via_ping {
                        let live: Vec<NodeId> =
                            self.graph.live_nodes().filter(|&n| n != ev.node).collect();
                        if !live.is_empty() {
                            let bootstrap = live[self.net_rng.index(live.len())];
                            wired = !crate::discovery::rewire_via_discovery(
                                &mut self.graph,
                                ev.node,
                                bootstrap,
                                ttl,
                                self.cfg.rejoin_degree,
                                &mut self.net_rng,
                            )
                            .is_empty();
                        }
                    }
                    if !wired {
                        rewire_join(
                            &mut self.graph,
                            ev.node,
                            self.cfg.rejoin_degree,
                            &mut self.net_rng,
                        );
                    }
                }
            }
            changed = true;
        }
        if changed {
            self.policy.on_topology_change(&self.graph);
        }
    }

    /// Runs every adaptation round whose boundary is at or before
    /// `horizon` (called after churn, before the event at `horizon` is
    /// processed — matching the windowed engine, which runs boundaries
    /// in its serial control phase).
    fn apply_adaptation_until(&mut self, horizon: SimTime) {
        let Some(mut st) = self.adapt.take() else {
            return;
        };
        while st.next_round <= horizon {
            let at = st.next_round;
            self.adaptation_round(&mut st, at);
            st.next_round = at.saturating_add(st.plan.every);
        }
        self.adapt = Some(st);
    }

    /// One adaptation round: retire dead shortcuts, apply last round's
    /// surviving proposals, collect fresh ones. Consumes no randomness.
    fn adaptation_round(&mut self, st: &mut AdaptState, at: SimTime) {
        let mut changed = false;

        // 1. Retire: the rule decayed, or churn took an endpoint (and
        // with it the edge) out of the overlay.
        let mut kept = Vec::with_capacity(st.applied.len());
        for sc in st.applied.drain(..) {
            let edge_alive = self.graph.has_edge(sc.asker, sc.target)
                && self.graph.is_alive(sc.asker)
                && self.graph.is_alive(sc.target);
            let rule_alive = self.policy.shortcut_active(sc.asker, sc.target, sc.via);
            if edge_alive && rule_alive {
                kept.push(sc);
                continue;
            }
            if self.graph.remove_edge(sc.asker, sc.target) {
                changed = true;
            }
            st.degree[sc.asker.index()] = st.degree[sc.asker.index()].saturating_sub(1);
            self.obs.record(|| ObsEvent::ShortcutRetired {
                at,
                asker: sc.asker.0,
                target: sc.target.0,
            });
        }
        st.applied = kept;

        // 2. Apply the previous boundary's proposals, re-validating
        // liveness: endpoints can crash between the propose and apply
        // phases, and a dead proposal must be rejected, not wired in.
        let mut spent = 0usize;
        for sc in st.pending.drain(..) {
            if spent >= st.plan.budget {
                break;
            }
            if !self.graph.is_alive(sc.asker) || !self.graph.is_alive(sc.target) {
                self.obs.record(|| ObsEvent::ShortcutRejected {
                    at,
                    asker: sc.asker.0,
                    target: sc.target.0,
                });
                continue;
            }
            if !self.policy.shortcut_active(sc.asker, sc.target, sc.via) {
                continue; // rule already decayed; silently stale
            }
            if st.degree[sc.asker.index()] >= st.plan.degree as u32
                || self.graph.has_edge(sc.asker, sc.target)
            {
                continue; // over budget or redundant
            }
            self.graph.add_edge(sc.asker, sc.target);
            st.degree[sc.asker.index()] += 1;
            st.applied.push(sc);
            spent += 1;
            changed = true;
            self.obs.record(|| ObsEvent::ShortcutAdded {
                at,
                asker: sc.asker.0,
                target: sc.target.0,
            });
        }

        // 3. Collect proposals for the next boundary, on the post-apply
        // overlay so existing shortcuts are not re-proposed.
        st.pending = self.policy.propose_shortcuts(&self.graph);

        if changed {
            self.policy.on_topology_change(&self.graph);
        }
    }

    /// Issues one attempt of query `qidx` under a fresh GUID. Returns
    /// `false` when the issuer is offline and nothing was sent.
    fn issue_attempt(&mut self, qidx: usize, ttl: u32, now: SimTime) -> bool {
        let node = self.queries[qidx].node;
        if !self.graph.is_alive(node) {
            return false; // issuer offline at reissue time
        }
        let key = self.queries[qidx].key;
        let guid = self.guid_gens[node.index()].next(&mut self.net_rng);
        // Accounting follows the GUID's *first* query: a faulty generator
        // re-using a GUID charges traffic to the original query, exactly
        // as a lookup through the map on every message would.
        let owner = *self.guid_to_query.entry(guid).or_insert(qidx);
        self.queries[qidx].outcome.attempts += 1;
        let msg = QueryMsg {
            guid,
            key,
            ttl,
            hops: 0,
        };
        if let Some(l) = self.links.as_mut() {
            // The retry deadline clock starts when the attempt's sends
            // actually leave the uplink, not when they were offered.
            l.begin_attempt(now.ticks());
        }
        self.store.record(node, guid, Upstream::Origin, now);
        self.relay(node, None, msg, owner, now);
        let first_hop = std::mem::take(&mut self.queries[qidx].first_hop);
        let mut first_hop = first_hop;
        first_hop.clear();
        first_hop.extend_from_slice(&self.selected_scratch);
        self.queries[qidx].first_hop = first_hop;
        true
    }

    /// Runs the policy at `node` and transmits the query onward, leaving
    /// the selected targets in `self.selected_scratch`.
    fn relay(
        &mut self,
        node: NodeId,
        from: Option<NodeId>,
        msg: QueryMsg,
        qidx: usize,
        now: SimTime,
    ) {
        let mut selected = std::mem::take(&mut self.selected_scratch);
        selected.clear();
        let Some(next) = msg.hop() else {
            self.selected_scratch = selected;
            return;
        };
        // Fill the reusable scratch buffers instead of collecting fresh
        // Vecs per relay; they are taken out for the duration of the
        // policy call and put back (capacity intact) before returning.
        let mut candidates = std::mem::take(&mut self.candidate_scratch);
        candidates.clear();
        candidates.extend(self.graph.live_neighbors(node).filter(|&n| Some(n) != from));
        if candidates.is_empty() {
            self.candidate_scratch = candidates;
            self.selected_scratch = selected;
            return;
        }
        let ctx = ForwardCtx {
            node,
            from,
            query: &next,
            candidates: &candidates,
        };
        self.policy
            .select_into(&ctx, &mut self.policy_rng, &mut selected);
        self.obs.record(|| ObsEvent::Forward {
            at: now,
            node: node.0,
            candidates: candidates.len(),
            selected: selected.len(),
        });
        for &target in &selected {
            assert!(
                candidates.contains(&target),
                "policy {} selected non-candidate {target} at {node}",
                self.policy.name()
            );
        }
        self.candidate_scratch = candidates;
        for &target in &selected {
            let bytes = match &self.links {
                Some(l) => l.query_size(next.key.file),
                None => next.wire_size(),
            };
            let outcome = &mut self.queries[qidx].outcome;
            outcome.query_messages += 1;
            outcome.bytes += bytes;
            let prop = self.hop_latency();
            if self.links.is_some() {
                self.transmit(now, node, target, bytes, prop, DropKind::Query, || {
                    Event::Query {
                        to: target,
                        from: node,
                        msg: next,
                        qidx,
                    }
                });
            } else {
                let mut at = now.saturating_add(prop);
                if let Some(f) = self.faults.as_mut() {
                    at = at.saturating_add(f.jitter());
                }
                self.queue.schedule(
                    at,
                    Event::Query {
                        to: target,
                        from: node,
                        msg: next,
                        qidx,
                    },
                );
            }
        }
        self.selected_scratch = selected;
    }

    /// Offers one message to the active link layer and schedules its
    /// delivery (or records the loss / buffer drop).
    #[allow(clippy::too_many_arguments)]
    fn transmit(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        bytes: u64,
        prop: Duration,
        kind: DropKind,
        make_event: impl FnOnce() -> Event,
    ) {
        let links = self.links.as_mut().expect("transmit without link layer");
        match links.transmit(now.ticks(), from, to, bytes, prop.ticks()) {
            Transmission::Delivered { at } => {
                self.queue.schedule(SimTime::from_ticks(at), make_event());
            }
            Transmission::Lost => {
                self.obs.record(|| ObsEvent::FaultDrop { at: now, kind });
            }
            Transmission::BufferDropped => {
                self.obs.record(|| ObsEvent::BufferDrop { at: now, kind });
            }
        }
    }

    fn send_hit(&mut self, to: NodeId, from: NodeId, msg: HitMsg, qidx: usize, now: SimTime) {
        let bytes = match &self.links {
            Some(l) => l.hit_size(msg.key.file),
            None => msg.wire_size(),
        };
        let outcome = &mut self.queries[qidx].outcome;
        outcome.hit_messages += 1;
        outcome.bytes += bytes;
        let prop = self.hop_latency();
        if self.links.is_some() {
            self.transmit(now, from, to, bytes, prop, DropKind::Hit, || Event::Hit {
                to,
                from,
                msg,
                qidx,
            });
        } else {
            let mut at = now.saturating_add(prop);
            if let Some(f) = self.faults.as_mut() {
                at = at.saturating_add(f.jitter());
            }
            self.queue.schedule(
                at,
                Event::Hit {
                    to,
                    from,
                    msg,
                    qidx,
                },
            );
        }
    }

    /// Rolls the fault layer's per-link loss for one delivery. With an
    /// active link layer this is always `false`: loss is folded into
    /// the link and rolled once, at send time.
    fn fault_dropped(&mut self) -> bool {
        if self.links.is_some() {
            return false;
        }
        self.faults.as_mut().is_some_and(|f| f.drops_message())
    }

    fn handle_query(&mut self, to: NodeId, from: NodeId, msg: QueryMsg, qidx: usize, now: SimTime) {
        if let Some(l) = self.links.as_mut() {
            let bytes = l.query_size(msg.key.file);
            l.on_delivered(to, bytes);
        }
        if self.cfg.loss_rate > 0.0 && self.net_rng.chance(self.cfg.loss_rate) {
            return; // lost in flight
        }
        if self.fault_dropped() {
            self.obs.record(|| ObsEvent::FaultDrop {
                at: now,
                kind: DropKind::Query,
            });
            return; // lost in flight (fault layer)
        }
        if !self.graph.is_alive(to) {
            return; // delivered into the void
        }
        if let Some(col) = self.collector.as_mut() {
            if col.node() == to {
                col.on_query(now, msg.guid, from, msg.key);
            }
        }
        if !self
            .store
            .record(to, msg.guid, Upstream::Neighbor(from), now)
        {
            return; // duplicate
        }
        // Local match: reply, then keep relaying (Gnutella semantics).
        if self.workload.library(to.index()).matches(msg.key) {
            let hit = HitMsg {
                guid: msg.guid,
                responder: to,
                key: msg.key,
                query_hops: msg.hops,
            };
            self.route_hit_from(to, hit, qidx, now);
        }
        // Silent free-riders answer from their own library (self-interest)
        // but never spend upstream bandwidth relaying for others.
        if self.faults.as_ref().is_some_and(|f| f.is_silent(to)) {
            return;
        }
        self.relay(to, Some(from), msg, qidx, now);
    }

    /// Starts or continues a hit's travel along the reverse path from
    /// `node`.
    fn route_hit_from(&mut self, node: NodeId, msg: HitMsg, qidx: usize, now: SimTime) {
        match self.store.upstream(node, msg.guid) {
            Some(Upstream::Origin) => {
                // node is the issuer — the responder is the issuer itself
                // only in degenerate configs; deliver.
                self.deliver_hit(node, msg, qidx, now);
            }
            Some(Upstream::Neighbor(up)) if self.graph.is_alive(up) => {
                self.send_hit(up, node, msg, qidx, now);
            }
            Some(Upstream::Neighbor(_)) => {
                // Broken reverse path: hit is lost, as in the real network.
            }
            None => {
                // Cache evicted or node restarted: hit is lost.
            }
        }
    }

    fn handle_hit(&mut self, to: NodeId, from: NodeId, msg: HitMsg, qidx: usize, now: SimTime) {
        if let Some(l) = self.links.as_mut() {
            let bytes = l.hit_size(msg.key.file);
            l.on_delivered(to, bytes);
        }
        if self.cfg.loss_rate > 0.0 && self.net_rng.chance(self.cfg.loss_rate) {
            return; // lost in flight
        }
        if self.fault_dropped() {
            self.obs.record(|| ObsEvent::FaultDrop {
                at: now,
                kind: DropKind::Hit,
            });
            return; // lost in flight (fault layer)
        }
        if !self.graph.is_alive(to) {
            return;
        }
        if let Some(col) = self.collector.as_mut() {
            if col.node() == to {
                col.on_reply(now, msg.guid, from, msg.responder, msg.key);
            }
        }
        let upstream = match self.store.upstream(to, msg.guid) {
            Some(Upstream::Origin) => None,
            Some(Upstream::Neighbor(n)) => Some(n),
            None => {
                return; // no route memory; drop
            }
        };
        self.policy.on_reply(to, upstream, from, msg.key);
        match upstream {
            None => self.deliver_hit(to, msg, qidx, now),
            Some(up) => {
                if self.graph.is_alive(up) {
                    self.send_hit(up, to, msg, qidx, now);
                }
            }
        }
    }

    fn deliver_hit(&mut self, issuer: NodeId, msg: HitMsg, qidx: usize, now: SimTime) {
        let q = &mut self.queries[qidx];
        debug_assert_eq!(q.node, issuer);
        // Retried queries can re-discover a holder that already answered
        // an earlier attempt; suppress the duplicate instead of counting
        // it as a fresh delivery. Single-attempt runs never get here.
        if self.cfg.retry.is_some() {
            if q.responders.contains(&msg.responder) {
                q.outcome.duplicate_hits += 1;
                return;
            }
            q.responders.push(msg.responder);
        }
        q.outcome.hits_delivered += 1;
        if q.outcome.first_hit_hops.is_none() {
            let latency = now.since(q.issued_at);
            q.outcome.first_hit_hops = Some(msg.query_hops + 1);
            q.outcome.first_hit_latency = Some(latency);
            self.obs.observe_query_latency(latency.ticks());
            if self.cfg.download_on_hit {
                // First hit: fetch the file, becoming a new replica.
                self.workload
                    .library_mut(issuer.index())
                    .insert(msg.key.file);
            }
        }
    }

    /// A query's deadline fired: give the policy failure feedback and
    /// either reissue with an escalated TTL or expire the query.
    fn handle_deadline(&mut self, qidx: usize, attempt: u32, now: SimTime) {
        let rp = self
            .cfg
            .retry
            .clone()
            .expect("deadline without retry policy");
        if self.queries[qidx].outcome.hits_delivered > 0 {
            return; // answered in time
        }
        // The attempt produced nothing: every first-hop target looks
        // unproductive (dead, silent, or on a lossy path) to the issuer.
        let issuer = self.queries[qidx].node;
        let targets = std::mem::take(&mut self.queries[qidx].first_hop);
        for target in targets {
            self.policy.on_failure(issuer, target);
        }
        let backoff = Backoff::new(rp.deadline, rp.backoff, rp.max_attempts);
        let Some(delay) = backoff.delay_for(attempt) else {
            self.queries[qidx].outcome.expired = true;
            self.obs.record(|| ObsEvent::Expire {
                at: now,
                query: qidx,
                attempts: attempt,
            });
            return; // retry budget exhausted
        };
        let ttl = self
            .cfg
            .ttl
            .saturating_add(rp.ttl_step.saturating_mul(attempt))
            .min(rp.max_ttl);
        let mut sent_at = now;
        if self.issue_attempt(qidx, ttl, now) {
            sent_at = self.attempt_sent_at(now);
            self.queries[qidx].outcome.retries += 1;
            self.obs.record(|| ObsEvent::Retry {
                at: now,
                query: qidx,
                attempt,
                ttl,
            });
        }
        self.queue.schedule(
            sent_at.saturating_add(delay),
            Event::QueryDeadline {
                qidx,
                attempt: attempt + 1,
            },
        );
    }

    /// When the attempt's sends actually left the uplink — the point
    /// the retry deadline clock starts from. Without a link layer
    /// transmission is instantaneous and this is `now`, which keeps
    /// link-free runs byte-identical.
    fn attempt_sent_at(&self, now: SimTime) -> SimTime {
        self.links
            .as_ref()
            .map_or(now, |l| SimTime::from_ticks(l.send_done()))
    }

    /// Runs to completion, consuming the network.
    pub fn run(self) -> SimResult {
        self.run_full().0
    }

    /// Runs to completion, also returning the policy (with its learned
    /// state) and the final overlay graph — the inputs the
    /// topology-adaptation extension needs.
    pub fn run_full(mut self) -> (SimResult, P, Graph) {
        let first_ttl = self
            .cfg
            .ring
            .as_ref()
            .map(|r| *r.ttls.first().expect("empty ring schedule"))
            .unwrap_or(self.cfg.ttl);
        while let Some(next_time) = self.queue.peek_time() {
            self.apply_churn_until(next_time);
            self.apply_adaptation_until(next_time);
            let (now, event) = self.queue.pop().expect("peeked event vanished");
            match event {
                Event::Issue { qidx } => {
                    debug_assert_eq!(qidx, self.queries.len());
                    // Pick a live issuer; a dead one simply skips its turn
                    // (recorded as unanswerable, zero-message query).
                    let live: Vec<NodeId> = self.graph.live_nodes().collect();
                    let node = if live.is_empty() {
                        NodeId(0)
                    } else {
                        *self.issue_rng.pick(&live)
                    };
                    let key =
                        self.workload
                            .next_query(node.index(), &self.catalog, &mut self.issue_rng);
                    let answerable = self
                        .workload
                        .holders(key)
                        .into_iter()
                        .any(|h| h != node.index() && self.graph.is_alive(NodeId(h as u32)));
                    self.queries.push(LiveQuery {
                        node,
                        key,
                        issued_at: now,
                        outcome: QueryOutcome {
                            answerable,
                            ..QueryOutcome::default()
                        },
                        first_hop: Vec::new(),
                        responders: Vec::new(),
                    });
                    if self.graph.is_alive(node) {
                        self.issue_attempt(qidx, first_ttl, now);
                        let sent_at = self.attempt_sent_at(now);
                        if let Some(ring) = self.cfg.ring.clone() {
                            if ring.ttls.len() > 1 {
                                self.queue.schedule(
                                    now.saturating_add(ring.wait),
                                    Event::RingTimeout { qidx, stage: 1 },
                                );
                            }
                        }
                        if let Some(rp) = &self.cfg.retry {
                            self.queue.schedule(
                                sent_at.saturating_add(rp.deadline),
                                Event::QueryDeadline { qidx, attempt: 1 },
                            );
                        }
                    }
                }
                Event::Query {
                    to,
                    from,
                    msg,
                    qidx,
                } => self.handle_query(to, from, msg, qidx, now),
                Event::Hit {
                    to,
                    from,
                    msg,
                    qidx,
                } => self.handle_hit(to, from, msg, qidx, now),
                Event::QueryDeadline { qidx, attempt } => self.handle_deadline(qidx, attempt, now),
                Event::Crash { node } => {
                    if self.graph.is_alive(node) {
                        self.graph.depart(node);
                        self.store.reset(node);
                        self.policy.on_topology_change(&self.graph);
                    }
                    // Whether it was up or mid-downtime, the node never
                    // returns: later churn events for it are ignored.
                    self.crashed[node.index()] = true;
                }
                Event::RingTimeout { qidx, stage } => {
                    let ring = self
                        .cfg
                        .ring
                        .clone()
                        .expect("ring timeout without schedule");
                    if self.queries[qidx].outcome.hits_delivered == 0 {
                        let ttl = ring.ttls[stage];
                        self.issue_attempt(qidx, ttl, now);
                        if stage + 1 < ring.ttls.len() {
                            self.queue.schedule(
                                now.saturating_add(ring.wait),
                                Event::RingTimeout {
                                    qidx,
                                    stage: stage + 1,
                                },
                            );
                        }
                    }
                }
            }
        }

        let end_time = self.queue.now();
        let mut builder = MetricsBuilder::new();
        let mut total_attempts = 0u64;
        for q in &self.queries {
            builder.record(&q.outcome);
            total_attempts += u64::from(q.outcome.attempts);
        }
        let mut metrics = builder.finish(self.policy.name());
        // With an active link layer, loss is rolled there (the fault
        // plan's rate is folded in, so its own counter stays zero);
        // buffer drops are a disjoint outcome and never double-count.
        metrics.lost_messages = self.faults.as_ref().map_or(0, FaultState::lost)
            + self.links.as_ref().map_or(0, LinkState::lost);
        metrics.buffer_dropped = self.links.as_ref().map_or(0, LinkState::buffer_dropped);
        if let Some(l) = &self.links {
            let (ups, downs) = (l.node_up_bytes(), l.node_down_bytes());
            for i in 0..ups.len() {
                self.obs.observe_node_bytes(ups[i], downs[i]);
            }
        }
        let result = SimResult {
            metrics,
            trace: self.collector.map(Collector::into_db),
            end_time,
            distinct_query_guids: self.guid_to_query.len(),
            total_attempts,
            link_bytes: self.links.as_ref().map(LinkState::byte_ledger),
            obs: self.obs.report(),
        };
        (result, self.policy, self.graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FloodPolicy;

    fn tiny_cfg(seed: u64) -> SimConfig {
        let mut cfg = SimConfig::default_with(50, 200, seed);
        cfg.catalog = CatalogConfig {
            topics: 5,
            files_per_topic: 40,
            ..Default::default()
        };
        cfg.workload.files_per_node = 30;
        cfg.workload.free_rider_fraction = 0.1;
        cfg
    }

    #[test]
    fn flooding_finds_most_answerable_content() {
        let result = Network::new(tiny_cfg(1), FloodPolicy).run();
        let m = &result.metrics;
        assert_eq!(m.queries, 200);
        assert!(m.answerable > 100, "workload too sparse: {}", m.answerable);
        // TTL-5 flooding on a 50-node BA graph reaches everyone.
        assert!(
            m.success_rate > 0.95,
            "flooding missed content: {}",
            m.success_rate
        );
        assert!(m.query_messages > 0 && m.hit_messages > 0);
        assert!(m.messages_per_query > 10.0, "suspiciously little traffic");
    }

    #[test]
    fn runs_are_deterministic() {
        let a = Network::new(tiny_cfg(7), FloodPolicy).run();
        let b = Network::new(tiny_cfg(7), FloodPolicy).run();
        assert_eq!(a.metrics.query_messages, b.metrics.query_messages);
        assert_eq!(a.metrics.hit_messages, b.metrics.hit_messages);
        assert_eq!(a.metrics.answered, b.metrics.answered);
        assert_eq!(a.end_time, b.end_time);
        let c = Network::new(tiny_cfg(8), FloodPolicy).run();
        assert_ne!(a.metrics.query_messages, c.metrics.query_messages);
    }

    #[test]
    fn ttl_one_generates_single_ring_of_messages() {
        let mut cfg = tiny_cfg(3);
        cfg.ttl = 2; // issuer floods neighbors; they answer but relay no further
        let result = Network::new(cfg, FloodPolicy).run();
        let m = &result.metrics;
        // Max messages per query = issuer degree (BA graph m=3 minimum) —
        // mean must be far below a full flood.
        assert!(
            m.messages_per_query < 30.0,
            "TTL 2 produced {} messages/query",
            m.messages_per_query
        );
        assert!(m.success_rate < 0.9, "2-hop horizon cannot see everything");
    }

    #[test]
    fn collector_records_traffic() {
        let mut cfg = tiny_cfg(5);
        // Instrument the highest-degree node (id 0 is in the BA seed clique).
        cfg.collector = Some(NodeId(0));
        let result = Network::new(cfg, FloodPolicy).run();
        let mut db = result.trace.expect("collector configured");
        assert!(
            db.query_count() > 100,
            "collector saw {} queries",
            db.query_count()
        );
        assert!(db.reply_count() > 0);
        let (_, pairs) = db.clean_and_join();
        assert!(!pairs.is_empty());
        // Pair sources must be neighbors, not arbitrary nodes.
        for p in &pairs {
            assert_ne!(p.src.0, 0, "collector recorded itself as source");
        }
    }

    #[test]
    fn churn_does_not_break_the_run() {
        let mut cfg = tiny_cfg(9);
        cfg.queries = 300;
        cfg.churn = Some(ChurnConfig {
            mean_session: Duration::from_ticks(100_000),
            mean_downtime: Duration::from_ticks(50_000),
            pinned: vec![],
        });
        let result = Network::new(cfg, FloodPolicy).run();
        let m = &result.metrics;
        assert_eq!(m.queries, 300);
        // Churn costs some hits but the network keeps functioning.
        assert!(
            m.success_rate > 0.5,
            "churn collapsed success: {}",
            m.success_rate
        );
    }

    #[test]
    fn expanding_ring_uses_fewer_messages_when_content_is_near() {
        let mut cfg = tiny_cfg(11);
        cfg.queries = 300;
        let flood = Network::new(cfg.clone(), FloodPolicy).run();
        cfg.ring = Some(RingSchedule {
            ttls: vec![2, 5],
            wait: Duration::from_ticks(1_000),
        });
        let ring = Network::new(cfg, FloodPolicy).run();
        assert!(
            ring.metrics.messages_per_query < flood.metrics.messages_per_query,
            "ring {} >= flood {}",
            ring.metrics.messages_per_query,
            flood.metrics.messages_per_query
        );
        // Success stays in the same ballpark because the last ring is a
        // full flood.
        assert!(ring.metrics.success_rate > flood.metrics.success_rate - 0.1);
    }

    #[test]
    fn downloads_replicate_content_and_raise_answerability() {
        let mut cfg = tiny_cfg(41);
        cfg.queries = 1_500;
        cfg.workload.files_per_node = 10; // sparse: replication matters
        let without = Network::new(cfg.clone(), FloodPolicy).run().metrics;
        cfg.download_on_hit = true;
        let with = Network::new(cfg, FloodPolicy).run().metrics;
        // Replication makes strictly more queries answerable over the
        // run (popular files spread to their requesters).
        assert!(
            with.answerable > without.answerable,
            "replication did not help: {} vs {}",
            with.answerable,
            without.answerable
        );
    }

    #[test]
    fn ping_based_rejoin_keeps_the_network_working() {
        let mut cfg = tiny_cfg(31);
        cfg.queries = 300;
        cfg.churn = Some(ChurnConfig {
            mean_session: Duration::from_ticks(100_000),
            mean_downtime: Duration::from_ticks(50_000),
            pinned: vec![],
        });
        cfg.rejoin_via_ping = Some(3);
        let pinged = Network::new(cfg.clone(), FloodPolicy).run().metrics;
        cfg.rejoin_via_ping = None;
        let uniform = Network::new(cfg, FloodPolicy).run().metrics;
        // Both rejoin modes must keep search functional; locality-biased
        // rewiring should not collapse success.
        assert!(pinged.success_rate > 0.5, "pinged {}", pinged.success_rate);
        assert!(uniform.success_rate > 0.5);
    }

    #[test]
    fn message_loss_degrades_search_gracefully() {
        let clean = Network::new(tiny_cfg(21), FloodPolicy).run().metrics;
        let mut lossy_cfg = tiny_cfg(21);
        lossy_cfg.loss_rate = 0.30;
        let lossy = Network::new(lossy_cfg, FloodPolicy).run().metrics;
        // Flooding is redundant, so moderate loss costs some but not all
        // success; it must never *help*.
        assert!(lossy.success_rate < clean.success_rate);
        assert!(
            lossy.success_rate > clean.success_rate * 0.3,
            "flooding redundancy should absorb moderate loss: {} vs {}",
            lossy.success_rate,
            clean.success_rate
        );
        // Heavy loss is devastating.
        let mut heavy_cfg = tiny_cfg(21);
        heavy_cfg.loss_rate = 0.90;
        let heavy = Network::new(heavy_cfg, FloodPolicy).run().metrics;
        assert!(heavy.success_rate < lossy.success_rate);
    }

    #[test]
    fn zero_fault_plan_is_byte_identical_to_no_plan() {
        let clean = Network::new(tiny_cfg(13), FloodPolicy).run();
        let mut cfg = tiny_cfg(13);
        cfg.faults = Some(FaultPlan::default());
        let noop = Network::new(cfg, FloodPolicy).run();
        assert_eq!(clean.metrics.query_messages, noop.metrics.query_messages);
        assert_eq!(clean.metrics.hit_messages, noop.metrics.hit_messages);
        assert_eq!(clean.metrics.bytes, noop.metrics.bytes);
        assert_eq!(clean.metrics.answered, noop.metrics.answered);
        assert_eq!(clean.metrics.answerable, noop.metrics.answerable);
        assert_eq!(clean.end_time, noop.end_time);
        assert_eq!(clean.total_attempts, noop.total_attempts);
        assert_eq!(noop.metrics.lost_messages, 0);
    }

    #[test]
    fn fault_loss_degrades_and_is_counted() {
        let clean = Network::new(tiny_cfg(23), FloodPolicy).run().metrics;
        let mut cfg = tiny_cfg(23);
        cfg.faults = Some(FaultPlan {
            loss: 0.30,
            ..Default::default()
        });
        let lossy = Network::new(cfg, FloodPolicy).run().metrics;
        assert!(lossy.lost_messages > 0, "loss plan dropped nothing");
        assert!(lossy.success_rate < clean.success_rate);
        assert!(
            lossy.success_rate > clean.success_rate * 0.3,
            "flooding redundancy should absorb moderate fault loss"
        );
    }

    #[test]
    fn crashed_nodes_never_rejoin() {
        let mut cfg = tiny_cfg(17);
        cfg.queries = 400;
        cfg.churn = Some(ChurnConfig {
            mean_session: Duration::from_ticks(100_000),
            mean_downtime: Duration::from_ticks(20_000),
            pinned: vec![],
        });
        cfg.faults = Some(FaultPlan {
            crash: 0.4,
            ..Default::default()
        });
        let (result, _policy, graph) = Network::new(cfg, FloodPolicy).run_full();
        // With short downtimes every churned node would be back quickly;
        // a large dead population at the end means crashes stuck.
        let dead = (0..50).filter(|&i| !graph.is_alive(NodeId(i))).count();
        assert!(dead >= 5, "only {dead} nodes dead after crash plan");
        assert_eq!(result.metrics.queries, 400);
    }

    #[test]
    fn silent_nodes_shrink_traffic_and_reach() {
        let clean = Network::new(tiny_cfg(29), FloodPolicy).run().metrics;
        let mut cfg = tiny_cfg(29);
        cfg.faults = Some(FaultPlan {
            silent: 0.5,
            ..Default::default()
        });
        let muted = Network::new(cfg, FloodPolicy).run().metrics;
        assert!(
            muted.messages_per_query < clean.messages_per_query,
            "free riders did not reduce forwarding: {} vs {}",
            muted.messages_per_query,
            clean.messages_per_query
        );
        assert!(muted.success_rate <= clean.success_rate + 1e-9);
    }

    #[test]
    fn jitter_changes_timing_but_not_reach() {
        let clean = Network::new(tiny_cfg(37), FloodPolicy).run();
        let mut cfg = tiny_cfg(37);
        cfg.faults = Some(FaultPlan {
            jitter: 500,
            ..Default::default()
        });
        let jittered = Network::new(cfg, FloodPolicy).run();
        // Jitter delays messages but drops none: same reachability.
        assert_eq!(jittered.metrics.lost_messages, 0);
        assert!(
            (jittered.metrics.success_rate - clean.metrics.success_rate).abs() < 0.05,
            "jitter alone changed success: {} vs {}",
            jittered.metrics.success_rate,
            clean.metrics.success_rate
        );
        assert!(jittered.end_time > clean.end_time);
    }

    #[test]
    fn retry_recovers_losses_within_attempt_budget() {
        let mut cfg = tiny_cfg(43);
        cfg.queries = 300;
        cfg.faults = Some(FaultPlan {
            loss: 0.30,
            ..Default::default()
        });
        let lossy = Network::new(cfg.clone(), FloodPolicy).run();
        cfg.retry = Some(RetryPolicy {
            deadline: Duration::from_ticks(2_000),
            max_attempts: 3,
            backoff: 2.0,
            ttl_step: 1,
            max_ttl: 7,
        });
        let retried = Network::new(cfg, FloodPolicy).run();
        assert!(retried.metrics.retried > 0, "no retries under 30% loss");
        assert!(
            retried.metrics.success_rate > lossy.metrics.success_rate,
            "retries did not recover losses: {} vs {}",
            retried.metrics.success_rate,
            lossy.metrics.success_rate
        );
        // Attempts bounded: initial + at most (max_attempts-1) retries.
        assert!(retried.total_attempts <= 300 * 3);
        assert!(retried.metrics.retried <= 300 * 2);
        // Proper GUID generators: every attempt drew a fresh GUID.
        let mut proper_cfg = tiny_cfg(43);
        proper_cfg.faulty_fraction = 0.0;
        proper_cfg.faults = Some(FaultPlan {
            loss: 0.30,
            ..Default::default()
        });
        proper_cfg.retry = Some(RetryPolicy::default_with(Duration::from_ticks(2_000), 7));
        let proper = Network::new(proper_cfg, FloodPolicy).run();
        assert_eq!(proper.distinct_query_guids as u64, proper.total_attempts);
    }

    #[test]
    fn exhausted_queries_are_marked_expired() {
        let mut cfg = tiny_cfg(47);
        cfg.queries = 200;
        cfg.faults = Some(FaultPlan {
            loss: 0.85,
            ..Default::default()
        });
        cfg.retry = Some(RetryPolicy {
            deadline: Duration::from_ticks(1_500),
            max_attempts: 2,
            backoff: 1.5,
            ttl_step: 0,
            max_ttl: 6,
        });
        let result = Network::new(cfg, FloodPolicy).run();
        assert!(
            result.metrics.expired > 0,
            "85% loss with 2 attempts must expire some queries"
        );
        assert!(result.metrics.expired <= result.metrics.queries);
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let cfg = || {
            let mut c = tiny_cfg(51);
            c.faults = Some(FaultPlan {
                loss: 0.10,
                jitter: 100,
                crash: 0.05,
                silent: 0.05,
            });
            c.retry = Some(RetryPolicy::default_with(Duration::from_ticks(2_000), 7));
            c
        };
        let a = Network::new(cfg(), FloodPolicy).run();
        let b = Network::new(cfg(), FloodPolicy).run();
        assert_eq!(a.metrics.query_messages, b.metrics.query_messages);
        assert_eq!(a.metrics.lost_messages, b.metrics.lost_messages);
        assert_eq!(a.metrics.retried, b.metrics.retried);
        assert_eq!(a.metrics.expired, b.metrics.expired);
        assert_eq!(a.end_time, b.end_time);
    }

    #[test]
    #[should_panic(expected = "mutually exclusive")]
    fn rejects_ring_plus_retry() {
        let mut cfg = tiny_cfg(1);
        cfg.ring = Some(RingSchedule {
            ttls: vec![2, 5],
            wait: Duration::from_ticks(1_000),
        });
        cfg.retry = Some(RetryPolicy::default_with(Duration::from_ticks(1_000), 7));
        Network::new(cfg, FloodPolicy);
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn rejects_bad_fault_plan() {
        let mut cfg = tiny_cfg(1);
        cfg.faults = Some(FaultPlan {
            loss: 1.5,
            ..Default::default()
        });
        Network::new(cfg, FloodPolicy);
    }

    #[test]
    fn zero_capacity_link_plan_is_byte_identical_to_no_plan() {
        use arq_simkern::ToJson;
        let clean = Network::new(tiny_cfg(53), FloodPolicy).run();
        let mut cfg = tiny_cfg(53);
        cfg.links = Some(LinkPlan::default());
        let noop = Network::new(cfg, FloodPolicy).run();
        assert_eq!(
            clean.metrics.to_json().to_string(),
            noop.metrics.to_json().to_string(),
            "zero-capacity link config diverged from the pre-link baseline"
        );
        assert_eq!(clean.metrics.digest(), noop.metrics.digest());
        assert_eq!(clean.end_time, noop.end_time);
        assert_eq!(clean.total_attempts, noop.total_attempts);
        assert!(noop.link_bytes.is_none(), "noop plan built link state");
    }

    #[test]
    fn bandwidth_queueing_delays_delivery_and_conserves_bytes() {
        let clean = Network::new(tiny_cfg(59), FloodPolicy).run();
        let mut cfg = tiny_cfg(59);
        cfg.links = Some(LinkPlan {
            up: 8.0,
            down: 32.0,
            up_buf: 1 << 16,
            down_buf: 1 << 18,
            ..Default::default()
        });
        let slow = Network::new(cfg, FloodPolicy).run();
        // Generous buffers: nothing dropped, but uploads serialize.
        assert_eq!(slow.metrics.lost_messages, 0);
        assert_eq!(slow.metrics.buffer_dropped, 0);
        assert!(
            slow.end_time > clean.end_time,
            "queueing did not stretch the run: {:?} vs {:?}",
            slow.end_time,
            clean.end_time
        );
        let (sent, delivered, lost, buffered) = slow.link_bytes.expect("link ledger");
        assert_eq!(sent, delivered + lost + buffered, "bytes leaked in flight");
        assert_eq!(sent, slow.metrics.bytes, "ledger disagrees with metrics");
    }

    #[test]
    fn full_buffers_drop_without_double_counting() {
        let mut cfg = tiny_cfg(61);
        cfg.links = Some(LinkPlan {
            up: 2.0,
            up_buf: 256,
            ..Default::default()
        });
        let m = Network::new(cfg, FloodPolicy).run().metrics;
        assert!(m.buffer_dropped > 0, "tight uplink buffers dropped nothing");
        // No loss process configured: every drop is a buffer drop, and
        // the two counters never double-count a message.
        assert_eq!(m.lost_messages, 0);
        assert!(m.success_rate < 1.0);
    }

    #[test]
    fn link_layer_subsumes_fault_loss_and_jitter() {
        let mut cfg = tiny_cfg(67);
        cfg.faults = Some(FaultPlan {
            loss: 0.30,
            jitter: 100,
            ..Default::default()
        });
        let faults_only = Network::new(cfg.clone(), FloodPolicy).run();
        // An active link layer folds the same loss/jitter into itself.
        cfg.links = Some(LinkPlan {
            jitter: 1, // minimal non-noop plan
            ..Default::default()
        });
        let folded = Network::new(cfg, FloodPolicy).run();
        assert!(
            folded.metrics.lost_messages > 0,
            "folded loss dropped nothing"
        );
        let loss_frac = folded.metrics.lost_messages as f64
            / (folded.metrics.query_messages + folded.metrics.hit_messages) as f64;
        assert!(
            (loss_frac - 0.30).abs() < 0.05,
            "folded loss rate off: {loss_frac}"
        );
        // Comparable degradation to the fault layer's own loss.
        assert!(
            (folded.metrics.success_rate - faults_only.metrics.success_rate).abs() < 0.15,
            "subsumed loss behaves differently: {} vs {}",
            folded.metrics.success_rate,
            faults_only.metrics.success_rate
        );
    }

    #[test]
    fn free_rider_links_throttle_upload() {
        let mut cfg = tiny_cfg(71);
        cfg.links = Some(LinkPlan {
            up: 50.0,
            up_buf: 1 << 14,
            riders: 0.4,
            rider_up: 1.0,
            ..Default::default()
        });
        let throttled = Network::new(cfg, FloodPolicy).run();
        let mut clean_cfg = tiny_cfg(71);
        clean_cfg.links = Some(LinkPlan {
            up: 50.0,
            up_buf: 1 << 14,
            ..Default::default()
        });
        let clean = Network::new(clean_cfg, FloodPolicy).run();
        assert!(
            throttled.end_time > clean.end_time,
            "rider uplinks did not slow the network"
        );
    }

    #[test]
    fn retry_deadline_starts_at_send_completion() {
        let mut cfg = tiny_cfg(73);
        cfg.queries = 150;
        cfg.retry = Some(RetryPolicy::default_with(Duration::from_ticks(2_000), 7));
        cfg.links = Some(LinkPlan {
            up: 2.0,
            up_buf: 1 << 15,
            ..Default::default()
        });
        let r = Network::new(cfg, FloodPolicy).run();
        // Slow uplinks push send completion past the offer time; a
        // deadline clocked from offer time would expire queries whose
        // sends were still queued. Clocked from send time, the
        // lifecycle stays bounded and consistent.
        assert!(r.total_attempts <= 150 * 3);
        assert!(r.metrics.expired <= r.metrics.queries);
        let (sent, delivered, lost, buffered) = r.link_bytes.expect("ledger");
        assert_eq!(sent, delivered + lost + buffered);
    }

    #[test]
    fn link_runs_are_deterministic() {
        let cfg = || {
            let mut c = tiny_cfg(79);
            c.links = Some(LinkPlan {
                up: 6.0,
                down: 24.0,
                up_buf: 2_048,
                down_buf: 8_192,
                loss: 0.05,
                jitter: 40,
                riders: 0.2,
                rider_up: 2.0,
            });
            c.retry = Some(RetryPolicy::default_with(Duration::from_ticks(4_000), 7));
            c
        };
        let a = Network::new(cfg(), FloodPolicy).run();
        let b = Network::new(cfg(), FloodPolicy).run();
        assert_eq!(a.metrics.digest(), b.metrics.digest());
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(a.link_bytes, b.link_bytes);
    }

    #[test]
    #[should_panic(expected = "invalid link plan")]
    fn rejects_bad_link_plan() {
        let mut cfg = tiny_cfg(1);
        cfg.links = Some(LinkPlan {
            up_buf: 100, // buffer without bandwidth
            ..Default::default()
        });
        Network::new(cfg, FloodPolicy);
    }

    #[test]
    #[should_panic(expected = "loss rate")]
    fn rejects_total_loss() {
        let mut cfg = tiny_cfg(1);
        cfg.loss_rate = 1.0;
        Network::new(cfg, FloodPolicy);
    }

    #[test]
    #[should_panic(expected = "network too small")]
    fn rejects_tiny_networks() {
        let cfg = SimConfig::default_with(2, 10, 0);
        Network::new(cfg, FloodPolicy);
    }

    #[test]
    #[should_panic(expected = "invalid adapt plan")]
    fn rejects_bad_adapt_plan() {
        let mut cfg = tiny_cfg(1);
        cfg.adapt = Some(AdaptPlan {
            every: Duration::from_ticks(0),
            budget: 8,
            degree: 2,
        });
        Network::new(cfg, FloodPolicy);
    }

    #[test]
    fn adapt_plan_over_non_proposing_policy_is_byte_identical() {
        let clean = Network::new(tiny_cfg(83), FloodPolicy).run();
        let mut cfg = tiny_cfg(83);
        cfg.adapt = Some(AdaptPlan::default_with(Duration::from_ticks(10_000)));
        let adapted = Network::new(cfg, FloodPolicy).run();
        assert_eq!(clean.metrics.digest(), adapted.metrics.digest());
        assert_eq!(clean.end_time, adapted.end_time);
        assert_eq!(clean.total_attempts, adapted.total_attempts);
    }

    /// A stub that proposes a shortcut from node 0 to every live
    /// non-neighbor and always vouches for applied shortcuts — it
    /// isolates the simulator's propose/apply/retire machinery from any
    /// real learning.
    struct ProposeEverywhere;

    impl ForwardingPolicy for ProposeEverywhere {
        fn name(&self) -> &'static str {
            "propose-everywhere"
        }

        fn select(&mut self, ctx: &ForwardCtx<'_>, _rng: &mut Rng64) -> Vec<NodeId> {
            ctx.candidates.to_vec()
        }

        fn propose_shortcuts(&self, graph: &Graph) -> Vec<ShortcutProposal> {
            let asker = NodeId(0);
            if !graph.is_alive(asker) {
                return Vec::new();
            }
            graph
                .live_nodes()
                .filter(|&n| n != asker && !graph.has_edge(asker, n))
                .map(|target| ShortcutProposal {
                    asker,
                    target,
                    via: asker,
                })
                .collect()
        }

        fn shortcut_active(&self, _asker: NodeId, _target: NodeId, _via: NodeId) -> bool {
            true
        }
    }

    #[test]
    fn adaptation_applies_proposals_under_budget_and_rejects_crashed_endpoints() {
        use arq_obs::ObsConfig;
        let mut cfg = tiny_cfg(89);
        cfg.queries = 400;
        // Churn faster than the round interval: endpoints proposed at one
        // boundary are regularly gone by the next, exercising the
        // crash-between-phases rejection path.
        cfg.churn = Some(ChurnConfig {
            mean_session: Duration::from_ticks(30_000),
            mean_downtime: Duration::from_ticks(30_000),
            pinned: vec![NodeId(0)],
        });
        cfg.adapt = Some(AdaptPlan {
            every: Duration::from_ticks(20_000),
            budget: 1_000,
            degree: 3,
        });
        let net = Network::new(cfg, ProposeEverywhere).with_obs(Obs::enabled(ObsConfig {
            events: false,
            ..Default::default()
        }));
        let (result, _policy, graph) = net.run_full();
        let registry = &result.obs.expect("obs attached").registry;
        let added = registry.counter_value("shortcut_added").unwrap_or(0);
        let rejected = registry.counter_value("shortcut_rejected").unwrap_or(0);
        let retired = registry.counter_value("shortcut_retired").unwrap_or(0);
        assert!(added > 0, "no shortcuts applied");
        assert!(
            rejected > 0,
            "churn between boundaries produced no liveness rejections"
        );
        assert!(retired > 0, "departing endpoints retired no shortcuts");
        // The per-node ownership cap bounds node 0's shortcut fan-in: its
        // degree is base edges (BA seed m=3 side) plus at most 3 owned
        // shortcuts at any instant, and retirement keeps it from
        // ratcheting to the whole network.
        assert!(
            graph.degree(NodeId(0)) <= 50,
            "degree budget failed to bound shortcut ownership"
        );
        assert_eq!(result.metrics.queries, 400);
    }

    #[test]
    fn adaptation_runs_are_deterministic() {
        let cfg = || {
            let mut c = tiny_cfg(97);
            c.churn = Some(ChurnConfig {
                mean_session: Duration::from_ticks(50_000),
                mean_downtime: Duration::from_ticks(25_000),
                pinned: vec![NodeId(0)],
            });
            c.adapt = Some(AdaptPlan::default_with(Duration::from_ticks(15_000)));
            c
        };
        let a = Network::new(cfg(), ProposeEverywhere).run();
        let b = Network::new(cfg(), ProposeEverywhere).run();
        assert_eq!(a.metrics.digest(), b.metrics.digest());
        assert_eq!(a.end_time, b.end_time);
    }
}
