//! The network simulator.
//!
//! A single-threaded, deterministic discrete-event simulation. One run
//! wires together:
//!
//! * a topology from `arq-overlay` (plus optional churn);
//! * a content catalog and per-node workload from `arq-content`;
//! * the protocol mechanics of this crate (GUID dedup, TTL, reverse-path
//!   hits);
//! * a [`ForwardingPolicy`] making every relay decision;
//! * optionally an expanding-ring reissue schedule at the querier;
//! * optionally a [`Collector`] recording the paper's trace at one node.
//!
//! Determinism: all randomness flows from labelled
//! [`arq_simkern::StreamFactory`] streams, events tie-break by insertion
//! order, and policies receive their own RNG stream — two runs with the
//! same [`SimConfig`] produce byte-identical results.

use crate::collector::Collector;
use crate::guid::GuidGen;
use crate::message::{HitMsg, QueryMsg};
use crate::metrics::{MetricsBuilder, QueryOutcome, RunMetrics};
use crate::node::{NodeState, Upstream};
use crate::policy::{ForwardCtx, ForwardingPolicy};
use arq_content::{Catalog, CatalogConfig, QueryKey, WorkloadConfig, WorkloadGen};
use arq_overlay::churn::{rewire_join, ChurnKind};
use arq_overlay::{generate, ChurnConfig, ChurnProcess, Graph, NodeId};
use arq_simkern::time::Duration;
use arq_simkern::{EventQueue, Rng64, SimTime, StreamFactory};
use arq_trace::record::Guid;
use arq_trace::TraceDb;
use std::collections::HashMap;

/// Which random topology to build.
#[derive(Debug, Clone)]
pub enum Topology {
    /// Barabási–Albert preferential attachment with `m` edges per node.
    BarabasiAlbert {
        /// Edges added per joining node.
        m: usize,
    },
    /// Erdős–Rényi with edge probability `p`.
    ErdosRenyi {
        /// Edge probability.
        p: f64,
    },
    /// Watts–Strogatz ring lattice (`k` per side) with rewiring `beta`.
    WattsStrogatz {
        /// Lattice half-degree.
        k: usize,
        /// Rewiring probability.
        beta: f64,
    },
    /// Two-tier superpeer topology: ids `0..n_super` form the core.
    SuperPeer {
        /// Core size.
        n_super: usize,
        /// Core interconnection degree.
        super_degree: usize,
    },
}

/// Expanding-ring reissue schedule (Lv et al., baseline).
#[derive(Debug, Clone)]
pub struct RingSchedule {
    /// Successive TTLs to try.
    pub ttls: Vec<u32>,
    /// How long to wait for a hit before escalating.
    pub wait: Duration,
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of overlay nodes.
    pub nodes: usize,
    /// Topology generator.
    pub topology: Topology,
    /// Query TTL (ignored when `ring` is set).
    pub ttl: u32,
    /// Number of queries to issue.
    pub queries: usize,
    /// Mean inter-query interval (global Poisson process), in ticks.
    pub mean_query_interval: Duration,
    /// Per-hop latency range `[lo, hi)` in ticks.
    pub hop_latency: (u64, u64),
    /// Churn model; `None` freezes the topology.
    pub churn: Option<ChurnConfig>,
    /// Edges re-established when a node rejoins.
    pub rejoin_degree: usize,
    /// When set, rejoining nodes discover attachment points with a
    /// ping crawl of this TTL from a random live bootstrap peer (instead
    /// of wiring to uniform random peers), biasing reconnection toward
    /// one neighborhood as real bootstrap caches do.
    pub rejoin_via_ping: Option<u32>,
    /// Per-node GUID cache capacity.
    pub guid_cache: usize,
    /// Fraction of nodes with faulty GUID generators.
    pub faulty_fraction: f64,
    /// Node to instrument with a trace collector.
    pub collector: Option<NodeId>,
    /// Content catalog shape.
    pub catalog: CatalogConfig,
    /// Workload shape.
    pub workload: WorkloadConfig,
    /// Expanding-ring schedule; `None` means single-shot queries.
    pub ring: Option<RingSchedule>,
    /// Probability that any transmitted message is silently lost in
    /// flight (UDP-style failure injection; 0.0 disables).
    pub loss_rate: f64,
    /// When `true`, an issuer downloads the file after its first hit,
    /// adding it to its own library — the replication feedback loop that
    /// spreads popular content through real file-sharing networks.
    pub download_on_hit: bool,
    /// Master seed.
    pub seed: u64,
}

impl SimConfig {
    /// A small-but-realistic default: 500-node power-law overlay, TTL 5.
    pub fn default_with(nodes: usize, queries: usize, seed: u64) -> Self {
        SimConfig {
            nodes,
            topology: Topology::BarabasiAlbert { m: 3 },
            ttl: 5,
            queries,
            mean_query_interval: Duration::from_ticks(2_000),
            hop_latency: (20, 80),
            churn: None,
            rejoin_degree: 3,
            rejoin_via_ping: None,
            guid_cache: 4_096,
            faulty_fraction: 0.02,
            collector: None,
            catalog: CatalogConfig::default(),
            workload: WorkloadConfig::default(),
            ring: None,
            loss_rate: 0.0,
            download_on_hit: false,
            seed,
        }
    }
}

enum Event {
    Issue {
        qidx: usize,
    },
    Query {
        to: NodeId,
        from: NodeId,
        msg: QueryMsg,
    },
    Hit {
        to: NodeId,
        from: NodeId,
        msg: HitMsg,
    },
    RingTimeout {
        qidx: usize,
        stage: usize,
    },
}

/// Everything a finished run yields.
#[derive(Debug)]
pub struct SimResult {
    /// Aggregated traffic/search metrics.
    pub metrics: RunMetrics,
    /// The collector's raw trace, when a collector was configured.
    pub trace: Option<TraceDb>,
    /// Final simulated time.
    pub end_time: SimTime,
}

struct LiveQuery {
    node: NodeId,
    key: QueryKey,
    issued_at: SimTime,
    outcome: QueryOutcome,
}

/// One simulation instance. Build with [`Network::new`], consume with
/// [`Network::run`].
pub struct Network<P: ForwardingPolicy> {
    cfg: SimConfig,
    graph: Graph,
    catalog: Catalog,
    workload: WorkloadGen,
    policy: P,
    states: Vec<NodeState>,
    guid_gens: Vec<GuidGen>,
    churn: Option<ChurnProcess>,
    collector: Option<Collector>,
    queue: EventQueue<Event>,
    queries: Vec<LiveQuery>,
    guid_to_query: HashMap<Guid, usize>,
    issue_rng: Rng64,
    net_rng: Rng64,
    policy_rng: Rng64,
}

impl<P: ForwardingPolicy> Network<P> {
    /// Builds the network, workload, and event schedule.
    pub fn new(cfg: SimConfig, policy: P) -> Self {
        Self::build(cfg, policy, None)
    }

    /// Like [`Network::new`] but runs on a caller-supplied overlay graph
    /// (must have exactly `cfg.nodes` nodes). Used by the
    /// topology-adaptation experiment to replay a workload on a rewired
    /// overlay.
    pub fn with_graph(cfg: SimConfig, policy: P, graph: Graph) -> Self {
        assert_eq!(
            graph.len(),
            cfg.nodes,
            "supplied graph size does not match cfg.nodes"
        );
        Self::build(cfg, policy, Some(graph))
    }

    fn build(cfg: SimConfig, mut policy: P, prebuilt: Option<Graph>) -> Self {
        assert!(cfg.nodes >= 4, "network too small");
        assert!(cfg.queries > 0, "no queries to run");
        assert!(cfg.hop_latency.1 > cfg.hop_latency.0, "empty latency range");
        assert!(
            (0.0..1.0).contains(&cfg.loss_rate),
            "loss rate must be in [0, 1)"
        );
        let streams = StreamFactory::new(cfg.seed);
        let mut topo_rng = streams.stream("topology");
        let graph = prebuilt.unwrap_or_else(|| match cfg.topology {
            Topology::BarabasiAlbert { m } => {
                generate::barabasi_albert(cfg.nodes, m, &mut topo_rng)
            }
            Topology::ErdosRenyi { p } => {
                let mut g = generate::erdos_renyi(cfg.nodes, p, &mut topo_rng);
                generate::ensure_connected(&mut g, &mut topo_rng);
                g
            }
            Topology::WattsStrogatz { k, beta } => {
                generate::watts_strogatz(cfg.nodes, k, beta, &mut topo_rng)
            }
            Topology::SuperPeer {
                n_super,
                super_degree,
            } => generate::superpeer(cfg.nodes, n_super, super_degree, &mut topo_rng).0,
        });
        graph
            .check_invariants()
            .expect("generator produced a broken graph");

        let mut cat_rng = streams.stream("catalog");
        let catalog = Catalog::generate(cfg.catalog.clone(), &mut cat_rng);
        let mut wl_rng = streams.stream("workload");
        let workload =
            WorkloadGen::generate(cfg.nodes, &catalog, cfg.workload.clone(), &mut wl_rng);

        let mut guid_rng = streams.stream("guid");
        let guid_gens = (0..cfg.nodes)
            .map(|_| {
                if guid_rng.chance(cfg.faulty_fraction) {
                    GuidGen::faulty(4, &mut guid_rng)
                } else {
                    GuidGen::Proper
                }
            })
            .collect();

        let churn = cfg.churn.clone().map(|mut c| {
            if let Some(col) = cfg.collector {
                // The collector must stay online for the full capture,
                // like the paper's instrumented client.
                if !c.pinned.contains(&col) {
                    c.pinned.push(col);
                }
            }
            ChurnProcess::new(cfg.nodes, c, streams.stream("churn"))
        });

        let mut issue_rng = streams.stream("issue");
        let mut queue = EventQueue::with_capacity(cfg.queries * 4);
        let mut t = SimTime::ZERO;
        for qidx in 0..cfg.queries {
            let dt = issue_rng
                .exp(cfg.mean_query_interval.ticks() as f64)
                .max(1.0) as u64;
            t = t.saturating_add(Duration::from_ticks(dt));
            queue.schedule(t, Event::Issue { qidx });
        }

        policy.init(&graph, &workload, &catalog);

        Network {
            collector: cfg.collector.map(Collector::new),
            states: (0..cfg.nodes)
                .map(|_| NodeState::new(cfg.guid_cache))
                .collect(),
            guid_gens,
            churn,
            queue,
            queries: Vec::with_capacity(cfg.queries),
            guid_to_query: HashMap::with_capacity(cfg.queries * 2),
            issue_rng,
            net_rng: streams.stream("net"),
            policy_rng: streams.stream("policy"),
            graph,
            catalog,
            workload,
            policy,
            cfg,
        }
    }

    /// Immutable access to the overlay (tests and baselines use it).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    fn hop_latency(&mut self) -> Duration {
        let (lo, hi) = self.cfg.hop_latency;
        Duration::from_ticks(lo + self.net_rng.below(hi - lo))
    }

    fn apply_churn_until(&mut self, horizon: SimTime) {
        let Some(churn) = self.churn.as_mut() else {
            return;
        };
        let mut changed = false;
        while let Some(ev) = churn.next_before(horizon) {
            match ev.kind {
                ChurnKind::Leave => {
                    self.graph.depart(ev.node);
                    self.states[ev.node.index()].reset();
                }
                ChurnKind::Join => {
                    self.graph.rejoin(ev.node);
                    let mut wired = false;
                    if let Some(ttl) = self.cfg.rejoin_via_ping {
                        let live: Vec<NodeId> =
                            self.graph.live_nodes().filter(|&n| n != ev.node).collect();
                        if !live.is_empty() {
                            let bootstrap = live[self.net_rng.index(live.len())];
                            wired = !crate::discovery::rewire_via_discovery(
                                &mut self.graph,
                                ev.node,
                                bootstrap,
                                ttl,
                                self.cfg.rejoin_degree,
                                &mut self.net_rng,
                            )
                            .is_empty();
                        }
                    }
                    if !wired {
                        rewire_join(
                            &mut self.graph,
                            ev.node,
                            self.cfg.rejoin_degree,
                            &mut self.net_rng,
                        );
                    }
                }
            }
            changed = true;
        }
        if changed {
            self.policy.on_topology_change(&self.graph);
        }
    }

    fn issue_attempt(&mut self, qidx: usize, ttl: u32, now: SimTime) {
        let node = self.queries[qidx].node;
        if !self.graph.is_alive(node) {
            return; // issuer offline at reissue time
        }
        let key = self.queries[qidx].key;
        let guid = self.guid_gens[node.index()].next(&mut self.net_rng);
        self.guid_to_query.entry(guid).or_insert(qidx);
        self.queries[qidx].outcome.attempts += 1;
        let msg = QueryMsg {
            guid,
            key,
            ttl,
            hops: 0,
        };
        self.states[node.index()].record(guid, Upstream::Origin);
        self.relay(node, None, msg, now);
    }

    /// Runs the policy at `node` and transmits the query onward.
    fn relay(&mut self, node: NodeId, from: Option<NodeId>, msg: QueryMsg, now: SimTime) {
        let Some(next) = msg.hop() else {
            return;
        };
        let candidates: Vec<NodeId> = self
            .graph
            .live_neighbors(node)
            .filter(|&n| Some(n) != from)
            .collect();
        if candidates.is_empty() {
            return;
        }
        let ctx = ForwardCtx {
            node,
            from,
            query: &next,
            candidates: &candidates,
        };
        let selected = self.policy.select(&ctx, &mut self.policy_rng);
        for &target in &selected {
            assert!(
                candidates.contains(&target),
                "policy {} selected non-candidate {target} at {node}",
                self.policy.name()
            );
        }
        for target in selected {
            if let Some(qidx) = self.guid_to_query.get(&msg.guid) {
                let outcome = &mut self.queries[*qidx].outcome;
                outcome.query_messages += 1;
                outcome.bytes += next.wire_size();
            }
            let at = now.saturating_add(self.hop_latency());
            self.queue.schedule(
                at,
                Event::Query {
                    to: target,
                    from: node,
                    msg: next,
                },
            );
        }
    }

    fn send_hit(&mut self, to: NodeId, from: NodeId, msg: HitMsg, now: SimTime) {
        if let Some(qidx) = self.guid_to_query.get(&msg.guid) {
            let outcome = &mut self.queries[*qidx].outcome;
            outcome.hit_messages += 1;
            outcome.bytes += msg.wire_size();
        }
        let at = now.saturating_add(self.hop_latency());
        self.queue.schedule(at, Event::Hit { to, from, msg });
    }

    fn handle_query(&mut self, to: NodeId, from: NodeId, msg: QueryMsg, now: SimTime) {
        if self.cfg.loss_rate > 0.0 && self.net_rng.chance(self.cfg.loss_rate) {
            return; // lost in flight
        }
        if !self.graph.is_alive(to) {
            return; // delivered into the void
        }
        if let Some(col) = self.collector.as_mut() {
            if col.node() == to {
                col.on_query(now, msg.guid, from, msg.key);
            }
        }
        if !self.states[to.index()].record(msg.guid, Upstream::Neighbor(from)) {
            return; // duplicate
        }
        // Local match: reply, then keep relaying (Gnutella semantics).
        if self.workload.library(to.index()).matches(msg.key) {
            let hit = HitMsg {
                guid: msg.guid,
                responder: to,
                key: msg.key,
                query_hops: msg.hops,
            };
            self.route_hit_from(to, hit, now);
        }
        self.relay(to, Some(from), msg, now);
    }

    /// Starts or continues a hit's travel along the reverse path from
    /// `node`.
    fn route_hit_from(&mut self, node: NodeId, msg: HitMsg, now: SimTime) {
        match self.states[node.index()].upstream(msg.guid) {
            Some(Upstream::Origin) => {
                // node is the issuer — the responder is the issuer itself
                // only in degenerate configs; deliver.
                self.deliver_hit(node, msg, now);
            }
            Some(Upstream::Neighbor(up)) if self.graph.is_alive(up) => {
                self.send_hit(up, node, msg, now);
            }
            Some(Upstream::Neighbor(_)) => {
                // Broken reverse path: hit is lost, as in the real network.
            }
            None => {
                // Cache evicted or node restarted: hit is lost.
            }
        }
    }

    fn handle_hit(&mut self, to: NodeId, from: NodeId, msg: HitMsg, now: SimTime) {
        if self.cfg.loss_rate > 0.0 && self.net_rng.chance(self.cfg.loss_rate) {
            return; // lost in flight
        }
        if !self.graph.is_alive(to) {
            return;
        }
        if let Some(col) = self.collector.as_mut() {
            if col.node() == to {
                col.on_reply(now, msg.guid, from, msg.responder, msg.key);
            }
        }
        let upstream = match self.states[to.index()].upstream(msg.guid) {
            Some(Upstream::Origin) => None,
            Some(Upstream::Neighbor(n)) => Some(n),
            None => {
                return; // no route memory; drop
            }
        };
        self.policy.on_reply(to, upstream, from, msg.key);
        match upstream {
            None => self.deliver_hit(to, msg, now),
            Some(up) => {
                if self.graph.is_alive(up) {
                    self.send_hit(up, to, msg, now);
                }
            }
        }
    }

    fn deliver_hit(&mut self, issuer: NodeId, msg: HitMsg, now: SimTime) {
        let Some(&qidx) = self.guid_to_query.get(&msg.guid) else {
            return;
        };
        let q = &mut self.queries[qidx];
        debug_assert_eq!(q.node, issuer);
        q.outcome.hits_delivered += 1;
        if q.outcome.first_hit_hops.is_none() {
            q.outcome.first_hit_hops = Some(msg.query_hops + 1);
            q.outcome.first_hit_latency = Some(now.since(q.issued_at));
            if self.cfg.download_on_hit {
                // First hit: fetch the file, becoming a new replica.
                self.workload
                    .library_mut(issuer.index())
                    .insert(msg.key.file);
            }
        }
    }

    /// Runs to completion, consuming the network.
    pub fn run(self) -> SimResult {
        self.run_full().0
    }

    /// Runs to completion, also returning the policy (with its learned
    /// state) and the final overlay graph — the inputs the
    /// topology-adaptation extension needs.
    pub fn run_full(mut self) -> (SimResult, P, Graph) {
        let first_ttl = self
            .cfg
            .ring
            .as_ref()
            .map(|r| *r.ttls.first().expect("empty ring schedule"))
            .unwrap_or(self.cfg.ttl);
        while let Some(next_time) = self.queue.peek_time() {
            self.apply_churn_until(next_time);
            let (now, event) = self.queue.pop().expect("peeked event vanished");
            match event {
                Event::Issue { qidx } => {
                    debug_assert_eq!(qidx, self.queries.len());
                    // Pick a live issuer; a dead one simply skips its turn
                    // (recorded as unanswerable, zero-message query).
                    let live: Vec<NodeId> = self.graph.live_nodes().collect();
                    let node = if live.is_empty() {
                        NodeId(0)
                    } else {
                        *self.issue_rng.pick(&live)
                    };
                    let key =
                        self.workload
                            .next_query(node.index(), &self.catalog, &mut self.issue_rng);
                    let answerable = self
                        .workload
                        .holders(key)
                        .into_iter()
                        .any(|h| h != node.index() && self.graph.is_alive(NodeId(h as u32)));
                    self.queries.push(LiveQuery {
                        node,
                        key,
                        issued_at: now,
                        outcome: QueryOutcome {
                            answerable,
                            ..QueryOutcome::default()
                        },
                    });
                    if self.graph.is_alive(node) {
                        self.issue_attempt(qidx, first_ttl, now);
                        if let Some(ring) = self.cfg.ring.clone() {
                            if ring.ttls.len() > 1 {
                                self.queue.schedule(
                                    now.saturating_add(ring.wait),
                                    Event::RingTimeout { qidx, stage: 1 },
                                );
                            }
                        }
                    }
                }
                Event::Query { to, from, msg } => self.handle_query(to, from, msg, now),
                Event::Hit { to, from, msg } => self.handle_hit(to, from, msg, now),
                Event::RingTimeout { qidx, stage } => {
                    let ring = self
                        .cfg
                        .ring
                        .clone()
                        .expect("ring timeout without schedule");
                    if self.queries[qidx].outcome.hits_delivered == 0 {
                        let ttl = ring.ttls[stage];
                        self.issue_attempt(qidx, ttl, now);
                        if stage + 1 < ring.ttls.len() {
                            self.queue.schedule(
                                now.saturating_add(ring.wait),
                                Event::RingTimeout {
                                    qidx,
                                    stage: stage + 1,
                                },
                            );
                        }
                    }
                }
            }
        }

        let end_time = self.queue.now();
        let mut builder = MetricsBuilder::new();
        for q in &self.queries {
            builder.record(&q.outcome);
        }
        let result = SimResult {
            metrics: builder.finish(self.policy.name()),
            trace: self.collector.map(Collector::into_db),
            end_time,
        };
        (result, self.policy, self.graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FloodPolicy;

    fn tiny_cfg(seed: u64) -> SimConfig {
        let mut cfg = SimConfig::default_with(50, 200, seed);
        cfg.catalog = CatalogConfig {
            topics: 5,
            files_per_topic: 40,
            ..Default::default()
        };
        cfg.workload.files_per_node = 30;
        cfg.workload.free_rider_fraction = 0.1;
        cfg
    }

    #[test]
    fn flooding_finds_most_answerable_content() {
        let result = Network::new(tiny_cfg(1), FloodPolicy).run();
        let m = &result.metrics;
        assert_eq!(m.queries, 200);
        assert!(m.answerable > 100, "workload too sparse: {}", m.answerable);
        // TTL-5 flooding on a 50-node BA graph reaches everyone.
        assert!(
            m.success_rate > 0.95,
            "flooding missed content: {}",
            m.success_rate
        );
        assert!(m.query_messages > 0 && m.hit_messages > 0);
        assert!(m.messages_per_query > 10.0, "suspiciously little traffic");
    }

    #[test]
    fn runs_are_deterministic() {
        let a = Network::new(tiny_cfg(7), FloodPolicy).run();
        let b = Network::new(tiny_cfg(7), FloodPolicy).run();
        assert_eq!(a.metrics.query_messages, b.metrics.query_messages);
        assert_eq!(a.metrics.hit_messages, b.metrics.hit_messages);
        assert_eq!(a.metrics.answered, b.metrics.answered);
        assert_eq!(a.end_time, b.end_time);
        let c = Network::new(tiny_cfg(8), FloodPolicy).run();
        assert_ne!(a.metrics.query_messages, c.metrics.query_messages);
    }

    #[test]
    fn ttl_one_generates_single_ring_of_messages() {
        let mut cfg = tiny_cfg(3);
        cfg.ttl = 2; // issuer floods neighbors; they answer but relay no further
        let result = Network::new(cfg, FloodPolicy).run();
        let m = &result.metrics;
        // Max messages per query = issuer degree (BA graph m=3 minimum) —
        // mean must be far below a full flood.
        assert!(
            m.messages_per_query < 30.0,
            "TTL 2 produced {} messages/query",
            m.messages_per_query
        );
        assert!(m.success_rate < 0.9, "2-hop horizon cannot see everything");
    }

    #[test]
    fn collector_records_traffic() {
        let mut cfg = tiny_cfg(5);
        // Instrument the highest-degree node (id 0 is in the BA seed clique).
        cfg.collector = Some(NodeId(0));
        let result = Network::new(cfg, FloodPolicy).run();
        let mut db = result.trace.expect("collector configured");
        assert!(
            db.query_count() > 100,
            "collector saw {} queries",
            db.query_count()
        );
        assert!(db.reply_count() > 0);
        let (_, pairs) = db.clean_and_join();
        assert!(!pairs.is_empty());
        // Pair sources must be neighbors, not arbitrary nodes.
        for p in &pairs {
            assert_ne!(p.src.0, 0, "collector recorded itself as source");
        }
    }

    #[test]
    fn churn_does_not_break_the_run() {
        let mut cfg = tiny_cfg(9);
        cfg.queries = 300;
        cfg.churn = Some(ChurnConfig {
            mean_session: Duration::from_ticks(100_000),
            mean_downtime: Duration::from_ticks(50_000),
            pinned: vec![],
        });
        let result = Network::new(cfg, FloodPolicy).run();
        let m = &result.metrics;
        assert_eq!(m.queries, 300);
        // Churn costs some hits but the network keeps functioning.
        assert!(
            m.success_rate > 0.5,
            "churn collapsed success: {}",
            m.success_rate
        );
    }

    #[test]
    fn expanding_ring_uses_fewer_messages_when_content_is_near() {
        let mut cfg = tiny_cfg(11);
        cfg.queries = 300;
        let flood = Network::new(cfg.clone(), FloodPolicy).run();
        cfg.ring = Some(RingSchedule {
            ttls: vec![2, 5],
            wait: Duration::from_ticks(1_000),
        });
        let ring = Network::new(cfg, FloodPolicy).run();
        assert!(
            ring.metrics.messages_per_query < flood.metrics.messages_per_query,
            "ring {} >= flood {}",
            ring.metrics.messages_per_query,
            flood.metrics.messages_per_query
        );
        // Success stays in the same ballpark because the last ring is a
        // full flood.
        assert!(ring.metrics.success_rate > flood.metrics.success_rate - 0.1);
    }

    #[test]
    fn downloads_replicate_content_and_raise_answerability() {
        let mut cfg = tiny_cfg(41);
        cfg.queries = 1_500;
        cfg.workload.files_per_node = 10; // sparse: replication matters
        let without = Network::new(cfg.clone(), FloodPolicy).run().metrics;
        cfg.download_on_hit = true;
        let with = Network::new(cfg, FloodPolicy).run().metrics;
        // Replication makes strictly more queries answerable over the
        // run (popular files spread to their requesters).
        assert!(
            with.answerable > without.answerable,
            "replication did not help: {} vs {}",
            with.answerable,
            without.answerable
        );
    }

    #[test]
    fn ping_based_rejoin_keeps_the_network_working() {
        let mut cfg = tiny_cfg(31);
        cfg.queries = 300;
        cfg.churn = Some(ChurnConfig {
            mean_session: Duration::from_ticks(100_000),
            mean_downtime: Duration::from_ticks(50_000),
            pinned: vec![],
        });
        cfg.rejoin_via_ping = Some(3);
        let pinged = Network::new(cfg.clone(), FloodPolicy).run().metrics;
        cfg.rejoin_via_ping = None;
        let uniform = Network::new(cfg, FloodPolicy).run().metrics;
        // Both rejoin modes must keep search functional; locality-biased
        // rewiring should not collapse success.
        assert!(pinged.success_rate > 0.5, "pinged {}", pinged.success_rate);
        assert!(uniform.success_rate > 0.5);
    }

    #[test]
    fn message_loss_degrades_search_gracefully() {
        let clean = Network::new(tiny_cfg(21), FloodPolicy).run().metrics;
        let mut lossy_cfg = tiny_cfg(21);
        lossy_cfg.loss_rate = 0.30;
        let lossy = Network::new(lossy_cfg, FloodPolicy).run().metrics;
        // Flooding is redundant, so moderate loss costs some but not all
        // success; it must never *help*.
        assert!(lossy.success_rate < clean.success_rate);
        assert!(
            lossy.success_rate > clean.success_rate * 0.3,
            "flooding redundancy should absorb moderate loss: {} vs {}",
            lossy.success_rate,
            clean.success_rate
        );
        // Heavy loss is devastating.
        let mut heavy_cfg = tiny_cfg(21);
        heavy_cfg.loss_rate = 0.90;
        let heavy = Network::new(heavy_cfg, FloodPolicy).run().metrics;
        assert!(heavy.success_rate < lossy.success_rate);
    }

    #[test]
    #[should_panic(expected = "loss rate")]
    fn rejects_total_loss() {
        let mut cfg = tiny_cfg(1);
        cfg.loss_rate = 1.0;
        Network::new(cfg, FloodPolicy);
    }

    #[test]
    #[should_panic(expected = "network too small")]
    fn rejects_tiny_networks() {
        let cfg = SimConfig::default_with(2, 10, 0);
        Network::new(cfg, FloodPolicy);
    }
}
