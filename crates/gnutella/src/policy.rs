//! Pluggable query-forwarding policies.
//!
//! Every routing scheme compared in the workspace — flooding, k-random
//! walks, routing indices, interest shortcuts, and the paper's
//! association-rule router — is a [`ForwardingPolicy`]: given a query
//! arriving at a node, it picks the subset of live neighbors that should
//! receive it. The simulator handles everything else (dedup, TTL,
//! reverse-path hits, churn, metrics), so a one-line policy swap changes
//! the routing scheme and nothing else.

use crate::message::QueryMsg;
use arq_content::{Catalog, WorkloadGen};
use arq_overlay::{Graph, NodeId};
use arq_simkern::Rng64;

/// Context handed to a policy for one forwarding decision.
#[derive(Debug)]
pub struct ForwardCtx<'a> {
    /// The node making the decision.
    pub node: NodeId,
    /// The neighbor the query arrived from (`None` at the issuer).
    pub from: Option<NodeId>,
    /// The query being relayed (TTL already reflects this hop).
    pub query: &'a QueryMsg,
    /// Live neighbors excluding `from` — the legal forwarding targets.
    pub candidates: &'a [NodeId],
}

/// A shortcut edge a policy would like the simulator to add: `asker`
/// learned (via its rules) that queries it relays through a neighbor
/// keep being answered along `target`, so a direct `asker — target`
/// edge would cut the detour. The simulator owns application: proposals
/// are collected on a tumbling schedule and applied at the *next*
/// boundary under liveness re-validation and a per-node degree budget
/// (see `sim::AdaptPlan`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ShortcutProposal {
    /// The node that would gain the shortcut.
    pub asker: NodeId,
    /// The proposed new neighbor.
    pub target: NodeId,
    /// The existing neighbor whose rules motivated the proposal.
    pub via: NodeId,
}

/// A query-forwarding strategy.
///
/// Implementations may keep per-node internal state keyed by
/// [`NodeId`]; one policy instance serves the whole network.
pub trait ForwardingPolicy {
    /// Short label used in metrics and experiment tables.
    fn name(&self) -> &'static str;

    /// Called once before the simulation starts, with the full ground
    /// truth. Policies that build indices (routing indices, shortcuts)
    /// hook here; reactive policies ignore it.
    fn init(&mut self, _graph: &Graph, _workload: &WorkloadGen, _catalog: &Catalog) {}

    /// Called after churn changes the topology, with the updated graph.
    fn on_topology_change(&mut self, _graph: &Graph) {}

    /// Picks which of `ctx.candidates` receive the query. Returning
    /// candidates not in the slice is a bug and the simulator will panic.
    fn select(&mut self, ctx: &ForwardCtx<'_>, rng: &mut Rng64) -> Vec<NodeId>;

    /// Allocation-free variant of [`ForwardingPolicy::select`]: appends
    /// the selected targets to `out` (already cleared by the caller)
    /// instead of returning a fresh `Vec`. The simulator calls this on
    /// its relay hot path with a pooled buffer. The default delegates to
    /// `select`, so implementing it is an optimization, never a
    /// behavioral change — overrides must select exactly the targets
    /// `select` would and consume RNG draws identically.
    fn select_into(&mut self, ctx: &ForwardCtx<'_>, rng: &mut Rng64, out: &mut Vec<NodeId>) {
        out.extend(self.select(ctx, rng));
    }

    /// Feedback: a hit travelled back through `node`, arriving from
    /// neighbor `via`, answering a query that had reached `node` from
    /// `upstream` (`None` when `node` issued it). `(upstream, via)` is
    /// exactly the paper's antecedent/consequent observation; learning
    /// policies (association rules, shortcuts) update themselves here.
    fn on_reply(
        &mut self,
        _node: NodeId,
        _upstream: Option<NodeId>,
        _via: NodeId,
        _key: arq_content::QueryKey,
    ) {
    }

    /// Failure feedback: a query issued at `node` that was first
    /// forwarded to neighbor `target` hit its deadline without producing
    /// a hit. Learning policies use this to demote or evict rules whose
    /// consequent looks dead; stateless policies ignore it. Fired once
    /// per first-hop target on every timeout (including the final one
    /// that expires the query).
    fn on_failure(&mut self, _node: NodeId, _target: NodeId) {}

    /// Policy-specific counters for experiment reports (e.g. rule usage,
    /// index hits), as ordered `(label, value)` pairs. Stateless policies
    /// report nothing. The order must be deterministic — these feed
    /// byte-compared run artifacts.
    fn stats(&self) -> Vec<(String, f64)> {
        Vec::new()
    }

    /// Topology-adaptation hook: shortcut edges this policy would add to
    /// the current overlay, derived from whatever routing state it has
    /// learned. Called by the simulator on the tumbling schedule of an
    /// active `sim::AdaptPlan`; the default (stateless policies, plain
    /// flooding) proposes nothing, which keeps adaptation a no-op.
    fn propose_shortcuts(&self, _graph: &Graph) -> Vec<ShortcutProposal> {
        Vec::new()
    }

    /// Whether an applied shortcut's source rule is still alive: the
    /// policy still ranks `target` among the consequents it has learned
    /// for queries relayed toward `via` by `asker`. The simulator retires
    /// shortcut edges for which this turns false (the rule decayed) or
    /// whose endpoint crashed. The default says no, so policies that
    /// never propose shortcuts never keep them alive either.
    fn shortcut_active(&self, _asker: NodeId, _target: NodeId, _via: NodeId) -> bool {
        false
    }

    /// Downcast hook for callers that need the concrete policy back after
    /// a type-erased run (e.g. topology adaptation reading the learned
    /// association rules). Policies that expose post-run state override
    /// this with `Some(self)`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// Boxed policies forward every call to the inner policy, so a
/// `Network<Box<dyn ForwardingPolicy>>` behaves exactly like the
/// monomorphic version. This is what lets the engine registry construct
/// policies from run-time names.
impl<P: ForwardingPolicy + ?Sized> ForwardingPolicy for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn init(&mut self, graph: &Graph, workload: &WorkloadGen, catalog: &Catalog) {
        (**self).init(graph, workload, catalog);
    }

    fn on_topology_change(&mut self, graph: &Graph) {
        (**self).on_topology_change(graph);
    }

    fn select(&mut self, ctx: &ForwardCtx<'_>, rng: &mut Rng64) -> Vec<NodeId> {
        (**self).select(ctx, rng)
    }

    fn select_into(&mut self, ctx: &ForwardCtx<'_>, rng: &mut Rng64, out: &mut Vec<NodeId>) {
        (**self).select_into(ctx, rng, out);
    }

    fn on_reply(
        &mut self,
        node: NodeId,
        upstream: Option<NodeId>,
        via: NodeId,
        key: arq_content::QueryKey,
    ) {
        (**self).on_reply(node, upstream, via, key);
    }

    fn on_failure(&mut self, node: NodeId, target: NodeId) {
        (**self).on_failure(node, target);
    }

    fn stats(&self) -> Vec<(String, f64)> {
        (**self).stats()
    }

    fn propose_shortcuts(&self, graph: &Graph) -> Vec<ShortcutProposal> {
        (**self).propose_shortcuts(graph)
    }

    fn shortcut_active(&self, asker: NodeId, target: NodeId, via: NodeId) -> bool {
        (**self).shortcut_active(asker, target, via)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        (**self).as_any()
    }
}

/// Plain Gnutella flooding: forward to every candidate.
#[derive(Debug, Default, Clone)]
pub struct FloodPolicy;

impl ForwardingPolicy for FloodPolicy {
    fn name(&self) -> &'static str {
        "flood"
    }

    fn select(&mut self, ctx: &ForwardCtx<'_>, _rng: &mut Rng64) -> Vec<NodeId> {
        ctx.candidates.to_vec()
    }

    fn select_into(&mut self, ctx: &ForwardCtx<'_>, _rng: &mut Rng64, out: &mut Vec<NodeId>) {
        out.extend_from_slice(ctx.candidates);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arq_content::{FileId, QueryKey, Topic};
    use arq_trace::record::Guid;

    #[test]
    fn flood_selects_everyone() {
        let mut p = FloodPolicy;
        let q = QueryMsg {
            guid: Guid(1),
            key: QueryKey {
                file: FileId(0),
                topic: Topic(0),
            },
            ttl: 4,
            hops: 1,
        };
        let candidates = vec![NodeId(1), NodeId(2), NodeId(3)];
        let ctx = ForwardCtx {
            node: NodeId(0),
            from: Some(NodeId(9)),
            query: &q,
            candidates: &candidates,
        };
        let mut rng = Rng64::seed_from(0);
        assert_eq!(p.select(&ctx, &mut rng), candidates);
        assert_eq!(p.name(), "flood");
    }
}
