//! Windowed, sharded execution of the live simulator.
//!
//! [`Network::run_full`] is exact: one global event queue, every delivery
//! processed in `(time, seq)` order. That engine is inherently serial —
//! every message delivery may touch policy state and RNG streams. This
//! module adds an **opt-in** second engine, [`Network::run_sharded`],
//! that trades a small, documented semantic relaxation for node-sharded
//! parallelism at 100k–1M nodes.
//!
//! # Execution model
//!
//! Time is cut into fixed windows of `W = hop_latency.lo` ticks. Every
//! transmission takes at least `W` ticks, so a message sent inside window
//! `k` is always delivered in window `k+1` or later: when a window opens,
//! its complete delivery set is already known. Each window runs three
//! phases:
//!
//! 1. **Control (serial):** churn up to the window start, then all
//!    control events (query issues, retry deadlines, ring timeouts,
//!    crashes) inside the window, in `(time, seq)` order. Sends from
//!    this phase land in strictly later windows.
//! 2. **Delivery verdicts (parallel):** the window's deliveries, sorted
//!    by `(send time, send seq)`, are partitioned by destination node
//!    across shards. Each shard walks the full window in order but
//!    touches only its own nodes, computing per-delivery *verdicts*
//!    (dead/duplicate/accepted, local-match hit route, relay candidate
//!    list) against its own [`GuidStore`] range and the frozen graph,
//!    library, and silent-node sets. No RNG is consumed here: loss is
//!    rolled at *send* time, and every draw-consuming action is deferred.
//! 3. **Replay (serial):** the same global `(time, seq)` order replays
//!    the verdicts, performing everything order-sensitive: policy
//!    `select`/`on_reply`, metrics, hit delivery, and all RNG draws
//!    (loss, latency, jitter) for the resulting sends.
//!
//! # Determinism
//!
//! Verdicts depend only on per-node state, and every node lives in
//! exactly one shard processing its deliveries in global order, so the
//! verdict of each delivery is independent of the shard decomposition.
//! All RNG draws happen in the serial phases in `(time, seq)` order.
//! Results are therefore **byte-identical for any thread count**,
//! including 1 — which is what lets CI diff digests across
//! `ARQ_THREADS` settings.
//!
//! # Documented deltas vs the exact engine
//!
//! Runs are deterministic and plausible but **not** byte-comparable to
//! [`Network::run_full`]:
//!
//! * loss/latency draws happen at send (lost messages draw no latency),
//!   and drop traces carry the send time, not the delivery time;
//! * churn, crashes, and control events apply at window granularity:
//!   deadlines see hits delivered up to the previous window boundary,
//!   and a node crashing mid-window is dead for that whole window;
//! * issuers are drawn by rejection sampling over live nodes instead of
//!   materializing the live-node list, and answerability is resolved
//!   through an inverted file→holders index (same answer, different
//!   issue-stream draw count);
//! * GUID age expiry may observe send times up to one window out of
//!   order (bounded by `W` ticks).
//!
//! # Link layer
//!
//! When a [`crate::net::LinkPlan`] is active, every link-layer
//! interaction — channel clocks, byte buffers, loss and jitter draws —
//! happens at *send* time in the serial phases, in global `(time, seq)`
//! order, so link-enabled runs keep the any-thread-count byte-identity
//! guarantee. The delivery ring is sized from
//! [`crate::net::LinkState::max_delay`]; because the ring has no
//! overflow path, rate-limited channels must be buffered (the engine
//! rejects unbounded-queueing plans up front).
//!
//! Trace collectors are not supported here; instrument runs use the
//! exact engine.

use super::{Event, Network, SimResult};
use crate::faults::FaultState;
use crate::message::{HitMsg, QueryMsg};
use crate::metrics::MetricsBuilder;
use crate::net::{LinkState, Transmission};
use crate::node::Upstream;
use crate::policy::{ForwardCtx, ForwardingPolicy};
use crate::store::GuidStore;
use arq_content::{FileId, WorkloadGen};
use arq_obs::{DropKind, Event as ObsEvent};
use arq_overlay::churn::{rewire_join, ChurnKind};
use arq_overlay::{Graph, NodeId};
use arq_simkern::SimTime;
use std::collections::VecDeque;

/// Below this many deliveries a window is processed inline: thread
/// handoff would cost more than the work. Purely a performance knob —
/// the inline path runs the identical per-shard code in shard order, so
/// results never depend on it.
const PARALLEL_THRESHOLD: usize = 512;

/// One in-flight message, parked in the delivery ring until its window
/// opens. `seq` is the global send order, the tie-breaker that keeps
/// replay deterministic for same-tick deliveries.
#[derive(Clone, Copy)]
struct Envelope {
    at: u64,
    seq: u64,
    to: NodeId,
    from: NodeId,
    qidx: u32,
    payload: Payload,
}

#[derive(Clone, Copy)]
enum Payload {
    /// A query as delivered (TTL/hops already reflect the hop).
    Query(QueryMsg),
    Hit(HitMsg),
}

/// Where a locally-matched hit goes, resolved in the parallel phase.
#[derive(Clone, Copy)]
enum HitRoute {
    /// Responder is the issuer itself (degenerate GUID reuse).
    Origin,
    /// Reverse-path neighbor, alive at window start.
    Up(NodeId),
    /// Reverse path broken; the hit dies here.
    Lost,
}

/// Outcome of one delivery, computed shard-locally, consumed by replay.
enum Verdict {
    /// Nothing to replay: dead destination, duplicate GUID, or a hit
    /// with no route memory.
    Void,
    /// A fresh query was accepted.
    Query {
        /// Local library match to answer, if any.
        hit: Option<HitRoute>,
        /// Relay candidates parked in the shard arena (`len == 0` when
        /// the node is silent, the TTL is spent, or it has no one to
        /// forward to).
        cand_start: u32,
        cand_len: u32,
    },
    /// A hit was accepted at a node with route memory (`None` = this
    /// node issued the query).
    Hit { upstream: Option<NodeId> },
}

/// Per-worker state: one contiguous node range's GUID memory, plus the
/// window-scoped candidate arena and verdict stream.
struct Shard {
    store: GuidStore,
    arena: Vec<NodeId>,
    verdicts: VecDeque<Verdict>,
}

/// Read-only world the parallel phase sees; frozen for the window.
#[derive(Clone, Copy)]
struct WorldView<'a> {
    graph: &'a Graph,
    workload: &'a WorkloadGen,
    faults: Option<&'a FaultState>,
}

/// Calendar of future delivery windows. Cell `k % cells` holds window
/// `k`'s envelopes; `cells` covers the maximum transmission delay so
/// two pending windows never share a cell.
struct DeliveryRing {
    cells: Vec<Vec<Envelope>>,
    /// Window width in ticks (`hop_latency.lo`).
    w: u64,
    /// Window currently executing; pushes must land strictly later.
    cur: u64,
    /// Next send sequence number.
    seq: u64,
    /// Total parked envelopes.
    pending: usize,
}

impl DeliveryRing {
    fn push(&mut self, at: SimTime, to: NodeId, from: NodeId, qidx: usize, payload: Payload) {
        let window = at.ticks() / self.w;
        debug_assert!(
            window > self.cur && (window - self.cur) < self.cells.len() as u64,
            "delivery window {window} outside ring (cur {})",
            self.cur
        );
        let cell = (window % self.cells.len() as u64) as usize;
        self.cells[cell].push(Envelope {
            at: at.ticks(),
            seq: self.seq,
            to,
            from,
            qidx: qidx as u32,
            payload,
        });
        self.seq += 1;
        self.pending += 1;
    }

    /// Earliest pending delivery window, if any. Every nonempty cell
    /// holds exactly one window's envelopes, so the first entry names it.
    fn earliest_window(&self) -> Option<u64> {
        self.cells
            .iter()
            .filter(|c| !c.is_empty())
            .map(|c| c[0].at / self.w)
            .min()
    }
}

/// Computes every verdict for `me`'s nodes, walking the whole window in
/// global order (preserving per-node delivery order). Runs on worker
/// threads; everything it touches is either shard-owned or frozen.
fn shard_verdicts(
    me: usize,
    chunk: usize,
    shard: &mut Shard,
    evs: &[Envelope],
    world: WorldView<'_>,
) {
    shard.arena.clear();
    shard.verdicts.clear();
    for e in evs {
        if e.to.index() / chunk != me {
            continue;
        }
        let v = match e.payload {
            Payload::Query(msg) => {
                if !world.graph.is_alive(e.to)
                    || !shard.store.record(
                        e.to,
                        msg.guid,
                        Upstream::Neighbor(e.from),
                        SimTime::from_ticks(e.at),
                    )
                {
                    Verdict::Void // dead receiver, or a duplicate
                } else {
                    let hit = if world.workload.library(e.to.index()).matches(msg.key) {
                        Some(match shard.store.upstream(e.to, msg.guid) {
                            Some(Upstream::Origin) => HitRoute::Origin,
                            Some(Upstream::Neighbor(up)) if world.graph.is_alive(up) => {
                                HitRoute::Up(up)
                            }
                            _ => HitRoute::Lost,
                        })
                    } else {
                        None
                    };
                    let silent = world.faults.is_some_and(|f| f.is_silent(e.to));
                    let (cand_start, cand_len) = if !silent && msg.hop().is_some() {
                        let start = shard.arena.len() as u32;
                        shard
                            .arena
                            .extend(world.graph.live_neighbors(e.to).filter(|&n| n != e.from));
                        (start, shard.arena.len() as u32 - start)
                    } else {
                        (0, 0)
                    };
                    Verdict::Query {
                        hit,
                        cand_start,
                        cand_len,
                    }
                }
            }
            Payload::Hit(msg) => {
                if !world.graph.is_alive(e.to) {
                    Verdict::Void
                } else {
                    match shard.store.upstream(e.to, msg.guid) {
                        None => Verdict::Void, // no route memory; drop
                        Some(Upstream::Origin) => Verdict::Hit { upstream: None },
                        Some(Upstream::Neighbor(n)) => Verdict::Hit { upstream: Some(n) },
                    }
                }
            }
        };
        shard.verdicts.push_back(v);
    }
}

/// Inverted `FileId → holders` index. The exact engine answers "is this
/// query answerable" with an O(nodes) library scan per issue; at 100k+
/// nodes that dominates the run, so the sharded engine maintains the
/// inverse map (libraries only ever grow, via `download_on_hit`).
struct HoldersIndex {
    by_file: Vec<Vec<NodeId>>,
}

impl HoldersIndex {
    fn build(workload: &WorkloadGen, files: usize) -> Self {
        let mut by_file = vec![Vec::new(); files];
        for i in 0..workload.len() {
            for f in workload.library(i).iter() {
                by_file[f.0 as usize].push(NodeId(i as u32));
            }
        }
        HoldersIndex { by_file }
    }

    fn holders(&self, f: FileId) -> &[NodeId] {
        &self.by_file[f.0 as usize]
    }

    fn insert(&mut self, f: FileId, node: NodeId) {
        self.by_file[f.0 as usize].push(node);
    }
}

impl<P: ForwardingPolicy> Network<P> {
    /// Runs the windowed sharded engine to completion. See the
    /// [module docs](self) for the execution model and how its results
    /// relate to [`Network::run`].
    ///
    /// Results are byte-identical for every `threads >= 1`.
    ///
    /// # Panics
    ///
    /// When a trace collector is configured, or `hop_latency.0 == 0`
    /// (the window construction needs a minimum transmission delay).
    pub fn run_sharded(self, threads: usize) -> SimResult {
        self.run_sharded_full(threads).0
    }

    /// Like [`Network::run_sharded`], also returning the policy and the
    /// final overlay graph.
    pub fn run_sharded_full(mut self, threads: usize) -> (SimResult, P, Graph) {
        assert!(threads >= 1, "need at least one worker");
        assert!(
            self.collector.is_none(),
            "trace collectors require the exact engine (Network::run)"
        );
        let w = self.cfg.hop_latency.0;
        assert!(w >= 1, "sharded engine needs hop_latency.0 >= 1");

        let jitter_max = self.faults.as_ref().map_or(0, |f| f.plan().jitter);
        // With a link plan, fault jitter is already folded into the link
        // and the delivery horizon is the link model's worst case (upload
        // queueing + transmit + propagation + jitter + download queueing).
        // The ring has no overflow path, so rate-limited-but-unbuffered
        // plans — whose queueing delay is unbounded — are rejected here.
        let max_delay = match &self.links {
            Some(l) => l.max_delay(self.cfg.hop_latency.1).expect(
                "sharded engine needs a bounded link delay: give rate-limited channels a buffer",
            ),
            None => self.cfg.hop_latency.1 + jitter_max,
        };
        let cells = (max_delay / w + 2) as usize;
        let nshards = threads.min(self.cfg.nodes).max(1);
        let chunk = self.cfg.nodes.div_ceil(nshards);
        let mut shards: Vec<Shard> = (0..nshards)
            .map(|s| {
                let base = s * chunk;
                let count = chunk.min(self.cfg.nodes.saturating_sub(base));
                Shard {
                    store: GuidStore::with_range(
                        base as u32,
                        count,
                        self.cfg.guid_cache,
                        self.cfg.guid_expiry,
                    ),
                    arena: Vec::new(),
                    verdicts: VecDeque::new(),
                }
            })
            .collect();
        let mut dring = DeliveryRing {
            cells: vec![Vec::new(); cells],
            w,
            cur: 0,
            seq: 0,
            pending: 0,
        };
        let mut index = HoldersIndex::build(
            &self.workload,
            self.cfg.catalog.topics * self.cfg.catalog.files_per_topic,
        );
        let mut live = self.graph.live_count();
        let first_ttl = self
            .cfg
            .ring
            .as_ref()
            .map(|r| *r.ttls.first().expect("empty ring schedule"))
            .unwrap_or(self.cfg.ttl);
        let mut end = SimTime::ZERO;
        let mut evs: Vec<Envelope> = Vec::new();

        loop {
            let next_ctrl = self.queue.peek_time().map(|t| t.ticks() / w);
            let next_deliv = dring.earliest_window();
            let window = match (next_ctrl, next_deliv) {
                (None, None) => break,
                (Some(c), None) => c,
                (None, Some(d)) => d,
                (Some(c), Some(d)) => c.min(d),
            };
            dring.cur = window;
            let wstart = SimTime::from_ticks(window * w);
            let wend = SimTime::from_ticks(window * w + w);

            // Phase 1: control. Churn first, then adaptation rounds due
            // by the window start, then every control event in the
            // window; all may mutate the graph and shard stores, so the
            // parallel phase below sees a frozen world. Adaptation only
            // adds/removes edges — it never changes liveness, so the
            // live-node counter is untouched.
            self.apply_churn_windowed(wstart, &mut shards, chunk, &mut live);
            self.apply_adaptation_until(wstart);
            while self.queue.peek_time().is_some_and(|t| t < wend) {
                let (now, event) = self.queue.pop().expect("peeked event vanished");
                end = end.max(now);
                match event {
                    Event::Issue { qidx } => {
                        self.handle_issue_windowed(
                            qidx,
                            first_ttl,
                            now,
                            &mut shards,
                            chunk,
                            &mut dring,
                            live,
                            &index,
                        );
                    }
                    Event::QueryDeadline { qidx, attempt } => {
                        self.handle_deadline_windowed(
                            qidx,
                            attempt,
                            now,
                            &mut shards,
                            chunk,
                            &mut dring,
                        );
                    }
                    Event::RingTimeout { qidx, stage } => {
                        let ring = self
                            .cfg
                            .ring
                            .clone()
                            .expect("ring timeout without schedule");
                        if self.queries[qidx].outcome.hits_delivered == 0 {
                            self.issue_attempt_windowed(
                                qidx,
                                ring.ttls[stage],
                                now,
                                &mut shards,
                                chunk,
                                &mut dring,
                            );
                            if stage + 1 < ring.ttls.len() {
                                self.queue.schedule(
                                    now.saturating_add(ring.wait),
                                    Event::RingTimeout {
                                        qidx,
                                        stage: stage + 1,
                                    },
                                );
                            }
                        }
                    }
                    Event::Crash { node } => {
                        if self.graph.is_alive(node) {
                            self.graph.depart(node);
                            shards[node.index() / chunk].store.reset(node);
                            self.policy.on_topology_change(&self.graph);
                            live -= 1;
                        }
                        self.crashed[node.index()] = true;
                    }
                    Event::Query { .. } | Event::Hit { .. } => {
                        unreachable!("sharded engine delivers through the window ring")
                    }
                }
            }

            // Phase 2: this window's deliveries, verdicts in parallel.
            let cell = (window % cells as u64) as usize;
            evs.clear();
            std::mem::swap(&mut evs, &mut dring.cells[cell]);
            if evs.is_empty() {
                continue;
            }
            dring.pending -= evs.len();
            evs.sort_unstable_by_key(|e| (e.at, e.seq));
            end = end.max(SimTime::from_ticks(evs[evs.len() - 1].at));
            let world = WorldView {
                graph: &self.graph,
                workload: &self.workload,
                faults: self.faults.as_ref(),
            };
            if nshards == 1 || evs.len() < PARALLEL_THRESHOLD {
                for (s, shard) in shards.iter_mut().enumerate() {
                    shard_verdicts(s, chunk, shard, &evs, world);
                }
            } else {
                let evs_ref: &[Envelope] = &evs;
                std::thread::scope(|scope| {
                    let mut iter = shards.iter_mut().enumerate();
                    let (s0, first) = iter.next().expect("at least one shard");
                    for (s, shard) in iter {
                        scope.spawn(move || shard_verdicts(s, chunk, shard, evs_ref, world));
                    }
                    // The spawning thread is worker 0.
                    shard_verdicts(s0, chunk, first, evs_ref, world);
                });
            }

            // Phase 3: serial replay in global (time, seq) order.
            for e in &evs {
                // Every parked envelope survived the link layer; close its
                // byte-ledger entry at the destination (the exact engine
                // does this at the top of handle_query/handle_hit).
                if let Some(l) = self.links.as_mut() {
                    let bytes = match e.payload {
                        Payload::Query(m) => l.query_size(m.key.file),
                        Payload::Hit(m) => l.hit_size(m.key.file),
                    };
                    l.on_delivered(e.to, bytes);
                }
                let s = e.to.index() / chunk;
                let v = shards[s]
                    .verdicts
                    .pop_front()
                    .expect("verdict stream out of sync");
                let now = SimTime::from_ticks(e.at);
                match (v, e.payload) {
                    (Verdict::Void, _) => {}
                    (
                        Verdict::Query {
                            hit,
                            cand_start,
                            cand_len,
                        },
                        Payload::Query(msg),
                    ) => {
                        if let Some(route) = hit {
                            let hitmsg = HitMsg {
                                guid: msg.guid,
                                responder: e.to,
                                key: msg.key,
                                query_hops: msg.hops,
                            };
                            match route {
                                HitRoute::Origin => self.deliver_hit_indexed(
                                    e.to,
                                    hitmsg,
                                    e.qidx as usize,
                                    now,
                                    &mut index,
                                ),
                                HitRoute::Up(up) => self.send_hit_windowed(
                                    up,
                                    e.to,
                                    hitmsg,
                                    e.qidx as usize,
                                    now,
                                    &mut dring,
                                ),
                                HitRoute::Lost => {}
                            }
                        }
                        if cand_len > 0 {
                            let range = cand_start as usize..(cand_start + cand_len) as usize;
                            let cands = &shards[s].arena[range];
                            self.relay_windowed(
                                e.to,
                                Some(e.from),
                                msg,
                                e.qidx as usize,
                                now,
                                cands,
                                &mut dring,
                            );
                        }
                    }
                    (Verdict::Hit { upstream }, Payload::Hit(msg)) => {
                        self.policy.on_reply(e.to, upstream, e.from, msg.key);
                        match upstream {
                            None => self.deliver_hit_indexed(
                                e.to,
                                msg,
                                e.qidx as usize,
                                now,
                                &mut index,
                            ),
                            Some(up) => {
                                if self.graph.is_alive(up) {
                                    self.send_hit_windowed(
                                        up,
                                        e.to,
                                        msg,
                                        e.qidx as usize,
                                        now,
                                        &mut dring,
                                    );
                                }
                            }
                        }
                    }
                    _ => unreachable!("verdict does not match its envelope"),
                }
            }
        }

        let mut builder = MetricsBuilder::new();
        let mut total_attempts = 0u64;
        for q in &self.queries {
            builder.record(&q.outcome);
            total_attempts += u64::from(q.outcome.attempts);
        }
        let mut metrics = builder.finish(self.policy.name());
        metrics.lost_messages = self.faults.as_ref().map_or(0, FaultState::lost)
            + self.links.as_ref().map_or(0, LinkState::lost);
        metrics.buffer_dropped = self.links.as_ref().map_or(0, LinkState::buffer_dropped);
        if let Some(l) = &self.links {
            let ups = l.node_up_bytes().to_vec();
            let downs = l.node_down_bytes().to_vec();
            for (up, down) in ups.into_iter().zip(downs) {
                self.obs.observe_node_bytes(up, down);
            }
        }
        let result = SimResult {
            metrics,
            trace: None,
            end_time: end,
            distinct_query_guids: self.guid_to_query.len(),
            total_attempts,
            link_bytes: self.links.as_ref().map(LinkState::byte_ledger),
            obs: self.obs.report(),
        };
        (result, self.policy, self.graph)
    }

    /// Window-granular churn: like `apply_churn_until`, but GUID memory
    /// resets go to the owning shard and the live-node counter (used for
    /// rejection-sampling issuers) is maintained incrementally.
    fn apply_churn_windowed(
        &mut self,
        horizon: SimTime,
        shards: &mut [Shard],
        chunk: usize,
        live: &mut usize,
    ) {
        let Some(churn) = self.churn.as_mut() else {
            return;
        };
        let mut changed = false;
        while let Some(ev) = churn.next_before(horizon) {
            if self.crashed[ev.node.index()] {
                continue; // crashed nodes neither leave nor rejoin
            }
            match ev.kind {
                ChurnKind::Leave | ChurnKind::Crash => {
                    if self.graph.is_alive(ev.node) {
                        *live -= 1;
                    }
                    self.graph.depart(ev.node);
                    shards[ev.node.index() / chunk].store.reset(ev.node);
                    if ev.kind == ChurnKind::Crash {
                        self.crashed[ev.node.index()] = true;
                    }
                }
                ChurnKind::Join => {
                    if !self.graph.is_alive(ev.node) {
                        *live += 1;
                    }
                    self.graph.rejoin(ev.node);
                    let mut wired = false;
                    if let Some(ttl) = self.cfg.rejoin_via_ping {
                        let live_nodes: Vec<NodeId> =
                            self.graph.live_nodes().filter(|&n| n != ev.node).collect();
                        if !live_nodes.is_empty() {
                            let bootstrap = live_nodes[self.net_rng.index(live_nodes.len())];
                            wired = !crate::discovery::rewire_via_discovery(
                                &mut self.graph,
                                ev.node,
                                bootstrap,
                                ttl,
                                self.cfg.rejoin_degree,
                                &mut self.net_rng,
                            )
                            .is_empty();
                        }
                    }
                    if !wired {
                        rewire_join(
                            &mut self.graph,
                            ev.node,
                            self.cfg.rejoin_degree,
                            &mut self.net_rng,
                        );
                    }
                }
            }
            changed = true;
        }
        if changed {
            self.policy.on_topology_change(&self.graph);
        }
    }

    /// Issue-event handler: picks a live issuer by rejection sampling
    /// (uniform over live nodes without materializing them) and resolves
    /// answerability through the inverted holders index.
    #[allow(clippy::too_many_arguments)]
    fn handle_issue_windowed(
        &mut self,
        qidx: usize,
        first_ttl: u32,
        now: SimTime,
        shards: &mut [Shard],
        chunk: usize,
        dring: &mut DeliveryRing,
        live: usize,
        index: &HoldersIndex,
    ) {
        debug_assert_eq!(qidx, self.queries.len());
        let node = if live == 0 {
            NodeId(0) // everyone is down; recorded as a dead zero-message query
        } else {
            let mut tries = 0usize;
            loop {
                let cand = NodeId(self.issue_rng.below(self.cfg.nodes as u64) as u32);
                if self.graph.is_alive(cand) {
                    break cand;
                }
                tries += 1;
                if tries > self.cfg.nodes * 4 {
                    // Pathologically sparse network: fall back to a scan.
                    let all: Vec<NodeId> = self.graph.live_nodes().collect();
                    break *self.issue_rng.pick(&all);
                }
            }
        };
        let key = self
            .workload
            .next_query(node.index(), &self.catalog, &mut self.issue_rng);
        let answerable = index
            .holders(key.file)
            .iter()
            .any(|&h| h != node && self.graph.is_alive(h));
        self.queries.push(super::LiveQuery {
            node,
            key,
            issued_at: now,
            outcome: crate::metrics::QueryOutcome {
                answerable,
                ..Default::default()
            },
            first_hop: Vec::new(),
            responders: Vec::new(),
        });
        if self.graph.is_alive(node) {
            self.issue_attempt_windowed(qidx, first_ttl, now, shards, chunk, dring);
            // The deadline clock starts when the attempt's last byte
            // leaves the upload buffer, not at issue time — under real
            // queueing the two can differ by many ticks.
            let sent_at = self.attempt_sent_at(now);
            if let Some(ring) = self.cfg.ring.clone() {
                if ring.ttls.len() > 1 {
                    self.queue.schedule(
                        now.saturating_add(ring.wait),
                        Event::RingTimeout { qidx, stage: 1 },
                    );
                }
            }
            if let Some(rp) = &self.cfg.retry {
                self.queue.schedule(
                    sent_at.saturating_add(rp.deadline),
                    Event::QueryDeadline { qidx, attempt: 1 },
                );
            }
        }
    }

    /// Windowed counterpart of `issue_attempt`: GUID memory goes to the
    /// issuer's shard and the first hop transmits through the ring.
    fn issue_attempt_windowed(
        &mut self,
        qidx: usize,
        ttl: u32,
        now: SimTime,
        shards: &mut [Shard],
        chunk: usize,
        dring: &mut DeliveryRing,
    ) -> bool {
        let node = self.queries[qidx].node;
        if !self.graph.is_alive(node) {
            return false; // issuer offline at reissue time
        }
        let key = self.queries[qidx].key;
        let guid = self.guid_gens[node.index()].next(&mut self.net_rng);
        let owner = *self.guid_to_query.entry(guid).or_insert(qidx);
        self.queries[qidx].outcome.attempts += 1;
        let msg = QueryMsg {
            guid,
            key,
            ttl,
            hops: 0,
        };
        if let Some(l) = self.links.as_mut() {
            l.begin_attempt(now.ticks());
        }
        shards[node.index() / chunk]
            .store
            .record(node, guid, Upstream::Origin, now);
        let mut candidates = std::mem::take(&mut self.candidate_scratch);
        candidates.clear();
        candidates.extend(self.graph.live_neighbors(node));
        self.relay_windowed(node, None, msg, owner, now, &candidates, dring);
        self.candidate_scratch = candidates;
        let mut first_hop = std::mem::take(&mut self.queries[qidx].first_hop);
        first_hop.clear();
        first_hop.extend_from_slice(&self.selected_scratch);
        self.queries[qidx].first_hop = first_hop;
        true
    }

    /// Windowed counterpart of `relay`: candidates are supplied by the
    /// caller (arena slice at replay, fresh gather at issue), and each
    /// selected transmission rolls loss at send — dropped messages are
    /// never parked. Leaves the selection in `selected_scratch`.
    #[allow(clippy::too_many_arguments)]
    fn relay_windowed(
        &mut self,
        node: NodeId,
        from: Option<NodeId>,
        msg: QueryMsg,
        qidx: usize,
        now: SimTime,
        candidates: &[NodeId],
        dring: &mut DeliveryRing,
    ) {
        let mut selected = std::mem::take(&mut self.selected_scratch);
        selected.clear();
        let Some(next) = msg.hop() else {
            self.selected_scratch = selected;
            return;
        };
        if candidates.is_empty() {
            self.selected_scratch = selected;
            return;
        }
        let ctx = ForwardCtx {
            node,
            from,
            query: &next,
            candidates,
        };
        self.policy
            .select_into(&ctx, &mut self.policy_rng, &mut selected);
        self.obs.record(|| ObsEvent::Forward {
            at: now,
            node: node.0,
            candidates: candidates.len(),
            selected: selected.len(),
        });
        for &target in &selected {
            assert!(
                candidates.contains(&target),
                "policy {} selected non-candidate {target} at {node}",
                self.policy.name()
            );
        }
        for &target in &selected {
            let bytes = self
                .links
                .as_ref()
                .map_or(next.wire_size(), |l| l.query_size(next.key.file));
            let outcome = &mut self.queries[qidx].outcome;
            outcome.query_messages += 1;
            outcome.bytes += bytes;
            if self.transmission_lost(now, DropKind::Query) {
                continue;
            }
            let prop = self.hop_latency();
            if self.links.is_some() {
                self.transmit_windowed(
                    now,
                    node,
                    target,
                    bytes,
                    prop,
                    qidx,
                    Payload::Query(next),
                    DropKind::Query,
                    dring,
                );
                continue;
            }
            let mut at = now.saturating_add(prop);
            if let Some(f) = self.faults.as_mut() {
                at = at.saturating_add(f.jitter());
            }
            dring.push(at, target, node, qidx, Payload::Query(next));
        }
        self.selected_scratch = selected;
    }

    /// Windowed counterpart of `send_hit` with loss rolled at send.
    fn send_hit_windowed(
        &mut self,
        to: NodeId,
        from: NodeId,
        msg: HitMsg,
        qidx: usize,
        now: SimTime,
        dring: &mut DeliveryRing,
    ) {
        let bytes = self
            .links
            .as_ref()
            .map_or(msg.wire_size(), |l| l.hit_size(msg.key.file));
        let outcome = &mut self.queries[qidx].outcome;
        outcome.hit_messages += 1;
        outcome.bytes += bytes;
        if self.transmission_lost(now, DropKind::Hit) {
            return;
        }
        let prop = self.hop_latency();
        if self.links.is_some() {
            self.transmit_windowed(
                now,
                from,
                to,
                bytes,
                prop,
                qidx,
                Payload::Hit(msg),
                DropKind::Hit,
                dring,
            );
            return;
        }
        let mut at = now.saturating_add(prop);
        if let Some(f) = self.faults.as_mut() {
            at = at.saturating_add(f.jitter());
        }
        dring.push(at, to, from, qidx, Payload::Hit(msg));
    }

    /// Windowed counterpart of the exact engine's link `transmit`:
    /// offers the message to the link layer at send time and parks
    /// survivors in the delivery ring at their computed delivery tick.
    #[allow(clippy::too_many_arguments)]
    fn transmit_windowed(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        bytes: u64,
        prop: arq_simkern::time::Duration,
        qidx: usize,
        payload: Payload,
        kind: DropKind,
        dring: &mut DeliveryRing,
    ) {
        let links = self
            .links
            .as_mut()
            .expect("link transmit without link layer");
        match links.transmit(now.ticks(), from, to, bytes, prop.ticks()) {
            Transmission::Delivered { at } => {
                dring.push(SimTime::from_ticks(at), to, from, qidx, payload);
            }
            Transmission::Lost => {
                self.obs.record(|| ObsEvent::FaultDrop { at: now, kind });
            }
            Transmission::BufferDropped => {
                self.obs.record(|| ObsEvent::BufferDrop { at: now, kind });
            }
        }
    }

    /// Rolls both loss layers for one transmission, at send time. The
    /// fault-drop trace event carries the send instant (the exact engine
    /// stamps the delivery instant — one of the documented deltas).
    fn transmission_lost(&mut self, now: SimTime, kind: DropKind) -> bool {
        if self.cfg.loss_rate > 0.0 && self.net_rng.chance(self.cfg.loss_rate) {
            return true;
        }
        if self.fault_dropped() {
            self.obs.record(|| ObsEvent::FaultDrop { at: now, kind });
            return true;
        }
        false
    }

    /// `deliver_hit` plus holders-index maintenance: a first hit with
    /// `download_on_hit` adds the issuer as a new replica, which must be
    /// visible to later answerability checks.
    fn deliver_hit_indexed(
        &mut self,
        issuer: NodeId,
        msg: HitMsg,
        qidx: usize,
        now: SimTime,
        index: &mut HoldersIndex,
    ) {
        let first_before = self.queries[qidx].outcome.first_hit_hops.is_none();
        self.deliver_hit(issuer, msg, qidx, now);
        if self.cfg.download_on_hit
            && first_before
            && self.queries[qidx].outcome.first_hit_hops.is_some()
        {
            index.insert(msg.key.file, issuer);
        }
    }

    /// Windowed counterpart of `handle_deadline`.
    fn handle_deadline_windowed(
        &mut self,
        qidx: usize,
        attempt: u32,
        now: SimTime,
        shards: &mut [Shard],
        chunk: usize,
        dring: &mut DeliveryRing,
    ) {
        let rp = self
            .cfg
            .retry
            .clone()
            .expect("deadline without retry policy");
        if self.queries[qidx].outcome.hits_delivered > 0 {
            return; // answered in time (as of the last window boundary)
        }
        let issuer = self.queries[qidx].node;
        let targets = std::mem::take(&mut self.queries[qidx].first_hop);
        for target in targets {
            self.policy.on_failure(issuer, target);
        }
        let backoff = arq_simkern::Backoff::new(rp.deadline, rp.backoff, rp.max_attempts);
        let Some(delay) = backoff.delay_for(attempt) else {
            self.queries[qidx].outcome.expired = true;
            self.obs.record(|| ObsEvent::Expire {
                at: now,
                query: qidx,
                attempts: attempt,
            });
            return; // retry budget exhausted
        };
        let ttl = self
            .cfg
            .ttl
            .saturating_add(rp.ttl_step.saturating_mul(attempt))
            .min(rp.max_ttl);
        let mut sent_at = now;
        if self.issue_attempt_windowed(qidx, ttl, now, shards, chunk, dring) {
            sent_at = self.attempt_sent_at(now);
            self.queries[qidx].outcome.retries += 1;
            self.obs.record(|| ObsEvent::Retry {
                at: now,
                query: qidx,
                attempt,
                ttl,
            });
        }
        self.queue.schedule(
            sent_at.saturating_add(delay),
            Event::QueryDeadline {
                qidx,
                attempt: attempt + 1,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::policy::FloodPolicy;
    use crate::sim::{Network, RetryPolicy, SimConfig};
    use arq_content::CatalogConfig;
    use arq_overlay::ChurnConfig;
    use arq_simkern::time::Duration;

    fn small_cfg(seed: u64) -> SimConfig {
        let mut cfg = SimConfig::default_with(60, 150, seed);
        cfg.catalog = CatalogConfig {
            topics: 5,
            files_per_topic: 40,
            ..Default::default()
        };
        cfg.workload.files_per_node = 30;
        cfg
    }

    /// Every windowed code path at once: loss, jitter, crashes, silent
    /// free-riders, session churn, and deadline-driven retries.
    fn harsh_cfg(seed: u64) -> SimConfig {
        let mut cfg = small_cfg(seed);
        cfg.churn = Some(ChurnConfig {
            mean_session: Duration::from_ticks(80_000),
            mean_downtime: Duration::from_ticks(40_000),
            pinned: vec![],
        });
        cfg.faults = Some(FaultPlan {
            loss: 0.1,
            jitter: 40,
            crash: 0.05,
            silent: 0.1,
        });
        cfg.retry = Some(RetryPolicy::default_with(Duration::from_ticks(4_000), 12));
        cfg.guid_expiry = Some(Duration::from_ticks(500_000));
        cfg
    }

    /// Full byte-resolution fingerprint of a run.
    fn fingerprint(r: &SimResult) -> String {
        format!(
            "{:?}|{:?}|{}|{}",
            r.metrics, r.end_time, r.distinct_query_guids, r.total_attempts
        )
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let base = fingerprint(&Network::new(harsh_cfg(19), FloodPolicy).run_sharded(1));
        for threads in [2, 4, 7] {
            let other = fingerprint(&Network::new(harsh_cfg(19), FloodPolicy).run_sharded(threads));
            assert_eq!(base, other, "diverged at {threads} threads");
        }
    }

    #[test]
    fn sharded_runs_are_deterministic() {
        let a = fingerprint(&Network::new(small_cfg(3), FloodPolicy).run_sharded(2));
        let b = fingerprint(&Network::new(small_cfg(3), FloodPolicy).run_sharded(2));
        assert_eq!(a, b);
        let c = fingerprint(&Network::new(small_cfg(4), FloodPolicy).run_sharded(2));
        assert_ne!(a, c, "seed must matter");
    }

    #[test]
    fn sharded_tracks_exact_engine_closely() {
        let exact = Network::new(small_cfg(7), FloodPolicy).run();
        let windowed = Network::new(small_cfg(7), FloodPolicy).run_sharded(3);
        assert_eq!(exact.metrics.queries, windowed.metrics.queries);
        // Same topology/workload streams: reach must be near-identical
        // (the engines differ only in loss timing and window rounding,
        // and this config has neither loss nor churn).
        assert!(
            (exact.metrics.success_rate - windowed.metrics.success_rate).abs() < 0.05,
            "exact {} vs windowed {}",
            exact.metrics.success_rate,
            windowed.metrics.success_rate
        );
        assert!(
            (exact.metrics.messages_per_query - windowed.metrics.messages_per_query).abs()
                < exact.metrics.messages_per_query * 0.05,
            "exact {} vs windowed {}",
            exact.metrics.messages_per_query,
            windowed.metrics.messages_per_query
        );
    }

    #[test]
    fn faults_churn_and_retries_survive_sharding() {
        let r = Network::new(harsh_cfg(23), FloodPolicy).run_sharded(4);
        assert_eq!(r.metrics.queries, 150);
        assert!(r.metrics.lost_messages > 0, "fault loss never fired");
        assert!(r.metrics.success_rate > 0.2, "search collapsed entirely");
        assert!(r.total_attempts > 150, "no retries happened");
    }

    #[test]
    fn download_on_hit_updates_answerability_index() {
        let mut cfg = small_cfg(31);
        cfg.queries = 800;
        cfg.workload.files_per_node = 10;
        let without = Network::new(cfg.clone(), FloodPolicy)
            .run_sharded(2)
            .metrics;
        cfg.download_on_hit = true;
        let with = Network::new(cfg, FloodPolicy).run_sharded(2).metrics;
        assert!(
            with.answerable > without.answerable,
            "replication did not raise answerability: {} vs {}",
            with.answerable,
            without.answerable
        );
    }

    #[test]
    fn expanding_ring_works_windowed() {
        let mut cfg = small_cfg(11);
        let flood = Network::new(cfg.clone(), FloodPolicy).run_sharded(2);
        cfg.ring = Some(crate::sim::RingSchedule {
            ttls: vec![2, 5],
            wait: Duration::from_ticks(1_000),
        });
        let ring = Network::new(cfg, FloodPolicy).run_sharded(2);
        assert!(
            ring.metrics.messages_per_query < flood.metrics.messages_per_query,
            "ring {} >= flood {}",
            ring.metrics.messages_per_query,
            flood.metrics.messages_per_query
        );
    }

    #[test]
    #[should_panic(expected = "exact engine")]
    fn collector_is_rejected() {
        let mut cfg = small_cfg(1);
        cfg.collector = Some(NodeId(0));
        let _ = Network::new(cfg, FloodPolicy).run_sharded(2);
    }

    /// The E17-style congested profile: tight asymmetric bandwidth,
    /// bounded buffers, loss, jitter, and free-riders all at once.
    fn congested_links() -> crate::net::LinkPlan {
        crate::net::LinkPlan {
            up: 8.0,
            down: 32.0,
            up_buf: 2_048,
            down_buf: 8_192,
            loss: 0.02,
            jitter: 20,
            riders: 0.2,
            rider_up: 2.0,
        }
    }

    #[test]
    fn link_runs_survive_any_thread_count() {
        let mut cfg = harsh_cfg(29);
        cfg.links = Some(congested_links());
        let base = fingerprint(&Network::new(cfg.clone(), FloodPolicy).run_sharded(1));
        for threads in [2, 4, 7] {
            let other = fingerprint(&Network::new(cfg.clone(), FloodPolicy).run_sharded(threads));
            assert_eq!(base, other, "diverged at {threads} threads");
        }
    }

    #[test]
    fn zero_capacity_links_are_byte_identical_windowed() {
        let mut cfg = small_cfg(13);
        let base = fingerprint(&Network::new(cfg.clone(), FloodPolicy).run_sharded(3));
        cfg.links = Some(crate::net::LinkPlan::default());
        let with = fingerprint(&Network::new(cfg, FloodPolicy).run_sharded(3));
        assert_eq!(base, with, "noop link plan changed a windowed run");
    }

    #[test]
    #[should_panic(expected = "bounded link delay")]
    fn unbuffered_rate_limited_links_are_rejected() {
        let mut cfg = small_cfg(1);
        cfg.links = Some(crate::net::LinkPlan {
            up: 4.0,
            ..Default::default()
        });
        let _ = Network::new(cfg, FloodPolicy).run_sharded(2);
    }

    /// Stub mirroring the exact engine's adaptation tests: node 0
    /// proposes a shortcut to every live non-neighbor and vouches for
    /// everything applied.
    struct ProposeEverywhere;

    impl ForwardingPolicy for ProposeEverywhere {
        fn name(&self) -> &'static str {
            "propose-everywhere"
        }

        fn select(&mut self, ctx: &ForwardCtx<'_>, _rng: &mut arq_simkern::Rng64) -> Vec<NodeId> {
            ctx.candidates.to_vec()
        }

        fn propose_shortcuts(&self, graph: &Graph) -> Vec<crate::policy::ShortcutProposal> {
            let asker = NodeId(0);
            if !graph.is_alive(asker) {
                return Vec::new();
            }
            graph
                .live_nodes()
                .filter(|&n| n != asker && !graph.has_edge(asker, n))
                .map(|target| crate::policy::ShortcutProposal {
                    asker,
                    target,
                    via: asker,
                })
                .collect()
        }

        fn shortcut_active(&self, _asker: NodeId, _target: NodeId, _via: NodeId) -> bool {
            true
        }
    }

    fn adapt_cfg(seed: u64) -> SimConfig {
        let mut cfg = harsh_cfg(seed);
        cfg.adapt = Some(crate::sim::AdaptPlan {
            every: Duration::from_ticks(20_000),
            budget: 16,
            degree: 3,
        });
        cfg
    }

    #[test]
    fn adaptation_survives_any_thread_count() {
        let base = fingerprint(&Network::new(adapt_cfg(41), ProposeEverywhere).run_sharded(1));
        for threads in [2, 4, 7] {
            let other =
                fingerprint(&Network::new(adapt_cfg(41), ProposeEverywhere).run_sharded(threads));
            assert_eq!(base, other, "adaptation diverged at {threads} threads");
        }
    }

    #[test]
    fn adapt_plan_over_non_proposing_policy_is_byte_identical_windowed() {
        let mut cfg = harsh_cfg(43);
        let clean = fingerprint(&Network::new(cfg.clone(), FloodPolicy).run_sharded(3));
        cfg.adapt = Some(crate::sim::AdaptPlan::default_with(Duration::from_ticks(
            10_000,
        )));
        let adapted = fingerprint(&Network::new(cfg, FloodPolicy).run_sharded(3));
        assert_eq!(clean, adapted, "noop adapt plan changed a windowed run");
    }

    #[test]
    fn link_byte_ledger_conserves_windowed() {
        let mut cfg = harsh_cfg(37);
        cfg.links = Some(congested_links());
        let r = Network::new(cfg, FloodPolicy).run_sharded(4);
        let (sent, delivered, lost, buffered) = r.link_bytes.expect("links active");
        assert!(sent > 0);
        assert_eq!(sent, delivered + lost + buffered, "bytes leaked");
        assert_eq!(r.metrics.buffer_dropped > 0, buffered > 0);
        assert!(r.metrics.lost_messages > 0, "folded loss never fired");
    }
}
