//! Traffic and search-quality metrics.
//!
//! The motivating claim of the paper is that rule-based forwarding
//! "results in considerably less network traffic" while "maintaining the
//! ability to successfully locate content". These metrics quantify both
//! halves for any policy: messages per query (query relays + hit relays),
//! hit rate, and hops/latency to the first hit.

use arq_simkern::time::Duration;
use arq_simkern::{Summary, Welford};

/// Per-query bookkeeping while a query is live.
#[derive(Debug, Clone, Default)]
pub struct QueryOutcome {
    /// Query-descriptor transmissions caused by this query.
    pub query_messages: u64,
    /// Hit transmissions caused by this query.
    pub hit_messages: u64,
    /// Total bytes transmitted on this query's behalf (queries + hits).
    pub bytes: u64,
    /// Hits delivered to the issuer.
    pub hits_delivered: u64,
    /// Hops of the first hit's query path, if any hit arrived.
    pub first_hit_hops: Option<u32>,
    /// Latency to the first delivered hit.
    pub first_hit_latency: Option<Duration>,
    /// Whether any node holding the file was actually online and
    /// reachable when the query was issued (ground truth; a query with no
    /// available holder cannot be "missed" by a policy).
    pub answerable: bool,
    /// Flood attempts (expanding-ring reissues and retries count extra).
    pub attempts: u32,
    /// Timeout-driven retries of this query (attempts beyond the first).
    pub retries: u32,
    /// Whether the query exhausted its retry budget without a hit.
    pub expired: bool,
    /// Hits from responders that had already answered this query —
    /// suppressed rather than delivered (retries can re-discover the
    /// same holder).
    pub duplicate_hits: u64,
}

/// Aggregated results of one simulation run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Policy label.
    pub policy: String,
    /// Queries issued.
    pub queries: u64,
    /// Queries with at least one available holder at issue time.
    pub answerable: u64,
    /// Queries that delivered at least one hit to the issuer.
    pub answered: u64,
    /// Total query-descriptor transmissions.
    pub query_messages: u64,
    /// Total hit transmissions.
    pub hit_messages: u64,
    /// Total bytes transmitted.
    pub bytes: u64,
    /// Mean messages (query + hit) per issued query.
    pub messages_per_query: f64,
    /// Mean bytes per issued query.
    pub bytes_per_query: f64,
    /// Hit rate over answerable queries.
    pub success_rate: f64,
    /// Total timeout-driven retries across all queries.
    pub retried: u64,
    /// Queries that exhausted their retry budget without a hit.
    pub expired: u64,
    /// Suppressed duplicate hit deliveries.
    pub duplicate_hits: u64,
    /// Messages dropped in flight by the fault layer.
    pub lost_messages: u64,
    /// Messages dropped by a full link-layer byte buffer. Disjoint from
    /// `lost_messages` by construction: a message meets at most one of
    /// the two fates, so the counters never double-count.
    pub buffer_dropped: u64,
    /// Summary of first-hit hop counts (answered queries only).
    pub first_hit_hops: Option<Summary>,
    /// Summary of first-hit latencies in ticks (answered queries only).
    pub first_hit_latency: Option<Summary>,
}

impl RunMetrics {
    /// FNV-1a digest over the canonical JSON serialization — a stable
    /// fingerprint of every measured value, including the retry/fault
    /// lifecycle counters (`retried`, `expired`, `duplicate_hits`,
    /// `lost_messages`). Report tooling surfaces this next to the config
    /// digest so two runs can be compared at a glance.
    pub fn digest(&self) -> u64 {
        use arq_simkern::ToJson;
        arq_simkern::rng::fnv1a(self.to_json().to_string().as_bytes())
    }
}

impl arq_simkern::ToJson for RunMetrics {
    fn to_json(&self) -> arq_simkern::Json {
        use arq_simkern::Json;
        let mut fields = vec![
            ("policy", Json::from(&self.policy)),
            ("queries", Json::from(self.queries)),
            ("answerable", Json::from(self.answerable)),
            ("answered", Json::from(self.answered)),
            ("query_messages", Json::from(self.query_messages)),
            ("hit_messages", Json::from(self.hit_messages)),
            ("bytes", Json::from(self.bytes)),
            ("messages_per_query", Json::from(self.messages_per_query)),
            ("bytes_per_query", Json::from(self.bytes_per_query)),
            ("success_rate", Json::from(self.success_rate)),
            ("retried", Json::from(self.retried)),
            ("expired", Json::from(self.expired)),
            ("duplicate_hits", Json::from(self.duplicate_hits)),
            ("lost_messages", Json::from(self.lost_messages)),
        ];
        // Only link-enabled runs can buffer-drop; omitting the zero
        // keeps every pre-link serialization (and digest) unchanged.
        if self.buffer_dropped > 0 {
            fields.push(("buffer_dropped", Json::from(self.buffer_dropped)));
        }
        fields.push(("first_hit_hops", self.first_hit_hops.to_json()));
        fields.push(("first_hit_latency", self.first_hit_latency.to_json()));
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }
}

/// Accumulates per-query outcomes into [`RunMetrics`].
#[derive(Debug, Default)]
pub struct MetricsBuilder {
    queries: u64,
    answerable: u64,
    answered: u64,
    query_messages: u64,
    hit_messages: u64,
    bytes: u64,
    retried: u64,
    expired: u64,
    duplicate_hits: u64,
    hops: Vec<f64>,
    latency: Vec<f64>,
    msg_stats: Welford,
}

impl MetricsBuilder {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        MetricsBuilder::default()
    }

    /// Folds in one finished query.
    pub fn record(&mut self, outcome: &QueryOutcome) {
        self.queries += 1;
        if outcome.answerable {
            self.answerable += 1;
        }
        if outcome.hits_delivered > 0 {
            self.answered += 1;
        }
        self.query_messages += outcome.query_messages;
        self.hit_messages += outcome.hit_messages;
        self.bytes += outcome.bytes;
        self.retried += u64::from(outcome.retries);
        if outcome.expired {
            self.expired += 1;
        }
        self.duplicate_hits += outcome.duplicate_hits;
        self.msg_stats
            .push((outcome.query_messages + outcome.hit_messages) as f64);
        if let Some(h) = outcome.first_hit_hops {
            self.hops.push(f64::from(h));
        }
        if let Some(l) = outcome.first_hit_latency {
            self.latency.push(l.ticks() as f64);
        }
    }

    /// Number of queries folded so far.
    pub fn count(&self) -> u64 {
        self.queries
    }

    /// Finalizes into [`RunMetrics`].
    pub fn finish(self, policy: &str) -> RunMetrics {
        RunMetrics {
            policy: policy.to_string(),
            queries: self.queries,
            answerable: self.answerable,
            answered: self.answered,
            query_messages: self.query_messages,
            hit_messages: self.hit_messages,
            bytes: self.bytes,
            messages_per_query: self.msg_stats.mean(),
            bytes_per_query: if self.queries == 0 {
                0.0
            } else {
                self.bytes as f64 / self.queries as f64
            },
            success_rate: if self.answerable == 0 {
                0.0
            } else {
                self.answered as f64 / self.answerable as f64
            },
            retried: self.retried,
            expired: self.expired,
            duplicate_hits: self.duplicate_hits,
            lost_messages: 0,
            buffer_dropped: 0,
            first_hit_hops: Summary::of(&self.hops),
            first_hit_latency: Summary::of(&self.latency),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(qm: u64, hm: u64, hits: u64, answerable: bool) -> QueryOutcome {
        QueryOutcome {
            query_messages: qm,
            hit_messages: hm,
            bytes: qm * 45 + hm * 79,
            hits_delivered: hits,
            first_hit_hops: (hits > 0).then_some(3),
            first_hit_latency: (hits > 0).then(|| Duration::from_ticks(50)),
            answerable,
            attempts: 1,
            retries: 0,
            expired: false,
            duplicate_hits: 0,
        }
    }

    #[test]
    fn aggregation() {
        let mut b = MetricsBuilder::new();
        b.record(&outcome(100, 10, 2, true));
        b.record(&outcome(50, 0, 0, true));
        b.record(&outcome(30, 0, 0, false)); // unanswerable
        let m = b.finish("flood");
        assert_eq!(m.queries, 3);
        assert_eq!(m.answerable, 2);
        assert_eq!(m.answered, 1);
        assert_eq!(m.query_messages, 180);
        assert_eq!(m.hit_messages, 10);
        assert_eq!(m.bytes, 180 * 45 + 10 * 79);
        assert!((m.bytes_per_query - m.bytes as f64 / 3.0).abs() < 1e-9);
        assert!((m.messages_per_query - (110.0 + 50.0 + 30.0) / 3.0).abs() < 1e-12);
        assert!((m.success_rate - 0.5).abs() < 1e-12);
        let hops = m.first_hit_hops.unwrap();
        assert_eq!(hops.count, 1);
        assert_eq!(hops.mean, 3.0);
    }

    #[test]
    fn failure_counters_aggregate() {
        let mut b = MetricsBuilder::new();
        let mut retried = outcome(40, 2, 1, true);
        retried.retries = 2;
        retried.duplicate_hits = 1;
        b.record(&retried);
        let mut dead = outcome(20, 0, 0, true);
        dead.retries = 3;
        dead.expired = true;
        b.record(&dead);
        let m = b.finish("assoc");
        assert_eq!(m.retried, 5);
        assert_eq!(m.expired, 1);
        assert_eq!(m.duplicate_hits, 1);
        assert_eq!(m.lost_messages, 0); // filled in by the simulator
    }

    #[test]
    fn buffer_dropped_serializes_only_when_nonzero() {
        use arq_simkern::ToJson;
        let mut m = MetricsBuilder::new().finish("flood");
        let clean = m.to_json().to_string();
        assert!(!clean.contains("buffer_dropped"), "{clean}");
        let clean_digest = m.digest();
        m.buffer_dropped = 3;
        let congested = m.to_json().to_string();
        assert!(congested.contains("\"buffer_dropped\":3"), "{congested}");
        assert_ne!(m.digest(), clean_digest);
    }

    #[test]
    fn empty_run() {
        let m = MetricsBuilder::new().finish("none");
        assert_eq!(m.queries, 0);
        assert_eq!(m.success_rate, 0.0);
        assert!(m.first_hit_hops.is_none());
    }
}
