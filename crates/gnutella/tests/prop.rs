// Property tests require the external `proptest` crate; the feature is
// default-off so offline builds skip this file entirely.
#![cfg(feature = "proptest")]

//! Property-based tests for the protocol simulator.

use arq_content::{CatalogConfig, FileId, QueryKey, Topic};
use arq_gnutella::guid::GuidGen;
use arq_gnutella::node::{NodeState, Upstream};
use arq_gnutella::sim::{Network, RetryPolicy, SimConfig, Topology};
use arq_gnutella::{FaultPlan, FloodPolicy, LinkPlan, QueryMsg};
use arq_overlay::NodeId;
use arq_simkern::time::Duration;
use arq_simkern::{Rng64, SimTime};
use arq_trace::record::Guid;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A query relays exactly `ttl − 1` times before dying, whatever the
    /// starting TTL.
    #[test]
    fn ttl_bounds_hop_chain(ttl in 0u32..50) {
        let mut msg = QueryMsg {
            guid: Guid(1),
            key: QueryKey { file: FileId(0), topic: Topic(0) },
            ttl,
            hops: 0,
        };
        let mut hops = 0;
        while let Some(next) = msg.hop() {
            msg = next;
            hops += 1;
            prop_assert!(hops < 100, "runaway relay chain");
        }
        prop_assert_eq!(hops, ttl.saturating_sub(1));
        prop_assert_eq!(msg.hops, ttl.saturating_sub(1));
    }

    /// The GUID cache accepts each GUID exactly once while it is
    /// resident, and its size never exceeds the capacity.
    #[test]
    fn node_state_dedup_and_capacity(
        cap in 1usize..64,
        guids in proptest::collection::vec(0u128..40, 1..300),
    ) {
        let mut state = NodeState::new(cap);
        let mut resident: std::collections::VecDeque<u128> = Default::default();
        for g in guids {
            let accepted = state.record(Guid(g), Upstream::Origin, SimTime::ZERO);
            let was_resident = resident.contains(&g);
            prop_assert_eq!(accepted, !was_resident, "guid {}", g);
            if accepted {
                if resident.len() == cap {
                    resident.pop_front();
                }
                resident.push_back(g);
            }
            prop_assert!(state.len() <= cap);
        }
    }

    /// Faulty GUID generators only ever emit GUIDs from their pool.
    #[test]
    fn faulty_guids_cycle_their_pool(seed in any::<u64>(), pool in 1usize..8, draws in 1usize..50) {
        let mut rng = Rng64::seed_from(seed);
        let mut gen = GuidGen::faulty(pool, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..draws {
            seen.insert(gen.next(&mut rng));
        }
        prop_assert!(seen.len() <= pool);
        prop_assert!(seen.len() <= draws);
    }

    /// Whole-simulation sanity across random small configurations:
    /// answered ≤ answerable ≤ queries, message counts are consistent,
    /// and everything is finite.
    #[test]
    fn simulation_invariants(
        seed in any::<u64>(),
        nodes in 10usize..60,
        queries in 10usize..120,
        ttl in 2u32..7,
        loss_milli in 0u32..400,
    ) {
        let mut cfg = SimConfig::default_with(nodes, queries, seed);
        cfg.ttl = ttl;
        cfg.loss_rate = f64::from(loss_milli) / 1000.0;
        cfg.topology = Topology::BarabasiAlbert { m: 2 };
        cfg.catalog = CatalogConfig {
            topics: 4,
            files_per_topic: 30,
            ..Default::default()
        };
        let m = Network::new(cfg, FloodPolicy).run().metrics;
        prop_assert_eq!(m.queries, queries as u64);
        prop_assert!(m.answered <= m.answerable);
        prop_assert!(m.answerable <= m.queries);
        prop_assert!((0.0..=1.0).contains(&m.success_rate));
        prop_assert!(m.messages_per_query >= 0.0);
        // A TTL-limited flood sends at most degree^ttl-ish messages; use
        // a generous global bound to catch runaway relaying.
        prop_assert!(
            m.query_messages < (queries * nodes * 10) as u64,
            "query messages exploded: {}",
            m.query_messages
        );
        if let Some(h) = &m.first_hit_hops {
            prop_assert!(h.max <= f64::from(ttl));
        }
    }

    /// An all-zero fault plan is behaviorally invisible: the run is
    /// byte-identical to one with no plan at all, for any seed/shape.
    #[test]
    fn zero_fault_plan_is_identity(
        seed in any::<u64>(),
        nodes in 10usize..50,
        queries in 10usize..80,
    ) {
        let mut cfg = SimConfig::default_with(nodes, queries, seed);
        cfg.catalog = CatalogConfig {
            topics: 4,
            files_per_topic: 30,
            ..Default::default()
        };
        let clean = Network::new(cfg.clone(), FloodPolicy).run();
        cfg.faults = Some(FaultPlan::default());
        let noop = Network::new(cfg, FloodPolicy).run();
        prop_assert_eq!(clean.metrics.query_messages, noop.metrics.query_messages);
        prop_assert_eq!(clean.metrics.hit_messages, noop.metrics.hit_messages);
        prop_assert_eq!(clean.metrics.bytes, noop.metrics.bytes);
        prop_assert_eq!(clean.metrics.answered, noop.metrics.answered);
        prop_assert_eq!(clean.metrics.answerable, noop.metrics.answerable);
        prop_assert_eq!(clean.end_time, noop.end_time);
        prop_assert_eq!(clean.total_attempts, noop.total_attempts);
        prop_assert_eq!(noop.metrics.lost_messages, 0);
    }

    /// An all-zero link plan (no bandwidth caps, no buffers, no loss, no
    /// jitter, no free-riders) is behaviorally invisible: byte-identical
    /// to running with no link layer at all, for any seed/shape.
    #[test]
    fn zero_capacity_links_are_identity(
        seed in any::<u64>(),
        nodes in 10usize..50,
        queries in 10usize..80,
    ) {
        let mut cfg = SimConfig::default_with(nodes, queries, seed);
        cfg.catalog = CatalogConfig {
            topics: 4,
            files_per_topic: 30,
            ..Default::default()
        };
        let clean = Network::new(cfg.clone(), FloodPolicy).run();
        cfg.links = Some(LinkPlan::default());
        let noop = Network::new(cfg, FloodPolicy).run();
        prop_assert_eq!(clean.metrics.digest(), noop.metrics.digest());
        prop_assert_eq!(clean.metrics.query_messages, noop.metrics.query_messages);
        prop_assert_eq!(clean.metrics.hit_messages, noop.metrics.hit_messages);
        prop_assert_eq!(clean.metrics.bytes, noop.metrics.bytes);
        prop_assert_eq!(clean.metrics.answered, noop.metrics.answered);
        prop_assert_eq!(clean.end_time, noop.end_time);
        prop_assert_eq!(clean.total_attempts, noop.total_attempts);
        prop_assert_eq!(noop.metrics.buffer_dropped, 0);
        prop_assert!(noop.link_bytes.is_none(), "noop plan built link state");
    }

    /// Link-layer byte conservation: across random bandwidth, buffer,
    /// loss, jitter, and free-rider settings, every byte offered to the
    /// link layer is accounted for — delivered, loss-dropped, or
    /// buffer-dropped — once the run drains (nothing left in flight).
    #[test]
    fn link_byte_ledger_conserves(
        seed in any::<u64>(),
        nodes in 10usize..40,
        queries in 10usize..60,
        up in 4u64..64,
        down_mult in 1u64..8,
        up_buf in 256u64..4_096,
        down_buf in 1_024u64..16_384,
        loss_milli in 0u32..300,
        jitter in 0u64..30,
        riders_milli in 0u32..500,
    ) {
        let mut cfg = SimConfig::default_with(nodes, queries, seed);
        cfg.catalog = CatalogConfig {
            topics: 4,
            files_per_topic: 30,
            ..Default::default()
        };
        cfg.links = Some(LinkPlan {
            up: up as f64,
            down: (up * down_mult) as f64,
            up_buf,
            down_buf,
            loss: f64::from(loss_milli) / 1000.0,
            jitter,
            riders: f64::from(riders_milli) / 1000.0,
            rider_up: (up as f64 / 4.0).max(1.0),
        });
        let r = Network::new(cfg, FloodPolicy).run();
        let (sent, delivered, lost, buffered) = r.link_bytes.expect("link ledger");
        prop_assert_eq!(sent, delivered + lost + buffered, "bytes leaked in flight");
        prop_assert_eq!(sent, r.metrics.bytes, "ledger disagrees with metrics");
        prop_assert_eq!(r.metrics.buffer_dropped > 0, buffered > 0);
        if loss_milli == 0 {
            prop_assert_eq!(lost, 0);
        }
    }

    /// The retry lifecycle never exceeds its attempt budget and every
    /// attempt draws a fresh GUID (with proper generators).
    #[test]
    fn retry_bounds_attempts_and_redraws_guids(
        seed in any::<u64>(),
        max_attempts in 1u32..5,
        loss_milli in 0u32..700,
        deadline in 500u64..5_000,
    ) {
        let queries = 60usize;
        let mut cfg = SimConfig::default_with(30, queries, seed);
        cfg.faulty_fraction = 0.0; // proper generators: GUIDs never repeat
        cfg.catalog = CatalogConfig {
            topics: 4,
            files_per_topic: 30,
            ..Default::default()
        };
        cfg.faults = Some(FaultPlan { loss: f64::from(loss_milli) / 1000.0, ..Default::default() });
        cfg.retry = Some(RetryPolicy {
            deadline: Duration::from_ticks(deadline),
            max_attempts,
            backoff: 2.0,
            ttl_step: 1,
            max_ttl: 8,
        });
        let result = Network::new(cfg, FloodPolicy).run();
        prop_assert!(result.total_attempts <= (queries as u64) * u64::from(max_attempts));
        prop_assert!(result.metrics.retried <= (queries as u64) * u64::from(max_attempts - 1));
        prop_assert_eq!(result.distinct_query_guids as u64, result.total_attempts);
    }

    /// Collector output always survives the clean/join pipeline with
    /// src/via fields inside the node id space.
    #[test]
    fn collector_records_are_wellformed(seed in any::<u64>()) {
        let mut cfg = SimConfig::default_with(40, 300, seed);
        cfg.collector = Some(NodeId(0));
        cfg.catalog = CatalogConfig {
            topics: 4,
            files_per_topic: 30,
            ..Default::default()
        };
        let result = Network::new(cfg, FloodPolicy).run();
        let mut db = result.trace.unwrap();
        let (_, pairs) = db.clean_and_join();
        for p in &pairs {
            prop_assert!(p.src.0 < 40);
            prop_assert!(p.via.0 < 40);
            prop_assert!(p.responder.0 < 40);
        }
    }
}

proptest! {
    /// Ping crawls discover exactly the TTL-ball (minus the origin), in
    /// nearest-first order, on arbitrary graphs.
    #[test]
    fn ping_crawl_equals_bfs_ball(
        n in 2usize..30,
        edges in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..120),
        ttl in 0u32..6,
        origin in any::<u32>(),
    ) {
        let mut g = arq_overlay::Graph::new(n);
        for (a, b) in edges {
            let a = arq_overlay::NodeId(a % n as u32);
            let b = arq_overlay::NodeId(b % n as u32);
            if a != b {
                g.add_edge(a, b);
            }
        }
        let origin = arq_overlay::NodeId(origin % n as u32);
        let crawl = arq_gnutella::ping_crawl(&g, origin, ttl);
        let mut expected = arq_overlay::algo::reachable_within(&g, origin, ttl);
        let mut found = crawl.peers.clone();
        expected.sort_unstable();
        found.sort_unstable();
        prop_assert_eq!(found, expected);
        // Nearest-first ordering.
        let dist = arq_overlay::algo::bfs_distances(&g, origin);
        let ds: Vec<u32> = crawl.peers.iter().map(|p| dist[p.index()]).collect();
        prop_assert!(ds.windows(2).all(|w| w[0] <= w[1]), "not nearest-first: {ds:?}");
    }
}
