//! Release-profile scale smoke test for the windowed sharded engine.
//!
//! Runs a 100k-node simulation under loss, jitter, crashes, silent
//! free-riders, session churn, and deadline-driven retries, and checks
//! the three properties the scale architecture promises:
//!
//! 1. **determinism** — results are byte-identical at 1 and 4 worker
//!    threads;
//! 2. **bounded memory** — peak heap growth during the run stays within
//!    a fixed budget (node state is O(nodes), not O(messages));
//! 3. **allocation-free relay path** — doubling the query volume barely
//!    moves the allocation count: the marginal allocations per marginal
//!    message stay well under one, so the steady-state relay loop is
//!    not allocating per message (the absolute count is dominated by
//!    one-time O(nodes) setup — GUID rings, shard stores — which the
//!    marginal rate cancels out).
//!
//! The test is `#[ignore]`d: it is a capacity run, meant for
//! `cargo test --release -p arq-gnutella --test scale -- --ignored`.

use arq_gnutella::policy::{ForwardCtx, ForwardingPolicy};
use arq_gnutella::sim::{Network, RetryPolicy, SimConfig, SimResult};
use arq_gnutella::FaultPlan;
use arq_overlay::{ChurnConfig, NodeId};
use arq_simkern::time::Duration;
use arq_simkern::Rng64;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counting wrapper around the system allocator: tracks total
/// allocation calls plus live and peak heap bytes.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        let live =
            LIVE_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed) + layout.size() as u64;
        PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A k-walker policy with O(1) state and an allocation-free hot path:
/// the issuer launches `k` walkers, every relay forwards to one random
/// neighbor. Message count per query is bounded by `k × TTL` no matter
/// how large the network is.
struct WalkPolicy {
    k: usize,
}

impl ForwardingPolicy for WalkPolicy {
    fn name(&self) -> &'static str {
        "scale-walk"
    }

    fn select(&mut self, ctx: &ForwardCtx<'_>, rng: &mut Rng64) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.select_into(ctx, rng, &mut out);
        out
    }

    fn select_into(&mut self, ctx: &ForwardCtx<'_>, rng: &mut Rng64, out: &mut Vec<NodeId>) {
        let want = if ctx.from.is_none() { self.k } else { 1 };
        let n = ctx.candidates.len();
        if n <= want {
            out.extend_from_slice(ctx.candidates);
            return;
        }
        // Draw distinct indices; `want` is tiny so linear probing from a
        // random start on collision keeps this exact and allocation-free.
        for _ in 0..want {
            let mut i = rng.index(n);
            while out.contains(&ctx.candidates[i]) {
                i = (i + 1) % n;
            }
            out.push(ctx.candidates[i]);
        }
    }
}

/// 100k nodes under every fault and churn mechanism at once. Query and
/// churn volume are sized so the run finishes in seconds in release
/// mode while still crossing thousands of windows.
fn scale_cfg(nodes: usize, queries: usize, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::default_with(nodes, queries, seed);
    cfg.mean_query_interval = Duration::from_ticks(20);
    cfg.churn = Some(ChurnConfig {
        mean_session: Duration::from_ticks(2_000_000),
        mean_downtime: Duration::from_ticks(1_000_000),
        pinned: vec![],
    });
    cfg.faults = Some(FaultPlan {
        loss: 0.05,
        jitter: 40,
        crash: 0.01,
        silent: 0.05,
    });
    cfg.retry = Some(RetryPolicy::default_with(Duration::from_ticks(4_000), 12));
    cfg.guid_expiry = Some(Duration::from_ticks(500_000));
    cfg
}

/// Runs `queries` queries at `nodes` scale on one thread, returning the
/// result plus the allocation calls and peak heap growth of the run
/// itself (network construction excluded).
fn run_counted(nodes: usize, queries: usize, seed: u64) -> (SimResult, u64, u64) {
    let network = Network::new(scale_cfg(nodes, queries, seed), WalkPolicy { k: 3 });
    let calls_before = ALLOC_CALLS.load(Ordering::Relaxed);
    let live_before = LIVE_BYTES.load(Ordering::Relaxed);
    PEAK_BYTES.store(live_before, Ordering::Relaxed);
    let result = network.run_sharded(1);
    let calls = ALLOC_CALLS.load(Ordering::Relaxed) - calls_before;
    let peak_growth = PEAK_BYTES
        .load(Ordering::Relaxed)
        .saturating_sub(live_before);
    (result, calls, peak_growth)
}

fn messages(r: &SimResult) -> f64 {
    r.metrics.messages_per_query * r.metrics.queries as f64
}

#[test]
#[ignore = "capacity run: release profile, ~100k nodes"]
fn hundred_k_nodes_bounded_memory_and_thread_invariant() {
    const NODES: usize = 100_000;
    const QUERIES: usize = 5_000;
    const SEED: u64 = 29;

    let (base, base_calls, base_peak) = run_counted(NODES, QUERIES, SEED);
    let (double, double_calls, double_peak) = run_counted(NODES, 2 * QUERIES, SEED);
    let base_msgs = messages(&base);
    let double_msgs = messages(&double);
    assert!(
        base_msgs > 50_000.0,
        "run too small to measure: {base_msgs}"
    );
    assert!(double_msgs > base_msgs, "doubling queries shrank traffic");

    // Peak heap growth is O(nodes): the run's working set (shard stores,
    // delivery ring, scratch buffers) fits in a fixed budget that a
    // per-message blowup would overrun immediately.
    const PEAK_BUDGET: u64 = 1_500_000_000;
    for peak in [base_peak, double_peak] {
        assert!(
            peak < PEAK_BUDGET,
            "peak heap growth {peak} bytes exceeds the {PEAK_BUDGET} byte budget"
        );
    }

    // The relay path reuses pooled buffers: the extra messages of the
    // doubled run cost almost no extra allocations. (Absolute counts
    // include one-time O(nodes) setup — per-node GUID rings — which
    // this marginal rate cancels.)
    let marginal = (double_calls.saturating_sub(base_calls)) as f64 / (double_msgs - base_msgs);
    assert!(
        marginal < 0.5,
        "{} extra allocations over {:.0} extra messages ({marginal:.2}/msg): \
         relay path is allocating per message",
        double_calls.saturating_sub(base_calls),
        double_msgs - base_msgs
    );

    // Byte-identical results at a different worker count.
    let sharded = Network::new(scale_cfg(NODES, QUERIES, SEED), WalkPolicy { k: 3 }).run_sharded(4);
    let fp = |r: &SimResult| {
        format!(
            "{:?}|{:?}|{}|{}",
            r.metrics, r.end_time, r.distinct_query_guids, r.total_attempts
        )
    };
    assert_eq!(fp(&base), fp(&sharded), "thread count changed results");

    // The run did real routing work under faults.
    assert!(base.metrics.success_rate > 0.0, "no query ever succeeded");
    assert!(base.metrics.lost_messages > 0, "loss injection inert");
    assert!(base.metrics.retried > 0, "retry lifecycle inert");
}
