//! Adaptive threshold calculators.
//!
//! The Adaptive Sliding Window regenerates its rule set when measured
//! coverage or success falls below a threshold, and "in order to capture
//! the dynamic nature of the network, these thresholds are constantly
//! updated so that threshold values remain reasonable for all states of
//! the network. One simple method would be to use the mean of the
//! previous N values" (§III-B.6). [`ThresholdCalc`] implements exactly
//! that (with the paper's 0.7 as the value used before any history
//! exists); an EWMA variant is provided for the ablation benches.

use arq_simkern::Ewma;
use std::collections::VecDeque;

/// A self-adjusting threshold over a stream of measured values.
#[derive(Debug, Clone)]
pub enum ThresholdCalc {
    /// Mean of the last `n` observed values (the paper's method).
    MeanOfLast {
        /// Window length N.
        n: usize,
        /// Value returned before any observation arrives.
        initial: f64,
        /// Recent observations.
        window: VecDeque<f64>,
    },
    /// Exponentially weighted moving average (ablation variant).
    Ewma {
        /// Value returned before any observation arrives.
        initial: f64,
        /// The smoother.
        ewma: Ewma,
    },
}

impl ThresholdCalc {
    /// The paper's calculator: mean of the previous `n` values, starting
    /// from `initial` (0.7 in the paper's experiments).
    pub fn mean_of_last(n: usize, initial: f64) -> Self {
        assert!(n >= 1, "window must hold at least one value");
        ThresholdCalc::MeanOfLast {
            n,
            initial,
            window: VecDeque::with_capacity(n),
        }
    }

    /// EWMA calculator with smoothing factor `alpha`.
    pub fn ewma(alpha: f64, initial: f64) -> Self {
        ThresholdCalc::Ewma {
            initial,
            ewma: Ewma::new(alpha),
        }
    }

    /// The current threshold (before seeing the next measurement).
    ///
    /// Partial-window semantics, pinned: the paper specifies "the mean
    /// of the previous N values" with 0.7 used *before history exists*.
    /// Accordingly the initial value is returned **only** while the
    /// window is empty; from the first observation onward the threshold
    /// is the mean of however many values have arrived (1, 2, …, up to
    /// N). The initial is a stand-in for missing history, not a phantom
    /// N-th observation — it is never averaged in.
    pub fn value(&self) -> f64 {
        match self {
            ThresholdCalc::MeanOfLast {
                initial, window, ..
            } => {
                if window.is_empty() {
                    *initial
                } else {
                    window.iter().sum::<f64>() / window.len() as f64
                }
            }
            ThresholdCalc::Ewma { initial, ewma } => ewma.value().unwrap_or(*initial),
        }
    }

    /// Feeds the measurement taken this trial.
    pub fn push(&mut self, measured: f64) {
        match self {
            ThresholdCalc::MeanOfLast { n, window, .. } => {
                if window.len() == *n {
                    window.pop_front();
                }
                window.push_back(measured);
            }
            ThresholdCalc::Ewma { ewma, .. } => {
                ewma.push(measured);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_initial() {
        let t = ThresholdCalc::mean_of_last(10, 0.7);
        assert_eq!(t.value(), 0.7);
        let e = ThresholdCalc::ewma(0.3, 0.7);
        assert_eq!(e.value(), 0.7);
    }

    #[test]
    fn mean_of_last_tracks_window() {
        let mut t = ThresholdCalc::mean_of_last(3, 0.7);
        t.push(0.9);
        assert!((t.value() - 0.9).abs() < 1e-12);
        t.push(0.6);
        t.push(0.6);
        assert!((t.value() - 0.7).abs() < 1e-12);
        t.push(0.3); // evicts 0.9
        assert!((t.value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn partial_window_of_size_one() {
        // N = 1 is the smallest legal window: the threshold is simply
        // the last observation, and the initial matters only before the
        // first push.
        let mut t = ThresholdCalc::mean_of_last(1, 0.7);
        assert_eq!(t.value(), 0.7);
        t.push(0.2);
        assert!(
            (t.value() - 0.2).abs() < 1e-12,
            "initial must not be averaged in"
        );
        t.push(0.9);
        assert!((t.value() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn partial_window_of_n_minus_one() {
        // N − 1 observations in an N-window: the mean is over the 9
        // actual values — neither the initial nor a zero pads the
        // denominator to N.
        let n = 10;
        let mut t = ThresholdCalc::mean_of_last(n, 0.7);
        for _ in 0..(n - 1) {
            t.push(0.5);
        }
        assert!(
            (t.value() - 0.5).abs() < 1e-12,
            "mean over 9 values of 0.5 must be 0.5, got {}",
            t.value()
        );
        // The N-th push completes the window without changing the
        // all-equal mean; the N+1-th starts evicting.
        t.push(0.5);
        assert!((t.value() - 0.5).abs() < 1e-12);
        t.push(1.0);
        assert!((t.value() - (0.5 * 9.0 + 1.0) / 10.0).abs() < 1e-12);
    }

    #[test]
    fn longer_windows_react_slower() {
        let mut short = ThresholdCalc::mean_of_last(2, 0.7);
        let mut long = ThresholdCalc::mean_of_last(50, 0.7);
        for _ in 0..10 {
            short.push(0.9);
            long.push(0.9);
        }
        short.push(0.1);
        long.push(0.1);
        assert!(short.value() < long.value());
    }

    #[test]
    fn ewma_variant_converges() {
        let mut e = ThresholdCalc::ewma(0.5, 0.7);
        for _ in 0..30 {
            e.push(0.4);
        }
        assert!((e.value() - 0.4).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty_window() {
        ThresholdCalc::mean_of_last(0, 0.7);
    }
}
