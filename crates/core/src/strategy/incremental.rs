//! Incremental Stream (§VI future work): update rules on every pair.
//!
//! "An additional algorithm is currently in development that would create
//! rule sets for query routing and update these rules immediately as
//! query and reply messages are received. … Initial simulations have been
//! very promising, and consistently show coverage and success values
//! above 90%."
//!
//! Implementation: a [`DecayedPairCounts`] accumulator replaces block
//! mining. Each pair is **tested before it is observed** (no lookahead),
//! with the same unique-query semantics as `RULESET-TEST`: a query is
//! covered if its source has any association at or above the support
//! threshold, successful if its actual reply path matches one.

use super::{Strategy, Trial};
use arq_assoc::measures::BlockMeasures;
use arq_assoc::DecayedPairCounts;
use arq_trace::record::{Guid, PairRecord};
use std::collections::HashMap;

/// The streaming maintainer.
#[derive(Debug, Clone)]
pub struct IncrementalStream {
    threshold: f64,
    counts: DecayedPairCounts,
}

impl IncrementalStream {
    /// Creates the strategy: associations must reach `threshold` decayed
    /// support to route, and counts halve every `half_life` pairs.
    pub fn new(threshold: f64, half_life: f64) -> Self {
        assert!(threshold >= 1.0, "threshold below one observation");
        IncrementalStream {
            threshold,
            counts: DecayedPairCounts::new(half_life),
        }
    }

    /// Access to the underlying counters (diagnostics).
    pub fn counts(&self) -> &DecayedPairCounts {
        &self.counts
    }
}

impl Strategy for IncrementalStream {
    fn name(&self) -> String {
        format!(
            "incremental(t={},hl={})",
            self.threshold,
            self.counts.half_life()
        )
    }

    fn warm_up(&mut self, block: &[PairRecord]) {
        for p in block {
            self.counts.observe_pair(p);
        }
    }

    fn test_and_update(&mut self, block: &[PairRecord]) -> Trial {
        #[derive(Clone, Copy)]
        struct QState {
            covered: bool,
            success: bool,
        }
        let mut measures = BlockMeasures::default();
        let mut seen: HashMap<Guid, QState> = HashMap::with_capacity(block.len());
        for p in block {
            let state = match seen.entry(p.guid) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(v) => {
                    // First sighting of this query: judge coverage with
                    // the rules as they stand *now*.
                    let covered = self.counts.covered(p.src, self.threshold);
                    measures.total += 1;
                    if covered {
                        measures.covered += 1;
                    }
                    v.insert(QState {
                        covered,
                        success: false,
                    })
                }
            };
            if state.covered && !state.success && self.counts.matches(p.src, p.via, self.threshold)
            {
                state.success = true;
                measures.successes += 1;
            }
            // Only after testing does the pair become training data.
            self.counts.observe_pair(p);
        }
        Trial {
            measures,
            // Every pair updates the rules; by the paper's accounting the
            // set is continuously regenerated.
            regenerated: true,
            rule_count: self.counts.len(),
            rules_after: self.counts.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::routed_block;
    use super::*;

    #[test]
    fn warm_start_gives_full_quality() {
        let mut s = IncrementalStream::new(5.0, 1e9);
        s.warm_up(&routed_block(0, 100, 5, 100));
        let t = s.test_and_update(&routed_block(1_000, 100, 5, 100));
        assert_eq!(t.measures.coverage(), 1.0);
        assert_eq!(t.measures.success(), 1.0);
        assert!(t.regenerated);
    }

    #[test]
    fn recovers_from_route_change_mid_block() {
        let mut s = IncrementalStream::new(5.0, 200.0);
        s.warm_up(&routed_block(0, 200, 5, 100));
        // Routes change. Early queries in the block miss; once the new
        // associations accumulate past the threshold, later queries hit.
        let t = s.test_and_update(&routed_block(1_000, 400, 5, 200));
        assert!(
            t.measures.coverage() > 0.9,
            "coverage {}",
            t.measures.coverage()
        );
        let success = t.measures.success();
        assert!(success > 0.5, "never relearned: {success}");
        assert!(success < 1.0, "learned with impossible lookahead");
        // The following block is fully adapted.
        let t2 = s.test_and_update(&routed_block(2_000, 400, 5, 200));
        assert!(
            t2.measures.success() > 0.95,
            "success {}",
            t2.measures.success()
        );
    }

    #[test]
    fn no_lookahead_on_cold_start() {
        let mut s = IncrementalStream::new(5.0, 1e9);
        // No warm-up at all: the very first queries cannot be covered.
        let t = s.test_and_update(&routed_block(0, 50, 1, 100));
        // 50 pairs, single source: the first 5 pairs build support; the
        // 6th onward are covered.
        assert!(t.measures.coverage() < 1.0);
        assert!(t.measures.covered > 0, "threshold never crossed");
    }

    #[test]
    fn decay_forgets_ancient_routes() {
        let mut s = IncrementalStream::new(5.0, 50.0);
        s.warm_up(&routed_block(0, 100, 1, 100));
        // A long stretch of the new route: old association decays away.
        s.test_and_update(&routed_block(1_000, 500, 1, 200));
        assert!(
            !s.counts().matches(
                arq_trace::record::HostId(0),
                arq_trace::record::HostId(100),
                5.0
            ),
            "stale route still active"
        );
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_sub_unit_threshold() {
        IncrementalStream::new(0.5, 100.0);
    }
}
