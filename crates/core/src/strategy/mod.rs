//! Rule-set maintenance strategies (§III-B.3 – §III-B.6 and §VI).
//!
//! All strategies share one lifecycle, mirroring the paper's pseudocode:
//! the first block of the trace is a pure **warm-up** (it trains the
//! initial rule set and produces no measurement), then every subsequent
//! block is a **trial**: the current rule set is tested against the block
//! (`RULESET-TEST`, producing coverage and success), after which the
//! strategy may regenerate its rule set — each strategy differs only in
//! *when* it does so.

mod adaptive;
mod incremental;
mod lazy;
mod lossy_stream;
mod sliding;
mod static_ruleset;
mod topic;

pub use adaptive::AdaptiveSlidingWindow;
pub use incremental::IncrementalStream;
pub use lazy::LazySlidingWindow;
pub use lossy_stream::LossyStream;
pub use sliding::SlidingWindow;
pub use static_ruleset::StaticRuleset;
pub use topic::TopicSlidingWindow;

use arq_assoc::measures::BlockMeasures;
use arq_assoc::pairs::RuleSet;
use arq_trace::record::PairRecord;

/// A standalone re-miner extracted from a strategy: given a block,
/// produces exactly the rule set the strategy would regenerate from it.
/// `FnMut` so the closure can own reusable scratch tables; each caller
/// (e.g. each pipeline worker) obtains its own via
/// [`Strategy::block_miner`].
pub type BlockMiner = Box<dyn FnMut(&[PairRecord]) -> RuleSet + Send>;

/// The outcome of one trial (one test block).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trial {
    /// Coverage/success counts against the block.
    pub measures: BlockMeasures,
    /// Whether the strategy rebuilt its rule set after this trial.
    pub regenerated: bool,
    /// Rules held while testing this block.
    pub rule_count: usize,
    /// Rules held after the update step — differs from `rule_count`
    /// exactly when `regenerated` is set. Observability layers report
    /// this as the re-mined rule-set size.
    pub rules_after: usize,
}

/// A rule-set maintenance strategy under trace-driven evaluation.
pub trait Strategy {
    /// Label for experiment tables.
    fn name(&self) -> String;

    /// Consumes the warm-up block (trains the initial rule set).
    fn warm_up(&mut self, block: &[PairRecord]);

    /// Tests the current rule set against `block`, then applies the
    /// strategy's update policy.
    fn test_and_update(&mut self, block: &[PairRecord]) -> Trial;

    /// A miner that reproduces, from a block alone, the rule set this
    /// strategy would regenerate from that block — or `None` when the
    /// update step depends on state beyond the block (streaming
    /// maintainers) and therefore cannot be precomputed.
    ///
    /// Strategies whose regeneration input is always the block just
    /// tested (Sliding, Lazy, Adaptive) return `Some`, which lets the
    /// pipelined evaluator mine block *b* on a worker thread while the
    /// main thread is still evaluating block *b − 1*: the speculative
    /// result is exact, so hand-off through
    /// [`test_and_update_with`](Self::test_and_update_with) leaves
    /// every trial — and the artifact bytes — identical to the
    /// sequential path.
    fn block_miner(&self) -> Option<BlockMiner> {
        None
    }

    /// [`warm_up`](Self::warm_up) given the rule set a
    /// [`block_miner`](Self::block_miner) produced for `block`. The
    /// default ignores the premined set and re-derives everything from
    /// the block; overriders must behave identically to `warm_up`.
    fn warm_up_with(&mut self, block: &[PairRecord], premined: RuleSet) {
        let _ = premined;
        self.warm_up(block);
    }

    /// [`test_and_update`](Self::test_and_update) given the premined
    /// rule set for `block`. Strategies that skip regeneration this
    /// trial simply discard it. The default falls back to the
    /// sequential path; overriders must produce an identical [`Trial`].
    fn test_and_update_with(&mut self, block: &[PairRecord], premined: RuleSet) -> Trial {
        let _ = premined;
        self.test_and_update(block)
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use arq_simkern::SimTime;
    use arq_trace::record::{Guid, HostId, PairRecord, QueryId};

    /// A block where sources `0..n_src` are answered via `base + src`
    /// (one deterministic route per source), `size` pairs round-robin.
    pub fn routed_block(start_guid: u128, size: usize, n_src: u32, base: u32) -> Vec<PairRecord> {
        (0..size)
            .map(|i| {
                let src = (i as u32) % n_src;
                PairRecord {
                    time: SimTime::from_ticks(start_guid as u64 + i as u64),
                    guid: Guid(start_guid + i as u128),
                    src: HostId(src),
                    via: HostId(base + src),
                    responder: HostId(10_000),
                    query: QueryId(0),
                }
            })
            .collect()
    }
}
