//! Rule-set maintenance strategies (§III-B.3 – §III-B.6 and §VI).
//!
//! All strategies share one lifecycle, mirroring the paper's pseudocode:
//! the first block of the trace is a pure **warm-up** (it trains the
//! initial rule set and produces no measurement), then every subsequent
//! block is a **trial**: the current rule set is tested against the block
//! (`RULESET-TEST`, producing coverage and success), after which the
//! strategy may regenerate its rule set — each strategy differs only in
//! *when* it does so.

mod adaptive;
mod incremental;
mod lazy;
mod lossy_stream;
mod sliding;
mod static_ruleset;
mod topic;

pub use adaptive::AdaptiveSlidingWindow;
pub use incremental::IncrementalStream;
pub use lazy::LazySlidingWindow;
pub use lossy_stream::LossyStream;
pub use sliding::SlidingWindow;
pub use static_ruleset::StaticRuleset;
pub use topic::TopicSlidingWindow;

use arq_assoc::measures::BlockMeasures;
use arq_trace::record::PairRecord;

/// The outcome of one trial (one test block).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trial {
    /// Coverage/success counts against the block.
    pub measures: BlockMeasures,
    /// Whether the strategy rebuilt its rule set after this trial.
    pub regenerated: bool,
    /// Rules held while testing this block.
    pub rule_count: usize,
    /// Rules held after the update step — differs from `rule_count`
    /// exactly when `regenerated` is set. Observability layers report
    /// this as the re-mined rule-set size.
    pub rules_after: usize,
}

/// A rule-set maintenance strategy under trace-driven evaluation.
pub trait Strategy {
    /// Label for experiment tables.
    fn name(&self) -> String;

    /// Consumes the warm-up block (trains the initial rule set).
    fn warm_up(&mut self, block: &[PairRecord]);

    /// Tests the current rule set against `block`, then applies the
    /// strategy's update policy.
    fn test_and_update(&mut self, block: &[PairRecord]) -> Trial;
}

#[cfg(test)]
pub(crate) mod testutil {
    use arq_simkern::SimTime;
    use arq_trace::record::{Guid, HostId, PairRecord, QueryId};

    /// A block where sources `0..n_src` are answered via `base + src`
    /// (one deterministic route per source), `size` pairs round-robin.
    pub fn routed_block(start_guid: u128, size: usize, n_src: u32, base: u32) -> Vec<PairRecord> {
        (0..size)
            .map(|i| {
                let src = (i as u32) % n_src;
                PairRecord {
                    time: SimTime::from_ticks(start_guid as u64 + i as u64),
                    guid: Guid(start_guid + i as u128),
                    src: HostId(src),
                    via: HostId(base + src),
                    responder: HostId(10_000),
                    query: QueryId(0),
                }
            })
            .collect()
    }
}
