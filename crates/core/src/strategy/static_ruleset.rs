//! Static Ruleset (§III-B.3): mine once, use forever.
//!
//! ```text
//! STATIC-RULESET
//! 1 R ← GENERATE-RULESET
//! 2 for each block b
//! 3   do RULESET-TEST(R, b)
//! ```
//!
//! "The benefit of Static Ruleset is its simplicity, and its main
//! shortcoming is its lack of flexibility" — the paper measures its
//! coverage collapsing to ≈0.18 and success to ≈0.02 as the network
//! drifts away from the training snapshot (experiment E1).

use super::{Strategy, Trial};
use arq_assoc::pairs::{mine_pairs, RuleSet};
use arq_assoc::ruleset_test;
use arq_trace::record::PairRecord;

/// The mine-once strategy.
#[derive(Debug, Clone)]
pub struct StaticRuleset {
    min_support: u64,
    rules: RuleSet,
}

impl StaticRuleset {
    /// Creates the strategy with the given support-pruning threshold.
    pub fn new(min_support: u64) -> Self {
        StaticRuleset {
            min_support,
            rules: RuleSet::empty(),
        }
    }

    /// The rule set currently in use (for inspection).
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }
}

impl Strategy for StaticRuleset {
    fn name(&self) -> String {
        format!("static(s={})", self.min_support)
    }

    fn warm_up(&mut self, block: &[PairRecord]) {
        self.rules = mine_pairs(block, self.min_support);
    }

    fn test_and_update(&mut self, block: &[PairRecord]) -> Trial {
        Trial {
            measures: ruleset_test(&self.rules, block),
            regenerated: false,
            rule_count: self.rules.rule_count(),
            rules_after: self.rules.rule_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::routed_block;
    use super::*;

    #[test]
    fn perfect_on_identical_blocks() {
        let mut s = StaticRuleset::new(2);
        s.warm_up(&routed_block(0, 100, 5, 100));
        let t = s.test_and_update(&routed_block(1_000, 100, 5, 100));
        assert_eq!(t.measures.coverage(), 1.0);
        assert_eq!(t.measures.success(), 1.0);
        assert!(!t.regenerated);
        assert_eq!(t.rule_count, 5);
    }

    #[test]
    fn never_adapts_to_route_changes() {
        let mut s = StaticRuleset::new(2);
        s.warm_up(&routed_block(0, 100, 5, 100));
        // Same sources, all routes moved to a different neighbor range.
        let t = s.test_and_update(&routed_block(1_000, 100, 5, 200));
        assert_eq!(t.measures.coverage(), 1.0, "sources unchanged");
        assert_eq!(t.measures.success(), 0.0, "routes changed");
        // Still no adaptation on the next block.
        let t2 = s.test_and_update(&routed_block(2_000, 100, 5, 200));
        assert_eq!(t2.measures.success(), 0.0);
        assert!(!t2.regenerated);
    }

    #[test]
    fn never_adapts_to_source_changes() {
        let mut s = StaticRuleset::new(2);
        s.warm_up(&routed_block(0, 100, 5, 100));
        // Entirely new source population.
        let shifted: Vec<PairRecord> = routed_block(1_000, 100, 5, 100)
            .into_iter()
            .map(|mut p| {
                p.src = arq_trace::record::HostId(p.src.0 + 50);
                p
            })
            .collect();
        let t = s.test_and_update(&shifted);
        assert_eq!(t.measures.coverage(), 0.0);
    }

    #[test]
    fn support_pruning_applies_at_warmup() {
        let mut s = StaticRuleset::new(1_000);
        s.warm_up(&routed_block(0, 100, 5, 100));
        assert!(s.rules().is_empty(), "threshold 1000 should prune all");
        let t = s.test_and_update(&routed_block(1_000, 100, 5, 100));
        assert_eq!(t.measures.coverage(), 0.0);
        assert_eq!(t.rule_count, 0);
    }
}
