//! Sliding Window (§III-B.4): re-mine from the previous block before
//! every trial.
//!
//! ```text
//! SLIDING-WINDOW
//! 1 for each block b
//! 2   do R ← GENERATE-RULESET(b − 1)
//! 3      RULESET-TEST(R, b)
//! ```
//!
//! The paper's best fixed-schedule performer: average coverage > 0.80 and
//! success just under 0.79 (Figure 1 / experiment E2). Its cost is one
//! rule-set generation per block, whether needed or not.

use super::{BlockMiner, Strategy, Trial};
use arq_assoc::pairs::{mine_pairs_with_confidence, PairMiner, RuleSet};
use arq_assoc::ruleset_test;
use arq_trace::record::PairRecord;

/// The every-block re-miner.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    min_support: u64,
    min_confidence: f64,
    rules: RuleSet,
    miner: PairMiner,
    regenerations: u64,
}

impl SlidingWindow {
    /// Creates the strategy with the given support-pruning threshold.
    pub fn new(min_support: u64) -> Self {
        Self::with_confidence(min_support, 0.0)
    }

    /// Adds the §VI confidence cut on top of support pruning (experiment
    /// E9): a rule survives only if it carries at least `min_confidence`
    /// of its antecedent's reply traffic.
    pub fn with_confidence(min_support: u64, min_confidence: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&min_confidence),
            "confidence threshold out of range"
        );
        SlidingWindow {
            min_support,
            min_confidence,
            rules: RuleSet::empty(),
            miner: PairMiner::new(),
            regenerations: 0,
        }
    }

    /// Rule-set generations performed so far (excluding warm-up).
    pub fn regenerations(&self) -> u64 {
        self.regenerations
    }

    /// Size of the rule set currently held.
    pub fn rule_count(&self) -> usize {
        self.rules.rule_count()
    }

    fn mine(&mut self, block: &[PairRecord]) -> RuleSet {
        if self.min_confidence > 0.0 {
            mine_pairs_with_confidence(block, self.min_support, self.min_confidence)
        } else {
            // Scratch-table miner: same rule set, no per-block
            // reallocation.
            self.miner.mine(block, self.min_support)
        }
    }

    /// Installs `next` after measuring the current set against `block`
    /// — the shared tail of the sequential and premined paths.
    fn apply(&mut self, block: &[PairRecord], next: RuleSet) -> Trial {
        let measures = ruleset_test(&self.rules, block);
        let rule_count = self.rules.rule_count();
        // Next trial always uses rules mined from this (now previous)
        // block.
        self.rules = next;
        self.regenerations += 1;
        Trial {
            measures,
            regenerated: true,
            rule_count,
            rules_after: self.rules.rule_count(),
        }
    }
}

impl Strategy for SlidingWindow {
    fn name(&self) -> String {
        if self.min_confidence > 0.0 {
            format!("sliding(s={},c={})", self.min_support, self.min_confidence)
        } else {
            format!("sliding(s={})", self.min_support)
        }
    }

    fn warm_up(&mut self, block: &[PairRecord]) {
        self.rules = self.mine(block);
    }

    fn test_and_update(&mut self, block: &[PairRecord]) -> Trial {
        let next = self.mine(block);
        self.apply(block, next)
    }

    fn block_miner(&self) -> Option<BlockMiner> {
        let support = self.min_support;
        let confidence = self.min_confidence;
        if confidence > 0.0 {
            Some(Box::new(move |block: &[PairRecord]| {
                mine_pairs_with_confidence(block, support, confidence)
            }))
        } else {
            let mut miner = PairMiner::new();
            Some(Box::new(move |block: &[PairRecord]| {
                miner.mine(block, support)
            }))
        }
    }

    fn warm_up_with(&mut self, _block: &[PairRecord], premined: RuleSet) {
        self.rules = premined;
    }

    fn test_and_update_with(&mut self, block: &[PairRecord], premined: RuleSet) -> Trial {
        self.apply(block, premined)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::routed_block;
    use super::*;

    #[test]
    fn adapts_to_route_change_within_one_block() {
        let mut s = SlidingWindow::new(2);
        s.warm_up(&routed_block(0, 100, 5, 100));
        // Routes move: the first trial after the change misses…
        let t1 = s.test_and_update(&routed_block(1_000, 100, 5, 200));
        assert_eq!(t1.measures.success(), 0.0);
        assert!(t1.regenerated);
        // …but the very next trial has relearned them.
        let t2 = s.test_and_update(&routed_block(2_000, 100, 5, 200));
        assert_eq!(t2.measures.success(), 1.0);
        assert_eq!(t2.measures.coverage(), 1.0);
        assert_eq!(s.regenerations(), 2);
    }

    #[test]
    fn adapts_to_source_change_within_one_block() {
        let mut s = SlidingWindow::new(2);
        s.warm_up(&routed_block(0, 100, 5, 100));
        let shifted = |g: u128| -> Vec<PairRecord> {
            routed_block(g, 100, 5, 100)
                .into_iter()
                .map(|mut p| {
                    p.src = arq_trace::record::HostId(p.src.0 + 50);
                    p
                })
                .collect()
        };
        let t1 = s.test_and_update(&shifted(1_000));
        assert_eq!(t1.measures.coverage(), 0.0);
        let t2 = s.test_and_update(&shifted(2_000));
        assert_eq!(t2.measures.coverage(), 1.0);
    }

    #[test]
    fn rule_count_reports_the_tested_set() {
        let mut s = SlidingWindow::new(2);
        s.warm_up(&routed_block(0, 100, 5, 100));
        // Test block has 10 sources; the *tested* set still has 5 rules.
        let t = s.test_and_update(&routed_block(1_000, 100, 10, 100));
        assert_eq!(t.rule_count, 5);
        let t2 = s.test_and_update(&routed_block(2_000, 100, 10, 100));
        assert_eq!(t2.rule_count, 10);
    }
}
