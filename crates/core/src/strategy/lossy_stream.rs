//! Lossy-Counting streaming maintainer.
//!
//! The second realization of the paper's §VI streaming idea, built on
//! [`arq_assoc::lossy::LossyPairCounts`] (Manku–Motwani Lossy Counting)
//! instead of exponential decay. Where [`super::IncrementalStream`]
//! weights recent observations more, Lossy Counting keeps *frequency*
//! guarantees over the whole stream — it adapts to churn only through
//! its periodic eviction of associations that stopped accumulating.
//! Experiment E14 contrasts the two on the calibrated trace.

use super::{Strategy, Trial};
use arq_assoc::measures::BlockMeasures;
use arq_assoc::LossyPairCounts;
use arq_trace::record::{Guid, PairRecord};
use std::collections::HashMap;

/// Streaming maintainer with Lossy Counting state.
#[derive(Debug, Clone)]
pub struct LossyStream {
    threshold: u64,
    counts: LossyPairCounts,
}

impl LossyStream {
    /// Creates the strategy: associations route once their (guaranteed)
    /// count reaches `threshold`; `epsilon` is the Lossy Counting error
    /// bound.
    pub fn new(threshold: u64, epsilon: f64) -> Self {
        assert!(threshold >= 1, "threshold below one observation");
        LossyStream {
            threshold,
            counts: LossyPairCounts::new(epsilon),
        }
    }

    /// Access to the underlying counters (diagnostics).
    pub fn counts(&self) -> &LossyPairCounts {
        &self.counts
    }
}

impl Strategy for LossyStream {
    fn name(&self) -> String {
        format!("lossy(t={},eps={})", self.threshold, self.counts.epsilon())
    }

    fn warm_up(&mut self, block: &[PairRecord]) {
        for p in block {
            self.counts.observe_pair(p);
        }
    }

    fn test_and_update(&mut self, block: &[PairRecord]) -> Trial {
        #[derive(Clone, Copy)]
        struct QState {
            covered: bool,
            success: bool,
        }
        let mut measures = BlockMeasures::default();
        let mut seen: HashMap<Guid, QState> = HashMap::with_capacity(block.len());
        for p in block {
            let state = match seen.entry(p.guid) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(v) => {
                    let covered = self.counts.covered(p.src, self.threshold);
                    measures.total += 1;
                    if covered {
                        measures.covered += 1;
                    }
                    v.insert(QState {
                        covered,
                        success: false,
                    })
                }
            };
            if state.covered && !state.success && self.counts.matches(p.src, p.via, self.threshold)
            {
                state.success = true;
                measures.successes += 1;
            }
            self.counts.observe_pair(p);
        }
        Trial {
            measures,
            regenerated: true,
            rule_count: self.counts.len(),
            rules_after: self.counts.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::routed_block;
    use super::*;

    #[test]
    fn warm_start_gives_full_quality() {
        let mut s = LossyStream::new(5, 0.0001);
        s.warm_up(&routed_block(0, 200, 5, 100));
        let t = s.test_and_update(&routed_block(1_000, 200, 5, 100));
        assert_eq!(t.measures.coverage(), 1.0);
        assert_eq!(t.measures.success(), 1.0);
    }

    #[test]
    fn stale_routes_linger_longer_than_decay() {
        // Lossy counting has no recency weighting: after a route change,
        // the old association's count stays high until eviction, so the
        // stale rule keeps matching (contrast with IncrementalStream).
        let mut s = LossyStream::new(5, 0.001);
        s.warm_up(&routed_block(0, 1_000, 1, 100));
        s.test_and_update(&routed_block(10_000, 500, 1, 200));
        assert!(
            s.counts().matches(
                arq_trace::record::HostId(0),
                arq_trace::record::HostId(100),
                5
            ),
            "whole-stream counts should still hold the old route"
        );
        // The new route was also learned.
        assert!(s.counts().matches(
            arq_trace::record::HostId(0),
            arq_trace::record::HostId(200),
            5
        ));
    }

    #[test]
    fn cold_start_has_no_lookahead() {
        let mut s = LossyStream::new(5, 0.001);
        let t = s.test_and_update(&routed_block(0, 50, 1, 100));
        assert!(t.measures.coverage() < 1.0);
        assert!(t.measures.covered > 0);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_zero_threshold() {
        LossyStream::new(0, 0.01);
    }
}
