//! Adaptive Sliding Window (§III-B.6): regenerate only when quality
//! drops below self-adjusting thresholds.
//!
//! ```text
//! ADAPTIVE-SLIDING-WINDOW
//! 1 for each block b
//! 2   do ct ← CALC-COVERAGE-THRESHOLD(b − 1)
//! 3      st ← CALC-SUCCESS-THRESHOLD(b − 1)
//! 4      results ← RULESET-TEST(R, b)
//! 5      if results[coverage] < ct then R ← GENERATE-RULESET(b)
//! 6      else if results[success] < st then R ← GENERATE-RULESET(b)
//! ```
//!
//! Thresholds follow [`ThresholdCalc`] — by default the mean of the last
//! N measured values, seeded at 0.7, matching the paper's Figure 4 runs
//! (N = 10 regenerates every ≈1.7 blocks; N = 50 every ≈1.9 blocks,
//! about half as many generations as Sliding Window at nearly the same
//! coverage/success — experiment E5).

use super::{BlockMiner, Strategy, Trial};
use crate::threshold::ThresholdCalc;
use arq_assoc::pairs::{PairMiner, RuleSet};
use arq_assoc::ruleset_test;
use arq_trace::record::PairRecord;

/// The feedback-driven re-miner.
#[derive(Debug, Clone)]
pub struct AdaptiveSlidingWindow {
    min_support: u64,
    rules: RuleSet,
    miner: PairMiner,
    coverage_threshold: ThresholdCalc,
    success_threshold: ThresholdCalc,
    regenerations: u64,
    trials: u64,
}

impl AdaptiveSlidingWindow {
    /// The paper's configuration: thresholds are the mean of the last
    /// `history` measured values, starting from `initial` (0.7).
    pub fn new(min_support: u64, history: usize, initial: f64) -> Self {
        Self::with_thresholds(
            min_support,
            ThresholdCalc::mean_of_last(history, initial),
            ThresholdCalc::mean_of_last(history, initial),
        )
    }

    /// Fully custom threshold calculators (ablations).
    pub fn with_thresholds(
        min_support: u64,
        coverage_threshold: ThresholdCalc,
        success_threshold: ThresholdCalc,
    ) -> Self {
        AdaptiveSlidingWindow {
            min_support,
            rules: RuleSet::empty(),
            miner: PairMiner::new(),
            coverage_threshold,
            success_threshold,
            regenerations: 0,
            trials: 0,
        }
    }

    /// Rule-set generations triggered so far (excluding warm-up).
    pub fn regenerations(&self) -> u64 {
        self.regenerations
    }

    /// Trials per regeneration — the paper reports 1.7 (N = 10) and 1.9
    /// (N = 50). Returns `None` before the first regeneration.
    pub fn blocks_per_regen(&self) -> Option<f64> {
        (self.regenerations > 0).then(|| self.trials as f64 / self.regenerations as f64)
    }

    /// The decide/install/learn tail shared by the sequential and
    /// premined paths. `next` is produced lazily so the sequential path
    /// only mines when a threshold actually trips.
    ///
    /// ρ (Eq. 2) is undefined on a block with zero covered queries
    /// (n = 0): such a block neither trips the success threshold nor
    /// feeds the success history — an absent measurement is not a
    /// ρ = 0 observation, and letting it in would drag the threshold
    /// mean toward zero and stall later regenerations. (The block still
    /// regenerates through the *coverage* test, since α = 0 there.)
    fn decide_and_learn(
        &mut self,
        block: &[PairRecord],
        next: impl FnOnce(&mut Self) -> RuleSet,
    ) -> Trial {
        self.trials += 1;
        let ct = self.coverage_threshold.value();
        let st = self.success_threshold.value();
        let measures = ruleset_test(&self.rules, block);
        let rule_count = self.rules.rule_count();
        let regenerated =
            measures.coverage() < ct || measures.success_opt().is_some_and(|rho| rho < st);
        if regenerated {
            self.rules = next(self);
            self.regenerations += 1;
        }
        // Thresholds learn from this trial only after deciding on it.
        self.coverage_threshold.push(measures.coverage());
        if let Some(rho) = measures.success_opt() {
            self.success_threshold.push(rho);
        }
        Trial {
            measures,
            regenerated,
            rule_count,
            rules_after: self.rules.rule_count(),
        }
    }
}

impl Strategy for AdaptiveSlidingWindow {
    fn name(&self) -> String {
        format!("adaptive(s={})", self.min_support)
    }

    fn warm_up(&mut self, block: &[PairRecord]) {
        self.rules = self.miner.mine(block, self.min_support);
    }

    fn test_and_update(&mut self, block: &[PairRecord]) -> Trial {
        let support = self.min_support;
        self.decide_and_learn(block, |s| s.miner.mine(block, support))
    }

    fn block_miner(&self) -> Option<BlockMiner> {
        let support = self.min_support;
        let mut miner = PairMiner::new();
        Some(Box::new(move |block: &[PairRecord]| {
            miner.mine(block, support)
        }))
    }

    fn warm_up_with(&mut self, _block: &[PairRecord], premined: RuleSet) {
        self.rules = premined;
    }

    fn test_and_update_with(&mut self, block: &[PairRecord], premined: RuleSet) -> Trial {
        // Quiet trials (no threshold trip) drop the speculative set.
        self.decide_and_learn(block, |_| premined)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::routed_block;
    use super::*;

    #[test]
    fn no_regeneration_while_quality_holds() {
        let mut s = AdaptiveSlidingWindow::new(2, 10, 0.7);
        s.warm_up(&routed_block(0, 100, 5, 100));
        for i in 1..=5 {
            let t = s.test_and_update(&routed_block(i * 1_000, 100, 5, 100));
            assert_eq!(t.measures.coverage(), 1.0);
            assert!(!t.regenerated, "regenerated on a perfect trial {i}");
        }
        assert_eq!(s.regenerations(), 0);
        assert!(s.blocks_per_regen().is_none());
    }

    #[test]
    fn regenerates_when_success_collapses() {
        let mut s = AdaptiveSlidingWindow::new(2, 10, 0.7);
        s.warm_up(&routed_block(0, 100, 5, 100));
        // Route change: success 0 < 0.7 threshold -> regenerate from this
        // block.
        let t1 = s.test_and_update(&routed_block(1_000, 100, 5, 200));
        assert_eq!(t1.measures.success(), 0.0);
        assert!(t1.regenerated);
        // Regenerated from the changed block: next trial is perfect again.
        let t2 = s.test_and_update(&routed_block(2_000, 100, 5, 200));
        assert_eq!(t2.measures.success(), 1.0);
        assert_eq!(s.regenerations(), 1);
    }

    #[test]
    fn regenerates_when_coverage_collapses() {
        let mut s = AdaptiveSlidingWindow::new(2, 10, 0.7);
        s.warm_up(&routed_block(0, 100, 5, 100));
        let shifted: Vec<PairRecord> = routed_block(1_000, 100, 5, 100)
            .into_iter()
            .map(|mut p| {
                p.src = arq_trace::record::HostId(p.src.0 + 50);
                p
            })
            .collect();
        let t = s.test_and_update(&shifted);
        assert_eq!(t.measures.coverage(), 0.0);
        assert!(t.regenerated);
    }

    #[test]
    fn thresholds_adapt_downward_in_a_degraded_network() {
        // If the network permanently delivers mediocre quality, the
        // thresholds settle there instead of regenerating forever.
        let mut s = AdaptiveSlidingWindow::new(2, 5, 0.99);
        s.warm_up(&routed_block(0, 100, 10, 100));
        // Every block: half the sources are fresh (coverage 0.5 forever).
        let mut regen_count = 0;
        for i in 1..=20 {
            let mut block = routed_block(i * 1_000, 100, 10, 100);
            for p in block.iter_mut().take(50) {
                p.src = arq_trace::record::HostId(p.src.0 + 1_000 + i as u32);
            }
            if s.test_and_update(&block).regenerated {
                regen_count += 1;
            }
        }
        // The initial 0.99 threshold forces regenerations early on, but
        // once the window fills with ~0.5 measurements they become rare.
        assert!(regen_count < 20, "thresholds never adapted");
        assert_eq!(regen_count, s.regenerations());
    }

    #[test]
    fn undefined_success_does_not_feed_the_threshold() {
        // Regression for the ρ-undefined edge case: a block with zero
        // covered queries has no defined success value. It must still
        // regenerate (via the coverage test), but it must NOT push a
        // phantom ρ = 0 into the success history — under the old
        // behavior the success threshold became mean([0.0]) = 0, and a
        // following mediocre block could never trip it again.
        let mut s = AdaptiveSlidingWindow::new(2, 10, 0.7);
        s.warm_up(&routed_block(0, 100, 5, 100));

        // Trial 1: every source is unknown — coverage 0, ρ undefined.
        let moved: Vec<PairRecord> = routed_block(1_000, 100, 5, 200)
            .into_iter()
            .map(|mut p| {
                p.src = arq_trace::record::HostId(p.src.0 + 50);
                p
            })
            .collect();
        let t1 = s.test_and_update(&moved);
        assert!(t1.regenerated, "coverage 0 must regenerate");
        assert_eq!(t1.measures.covered, 0);
        assert_eq!(t1.measures.success_opt(), None);

        // Trial 2: same (now learned) sources, but half the replies
        // come via the wrong neighbor — coverage 1.0, success 0.5.
        let mut half_wrong: Vec<PairRecord> = routed_block(2_000, 100, 5, 200)
            .into_iter()
            .map(|mut p| {
                p.src = arq_trace::record::HostId(p.src.0 + 50);
                p
            })
            .collect();
        for p in half_wrong.iter_mut().take(50) {
            p.via = arq_trace::record::HostId(9_999);
        }
        let t2 = s.test_and_update(&half_wrong);
        assert_eq!(t2.measures.coverage(), 1.0);
        assert_eq!(t2.measures.success_opt(), Some(0.5));
        // The success threshold is still the pristine initial 0.7 (the
        // undefined trial contributed nothing), so 0.5 trips it. Had
        // the phantom 0.0 been pushed, the threshold would be 0.0 and
        // this trial would NOT regenerate.
        assert!(
            t2.regenerated,
            "success threshold was poisoned by an undefined ρ"
        );
    }

    #[test]
    fn blocks_per_regen_accounting() {
        let mut s = AdaptiveSlidingWindow::new(2, 10, 0.7);
        s.warm_up(&routed_block(0, 100, 5, 100));
        // Alternate route flips force a regeneration every other block.
        for i in 1..=10 {
            let base = if i % 2 == 0 { 100 } else { 200 };
            s.test_and_update(&routed_block(i * 1_000, 100, 5, base));
        }
        let bpr = s.blocks_per_regen().unwrap();
        assert!((1.0..=2.0).contains(&bpr), "blocks/regen {bpr}");
    }
}
