//! Lazy Sliding Window (§III-B.5): re-mine every `period` blocks.
//!
//! "Instead of updating the rule set after every block, this approach
//! updates after the rule set has been used for a fixed number of
//! blocks." The paper runs it with a period of 10 and measures the
//! characteristic sawtooth of Figure 3: fresh rule sets start strong and
//! decay until the next scheduled regeneration, averaging ≈0.59 for both
//! coverage and success (experiment E4).

use super::{BlockMiner, Strategy, Trial};
use arq_assoc::pairs::{PairMiner, RuleSet};
use arq_assoc::ruleset_test;
use arq_trace::record::PairRecord;

/// The fixed-period re-miner.
#[derive(Debug, Clone)]
pub struct LazySlidingWindow {
    min_support: u64,
    period: usize,
    rules: RuleSet,
    miner: PairMiner,
    used_for: usize,
    regenerations: u64,
}

impl LazySlidingWindow {
    /// Creates the strategy regenerating every `period` trials.
    pub fn new(min_support: u64, period: usize) -> Self {
        assert!(period >= 1, "period must be at least one block");
        LazySlidingWindow {
            min_support,
            period,
            rules: RuleSet::empty(),
            miner: PairMiner::new(),
            used_for: 0,
            regenerations: 0,
        }
    }

    /// Rule-set generations performed so far (excluding warm-up).
    pub fn regenerations(&self) -> u64 {
        self.regenerations
    }

    /// Measures against `block`, then installs `next` if the period is
    /// up (discarding it otherwise) — shared by the sequential and
    /// premined paths. `next` is lazily produced so the sequential path
    /// only mines on regeneration trials.
    fn apply(&mut self, block: &[PairRecord], next: impl FnOnce(&mut Self) -> RuleSet) -> Trial {
        let measures = ruleset_test(&self.rules, block);
        let rule_count = self.rules.rule_count();
        self.used_for += 1;
        let regenerated = self.used_for >= self.period;
        if regenerated {
            self.rules = next(self);
            self.used_for = 0;
            self.regenerations += 1;
        }
        Trial {
            measures,
            regenerated,
            rule_count,
            rules_after: self.rules.rule_count(),
        }
    }
}

impl Strategy for LazySlidingWindow {
    fn name(&self) -> String {
        format!("lazy(s={},p={})", self.min_support, self.period)
    }

    fn warm_up(&mut self, block: &[PairRecord]) {
        self.rules = self.miner.mine(block, self.min_support);
        self.used_for = 0;
    }

    fn test_and_update(&mut self, block: &[PairRecord]) -> Trial {
        let support = self.min_support;
        self.apply(block, |s| s.miner.mine(block, support))
    }

    fn block_miner(&self) -> Option<BlockMiner> {
        let support = self.min_support;
        let mut miner = PairMiner::new();
        Some(Box::new(move |block: &[PairRecord]| {
            miner.mine(block, support)
        }))
    }

    fn warm_up_with(&mut self, _block: &[PairRecord], premined: RuleSet) {
        self.rules = premined;
        self.used_for = 0;
    }

    fn test_and_update_with(&mut self, block: &[PairRecord], premined: RuleSet) -> Trial {
        // Off-schedule trials simply drop the speculative rule set.
        self.apply(block, |_| premined)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::routed_block;
    use super::*;

    #[test]
    fn period_one_behaves_like_sliding() {
        let mut lazy = LazySlidingWindow::new(2, 1);
        let mut sliding = crate::strategy::SlidingWindow::new(2);
        lazy.warm_up(&routed_block(0, 100, 5, 100));
        sliding.warm_up(&routed_block(0, 100, 5, 100));
        for i in 1..6 {
            let block = routed_block(i * 1_000, 100, 5, 100 + (i as u32 % 2) * 100);
            let a = lazy.test_and_update(&block);
            let b = sliding.test_and_update(&block);
            assert_eq!(a.measures, b.measures, "block {i}");
            assert!(a.regenerated);
        }
    }

    #[test]
    fn regenerates_exactly_on_schedule() {
        let mut s = LazySlidingWindow::new(2, 3);
        s.warm_up(&routed_block(0, 100, 5, 100));
        let flags: Vec<bool> = (1..=9)
            .map(|i| {
                s.test_and_update(&routed_block(i * 1_000, 100, 5, 100))
                    .regenerated
            })
            .collect();
        assert_eq!(
            flags,
            vec![false, false, true, false, false, true, false, false, true]
        );
        assert_eq!(s.regenerations(), 3);
    }

    #[test]
    fn stale_between_regenerations_fresh_after() {
        let mut s = LazySlidingWindow::new(2, 3);
        s.warm_up(&routed_block(0, 100, 5, 100));
        // Routes change immediately; the next three trials miss.
        for i in 1..=3 {
            let t = s.test_and_update(&routed_block(i * 1_000, 100, 5, 200));
            assert_eq!(t.measures.success(), 0.0, "trial {i}");
        }
        // Regeneration happened at trial 3; trial 4 succeeds.
        let t = s.test_and_update(&routed_block(4_000, 100, 5, 200));
        assert_eq!(t.measures.success(), 1.0);
    }

    #[test]
    #[should_panic(expected = "period")]
    fn rejects_zero_period() {
        LazySlidingWindow::new(2, 0);
    }
}
