//! Topic-dimension Sliding Window (§VI "query strings during rule
//! generation").
//!
//! Identical schedule to [`super::SlidingWindow`] but with antecedents of
//! the form `(source host, query topic)` via [`arq_assoc::keyed`]. Rules
//! become route-specific — when a covered query fires a rule, the rule
//! points at the topic's own reply path instead of the source's most
//! common path — at the cost of thinner per-antecedent support.
//! Experiment E12 measures the trade-off against the plain host-pair
//! window.

use super::{Strategy, Trial};
use arq_assoc::keyed::{keyed_ruleset_test, mine_keyed, src_topic_key, KeyedRuleSet};
use arq_trace::record::{HostId, PairRecord};

/// Sliding window over `(src, topic)` antecedents.
#[derive(Debug, Clone)]
pub struct TopicSlidingWindow {
    min_support: u64,
    rules: KeyedRuleSet<(HostId, u32)>,
}

impl TopicSlidingWindow {
    /// Creates the strategy with the given support-pruning threshold.
    pub fn new(min_support: u64) -> Self {
        TopicSlidingWindow {
            min_support,
            rules: KeyedRuleSet::empty(),
        }
    }

    /// Number of rules currently held.
    pub fn rule_count(&self) -> usize {
        self.rules.rule_count()
    }
}

impl Strategy for TopicSlidingWindow {
    fn name(&self) -> String {
        format!("topic-sliding(s={})", self.min_support)
    }

    fn warm_up(&mut self, block: &[PairRecord]) {
        self.rules = mine_keyed(block, src_topic_key, self.min_support);
    }

    fn test_and_update(&mut self, block: &[PairRecord]) -> Trial {
        let measures = keyed_ruleset_test(&self.rules, block, src_topic_key);
        let rule_count = self.rules.rule_count();
        self.rules = mine_keyed(block, src_topic_key, self.min_support);
        Trial {
            measures,
            regenerated: true,
            rule_count,
            rules_after: self.rules.rule_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arq_simkern::SimTime;
    use arq_trace::record::{Guid, QueryId};

    /// One source whose reply path depends on the topic.
    fn topical_block(start: u64, n: usize) -> Vec<PairRecord> {
        (0..n as u64)
            .map(|i| {
                let topic = (i % 3) as u32;
                PairRecord {
                    time: SimTime::from_ticks(start + i),
                    guid: Guid(u128::from(start + i)),
                    src: HostId(1),
                    via: HostId(100 + topic),
                    responder: HostId(0),
                    query: QueryId(topic << 12),
                }
            })
            .collect()
    }

    #[test]
    fn perfect_on_stationary_topical_traffic() {
        let mut s = TopicSlidingWindow::new(5);
        s.warm_up(&topical_block(0, 99));
        let t = s.test_and_update(&topical_block(1_000, 99));
        assert_eq!(t.measures.coverage(), 1.0);
        assert_eq!(t.measures.success(), 1.0);
        assert_eq!(t.rule_count, 3);
    }

    #[test]
    fn adapts_like_sliding() {
        let mut s = TopicSlidingWindow::new(5);
        s.warm_up(&topical_block(0, 99));
        // Shift every topic's route by 50.
        let shifted: Vec<PairRecord> = topical_block(1_000, 99)
            .into_iter()
            .map(|mut p| {
                p.via = HostId(p.via.0 + 50);
                p
            })
            .collect();
        let t1 = s.test_and_update(&shifted);
        assert_eq!(t1.measures.success(), 0.0);
        let shifted2: Vec<PairRecord> = topical_block(2_000, 99)
            .into_iter()
            .map(|mut p| {
                p.via = HostId(p.via.0 + 50);
                p
            })
            .collect();
        let t2 = s.test_and_update(&shifted2);
        assert_eq!(t2.measures.success(), 1.0);
    }

    #[test]
    fn unseen_topic_is_uncovered() {
        let mut s = TopicSlidingWindow::new(5);
        s.warm_up(&topical_block(0, 99));
        // Same source, brand-new topic id.
        let novel: Vec<PairRecord> = (0..30u64)
            .map(|i| PairRecord {
                time: SimTime::from_ticks(5_000 + i),
                guid: Guid(u128::from(5_000 + i)),
                src: HostId(1),
                via: HostId(100),
                responder: HostId(0),
                query: QueryId(9 << 12),
            })
            .collect();
        let t = s.test_and_update(&novel);
        assert_eq!(t.measures.coverage(), 0.0, "novel topic must be uncovered");
    }
}
