//! Trace-driven evaluation driver.
//!
//! Replays a pair stream in blocks through a [`Strategy`] — the
//! equivalent of the paper's PHP simulator over its MySQL trace — and
//! collects the per-trial coverage/success series plus run summaries.
//! This is the function behind every row in `EXPERIMENTS.md`'s E1–E6.

pub use crate::strategy::Trial;
use crate::strategy::{BlockMiner, Strategy};
use arq_assoc::pairs::RuleSet;
use arq_obs::{Event, Obs};
use arq_simkern::time::Duration;
use arq_simkern::TimeSeries;
use arq_trace::record::PairRecord;
use arq_trace::{Blocks, TimeBlocks};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// The results of replaying one strategy over one trace.
#[derive(Debug, Clone)]
pub struct EvalRun {
    /// Strategy label.
    pub strategy: String,
    /// Block size used.
    pub block_size: usize,
    /// Number of test trials (blocks after the warm-up block).
    pub trials: usize,
    /// Coverage per trial.
    pub coverage: TimeSeries,
    /// Success per trial.
    pub success: TimeSeries,
    /// Rule-set size per trial.
    pub rule_counts: Vec<usize>,
    /// Mean coverage over all trials.
    pub avg_coverage: f64,
    /// Mean success over all trials.
    pub avg_success: f64,
    /// Rule-set regenerations performed (excluding warm-up).
    pub regenerations: usize,
}

impl EvalRun {
    /// Trials per regeneration (the paper's "new rule sets were generated
    /// every 1.7 blocks"). `None` when the strategy never regenerated.
    pub fn blocks_per_regen(&self) -> Option<f64> {
        (self.regenerations > 0).then(|| self.trials as f64 / self.regenerations as f64)
    }
}

impl arq_simkern::ToJson for EvalRun {
    fn to_json(&self) -> arq_simkern::Json {
        use arq_simkern::Json;
        Json::obj([
            ("strategy", Json::from(&self.strategy)),
            ("block_size", Json::from(self.block_size)),
            ("trials", Json::from(self.trials)),
            ("coverage", Json::from(self.coverage.ys())),
            ("success", Json::from(self.success.ys())),
            (
                "rule_counts",
                Json::Arr(self.rule_counts.iter().map(|&c| Json::from(c)).collect()),
            ),
            ("avg_coverage", Json::from(self.avg_coverage)),
            ("avg_success", Json::from(self.avg_success)),
            ("regenerations", Json::from(self.regenerations)),
        ])
    }
}

/// Replays `pairs` through `strategy` in blocks of `block_size`.
///
/// Block 0 is the warm-up (it trains the initial rule set and produces no
/// trial); blocks 1.. are test trials.
///
/// # Panics
///
/// Panics if the trace holds fewer than two complete blocks — there would
/// be nothing to test.
pub fn evaluate<S: Strategy + ?Sized>(
    strategy: &mut S,
    pairs: &[PairRecord],
    block_size: usize,
) -> EvalRun {
    evaluate_with_obs(strategy, pairs, block_size, &mut Obs::disabled())
}

/// [`evaluate`] with an observability recorder attached. Each trial
/// emits a block boundary, the RULESET-TEST tallies (which also feed the
/// per-block α/ρ/traffic series), and — when the strategy rebuilt its
/// rule set — a re-mine event. A disabled recorder makes this identical
/// to [`evaluate`], closure construction included.
pub fn evaluate_with_obs<S: Strategy + ?Sized>(
    strategy: &mut S,
    pairs: &[PairRecord],
    block_size: usize,
    obs: &mut Obs,
) -> EvalRun {
    let blocks = Blocks::new(pairs, block_size);
    assert!(
        blocks.len() >= 2,
        "need at least 2 complete blocks, trace has {}",
        blocks.len()
    );
    strategy.warm_up(blocks.get(0));
    let mut coverage = TimeSeries::new("coverage");
    let mut success = TimeSeries::new("success");
    let mut rule_counts = Vec::with_capacity(blocks.len() - 1);
    let mut regenerations = 0usize;
    for i in 1..blocks.len() {
        let block = blocks.get(i);
        obs.record(|| Event::BlockStart {
            block: i,
            pairs: block.len(),
        });
        let trial = strategy.test_and_update(block);
        obs.record(|| Event::RuleTally {
            block: i,
            total: trial.measures.total,
            covered: trial.measures.covered,
            successes: trial.measures.successes,
        });
        coverage.push(i as f64, trial.measures.coverage());
        success.push(i as f64, trial.measures.success());
        rule_counts.push(trial.rule_count);
        if trial.regenerated {
            obs.record(|| Event::ReMine {
                block: i,
                rules_before: trial.rule_count,
                rules_after: trial.rules_after,
            });
            regenerations += 1;
        }
    }
    EvalRun {
        strategy: strategy.name(),
        block_size,
        trials: blocks.len() - 1,
        avg_coverage: coverage.mean(),
        avg_success: success.mean(),
        coverage,
        success,
        rule_counts,
        regenerations,
    }
}

/// One premine slot: a worker parks the rule set it mined for block
/// `i`; the evaluating thread takes it in block order.
struct PremineSlot {
    rules: Mutex<Option<RuleSet>>,
    ready: Condvar,
}

/// How far ahead of the evaluator workers may mine. Small enough to
/// bound live rule-set memory, large enough that workers never starve
/// while the evaluator finishes a block.
fn premine_lookahead(threads: usize) -> usize {
    (threads * 2).max(4)
}

/// [`evaluate_with_obs`] with intra-run block parallelism.
///
/// Strategies whose regeneration input is the block just tested
/// (Sliding, Lazy, Adaptive — those with a
/// [`Strategy::block_miner`]) let mining run ahead: worker threads
/// speculatively mine block *b* while the calling thread is still
/// evaluating block *b − 1*, and each trial consumes the premined rule
/// set instead of mining inline. The speculation is exact — the same
/// miner over the same block — so every trial, series value, obs event,
/// and therefore every artifact byte is identical to the sequential
/// path at any `threads` value; only wall-clock time changes.
///
/// Falls back to the sequential evaluator when `threads <= 1` or the
/// strategy cannot premine (streaming maintainers, static rules).
///
/// # Panics
///
/// Panics if the trace holds fewer than two complete blocks.
pub fn evaluate_pipelined<S: Strategy + ?Sized>(
    strategy: &mut S,
    pairs: &[PairRecord],
    block_size: usize,
    threads: usize,
    obs: &mut Obs,
) -> EvalRun {
    if threads <= 1 || strategy.block_miner().is_none() {
        return evaluate_with_obs(strategy, pairs, block_size, obs);
    }
    let blocks = Blocks::new(pairs, block_size);
    assert!(
        blocks.len() >= 2,
        "need at least 2 complete blocks, trace has {}",
        blocks.len()
    );
    let n = blocks.len();
    // The calling thread evaluates; the rest mine. Each worker gets its
    // own miner closure (and thus its own scratch tables).
    let workers = (threads - 1).clamp(1, n);
    let mut miners: Vec<BlockMiner> = (0..workers)
        .map(|_| {
            strategy
                .block_miner()
                .expect("block_miner() was Some above and takes &self")
        })
        .collect();
    let slots: Vec<PremineSlot> = (0..n)
        .map(|_| PremineSlot {
            rules: Mutex::new(None),
            ready: Condvar::new(),
        })
        .collect();
    let next = AtomicUsize::new(0);
    // Blocks the evaluator has consumed so far; workers stay within
    // `lookahead` of it.
    let consumed = Mutex::new(0usize);
    let resume = Condvar::new();
    let lookahead = premine_lookahead(threads);

    let mut run = None;
    std::thread::scope(|scope| {
        for miner in &mut miners {
            let slots = &slots;
            let next = &next;
            let consumed = &consumed;
            let resume = &resume;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // Backpressure: wait until block i is within the
                // lookahead window of the evaluator's progress.
                {
                    let mut done = consumed.lock().expect("premine progress poisoned");
                    while i >= *done + lookahead {
                        done = resume.wait(done).expect("premine progress poisoned");
                    }
                }
                let rules = miner(blocks.get(i));
                let slot = &slots[i];
                *slot.rules.lock().expect("premine slot poisoned") = Some(rules);
                slot.ready.notify_all();
            });
        }

        let take = |i: usize| -> RuleSet {
            let slot = &slots[i];
            let mut guard = slot.rules.lock().expect("premine slot poisoned");
            loop {
                if let Some(rules) = guard.take() {
                    // Free workers parked on the lookahead bound.
                    *consumed.lock().expect("premine progress poisoned") = i + 1;
                    resume.notify_all();
                    return rules;
                }
                guard = slot.ready.wait(guard).expect("premine slot poisoned");
            }
        };

        strategy.warm_up_with(blocks.get(0), take(0));
        let mut coverage = TimeSeries::new("coverage");
        let mut success = TimeSeries::new("success");
        let mut rule_counts = Vec::with_capacity(n - 1);
        let mut regenerations = 0usize;
        for i in 1..n {
            let premined = take(i);
            let block = blocks.get(i);
            obs.record(|| Event::BlockStart {
                block: i,
                pairs: block.len(),
            });
            let trial = strategy.test_and_update_with(block, premined);
            obs.record(|| Event::RuleTally {
                block: i,
                total: trial.measures.total,
                covered: trial.measures.covered,
                successes: trial.measures.successes,
            });
            coverage.push(i as f64, trial.measures.coverage());
            success.push(i as f64, trial.measures.success());
            rule_counts.push(trial.rule_count);
            if trial.regenerated {
                obs.record(|| Event::ReMine {
                    block: i,
                    rules_before: trial.rule_count,
                    rules_after: trial.rules_after,
                });
                regenerations += 1;
            }
        }
        run = Some(EvalRun {
            strategy: strategy.name(),
            block_size,
            trials: n - 1,
            avg_coverage: coverage.mean(),
            avg_success: success.mean(),
            coverage,
            success,
            rule_counts,
            regenerations,
        });
    });
    run.expect("pipelined evaluation completed without producing a run")
}

/// Replays `pairs` through `strategy` in fixed *time windows* instead of
/// fixed pair counts — the paper's §III-B.3 framing ("messages seen
/// within a fixed amount of time"). Window 0 is the warm-up; empty
/// windows still count as trials (an idle network neither covers nor
/// answers anything, and the zero measurements feed adaptive
/// thresholds), except that an empty warm-up is skipped until traffic
/// appears.
///
/// `block_size` in the returned run is the *mean* pairs per window.
///
/// # Panics
///
/// Panics if the trace spans fewer than two windows.
pub fn evaluate_timed<S: Strategy + ?Sized>(
    strategy: &mut S,
    pairs: &[PairRecord],
    window: Duration,
) -> EvalRun {
    let blocks = TimeBlocks::new(pairs, window);
    assert!(
        blocks.len() >= 2,
        "need at least 2 time windows, trace spans {}",
        blocks.len()
    );
    strategy.warm_up(blocks.get(0));
    let mut coverage = TimeSeries::new("coverage");
    let mut success = TimeSeries::new("success");
    let mut rule_counts = Vec::with_capacity(blocks.len() - 1);
    let mut regenerations = 0usize;
    for i in 1..blocks.len() {
        let trial = strategy.test_and_update(blocks.get(i));
        coverage.push(i as f64, trial.measures.coverage());
        success.push(i as f64, trial.measures.success());
        rule_counts.push(trial.rule_count);
        if trial.regenerated {
            regenerations += 1;
        }
    }
    EvalRun {
        strategy: strategy.name(),
        block_size: pairs.len() / blocks.len().max(1),
        trials: blocks.len() - 1,
        avg_coverage: coverage.mean(),
        avg_success: success.mean(),
        coverage,
        success,
        rule_counts,
        regenerations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{SlidingWindow, StaticRuleset};
    use arq_simkern::SimTime;
    use arq_trace::record::{Guid, HostId, QueryId};

    /// A trace whose routes flip halfway through.
    fn flipping_trace(blocks: usize, block_size: usize) -> Vec<PairRecord> {
        (0..blocks * block_size)
            .map(|i| {
                let src = (i % 5) as u32;
                let phase = if i < blocks * block_size / 2 {
                    100
                } else {
                    200
                };
                PairRecord {
                    time: SimTime::from_ticks(i as u64),
                    guid: Guid(i as u128),
                    src: HostId(src),
                    via: HostId(phase + src),
                    responder: HostId(0),
                    query: QueryId(0),
                }
            })
            .collect()
    }

    #[test]
    fn evaluator_shapes_and_counts() {
        let trace = flipping_trace(10, 50);
        let mut s = SlidingWindow::new(2);
        let run = evaluate(&mut s, &trace, 50);
        assert_eq!(run.trials, 9);
        assert_eq!(run.coverage.len(), 9);
        assert_eq!(run.success.len(), 9);
        assert_eq!(run.rule_counts.len(), 9);
        assert_eq!(run.regenerations, 9);
        assert_eq!(run.blocks_per_regen(), Some(1.0));
        assert_eq!(run.block_size, 50);
        assert!(run.strategy.starts_with("sliding"));
    }

    #[test]
    fn sliding_beats_static_on_a_flipping_trace() {
        let trace = flipping_trace(10, 50);
        let sliding = evaluate(&mut SlidingWindow::new(2), &trace, 50);
        let static_ = evaluate(&mut StaticRuleset::new(2), &trace, 50);
        // Static keeps full coverage (sources never change) but loses all
        // success after the flip; sliding loses only the flip trial.
        assert!(sliding.avg_success > static_.avg_success + 0.3);
        assert!((static_.avg_success - 4.0 / 9.0).abs() < 1e-9);
        assert!((sliding.avg_success - 8.0 / 9.0).abs() < 1e-9);
        assert_eq!(static_.regenerations, 0);
        assert!(static_.blocks_per_regen().is_none());
    }

    #[test]
    fn pipelined_evaluation_is_identical_to_sequential() {
        use crate::strategy::{AdaptiveSlidingWindow, LazySlidingWindow};
        let trace = flipping_trace(12, 50);
        let check = |mk: &dyn Fn() -> Box<dyn Strategy + Send>| {
            let mut a = mk();
            let mut b = mk();
            let seq = evaluate(a.as_mut(), &trace, 50);
            let piped = evaluate_pipelined(b.as_mut(), &trace, 50, 4, &mut Obs::disabled());
            assert_eq!(seq.strategy, piped.strategy);
            assert_eq!(seq.trials, piped.trials);
            assert_eq!(seq.coverage.ys(), piped.coverage.ys());
            assert_eq!(seq.success.ys(), piped.success.ys());
            assert_eq!(seq.rule_counts, piped.rule_counts);
            assert_eq!(seq.regenerations, piped.regenerations);
            assert_eq!(seq.avg_coverage, piped.avg_coverage);
            assert_eq!(seq.avg_success, piped.avg_success);
        };
        check(&|| Box::new(SlidingWindow::new(2)));
        check(&|| Box::new(LazySlidingWindow::new(2, 3)));
        check(&|| Box::new(AdaptiveSlidingWindow::new(2, 5, 0.7)));
        // No premine hook: StaticRuleset must fall back, not panic.
        check(&|| Box::new(StaticRuleset::new(2)));
    }

    #[test]
    fn partial_trailing_block_is_ignored() {
        let mut trace = flipping_trace(4, 50);
        trace.truncate(4 * 50 - 7);
        let run = evaluate(&mut SlidingWindow::new(2), &trace, 50);
        assert_eq!(run.trials, 2);
    }

    #[test]
    #[should_panic(expected = "at least 2 complete blocks")]
    fn rejects_short_traces() {
        let trace = flipping_trace(1, 50);
        evaluate(&mut SlidingWindow::new(2), &trace, 60);
    }

    #[test]
    fn timed_evaluation_matches_count_evaluation_on_uniform_arrivals() {
        // With one pair per tick, a 50-tick window is exactly a 50-pair
        // block, so both evaluators must agree trial for trial.
        let trace = flipping_trace(10, 50);
        let by_count = evaluate(&mut SlidingWindow::new(2), &trace, 50);
        let by_time = evaluate_timed(
            &mut SlidingWindow::new(2),
            &trace,
            arq_simkern::time::Duration::from_ticks(50),
        );
        assert_eq!(by_count.trials, by_time.trials);
        assert_eq!(by_count.coverage.ys(), by_time.coverage.ys());
        assert_eq!(by_count.success.ys(), by_time.success.ys());
    }

    #[test]
    fn timed_evaluation_handles_bursty_arrivals() {
        // All pairs in two bursts separated by a long gap: the windows in
        // between are empty trials with zero measures.
        let mut trace = flipping_trace(2, 50); // times 0..99
        for p in &mut trace[50..] {
            p.time = arq_simkern::SimTime::from_ticks(p.time.ticks() + 400);
        }
        // Static rules survive the quiet gap; sliding rules are re-mined
        // from the empty windows and die.
        let run = evaluate_timed(
            &mut StaticRuleset::new(2),
            &trace,
            arq_simkern::time::Duration::from_ticks(100),
        );
        assert!(
            run.trials >= 4,
            "gap windows missing: {} trials",
            run.trials
        );
        // Middle windows are empty -> coverage 0 there.
        assert!(run.coverage.ys().contains(&0.0));
        // The burst window still evaluates normally (sources unchanged).
        assert!(run.coverage.ys().iter().any(|&c| c > 0.9));

        let sliding = evaluate_timed(
            &mut SlidingWindow::new(2),
            &trace,
            arq_simkern::time::Duration::from_ticks(100),
        );
        let last = *sliding.coverage.ys().last().unwrap();
        assert_eq!(
            last, 0.0,
            "sliding rules mined from an empty window must cover nothing"
        );
    }

    #[test]
    #[should_panic(expected = "at least 2 time windows")]
    fn timed_rejects_single_window() {
        let trace = flipping_trace(2, 50);
        evaluate_timed(
            &mut SlidingWindow::new(2),
            &trace,
            arq_simkern::time::Duration::from_ticks(1_000_000),
        );
    }
}
