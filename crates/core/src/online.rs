//! The online routing handle: epoch-versioned, atomically swapped rule
//! sets for long-running services.
//!
//! A service answering route lookups over an unbounded stream cannot
//! consult the mining state directly — mining takes milliseconds per
//! refresh and the lookup path has a latency budget of microseconds.
//! [`RuleHandle`] decouples the two: the miner *publishes* a finished
//! [`RuleSet`] behind an `Arc` pointer swap, and lookups *load* the
//! current pointer and query it without ever taking the miner's locks.
//! Each publish bumps a monotonic epoch, so readers (and checkpoints)
//! can name exactly which generation of rules answered a lookup.
//!
//! The write lock is held only for the pointer swap — never while
//! mining, serializing, or allocating — so a reader observes at most a
//! pointer-sized critical section. That is the "bounded-latency lookups
//! that never block on mining" contract `arq serve` is stated over.

use arq_assoc::RuleSet;
use arq_trace::record::HostId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// How a [`RuleHandle`] answered one route lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteDecision {
    /// The antecedent is covered: forward to these consequents (ranked,
    /// at most `k`).
    Rules(Vec<HostId>),
    /// No rule applies — fall back to flooding (§III-B: rule-or-flood).
    Flood,
}

/// Shared, epoch-versioned pointer to the current rule set.
///
/// Cloning the handle is cheap and every clone observes the same
/// generations in the same order. Publishing never blocks on readers
/// longer than one pointer read; readers never block on the miner.
#[derive(Debug, Clone, Default)]
pub struct RuleHandle {
    current: Arc<RwLock<Arc<RuleSet>>>,
    epoch: Arc<AtomicU64>,
}

impl RuleHandle {
    /// A handle holding an empty rule set at epoch 0 (everything floods
    /// until the first publish).
    pub fn new() -> Self {
        RuleHandle::default()
    }

    /// Atomically replaces the rule set and returns the new epoch.
    pub fn publish(&self, rules: RuleSet) -> u64 {
        let rules = Arc::new(rules);
        let mut slot = self.current.write().expect("rule slot poisoned");
        *slot = rules;
        // Bump inside the write lock so epoch order matches publication
        // order for any observer.
        self.epoch.fetch_add(1, Ordering::Release) + 1
    }

    /// The number of publishes so far (0 = still the empty initial set).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The current rule set. The returned `Arc` stays valid (and
    /// immutable) however many publishes happen after the load.
    pub fn load(&self) -> Arc<RuleSet> {
        Arc::clone(&self.current.read().expect("rule slot poisoned"))
    }

    /// Answers one route lookup from the current generation: the top-`k`
    /// consequents for `src`, or [`RouteDecision::Flood`] when no rule
    /// covers it.
    pub fn route(&self, src: HostId, k: usize) -> RouteDecision {
        let rules = self.load();
        if !rules.has_antecedent(src) {
            return RouteDecision::Flood;
        }
        let vias: Vec<HostId> = rules.top_k(src, k.max(1)).collect();
        if vias.is_empty() {
            RouteDecision::Flood
        } else {
            RouteDecision::Rules(vias)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arq_assoc::mine_pairs;
    use arq_simkern::SimTime;
    use arq_trace::record::{Guid, PairRecord, QueryId};

    fn block(src: u32, via: u32, n: usize) -> Vec<PairRecord> {
        (0..n)
            .map(|i| PairRecord {
                time: SimTime::from_ticks(i as u64),
                guid: Guid(i as u128),
                src: HostId(src),
                via: HostId(via),
                responder: HostId(999),
                query: QueryId(0),
            })
            .collect()
    }

    #[test]
    fn starts_empty_and_floods() {
        let h = RuleHandle::new();
        assert_eq!(h.epoch(), 0);
        assert!(h.load().is_empty());
        assert_eq!(h.route(HostId(1), 2), RouteDecision::Flood);
    }

    #[test]
    fn publish_bumps_epoch_and_routes() {
        let h = RuleHandle::new();
        assert_eq!(h.publish(mine_pairs(&block(1, 42, 10), 5)), 1);
        assert_eq!(h.epoch(), 1);
        assert_eq!(
            h.route(HostId(1), 2),
            RouteDecision::Rules(vec![HostId(42)])
        );
        assert_eq!(h.route(HostId(9), 2), RouteDecision::Flood);
    }

    #[test]
    fn loaded_generation_survives_later_publishes() {
        let h = RuleHandle::new();
        h.publish(mine_pairs(&block(1, 42, 10), 5));
        let gen1 = h.load();
        h.publish(mine_pairs(&block(1, 77, 10), 5));
        // The old Arc still answers from its own generation.
        assert!(gen1.matches(HostId(1), HostId(42)));
        assert!(h.load().matches(HostId(1), HostId(77)));
        assert_eq!(h.epoch(), 2);
    }

    #[test]
    fn clones_share_one_slot() {
        let h = RuleHandle::new();
        let h2 = h.clone();
        h.publish(mine_pairs(&block(3, 8, 10), 5));
        assert_eq!(h2.epoch(), 1);
        assert_eq!(
            h2.route(HostId(3), 1),
            RouteDecision::Rules(vec![HostId(8)])
        );
    }

    #[test]
    fn concurrent_lookups_never_see_torn_state() {
        let h = RuleHandle::new();
        let reader = h.clone();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let t = std::thread::spawn(move || {
            let mut decisions = 0u64;
            while !stop2.load(Ordering::Relaxed) {
                match reader.route(HostId(1), 2) {
                    // Either generation is fine; a torn set would panic
                    // or return an impossible consequent.
                    RouteDecision::Rules(v) => {
                        assert!(v == vec![HostId(42)] || v == vec![HostId(77)], "{v:?}");
                    }
                    RouteDecision::Flood => {}
                }
                decisions += 1;
            }
            decisions
        });
        for i in 0..200 {
            let via = if i % 2 == 0 { 42 } else { 77 };
            h.publish(mine_pairs(&block(1, via, 10), 5));
        }
        stop.store(true, Ordering::Relaxed);
        assert!(t.join().unwrap() > 0);
    }
}
