//! Shortcuts-then-rules hybrid forwarding (§VI).
//!
//! "For interest-based shortcuts, association rules could be used to
//! route queries that have not been successfully replied to when using
//! the shortcuts. This would serve as one last chance to avoid flooding."
//!
//! The forwarding-policy form of that pipeline: on each relay decision,
//! try the node's per-topic interest shortcuts first; if the topic is
//! cold, consult the learned association rules; only when both are empty
//! does the node flood. Both learners feed from the same reply stream.

use crate::policy::{AssocPolicy, AssocPolicyConfig};
use arq_baselines::InterestShortcuts;
use arq_gnutella::policy::{ForwardCtx, ForwardingPolicy, ShortcutProposal};
use arq_overlay::{Graph, NodeId};
use arq_simkern::Rng64;

/// Interest shortcuts backed by association rules, flooding as a last
/// resort.
#[derive(Debug)]
pub struct HybridPolicy {
    shortcuts: InterestShortcuts,
    rules: AssocPolicy,
    shortcut_decisions: u64,
    rule_decisions: u64,
    flood_decisions: u64,
}

impl HybridPolicy {
    /// Creates the hybrid: shortcut table of `per_topic_cap` entries with
    /// fan-out `k`, and the given association-rule configuration.
    pub fn new(per_topic_cap: usize, k: usize, rules: AssocPolicyConfig) -> Self {
        HybridPolicy {
            shortcuts: InterestShortcuts::new(per_topic_cap, k),
            rules: AssocPolicy::new(rules),
            shortcut_decisions: 0,
            rule_decisions: 0,
            flood_decisions: 0,
        }
    }

    /// Decisions resolved by a shortcut.
    pub fn shortcut_decisions(&self) -> u64 {
        self.shortcut_decisions
    }

    /// Decisions resolved by an association rule after the shortcuts
    /// missed.
    pub fn rule_decisions(&self) -> u64 {
        self.rule_decisions
    }

    /// Decisions that flooded.
    pub fn flood_decisions(&self) -> u64 {
        self.flood_decisions
    }

    /// Fraction of decisions that avoided flooding.
    pub fn targeted_fraction(&self) -> f64 {
        let total = self.shortcut_decisions + self.rule_decisions + self.flood_decisions;
        if total == 0 {
            0.0
        } else {
            (self.shortcut_decisions + self.rule_decisions) as f64 / total as f64
        }
    }
}

impl ForwardingPolicy for HybridPolicy {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn select(&mut self, ctx: &ForwardCtx<'_>, rng: &mut Rng64) -> Vec<NodeId> {
        // Stage 1: interest shortcuts. `InterestShortcuts::select` floods
        // on a miss, so "hit" is detectable by the selection being a
        // proper subset of the candidates.
        let via_shortcuts = self.shortcuts.select(ctx, rng);
        if via_shortcuts.len() < ctx.candidates.len() {
            self.shortcut_decisions += 1;
            return via_shortcuts;
        }
        // Stage 2: association rules, the "last chance to avoid flooding".
        let via_rules = self.rules.select(ctx, rng);
        if via_rules.len() < ctx.candidates.len() {
            self.rule_decisions += 1;
            return via_rules;
        }
        self.flood_decisions += 1;
        ctx.candidates.to_vec()
    }

    fn on_reply(
        &mut self,
        node: NodeId,
        upstream: Option<NodeId>,
        via: NodeId,
        key: arq_content::QueryKey,
    ) {
        self.shortcuts.on_reply(node, upstream, via, key);
        self.rules.on_reply(node, upstream, via, key);
    }

    fn stats(&self) -> Vec<(String, f64)> {
        vec![
            ("shortcut_decisions".into(), self.shortcut_decisions as f64),
            ("rule_decisions".into(), self.rule_decisions as f64),
            ("flood_decisions".into(), self.flood_decisions as f64),
            ("targeted_fraction".into(), self.targeted_fraction()),
        ]
    }

    // Topology adaptation rides on the rule side: the shortcut table is
    // per-topic and node-local, but the learned associations are exactly
    // what the adaptation loop turns into overlay edges.
    fn propose_shortcuts(&self, graph: &Graph) -> Vec<ShortcutProposal> {
        self.rules.propose_shortcuts(graph)
    }

    fn shortcut_active(&self, asker: NodeId, target: NodeId, via: NodeId) -> bool {
        self.rules.shortcut_active(asker, target, via)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arq_content::{FileId, QueryKey, Topic};
    use arq_gnutella::QueryMsg;
    use arq_trace::record::Guid;

    fn key(topic: u16) -> QueryKey {
        QueryKey {
            file: FileId(0),
            topic: Topic(topic),
        }
    }

    fn msg(topic: u16) -> QueryMsg {
        QueryMsg {
            guid: Guid(1),
            key: key(topic),
            ttl: 4,
            hops: 1,
        }
    }

    fn rules_cfg() -> AssocPolicyConfig {
        AssocPolicyConfig {
            k: 1,
            min_support: 2.0,
            half_life: 1e9,
            top_by_support: true,
            ..Default::default()
        }
    }

    #[test]
    fn cold_start_floods() {
        let mut p = HybridPolicy::new(4, 2, rules_cfg());
        let mut rng = Rng64::seed_from(1);
        let candidates: Vec<NodeId> = (10..14).map(NodeId).collect();
        let m = msg(0);
        let ctx = ForwardCtx {
            node: NodeId(0),
            from: Some(NodeId(9)),
            query: &m,
            candidates: &candidates,
        };
        assert_eq!(p.select(&ctx, &mut rng).len(), 4);
        assert_eq!(p.flood_decisions(), 1);
        assert_eq!(p.targeted_fraction(), 0.0);
    }

    #[test]
    fn shortcut_hit_takes_priority() {
        let mut p = HybridPolicy::new(4, 1, rules_cfg());
        let mut rng = Rng64::seed_from(2);
        // Teach both learners different routes for topic 3.
        for _ in 0..3 {
            p.on_reply(NodeId(0), Some(NodeId(9)), NodeId(11), key(3));
        }
        let candidates: Vec<NodeId> = (10..14).map(NodeId).collect();
        let m = msg(3);
        let ctx = ForwardCtx {
            node: NodeId(0),
            from: Some(NodeId(9)),
            query: &m,
            candidates: &candidates,
        };
        let sel = p.select(&ctx, &mut rng);
        assert_eq!(sel, vec![NodeId(11)]);
        assert_eq!(p.shortcut_decisions(), 1);
        assert_eq!(p.rule_decisions(), 0);
    }

    #[test]
    fn rules_rescue_cold_topics() {
        let mut p = HybridPolicy::new(4, 1, rules_cfg());
        let mut rng = Rng64::seed_from(3);
        // Replies observed for topic 3 teach the rules an upstream->via
        // association usable for ANY topic from that upstream; the
        // shortcuts, being topic-scoped, miss on topic 7.
        for _ in 0..3 {
            p.on_reply(NodeId(0), Some(NodeId(9)), NodeId(12), key(3));
        }
        let candidates: Vec<NodeId> = (10..14).map(NodeId).collect();
        let m = msg(7); // cold topic for the shortcuts
        let ctx = ForwardCtx {
            node: NodeId(0),
            from: Some(NodeId(9)),
            query: &m,
            candidates: &candidates,
        };
        let sel = p.select(&ctx, &mut rng);
        assert_eq!(
            sel,
            vec![NodeId(12)],
            "rules should catch the shortcut miss"
        );
        assert_eq!(p.rule_decisions(), 1);
        assert!(p.targeted_fraction() > 0.99);
    }

    #[test]
    fn adaptation_hooks_ride_on_the_rule_side() {
        let mut p = HybridPolicy::new(4, 1, rules_cfg());
        // Relay 0 learns {9} -> {12} on the rule side.
        for _ in 0..3 {
            p.on_reply(NodeId(0), Some(NodeId(9)), NodeId(12), key(3));
        }
        assert!(p.shortcut_active(NodeId(9), NodeId(12), NodeId(0)));
        assert!(!p.shortcut_active(NodeId(9), NodeId(11), NodeId(0)));
        let mut g = Graph::new(13);
        g.add_edge(NodeId(9), NodeId(0));
        g.add_edge(NodeId(0), NodeId(12));
        let props = p.propose_shortcuts(&g);
        assert_eq!(props.len(), 1);
        assert_eq!(props[0].asker, NodeId(9));
        assert_eq!(props[0].target, NodeId(12));
        assert_eq!(props[0].via, NodeId(0));
    }

    #[test]
    fn both_learners_see_replies() {
        let mut p = HybridPolicy::new(4, 1, rules_cfg());
        for _ in 0..3 {
            p.on_reply(NodeId(0), Some(NodeId(9)), NodeId(10), key(1));
        }
        // Shortcut present for topic 1…
        assert_eq!(p.shortcuts.shortcut_uses(), 0);
        // …and the rule side learned the same association.
        assert_eq!(
            p.rules
                .consequents(NodeId(0), arq_trace::record::HostId(9), 1),
            vec![arq_trace::record::HostId(10)]
        );
    }
}
