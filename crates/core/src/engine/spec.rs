//! Declarative run descriptions and their unified result artifact.
//!
//! A [`RunSpec`] names everything one run needs — which world
//! (trace-driven evaluation or live simulation), which strategy/policy
//! (as a registry spec string), and the inputs — without constructing
//! anything. Construction happens at execution time inside a worker
//! thread, which is what lets the executor fan specs out without `Send`
//! bounds on strategies.
//!
//! Every run produces a [`RunArtifact`]: the measured series/metrics
//! plus provenance (seed, canonical spec description, FNV config
//! digest). Artifacts serialize to JSON through `arq_simkern::json`, and
//! that serialization is byte-deterministic — the executor's determinism
//! guarantee is stated over these bytes.

use crate::eval::EvalRun;
use arq_gnutella::metrics::RunMetrics;
use arq_gnutella::sim::SimConfig;
use arq_overlay::Graph;
use arq_simkern::rng::fnv1a;
use arq_simkern::{Json, ToJson};
use arq_trace::record::PairRecord;
use std::sync::Arc;

/// Where a trace-driven run gets its query–reply pair stream.
#[derive(Debug, Clone)]
pub enum TraceSource {
    /// Synthesize the paper's default workload (gradual interest drift).
    PaperDefault {
        /// Total pairs to generate.
        pairs: usize,
        /// Synthesis seed.
        seed: u64,
    },
    /// Synthesize the paper's static-decay workload (E1's world: routes
    /// drift away from a frozen warm-up).
    PaperStatic {
        /// Total pairs to generate.
        pairs: usize,
        /// Synthesis seed.
        seed: u64,
    },
    /// A pre-materialized trace shared (via `Arc`) across many specs —
    /// how a sweep evaluates one trace under many configurations without
    /// re-synthesizing it per run.
    Shared {
        /// Provenance label (include shape and seed — it feeds the
        /// config digest).
        label: String,
        /// Seed the trace was built from, for artifact provenance.
        seed: u64,
        /// The pairs themselves.
        pairs: Arc<Vec<PairRecord>>,
    },
}

impl TraceSource {
    /// The seed recorded in artifact provenance.
    pub fn seed(&self) -> u64 {
        match self {
            TraceSource::PaperDefault { seed, .. }
            | TraceSource::PaperStatic { seed, .. }
            | TraceSource::Shared { seed, .. } => *seed,
        }
    }

    /// Canonical description for the config digest.
    pub fn describe(&self) -> String {
        match self {
            TraceSource::PaperDefault { pairs, seed } => {
                format!("paper-default(pairs={pairs},seed={seed})")
            }
            TraceSource::PaperStatic { pairs, seed } => {
                format!("paper-static(pairs={pairs},seed={seed})")
            }
            TraceSource::Shared { label, seed, pairs } => {
                format!("shared({label},pairs={},seed={seed})", pairs.len())
            }
        }
    }

    /// The pair stream, synthesizing if necessary.
    pub fn materialize(&self) -> Arc<Vec<PairRecord>> {
        use arq_trace::{SynthConfig, SynthTrace};
        match self {
            TraceSource::PaperDefault { pairs, seed } => {
                Arc::new(SynthTrace::new(SynthConfig::paper_default(*pairs, *seed)).pairs())
            }
            TraceSource::PaperStatic { pairs, seed } => {
                Arc::new(SynthTrace::new(SynthConfig::paper_static(*pairs, *seed)).pairs())
            }
            TraceSource::Shared { pairs, .. } => Arc::clone(pairs),
        }
    }
}

/// One self-contained unit of work for the executor.
// Spec lists are short-lived and a few entries long; the size gap
// between the variants (SimConfig vs a TraceSource) is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum RunSpec {
    /// Replay a pair trace through a rule-maintenance strategy
    /// ([`crate::eval::evaluate`]).
    TraceEval {
        /// The pair stream.
        trace: TraceSource,
        /// Registry spec for the strategy, e.g. `"sliding(s=10)"`.
        strategy: String,
        /// Pairs per evaluation block.
        block_size: usize,
        /// Observability spec, e.g. `"obs(events=1,series=1)"`. `None`
        /// runs uninstrumented and keeps the config digest — and hence
        /// every persisted artifact — byte-identical to before the obs
        /// layer existed.
        obs: Option<String>,
    },
    /// Run the live network simulator under a forwarding policy.
    LiveSim {
        /// Full simulator configuration (carries its own seed).
        cfg: SimConfig,
        /// Registry spec for the policy, e.g. `"assoc(k=2)"`.
        policy: String,
        /// Run on this pre-built overlay instead of generating one from
        /// `cfg.topology` — how the topology-adaptation experiment
        /// replays one workload on rewired graphs.
        graph: Option<Arc<Graph>>,
        /// Observability spec (see [`RunSpec::TraceEval::obs`]).
        obs: Option<String>,
    },
}

impl RunSpec {
    /// The master seed this run draws from.
    pub fn seed(&self) -> u64 {
        match self {
            RunSpec::TraceEval { trace, .. } => trace.seed(),
            RunSpec::LiveSim { cfg, .. } => cfg.seed,
        }
    }

    /// The registry spec string (strategy or policy).
    pub fn subject(&self) -> &str {
        match self {
            RunSpec::TraceEval { strategy, .. } => strategy,
            RunSpec::LiveSim { policy, .. } => policy,
        }
    }

    /// Canonical, human-readable description of the full configuration.
    /// Two specs describing identical runs produce identical strings;
    /// any config change changes the string (and hence [`Self::digest`]).
    pub fn describe(&self) -> String {
        // An absent obs spec appends nothing: pre-obs digests (and the
        // persisted results keyed on them) must survive unchanged.
        let obs_tag = |obs: &Option<String>| {
            obs.as_ref()
                .map(|o| format!("|obs={o}"))
                .unwrap_or_default()
        };
        match self {
            RunSpec::TraceEval {
                trace,
                strategy,
                block_size,
                obs,
            } => format!(
                "trace-eval|trace={}|strategy={strategy}|block={block_size}{}",
                trace.describe(),
                obs_tag(obs)
            ),
            RunSpec::LiveSim {
                cfg,
                policy,
                graph,
                obs,
            } => {
                let graph_tag = match graph {
                    // `Graph` intentionally has no cheap canonical form;
                    // tag size + live + edge counts, which distinguishes
                    // the rewired variants a single experiment compares.
                    Some(g) => format!(
                        "prebuilt(n={},live={},edges={})",
                        g.len(),
                        g.live_count(),
                        g.edge_count()
                    ),
                    None => "generated".to_string(),
                };
                format!(
                    "live-sim|cfg={cfg:?}|policy={policy}|graph={graph_tag}{}",
                    obs_tag(obs)
                )
            }
        }
    }

    /// The observability spec, when one is attached.
    pub fn obs_spec(&self) -> Option<&str> {
        match self {
            RunSpec::TraceEval { obs, .. } | RunSpec::LiveSim { obs, .. } => obs.as_deref(),
        }
    }

    /// FNV-1a digest of [`Self::describe`] — the artifact's config
    /// fingerprint.
    pub fn digest(&self) -> u64 {
        fnv1a(self.describe().as_bytes())
    }
}

/// The measured output of one run.
#[derive(Debug, Clone)]
pub enum RunOutput {
    /// Trace-driven evaluation result.
    Trace(EvalRun),
    /// Live-simulation result.
    Live {
        /// Traffic/search metrics (policy label already canonicalized).
        metrics: RunMetrics,
        /// Policy-specific counters (rule usage, index hits, …).
        stats: Vec<(String, f64)>,
    },
}

/// One run's results plus provenance. The unified currency between the
/// executor, the experiment harness, and persisted `results/*.json`.
#[derive(Debug, Clone)]
pub struct RunArtifact {
    /// Position in the submitted spec list (results keep this order).
    pub index: usize,
    /// Canonical strategy/policy label (`name()` of the constructed
    /// object, or the scheme label for rider-defined schemes).
    pub label: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Canonical config description (see [`RunSpec::describe`]).
    pub spec: String,
    /// FNV-1a digest of `spec`.
    pub digest: u64,
    /// The measurements.
    pub output: RunOutput,
    /// Structured event trace + metrics registry + per-block series,
    /// present only when the run was instrumented.
    pub obs: Option<arq_obs::ObsReport>,
}

impl RunArtifact {
    /// The trace-evaluation result, if this was a trace run.
    pub fn eval_run(&self) -> Option<&EvalRun> {
        match &self.output {
            RunOutput::Trace(run) => Some(run),
            RunOutput::Live { .. } => None,
        }
    }

    /// The live-simulation metrics, if this was a live run.
    pub fn metrics(&self) -> Option<&RunMetrics> {
        match &self.output {
            RunOutput::Live { metrics, .. } => Some(metrics),
            RunOutput::Trace(_) => None,
        }
    }

    /// A policy stat by name, if this was a live run that reported it.
    pub fn stat(&self, name: &str) -> Option<f64> {
        match &self.output {
            RunOutput::Live { stats, .. } => stats.iter().find(|(k, _)| k == name).map(|&(_, v)| v),
            RunOutput::Trace(_) => None,
        }
    }
}

impl ToJson for RunArtifact {
    fn to_json(&self) -> Json {
        let (kind, run) = match &self.output {
            RunOutput::Trace(run) => ("trace-eval", run.to_json()),
            RunOutput::Live { metrics, stats } => (
                "live-sim",
                Json::obj([
                    ("metrics", metrics.to_json()),
                    (
                        "stats",
                        Json::Obj(
                            stats
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::Float(*v)))
                                .collect(),
                        ),
                    ),
                ]),
            ),
        };
        let mut doc = vec![
            ("index".to_string(), Json::from(self.index)),
            ("kind".to_string(), Json::from(kind)),
            ("label".to_string(), Json::from(&self.label)),
            ("seed".to_string(), Json::from(self.seed)),
            (
                "digest".to_string(),
                Json::from(format!("{:016x}", self.digest)),
            ),
            ("spec".to_string(), Json::from(&self.spec)),
            ("run".to_string(), run),
        ];
        // Uninstrumented artifacts serialize exactly as they always did.
        if let Some(obs) = &self.obs {
            doc.push(("obs".to_string(), obs.to_json()));
        }
        Json::Obj(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_separate_configs() {
        let a = RunSpec::TraceEval {
            trace: TraceSource::PaperDefault {
                pairs: 1_000,
                seed: 3,
            },
            strategy: "sliding(s=10)".into(),
            block_size: 100,
            obs: None,
        };
        let mut b = a.clone();
        assert_eq!(a.digest(), b.digest());
        if let RunSpec::TraceEval { block_size, .. } = &mut b {
            *block_size = 200;
        }
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn obs_spec_changes_digest_only_when_present() {
        let base = RunSpec::TraceEval {
            trace: TraceSource::PaperDefault {
                pairs: 1_000,
                seed: 3,
            },
            strategy: "sliding(s=10)".into(),
            block_size: 100,
            obs: None,
        };
        assert!(!base.describe().contains("obs="));
        let mut instrumented = base.clone();
        if let RunSpec::TraceEval { obs, .. } = &mut instrumented {
            *obs = Some("obs(events=1)".into());
        }
        assert!(instrumented.describe().ends_with("|obs=obs(events=1)"));
        assert_ne!(base.digest(), instrumented.digest());
        assert_eq!(instrumented.obs_spec(), Some("obs(events=1)"));
    }

    #[test]
    fn shared_traces_materialize_without_copying() {
        let pairs = Arc::new(Vec::new());
        let src = TraceSource::Shared {
            label: "t".into(),
            seed: 9,
            pairs: Arc::clone(&pairs),
        };
        assert!(Arc::ptr_eq(&src.materialize(), &pairs));
        assert_eq!(src.seed(), 9);
    }
}
