//! Name-keyed construction of strategies and forwarding policies.
//!
//! Every `Strategy` and `ForwardingPolicy` in the workspace is buildable
//! from a spec string — `"sliding(s=10,c=0.05)"`, `"k-walk(k=4)"`,
//! `"flood"` — making this module the single source of truth for the
//! CLI, the experiment harness, and tests. A spec is a registered name
//! optionally followed by `key=value` parameters; omitted parameters take
//! the documented defaults, and the canonical label reported by the
//! constructed object round-trips through [`make_strategy`] /
//! [`make_policy`].
//!
//! Unknown names produce an error that lists every valid name, so a typo
//! at the CLI is self-correcting.

use crate::hybrid::HybridPolicy;
use crate::policy::{AssocPolicy, AssocPolicyConfig};
use crate::strategy::{
    AdaptiveSlidingWindow, IncrementalStream, LazySlidingWindow, LossyStream, SlidingWindow,
    StaticRuleset, Strategy, TopicSlidingWindow,
};
use arq_baselines::{
    expanding_ring, CommunityPolicy, FloodPolicy, InterestShortcuts, KRandomWalk, RoutingIndices,
    SuperPeerPolicy,
};
use arq_gnutella::policy::ForwardingPolicy;
use arq_gnutella::sim::{AdaptPlan, RetryPolicy, RingSchedule, SimConfig};
use arq_gnutella::{FaultPlan, LinkPlan};
use arq_obs::ObsConfig;
use arq_simkern::time::Duration;

/// Every registered strategy name, in registry order.
pub const STRATEGY_NAMES: &[&str] = &[
    "static",
    "sliding",
    "lazy",
    "adaptive",
    "incremental",
    "lossy",
    "topic-sliding",
];

/// Every registered forwarding-policy name, in registry order.
pub const POLICY_NAMES: &[&str] = &[
    "flood",
    "expanding-ring",
    "k-walk",
    "shortcuts",
    "routing-index",
    "superpeer",
    "assoc",
    "assoc-adaptive",
    "hybrid",
    "community",
];

/// A spec failed to parse or named something unregistered.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// The name is not a registered strategy.
    UnknownStrategy(String),
    /// The name is not a registered policy.
    UnknownPolicy(String),
    /// The spec's parameter list is malformed or names an unknown key.
    BadSpec {
        /// The offending spec string.
        spec: String,
        /// What is wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownStrategy(name) => write!(
                f,
                "unknown strategy `{name}` (valid: {})",
                STRATEGY_NAMES.join(", ")
            ),
            RegistryError::UnknownPolicy(name) => write!(
                f,
                "unknown policy `{name}` (valid: {})",
                POLICY_NAMES.join(", ")
            ),
            RegistryError::BadSpec { spec, reason } => {
                write!(f, "bad spec `{spec}`: {reason}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// A spec string split into its name and `key=value` parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSpec {
    /// The registered name.
    pub name: String,
    /// Parameters in written order.
    pub params: Vec<(String, f64)>,
}

/// Splits `"name(k=v,...)"` (or bare `"name"`) into name and parameters.
/// Does not check the name against a registry — [`make_strategy`] /
/// [`make_policy`] do that.
pub fn parse_spec(spec: &str) -> Result<ParsedSpec, RegistryError> {
    let spec = spec.trim();
    // Structural errors carry the offending spec and the byte offset of
    // the broken construct, so a truncated nested spec buried in a longer
    // command line (`faults(loss=0.1,`) is locatable at a glance.
    let bad = |reason: String| RegistryError::BadSpec {
        spec: spec.to_string(),
        reason,
    };
    let (name, args) = match spec.find('(') {
        None => (spec, None),
        Some(open) => {
            let Some(inner) = spec[open + 1..].strip_suffix(')') else {
                return Err(bad(format!("missing closing `)` for `(` at byte {open}")));
            };
            (&spec[..open], Some(inner))
        }
    };
    if name.is_empty() {
        return Err(bad("empty name".to_string()));
    }
    let mut params = Vec::new();
    if let Some(args) = args {
        for part in args.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            // `part` is a subslice of `spec`, so pointer distance is the
            // parameter's byte offset within the spec string.
            let at = part.as_ptr() as usize - spec.as_ptr() as usize;
            let Some((key, value)) = part.split_once('=') else {
                return Err(bad(format!(
                    "parameter `{part}` at byte {at} is not `key=value`"
                )));
            };
            let value: f64 = value.trim().parse().map_err(|_| {
                bad(format!(
                    "parameter `{part}` at byte {at} has a non-numeric value"
                ))
            })?;
            params.push((key.trim().to_string(), value));
        }
    }
    Ok(ParsedSpec {
        name: name.to_string(),
        params,
    })
}

/// Looks up the parsed parameters against a table of `(key, default)`
/// entries (extra slots in `keys` may be aliases mapping to the same
/// canonical index via `alias_of`). Returns the resolved values in table
/// order, rejecting unknown keys.
struct ParamTable<'a> {
    spec: &'a str,
    keys: &'a [(&'a str, f64)],
    values: Vec<f64>,
}

impl<'a> ParamTable<'a> {
    fn resolve(
        spec: &'a str,
        parsed: &ParsedSpec,
        keys: &'a [(&'a str, f64)],
        aliases: &[(&str, &str)],
    ) -> Result<Self, RegistryError> {
        let mut values: Vec<f64> = keys.iter().map(|&(_, d)| d).collect();
        for (given, value) in &parsed.params {
            let canonical = aliases
                .iter()
                .find(|(a, _)| a == given)
                .map(|&(_, c)| c)
                .unwrap_or(given.as_str());
            let Some(idx) = keys.iter().position(|&(k, _)| k == canonical) else {
                let valid: Vec<&str> = keys.iter().map(|&(k, _)| k).collect();
                return Err(RegistryError::BadSpec {
                    spec: spec.to_string(),
                    reason: format!("unknown parameter `{given}` (valid: {})", valid.join(", ")),
                });
            };
            values[idx] = *value;
        }
        Ok(ParamTable { spec, keys, values })
    }

    fn f64(&self, key: &str) -> f64 {
        let idx = self
            .keys
            .iter()
            .position(|&(k, _)| k == key)
            .expect("lookup of undeclared parameter");
        self.values[idx]
    }

    fn u64(&self, key: &str) -> Result<u64, RegistryError> {
        let v = self.f64(key);
        if v < 0.0 || v.fract() != 0.0 {
            return Err(RegistryError::BadSpec {
                spec: self.spec.to_string(),
                reason: format!("parameter `{key}` must be a non-negative integer, got {v}"),
            });
        }
        Ok(v as u64)
    }

    fn usize(&self, key: &str) -> Result<usize, RegistryError> {
        Ok(self.u64(key)? as usize)
    }
}

/// Constructs a rule-maintenance strategy from a spec string.
///
/// | name | parameters (default) |
/// |------|----------------------|
/// | `static` | `s` min support (10) |
/// | `sliding` | `s` (10), `c` min confidence (0) |
/// | `lazy` | `s` (10), `p` regeneration period in blocks (10) |
/// | `adaptive` | `s` (10), `h` threshold history (10), `i` initial threshold (0.7) |
/// | `incremental` | `t` decayed-support threshold (10), `hl` half-life in pairs (20000) |
/// | `lossy` | `t` support threshold (10), `eps` Lossy Counting error (5e-5) |
/// | `topic-sliding` | `s` (10) |
///
/// `s` is accepted as an alias for `t` on the streaming maintainers, so
/// a generic `--support` CLI flag maps onto every strategy.
pub fn make_strategy(spec: &str) -> Result<Box<dyn Strategy + Send>, RegistryError> {
    let parsed = parse_spec(spec)?;
    let table = |keys: &'static [(&'static str, f64)]| {
        ParamTable::resolve(spec, &parsed, keys, &[("s", "t")])
    };
    Ok(match parsed.name.as_str() {
        "static" => {
            let p = ParamTable::resolve(spec, &parsed, &[("s", 10.0)], &[])?;
            Box::new(StaticRuleset::new(p.u64("s")?))
        }
        "sliding" => {
            let p = ParamTable::resolve(spec, &parsed, &[("s", 10.0), ("c", 0.0)], &[])?;
            Box::new(SlidingWindow::with_confidence(p.u64("s")?, p.f64("c")))
        }
        "lazy" => {
            let p = ParamTable::resolve(spec, &parsed, &[("s", 10.0), ("p", 10.0)], &[])?;
            Box::new(LazySlidingWindow::new(p.u64("s")?, p.usize("p")?))
        }
        "adaptive" => {
            let p =
                ParamTable::resolve(spec, &parsed, &[("s", 10.0), ("h", 10.0), ("i", 0.7)], &[])?;
            Box::new(AdaptiveSlidingWindow::new(
                p.u64("s")?,
                p.usize("h")?,
                p.f64("i"),
            ))
        }
        "incremental" => {
            let p = table(&[("t", 10.0), ("hl", 20_000.0)])?;
            Box::new(IncrementalStream::new(p.f64("t"), p.f64("hl")))
        }
        "lossy" => {
            let p = table(&[("t", 10.0), ("eps", 5e-5)])?;
            Box::new(LossyStream::new(p.u64("t")?, p.f64("eps")))
        }
        "topic-sliding" => {
            let p = ParamTable::resolve(spec, &parsed, &[("s", 10.0)], &[])?;
            Box::new(TopicSlidingWindow::new(p.u64("s")?))
        }
        other => return Err(RegistryError::UnknownStrategy(other.to_string())),
    })
}

/// A constructed forwarding policy plus the run-configuration riders its
/// scheme requires.
///
/// Two registered schemes are more than a `select()` implementation:
/// expanding ring needs a reissue schedule installed in the
/// [`SimConfig`], and k-random walks need a long TTL (each walker step
/// costs one message, so the TTL plays a different role than in
/// flooding). Encoding those riders here keeps every experiment and CLI
/// invocation of the same scheme identical.
pub struct BuiltPolicy {
    /// The policy itself.
    pub policy: Box<dyn ForwardingPolicy + Send>,
    /// Reissue schedule to install, if the scheme uses one.
    pub ring: Option<RingSchedule>,
    /// TTL the scheme requires, overriding the run configuration.
    pub ttl: Option<u32>,
    /// Canonical label for metrics. Usually `policy.name()`; differs for
    /// schemes defined by their riders (expanding ring floods, but is
    /// reported as `expanding-ring`).
    pub label: String,
}

impl BuiltPolicy {
    /// Installs this scheme's riders (ring schedule, TTL) into `cfg`.
    pub fn apply_to(&self, cfg: &mut SimConfig) {
        if let Some(ttl) = self.ttl {
            cfg.ttl = ttl;
        }
        if let Some(ring) = &self.ring {
            cfg.ring = Some(ring.clone());
        }
    }
}

/// Constructs a forwarding policy (plus config riders) from a spec
/// string.
///
/// | name | parameters (default) |
/// |------|----------------------|
/// | `flood` | — |
/// | `expanding-ring` | `start` TTL (2), `step` (2), `max` TTL (6), `wait` ticks (1500) |
/// | `k-walk` | `k` walkers (4), `ttl` walker TTL (48) |
/// | `shortcuts` | `cap` per-topic shortcut cap (5), `k` fan-out (2) |
/// | `routing-index` | `horizon` (3), `atten` attenuation (0.5), `k` fan-out (2) |
/// | `superpeer` | `n` core size (16) |
/// | `assoc` | `k` fan-out (2), `s` min decayed support (3), `hl` half-life (500), `top` top-by-support 1/0 (1), `minconf` min confidence (0) |
/// | `assoc-adaptive` | `assoc` params plus `demote` dead-rule factor (0.5), `fw` failure window (20), `ft` miss threshold (0.75) |
/// | `hybrid` | `cap` (5), `k` (2), `s` (3), `hl` (500), `minconf` (0) |
/// | `community` | `n` core size (16), `k` (2), `s` (3), `hl` (500), `minconf` (0) |
///
/// `minconf` is validated here, at spec-parse time, so a bad value comes
/// back as a [`RegistryError::BadSpec`] rather than a panic from the
/// policy constructor deep inside a run.
pub fn make_policy(spec: &str) -> Result<BuiltPolicy, RegistryError> {
    let parsed = parse_spec(spec)?;
    let minconf = |p: &ParamTable| -> Result<f64, RegistryError> {
        let v = p.f64("minconf");
        if !(0.0..=1.0).contains(&v) {
            return Err(RegistryError::BadSpec {
                spec: spec.to_string(),
                reason: format!("parameter `minconf` must be in [0, 1], got {v}"),
            });
        }
        Ok(v)
    };
    let plain = |policy: Box<dyn ForwardingPolicy + Send>| {
        let label = policy.name().to_string();
        BuiltPolicy {
            policy,
            ring: None,
            ttl: None,
            label,
        }
    };
    Ok(match parsed.name.as_str() {
        "flood" => plain(Box::new(FloodPolicy)),
        "expanding-ring" => {
            let p = ParamTable::resolve(
                spec,
                &parsed,
                &[
                    ("start", 2.0),
                    ("step", 2.0),
                    ("max", 6.0),
                    ("wait", 1_500.0),
                ],
                &[],
            )?;
            let (policy, ring) = expanding_ring(
                p.u64("start")? as u32,
                p.u64("step")? as u32,
                p.u64("max")? as u32,
                Duration::from_ticks(p.u64("wait")?),
            );
            BuiltPolicy {
                policy: Box::new(policy),
                ring: Some(ring),
                ttl: None,
                label: "expanding-ring".to_string(),
            }
        }
        "k-walk" => {
            let p = ParamTable::resolve(spec, &parsed, &[("k", 4.0), ("ttl", 48.0)], &[])?;
            BuiltPolicy {
                policy: Box::new(KRandomWalk::new(p.usize("k")?)),
                ring: None,
                ttl: Some(p.u64("ttl")? as u32),
                label: "k-walk".to_string(),
            }
        }
        "shortcuts" => {
            let p = ParamTable::resolve(spec, &parsed, &[("cap", 5.0), ("k", 2.0)], &[])?;
            plain(Box::new(InterestShortcuts::new(
                p.usize("cap")?,
                p.usize("k")?,
            )))
        }
        "routing-index" => {
            let p = ParamTable::resolve(
                spec,
                &parsed,
                &[("horizon", 3.0), ("atten", 0.5), ("k", 2.0)],
                &[],
            )?;
            plain(Box::new(RoutingIndices::new(
                p.u64("horizon")? as u32,
                p.f64("atten"),
                p.usize("k")?,
            )))
        }
        "superpeer" => {
            let p = ParamTable::resolve(spec, &parsed, &[("n", 16.0)], &[])?;
            plain(Box::new(SuperPeerPolicy::new(p.usize("n")?)))
        }
        "assoc" => {
            let p = ParamTable::resolve(
                spec,
                &parsed,
                &[
                    ("k", 2.0),
                    ("s", 3.0),
                    ("hl", 500.0),
                    ("top", 1.0),
                    ("minconf", 0.0),
                ],
                &[],
            )?;
            plain(Box::new(AssocPolicy::new(AssocPolicyConfig {
                k: p.usize("k")?,
                min_support: p.f64("s"),
                min_confidence: minconf(&p)?,
                half_life: p.f64("hl"),
                top_by_support: p.f64("top") != 0.0,
                ..Default::default()
            })))
        }
        "assoc-adaptive" => {
            let p = ParamTable::resolve(
                spec,
                &parsed,
                &[
                    ("k", 2.0),
                    ("s", 3.0),
                    ("hl", 500.0),
                    ("top", 1.0),
                    ("minconf", 0.0),
                    ("demote", 0.5),
                    ("fw", 20.0),
                    ("ft", 0.75),
                ],
                &[],
            )?;
            plain(Box::new(AssocPolicy::new(AssocPolicyConfig {
                k: p.usize("k")?,
                min_support: p.f64("s"),
                min_confidence: minconf(&p)?,
                half_life: p.f64("hl"),
                top_by_support: p.f64("top") != 0.0,
                demote: p.f64("demote"),
                fail_window: p.usize("fw")?,
                fail_threshold: p.f64("ft"),
            })))
        }
        "hybrid" => {
            let p = ParamTable::resolve(
                spec,
                &parsed,
                &[
                    ("cap", 5.0),
                    ("k", 2.0),
                    ("s", 3.0),
                    ("hl", 500.0),
                    ("minconf", 0.0),
                ],
                &[],
            )?;
            plain(Box::new(HybridPolicy::new(
                p.usize("cap")?,
                p.usize("k")?,
                AssocPolicyConfig {
                    k: p.usize("k")?,
                    min_support: p.f64("s"),
                    min_confidence: minconf(&p)?,
                    half_life: p.f64("hl"),
                    top_by_support: true,
                    ..Default::default()
                },
            )))
        }
        "community" => {
            let p = ParamTable::resolve(
                spec,
                &parsed,
                &[
                    ("n", 16.0),
                    ("k", 2.0),
                    ("s", 3.0),
                    ("hl", 500.0),
                    ("minconf", 0.0),
                ],
                &[],
            )?;
            plain(Box::new(CommunityPolicy::new(
                p.usize("n")?,
                p.usize("k")?,
                p.f64("s"),
                minconf(&p)?,
                p.f64("hl"),
            )))
        }
        other => return Err(RegistryError::UnknownPolicy(other.to_string())),
    })
}

/// Constructs a [`FaultPlan`] from a spec string:
/// `faults(loss=0.05,jitter=40,crash=0.01,silent=0.02)`.
///
/// All parameters default to zero, so `faults` alone is a valid (no-op)
/// plan; unknown keys are rejected with the valid keys listed.
pub fn make_fault_plan(spec: &str) -> Result<FaultPlan, RegistryError> {
    let parsed = parse_spec(spec)?;
    if parsed.name != "faults" {
        return Err(RegistryError::BadSpec {
            spec: spec.to_string(),
            reason: format!("fault spec must be `faults(...)`, got `{}`", parsed.name),
        });
    }
    let p = ParamTable::resolve(
        spec,
        &parsed,
        &[
            ("loss", 0.0),
            ("jitter", 0.0),
            ("crash", 0.0),
            ("silent", 0.0),
        ],
        &[],
    )?;
    let plan = FaultPlan {
        loss: p.f64("loss"),
        jitter: p.u64("jitter")?,
        crash: p.f64("crash"),
        silent: p.f64("silent"),
    };
    plan.validate().map_err(|e| RegistryError::BadSpec {
        spec: spec.to_string(),
        reason: e.to_string(),
    })?;
    Ok(plan)
}

/// Constructs a [`LinkPlan`] from a spec string:
/// `links(up=8,down=32,upbuf=2048,downbuf=8192,loss=0.02,jitter=20,riders=0.2,riderup=2)`.
///
/// `up`/`down`/`riderup` are bandwidths in bytes/tick; `upbuf`/`downbuf`
/// are byte budgets for the bounded buffers; `loss`, `jitter`, and
/// `riders` mirror the fault-plan knobs. All parameters default to zero,
/// so bare `links` is a valid no-op (zero-capacity) plan — but a
/// bandwidth *explicitly given* as zero or negative is rejected, since
/// writing `up=0` almost certainly means a typo rather than "remove the
/// constraint I just asked for". Unknown keys are rejected with the
/// valid keys listed.
pub fn make_link_plan(spec: &str) -> Result<LinkPlan, RegistryError> {
    let parsed = parse_spec(spec)?;
    if parsed.name != "links" {
        return Err(RegistryError::BadSpec {
            spec: spec.to_string(),
            reason: format!("link spec must be `links(...)`, got `{}`", parsed.name),
        });
    }
    let p = ParamTable::resolve(
        spec,
        &parsed,
        &[
            ("up", 0.0),
            ("down", 0.0),
            ("upbuf", 0.0),
            ("downbuf", 0.0),
            ("loss", 0.0),
            ("jitter", 0.0),
            ("riders", 0.0),
            ("riderup", 0.0),
        ],
        &[],
    )?;
    for key in ["up", "down", "riderup"] {
        if parsed.params.iter().any(|(k, v)| k == key && *v <= 0.0) {
            return Err(RegistryError::BadSpec {
                spec: spec.to_string(),
                reason: format!("parameter `{key}` must be positive"),
            });
        }
    }
    let plan = LinkPlan {
        up: p.f64("up"),
        down: p.f64("down"),
        up_buf: p.u64("upbuf")?,
        down_buf: p.u64("downbuf")?,
        loss: p.f64("loss"),
        jitter: p.u64("jitter")?,
        riders: p.f64("riders"),
        rider_up: p.f64("riderup"),
    };
    plan.validate().map_err(|e| RegistryError::BadSpec {
        spec: spec.to_string(),
        reason: e.to_string(),
    })?;
    Ok(plan)
}

/// Constructs an [`AdaptPlan`] from a spec string:
/// `adapt(every=50000,budget=8,degree=2)`.
///
/// `every` is the tumbling adaptation-round interval in ticks; `budget`
/// caps shortcut additions per round; `degree` caps shortcut edges per
/// asker node. Bare `adapt` uses the defaults. All three must be
/// positive; plan-level validation surfaces as a [`RegistryError::BadSpec`].
pub fn make_adapt_plan(spec: &str) -> Result<AdaptPlan, RegistryError> {
    let parsed = parse_spec(spec)?;
    if parsed.name != "adapt" {
        return Err(RegistryError::BadSpec {
            spec: spec.to_string(),
            reason: format!("adapt spec must be `adapt(...)`, got `{}`", parsed.name),
        });
    }
    let p = ParamTable::resolve(
        spec,
        &parsed,
        &[("every", 50_000.0), ("budget", 8.0), ("degree", 2.0)],
        &[],
    )?;
    let plan = AdaptPlan {
        every: Duration::from_ticks(p.u64("every")?),
        budget: p.usize("budget")?,
        degree: p.usize("degree")?,
    };
    plan.validate().map_err(|e| RegistryError::BadSpec {
        spec: spec.to_string(),
        reason: e.to_string(),
    })?;
    Ok(plan)
}

/// Constructs an [`ObsConfig`] from a spec string:
/// `obs(events=1,series=1,fanout=16)`.
///
/// Bare `obs` enables full instrumentation with the defaults. `events`
/// and `series` are 1/0 switches for the event log and the per-block
/// α/ρ/traffic series; `fanout` sets the forward fan-out histogram's
/// bucket count. Unknown keys are rejected with the valid keys listed.
pub fn make_obs_plan(spec: &str) -> Result<ObsConfig, RegistryError> {
    let parsed = parse_spec(spec)?;
    if parsed.name != "obs" {
        return Err(RegistryError::BadSpec {
            spec: spec.to_string(),
            reason: format!("obs spec must be `obs(...)`, got `{}`", parsed.name),
        });
    }
    let p = ParamTable::resolve(
        spec,
        &parsed,
        &[("events", 1.0), ("series", 1.0), ("fanout", 16.0)],
        &[],
    )?;
    let fanout_buckets = p.usize("fanout")?;
    if fanout_buckets == 0 {
        return Err(RegistryError::BadSpec {
            spec: spec.to_string(),
            reason: "parameter `fanout` must be positive".to_string(),
        });
    }
    Ok(ObsConfig {
        events: p.f64("events") != 0.0,
        series: p.f64("series") != 0.0,
        fanout_buckets,
    })
}

/// Constructs a [`RetryPolicy`] from a spec string:
/// `retry(deadline=2000,attempts=3,backoff=2,step=1,maxttl=8)`.
///
/// Unknown keys are rejected with the valid keys listed.
pub fn make_retry_policy(spec: &str) -> Result<RetryPolicy, RegistryError> {
    let parsed = parse_spec(spec)?;
    if parsed.name != "retry" {
        return Err(RegistryError::BadSpec {
            spec: spec.to_string(),
            reason: format!("retry spec must be `retry(...)`, got `{}`", parsed.name),
        });
    }
    let p = ParamTable::resolve(
        spec,
        &parsed,
        &[
            ("deadline", 2_000.0),
            ("attempts", 3.0),
            ("backoff", 2.0),
            ("step", 1.0),
            ("maxttl", 8.0),
        ],
        &[],
    )?;
    let bad = |reason: String| RegistryError::BadSpec {
        spec: spec.to_string(),
        reason,
    };
    let deadline = p.u64("deadline")?;
    if deadline == 0 {
        return Err(bad("parameter `deadline` must be positive".to_string()));
    }
    let attempts = p.u64("attempts")?;
    if attempts == 0 {
        return Err(bad("parameter `attempts` must be positive".to_string()));
    }
    let backoff = p.f64("backoff");
    if backoff < 1.0 {
        return Err(bad(format!(
            "parameter `backoff` must be at least 1, got {backoff}"
        )));
    }
    Ok(RetryPolicy {
        deadline: Duration::from_ticks(deadline),
        max_attempts: attempts as u32,
        backoff,
        ttl_step: p.u64("step")? as u32,
        max_ttl: p.u64("maxttl")? as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing() {
        let p = parse_spec("sliding(s=10, c=0.05)").unwrap();
        assert_eq!(p.name, "sliding");
        assert_eq!(p.params, vec![("s".into(), 10.0), ("c".into(), 0.05)]);
        assert_eq!(parse_spec("flood").unwrap().params, vec![]);
        assert!(parse_spec("x(").is_err());
        assert!(parse_spec("x(a)").is_err());
        assert!(parse_spec("x(a=b)").is_err());
        assert!(parse_spec("").is_err());
    }

    #[test]
    fn strategy_defaults_match_bare_names() {
        for name in STRATEGY_NAMES {
            let bare = make_strategy(name).unwrap();
            assert!(
                bare.name().starts_with(name),
                "{name} constructed as {}",
                bare.name()
            );
        }
    }

    fn strategy_err(spec: &str) -> String {
        match make_strategy(spec) {
            Err(e) => e.to_string(),
            Ok(s) => panic!("`{spec}` unexpectedly built {}", s.name()),
        }
    }

    #[test]
    fn unknown_names_list_alternatives() {
        let e = strategy_err("slidng");
        assert!(e.contains("unknown strategy"), "{e}");
        assert!(e.contains("topic-sliding"), "{e}");
        let e = match make_policy("floood") {
            Err(e) => e.to_string(),
            Ok(p) => panic!("`floood` unexpectedly built {}", p.label),
        };
        assert!(e.contains("unknown policy"), "{e}");
        assert!(e.contains("expanding-ring"), "{e}");
    }

    #[test]
    fn unknown_parameters_are_rejected() {
        let e = strategy_err("sliding(q=3)");
        assert!(e.contains("unknown parameter"), "{e}");
        assert!(make_policy("k-walk(k=0.5)").is_err());
    }

    #[test]
    fn support_alias_reaches_streaming_maintainers() {
        let s = make_strategy("incremental(s=7)").unwrap();
        assert!(s.name().contains("t=7"), "{}", s.name());
    }

    #[test]
    fn fault_specs_round_trip() {
        let plan = make_fault_plan("faults(loss=0.05,crash=0.01,silent=0.02,jitter=40)").unwrap();
        assert_eq!(plan.loss, 0.05);
        assert_eq!(plan.jitter, 40);
        assert_eq!(plan.crash, 0.01);
        assert_eq!(plan.silent, 0.02);
        assert!(make_fault_plan("faults").unwrap().is_noop());
        assert!(make_fault_plan("faults(loss=1.5)").is_err());
        assert!(make_fault_plan("retry(loss=0.1)").is_err());
    }

    #[test]
    fn structural_errors_carry_spec_and_position() {
        // A truncated nested spec: the missing `)` is reported with the
        // offset of the `(` that never closed.
        let e = parse_spec("faults(loss=0.1,").unwrap_err().to_string();
        assert!(e.contains("`faults(loss=0.1,`"), "{e}");
        assert!(e.contains("missing closing `)` for `(` at byte 6"), "{e}");
        // Malformed parameters are located by byte offset too.
        let e = parse_spec("faults(loss=0.1,jitter)")
            .unwrap_err()
            .to_string();
        assert!(e.contains("parameter `jitter` at byte 16"), "{e}");
        let e = parse_spec("retry(deadline=soon)").unwrap_err().to_string();
        assert!(
            e.contains("parameter `deadline=soon` at byte 6 has a non-numeric value"),
            "{e}"
        );
    }

    #[test]
    fn obs_specs_round_trip() {
        let cfg = make_obs_plan("obs").unwrap();
        assert!(cfg.events && cfg.series);
        assert_eq!(cfg.fanout_buckets, 16);
        let cfg = make_obs_plan("obs(events=0,series=1,fanout=8)").unwrap();
        assert!(!cfg.events);
        assert!(cfg.series);
        assert_eq!(cfg.fanout_buckets, 8);
        assert!(make_obs_plan("obs(fanout=0)").is_err());
        assert!(make_obs_plan("faults(loss=0.1)").is_err());
        let e = make_obs_plan("obs(event=1)").unwrap_err().to_string();
        assert!(e.contains("unknown parameter `event`"), "{e}");
        assert!(e.contains("events"), "{e}");
    }

    #[test]
    fn unknown_fault_keys_list_valid_keys() {
        let e = make_fault_plan("faults(los=0.05)").unwrap_err().to_string();
        assert!(e.contains("unknown parameter `los`"), "{e}");
        for key in ["loss", "jitter", "crash", "silent"] {
            assert!(e.contains(key), "`{key}` missing from: {e}");
        }
    }

    #[test]
    fn link_specs_round_trip() {
        let plan = make_link_plan(
            "links(up=8,down=32,upbuf=2048,downbuf=8192,loss=0.02,jitter=20,riders=0.2,riderup=2)",
        )
        .unwrap();
        assert_eq!(plan.up, 8.0);
        assert_eq!(plan.down, 32.0);
        assert_eq!(plan.up_buf, 2_048);
        assert_eq!(plan.down_buf, 8_192);
        assert_eq!(plan.loss, 0.02);
        assert_eq!(plan.jitter, 20);
        assert_eq!(plan.riders, 0.2);
        assert_eq!(plan.rider_up, 2.0);
        assert!(make_link_plan("links").unwrap().is_noop());
        assert!(make_link_plan("faults(loss=0.1)").is_err());
        // Plan-level validation surfaces through the spec error.
        let e = make_link_plan("links(loss=1.5)").unwrap_err().to_string();
        assert!(e.contains("must be in [0, 1)"), "{e}");
        let e = make_link_plan("links(upbuf=64)").unwrap_err().to_string();
        assert!(e.contains("requires the matching bandwidth"), "{e}");
    }

    #[test]
    fn unknown_link_keys_list_valid_keys() {
        let e = make_link_plan("links(upload=8)").unwrap_err().to_string();
        assert!(e.contains("unknown parameter `upload`"), "{e}");
        for key in [
            "up", "down", "upbuf", "downbuf", "loss", "jitter", "riders", "riderup",
        ] {
            assert!(e.contains(key), "`{key}` missing from: {e}");
        }
    }

    #[test]
    fn explicit_zero_link_bandwidth_is_rejected() {
        for spec in ["links(up=0)", "links(down=-4)", "links(riderup=0)"] {
            let e = make_link_plan(spec).unwrap_err().to_string();
            assert!(e.contains("must be positive"), "`{spec}`: {e}");
        }
        // Omitting the key entirely still means "unconstrained".
        assert_eq!(make_link_plan("links(loss=0.1)").unwrap().up, 0.0);
    }

    #[test]
    fn retry_specs_round_trip() {
        let rp = make_retry_policy("retry(deadline=1500,attempts=4,backoff=1.5,step=2,maxttl=9)")
            .unwrap();
        assert_eq!(rp.deadline, Duration::from_ticks(1_500));
        assert_eq!(rp.max_attempts, 4);
        assert_eq!(rp.backoff, 1.5);
        assert_eq!(rp.ttl_step, 2);
        assert_eq!(rp.max_ttl, 9);
        let defaults = make_retry_policy("retry").unwrap();
        assert_eq!(defaults.max_attempts, 3);
        assert!(make_retry_policy("retry(attempts=0)").is_err());
        assert!(make_retry_policy("retry(deadline=0)").is_err());
        assert!(make_retry_policy("retry(backoff=0.5)").is_err());
        let e = make_retry_policy("retry(atempts=2)")
            .unwrap_err()
            .to_string();
        assert!(e.contains("unknown parameter"), "{e}");
        assert!(e.contains("deadline"), "{e}");
    }

    #[test]
    fn adaptive_assoc_builds_with_its_own_label() {
        let built = make_policy("assoc-adaptive(demote=0.25,fw=10)").unwrap();
        assert_eq!(built.label, "assoc-adaptive");
        // Plain assoc stays plain — adaptive defaults must not leak in.
        let plain = make_policy("assoc").unwrap();
        assert_eq!(plain.label, "assoc");
    }

    #[test]
    fn minconf_is_validated_at_spec_parse_time() {
        // A bad value is a typed BadSpec, not a panic from the policy
        // constructor.
        for spec in [
            "assoc(minconf=1.5)",
            "assoc(minconf=-0.1)",
            "assoc-adaptive(minconf=2)",
            "hybrid(minconf=-1)",
            "community(minconf=1.01)",
        ] {
            let e = match make_policy(spec) {
                Err(e) => e,
                Ok(p) => panic!("`{spec}` unexpectedly built {}", p.label),
            };
            assert!(
                matches!(e, RegistryError::BadSpec { .. }),
                "`{spec}` gave {e:?}"
            );
            let msg = e.to_string();
            assert!(msg.contains("`minconf` must be in [0, 1]"), "{msg}");
        }
        // In-range values build on every policy that accepts the key.
        for spec in [
            "assoc(k=4,minconf=0.6)",
            "assoc-adaptive(minconf=1)",
            "hybrid(minconf=0.5)",
            "community(n=8,minconf=0.25)",
        ] {
            make_policy(spec).unwrap();
        }
    }

    #[test]
    fn community_policy_builds_with_its_own_label() {
        let built = make_policy("community(n=8,k=3)").unwrap();
        assert_eq!(built.label, "community");
    }

    #[test]
    fn adapt_specs_round_trip() {
        let plan = make_adapt_plan("adapt(every=20000,budget=16,degree=3)").unwrap();
        assert_eq!(plan.every, Duration::from_ticks(20_000));
        assert_eq!(plan.budget, 16);
        assert_eq!(plan.degree, 3);
        let defaults = make_adapt_plan("adapt").unwrap();
        assert_eq!(defaults.every, Duration::from_ticks(50_000));
        assert_eq!(defaults.budget, 8);
        assert_eq!(defaults.degree, 2);
        // Plan-level validation surfaces through the spec error.
        for spec in ["adapt(every=0)", "adapt(budget=0)", "adapt(degree=0)"] {
            let e = make_adapt_plan(spec).unwrap_err().to_string();
            assert!(e.contains("must be positive"), "`{spec}`: {e}");
        }
        assert!(make_adapt_plan("faults(loss=0.1)").is_err());
        let e = make_adapt_plan("adapt(evry=10)").unwrap_err().to_string();
        assert!(e.contains("unknown parameter `evry`"), "{e}");
        assert!(e.contains("budget"), "{e}");
    }

    #[test]
    fn riders_are_applied() {
        let built = make_policy("expanding-ring(start=2,step=2,max=7,wait=500)").unwrap();
        assert_eq!(built.label, "expanding-ring");
        let mut cfg = SimConfig::default_with(50, 10, 1);
        built.apply_to(&mut cfg);
        assert_eq!(cfg.ring.as_ref().unwrap().ttls, vec![2, 4, 6, 7]);

        let walk = make_policy("k-walk").unwrap();
        let mut cfg = SimConfig::default_with(50, 10, 1);
        walk.apply_to(&mut cfg);
        assert_eq!(cfg.ttl, 48);
    }
}
