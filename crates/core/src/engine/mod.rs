//! Run orchestration: declarative specs, a name-keyed registry, and a
//! deterministic parallel executor.
//!
//! The paper's contribution is a comparison harness — many strategies
//! and policies evaluated over identical inputs — so the workspace
//! needs to describe "a run" exactly once. This module is that layer:
//!
//! * [`spec::RunSpec`] describes one run declaratively (trace evaluation
//!   or live simulation) and yields a [`spec::RunArtifact`] carrying the
//!   measurements plus provenance (seed, canonical config description,
//!   FNV digest);
//! * [`registry`] constructs every `Strategy` and `ForwardingPolicy`
//!   from a spec string like `"sliding(s=10)"` or `"k-walk(k=4)"` —
//!   the single source of truth for the CLI, the experiment harness,
//!   and tests;
//! * [`executor`] fans independent specs across scoped threads with
//!   results in submission order, so artifact JSON is byte-identical at
//!   any thread count (`ARQ_THREADS` pins the count).
//!
//! Adding a new strategy or policy therefore means: implement the trait,
//! register the name in [`registry`], done — every experiment, CLI
//! subcommand, and test can name it immediately.

pub mod executor;
pub mod registry;
pub mod spec;

pub use executor::{
    budget_split, execute, execute_with_threads, run_live, run_live_sharded, run_live_with_obs,
    run_one, run_one_with_threads, thread_count, validate, LiveRun, LiveRunObs,
};
pub use registry::{
    make_adapt_plan, make_fault_plan, make_link_plan, make_obs_plan, make_policy,
    make_retry_policy, make_strategy, parse_spec, BuiltPolicy, ParsedSpec, RegistryError,
    POLICY_NAMES, STRATEGY_NAMES,
};
pub use spec::{RunArtifact, RunOutput, RunSpec, TraceSource};
